#include "analyzer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "model.h"

namespace s2rdf::lint {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const std::string& path) {
  for (const char* ext : {".h", ".cc", ".cpp"}) {
    std::string e(ext);
    if (path.size() >= e.size() &&
        path.compare(path.size() - e.size(), e.size(), e) == 0) {
      return true;
    }
  }
  return false;
}

bool IsFixturePath(const std::string& rel) {
  return rel.find("/testdata/") != std::string::npos ||
         rel.find("/compile_fail/") != std::string::npos;
}

std::string TopDir(const std::string& rel) {
  size_t slash = rel.find('/');
  return slash == std::string::npos ? rel : rel.substr(0, slash);
}

struct ScannedFile {
  std::string rel;
  FileScanResult scan;   // unfiltered line-rule findings + markers
  FileModel model;
};

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

bool RuleEnabledFor(const std::string& rule, const std::string& rel_path) {
  std::string top = TopDir(rel_path);
  if (top == "tests") {
    return rule != "bare-mutex" && rule != "status-discipline" &&
           rule != "raw-log";
  }
  if (top == "bench") {
    // Benches print human tables to stderr by design (JSON owns stdout).
    return rule != "nondeterminism" && rule != "clock" &&
           rule != "status-discipline" && rule != "raw-log";
  }
  if (top == "tools") {
    return rule != "raw-io" && rule != "raw-log";
  }
  return true;  // src/ and anything else: full rule set
}

AnalysisResult AnalyzeTree(const AnalyzerOptions& options) {
  AnalysisResult result;
  fs::path root(options.root);

  // --- Walk + phase 1: per-file scan and model build. ---
  std::vector<std::string> rel_paths;
  for (const std::string& sub : options.subdirs) {
    fs::path dir = root / sub;
    std::error_code ec;
    if (fs::is_regular_file(dir, ec)) {
      rel_paths.push_back(sub);
      continue;
    }
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string rel =
          fs::relative(it->path(), root, ec).generic_string();
      if (ec || rel.empty()) continue;
      if (!HasSourceExtension(rel) || IsFixturePath(rel)) continue;
      rel_paths.push_back(rel);
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());
  rel_paths.erase(std::unique(rel_paths.begin(), rel_paths.end()),
                  rel_paths.end());

  std::vector<ScannedFile> files;
  std::vector<Violation> unfiltered;
  files.reserve(rel_paths.size());
  for (const std::string& rel : rel_paths) {
    std::string content;
    if (!ReadFile(root / rel, &content)) {
      unfiltered.push_back({rel, 0, "io", "cannot read file"});
      continue;
    }
    ScannedFile f;
    f.rel = rel;
    f.scan = ScanContent(rel, content);
    f.model = BuildFileModel(rel, content);
    files.push_back(std::move(f));
  }
  result.files_scanned = files.size();

  // Line-rule findings, profile-filtered.
  for (const ScannedFile& f : files) {
    for (const Violation& v : f.scan.violations) {
      if (RuleEnabledFor(v.rule, f.rel)) unfiltered.push_back(v);
    }
  }

  // --- Phase 2: cross-file passes over the merged model. ---
  ProgramModel program;
  program.files.reserve(files.size());
  for (const ScannedFile& f : files) program.files.push_back(f.model);
  for (auto* pass : {CheckLayering, CheckLockOrder, CheckInterruptCoverage,
                     CheckStatusDiscipline}) {
    for (Violation& v : pass(program)) {
      if (RuleEnabledFor(v.rule, v.file)) unfiltered.push_back(std::move(v));
    }
  }

  // --- Central suppression filter with usage tracking. ---
  struct PerFile {
    const ScannedFile* file;
    Suppressions supp;
    std::vector<bool> used;
  };
  std::map<std::string, PerFile> by_path;
  for (const ScannedFile& f : files) {
    by_path.emplace(f.rel,
                    PerFile{&f, Suppressions(f.scan.markers),
                            std::vector<bool>(f.scan.markers.size(), false)});
  }
  for (Violation& v : unfiltered) {
    auto it = by_path.find(v.file);
    if (it != by_path.end()) {
      size_t used = 0;
      if (it->second.supp.Allows(v.rule, v.line, &used)) {
        it->second.used[used] = true;
        continue;
      }
    }
    result.findings.push_back(std::move(v));
  }

  // --- Suppression census + hygiene findings. Only markers naming a
  // known rule are tracked: documentation placeholders like
  // `allow(<rule>)` are inert, not stale. ---
  for (const auto& [rel, pf] : by_path) {
    for (size_t i = 0; i < pf.file->scan.markers.size(); ++i) {
      if (!IsKnownRule(pf.file->scan.markers[i].rule)) continue;
      result.markers.push_back(
          {rel, pf.file->scan.markers[i], pf.used[i]});
    }
  }
  for (Violation& v : CheckSuppressionHygiene(result.markers)) {
    result.findings.push_back(std::move(v));
  }

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

}  // namespace s2rdf::lint
