#include <set>
#include <string>
#include <vector>

#include "passes/passes.h"

// Interrupt-coverage pass: every row loop in src/engine/ must honor the
// per-query deadline/cancellation seam (ExecContext) at least every
// kInterruptCheckRows iterations. PR 4 fixed this bug class by hand in
// Distinct/OrderBy; this pass makes the omission structurally
// impossible for every future operator.
//
// Scope:   functions in src/engine/ whose signature or body mentions
//          ExecContext or `ctx` (operators without a context cannot
//          check it — adding the seam is an API change this linter does
//          not force).
// Row loop: a for/while whose header mentions NumRows() (directly or
//          via a local assigned from NumRows — one step of forward
//          taint), or whose body emits rows (AppendRow*/EmitJoined*).
// Covered: the loop's extent — or any enclosing loop's extent — has a
//          kInterruptCheckRows / CheckInterrupt / InterruptRequested
//          token. Checking in the outer loop of a nest is the
//          canonical idiom (the inner per-match loop is bounded by the
//          outer row cadence).

namespace s2rdf::lint {
namespace {

bool MentionsAny(const FileModel& file, size_t begin, size_t end,
                 const std::set<std::string>& names) {
  for (size_t i = begin; i < end && i < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.kind == TokenKind::kIdentifier && names.count(t.text)) return true;
  }
  return false;
}

bool MentionsPrefix(const FileModel& file, size_t begin, size_t end,
                    const std::vector<std::string>& prefixes) {
  for (size_t i = begin; i < end && i < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    for (const std::string& p : prefixes) {
      if (t.text.compare(0, p.size(), p) == 0) return true;
    }
  }
  return false;
}

// Locals assigned from NumRows() inside [begin, end): for each NumRows
// token, walk back to the statement start and record the identifier
// left of the nearest `=` (handles `const size_t n = t.NumRows();` and
// init-statements in for headers).
std::set<std::string> TaintedFromNumRows(const FileModel& file, size_t begin,
                                         size_t end) {
  std::set<std::string> tainted;
  for (size_t i = begin; i < end && i < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.kind != TokenKind::kIdentifier || t.text != "NumRows") continue;
    for (size_t j = i; j > begin; --j) {
      const Token& b = file.tokens[j - 1];
      if (b.kind == TokenKind::kPunct &&
          (b.text == ";" || b.text == "{" || b.text == "}")) {
        break;
      }
      if (b.kind == TokenKind::kPunct && b.text == "=" && j >= 2) {
        const Token& lhs = file.tokens[j - 2];
        if (lhs.kind == TokenKind::kIdentifier) tainted.insert(lhs.text);
        break;
      }
    }
  }
  return tainted;
}

}  // namespace

std::vector<Violation> CheckInterruptCoverage(const ProgramModel& program) {
  static const std::set<std::string> kSeam = {
      "kInterruptCheckRows", "CheckInterrupt", "InterruptRequested"};
  static const std::vector<std::string> kEmitPrefixes = {"AppendRow",
                                                         "EmitJoined"};
  std::vector<Violation> out;
  for (const FileModel& file : program.files) {
    if (file.path.rfind("src/engine/", 0) != 0) continue;
    for (const FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;
      bool has_ctx =
          MentionsAny(file, fn.sig_begin, fn.body_end, {"ExecContext"}) ||
          MentionsAny(file, fn.sig_begin, fn.body_end, {"ctx"});
      if (!has_ctx) continue;
      std::set<std::string> tainted =
          TaintedFromNumRows(file, fn.sig_begin, fn.body_end);
      // Direct coverage per loop, then escalate through enclosing loops.
      std::vector<bool> covered(fn.loops.size());
      for (size_t i = 0; i < fn.loops.size(); ++i) {
        const LoopSite& loop = fn.loops[i];
        covered[i] =
            MentionsAny(file, loop.header_begin, loop.body_end, kSeam);
      }
      for (size_t i = 0; i < fn.loops.size(); ++i) {
        const LoopSite& loop = fn.loops[i];
        bool row_loop =
            MentionsAny(file, loop.header_begin, loop.header_end,
                        {"NumRows"}) ||
            MentionsAny(file, loop.header_begin, loop.header_end, tainted) ||
            MentionsPrefix(file, loop.body_begin, loop.body_end,
                           kEmitPrefixes);
        if (!row_loop || covered[i]) continue;
        bool enclosed_covered = false;
        for (size_t j = 0; j < fn.loops.size(); ++j) {
          if (j == i) continue;
          if (fn.loops[j].body_begin <= loop.header_begin &&
              fn.loops[j].body_end >= loop.body_end && covered[j]) {
            enclosed_covered = true;
            break;
          }
        }
        if (enclosed_covered) continue;
        out.push_back(
            {file.path, loop.header_line, "interrupt-coverage",
             "row loop never checks the interrupt seam; check "
             "ctx->CheckInterrupt() every kInterruptCheckRows rows (see "
             "src/engine/exec_context.h)"});
      }
    }
  }
  return out;
}

}  // namespace s2rdf::lint
