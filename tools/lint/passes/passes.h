#ifndef S2RDF_TOOLS_LINT_PASSES_PASSES_H_
#define S2RDF_TOOLS_LINT_PASSES_PASSES_H_

#include <string>
#include <vector>

#include "lint.h"
#include "model.h"

// Phase 2 of the whole-program analyzer: cross-file passes over the
// merged ProgramModel. Each pass enforces one invariant no compiler
// checks globally (DESIGN.md §13):
//
//   layering             the module dependency DAG
//                          common → {rdf, sparql, storage, mapreduce,
//                          watdiv} → {core, engine} → {server,
//                          baselines} → tools → {tests, bench}
//                        derived from the include graph. Illegal
//                        back-edges (a module including a higher
//                        layer) and include cycles fail. Also flags
//                        transitive-include reliance: a .cc that uses
//                        common::Mutex types without including
//                        common/mutex.h directly.
//   lock-order           global acquired-before digraph built from
//                        lexically nested MutexLock/ReaderLock/
//                        WriterLock acquisitions, one-level-transitive
//                        may-acquire propagation through the call
//                        graph, and S2RDF_ACQUIRED_BEFORE/_AFTER
//                        annotations. Any cycle is a potential
//                        cross-TU deadlock Clang's per-function
//                        thread-safety analysis cannot see.
//   interrupt-coverage   every row loop in src/engine/ (a loop bounded
//                        by NumRows() or emitting rows via AppendRow*/
//                        EmitJoinedRow) inside a function that can see
//                        an ExecContext must check the cancellation
//                        seam (kInterruptCheckRows / CheckInterrupt /
//                        InterruptRequested) in its own or an
//                        enclosing loop's extent.
//   status-discipline    StatusOr value access (.value(), operator*,
//                        operator->) not preceded by an ok()/status()
//                        check on the same local, and Status/StatusOr
//                        locals constructed and never read again
//                        (dropped errors).
//   stale-suppression    a `// s2rdf-lint: allow(...)` marker that
//                        suppresses nothing (computed by the analyzer,
//                        which tracks marker usage across line rules
//                        AND pass findings).
//
// All passes are heuristic and token-level; they err conservative and
// every finding is suppressible with the normal marker syntax or the
// checked-in baseline (tools/lint/lint_baseline.txt).

namespace s2rdf::lint {

std::vector<Violation> CheckLayering(const ProgramModel& program);
std::vector<Violation> CheckLockOrder(const ProgramModel& program);
std::vector<Violation> CheckInterruptCoverage(const ProgramModel& program);
std::vector<Violation> CheckStatusDiscipline(const ProgramModel& program);

// One marker with its resolved usage, for the suppression census.
struct MarkerUsage {
  std::string path;
  SuppressionMarker marker;
  bool used = false;
};

// Emits `stale-suppression` for every unused marker. Usage is computed
// by the analyzer (analyzer.cc), which filters all findings centrally.
std::vector<Violation> CheckSuppressionHygiene(
    const std::vector<MarkerUsage>& markers);

// Layer rank of a repo-relative path ("src/engine/plan.cc" → 2), or -1
// when the path is outside the layered tree. Exposed for tests.
int LayerRank(const std::string& path);

}  // namespace s2rdf::lint

#endif  // S2RDF_TOOLS_LINT_PASSES_PASSES_H_
