#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes/passes.h"

// Lock-order pass: builds the global acquired-before digraph and fails
// on cycles — the cross-TU deadlock class Clang's per-function
// thread-safety analysis cannot see.
//
// Nodes are mutex labels `Class::member` (or a bare name for
// namespace-scope mutexes), resolved from the MutexDecl table: a lock
// expression `mu_` inside a `Catalog` method resolves to
// `Catalog::mu_`; failing that, a member name unique across all
// classes resolves to its only declaration; ambiguous names are
// skipped (conservative).
//
// Edges come from three sources:
//   1. Lexical nesting: `MutexLock a(&x); ... MutexLock b(&y);` with b
//      inside a's scope extent adds x → y.
//   2. May-acquire call propagation: if f() is called while x is held
//      and f may (transitively) acquire y, add x → y. Callees resolve
//      by explicit qualifier (`Catalog::Fn`) or globally unique name.
//   3. Declared S2RDF_ACQUIRED_BEFORE / _AFTER annotation edges.
//
// Functions marked S2RDF_NO_THREAD_SAFETY_ANALYSIS are skipped whole —
// they are the documented escape hatch (e.g. move operations locking
// both `this` and `other`, whose self-edge is instance-distinct).
// Acquiring the same label twice in one extent (a self-edge) is
// reported directly as a self-deadlock on the non-reentrant wrappers.

namespace s2rdf::lint {
namespace {

struct FunctionRef {
  const FileModel* file = nullptr;
  const FunctionModel* fn = nullptr;
};

std::string LastComponent(const std::string& expr) {
  size_t dot = expr.rfind('.');
  size_t arrow = expr.rfind("->");
  size_t cut = std::string::npos;
  if (dot != std::string::npos) cut = dot + 1;
  if (arrow != std::string::npos &&
      (cut == std::string::npos || arrow + 2 > cut)) {
    cut = arrow + 2;
  }
  return cut == std::string::npos ? expr : expr.substr(cut);
}

class LockOrderAnalysis {
 public:
  explicit LockOrderAnalysis(const ProgramModel& program)
      : program_(program) {}

  std::vector<Violation> Run() {
    IndexDecls();
    IndexFunctions();
    ComputeMayAcquire();
    CollectEdges();
    for (const FileModel& file : program_.files) {
      for (const OrderAnnotation& ann : file.order_annotations) {
        AddEdge(ann.first, ann.second, file.path, ann.line,
                "declared by S2RDF_ACQUIRED_BEFORE/_AFTER");
      }
    }
    ReportCycles();
    return std::move(out_);
  }

 private:
  struct EdgeSite {
    std::string file;
    int line = 0;
    std::string why;
  };

  void IndexDecls() {
    for (const FileModel& file : program_.files) {
      for (const MutexDecl& decl : file.mutex_decls) {
        std::string label = decl.class_name.empty()
                                ? decl.name
                                : decl.class_name + "::" + decl.name;
        by_member_[decl.name].insert(label);
        declared_.insert(label);
      }
    }
  }

  void IndexFunctions() {
    for (const FileModel& file : program_.files) {
      for (const FunctionModel& fn : file.functions) {
        by_name_[fn.name].push_back({&file, &fn});
      }
    }
  }

  // Resolves a lock expression to a mutex label, or "" when ambiguous.
  std::string Resolve(const FunctionModel& fn, const std::string& expr) const {
    std::string member = LastComponent(expr);
    if (member.empty()) return "";
    if (!fn.qualifier.empty() &&
        declared_.count(fn.qualifier + "::" + member)) {
      return fn.qualifier + "::" + member;
    }
    auto it = by_member_.find(member);
    if (it != by_member_.end() && it->second.size() == 1) {
      return *it->second.begin();
    }
    return "";
  }

  // Callee resolution: explicit qualifier wins; otherwise a globally
  // unique function name. Returns nullptr when ambiguous/unknown.
  // Member-access calls with STL-style lowercase names (`by_id_.size()`)
  // never resolve: the receiver is almost always a container/smart
  // pointer, and a same-name project method (house style: PascalCase)
  // would make every such call a false self-deadlock.
  const FunctionRef* ResolveCall(const CallSite& call) const {
    if (call.member_access && call.qualifier.empty() && !call.name.empty() &&
        std::islower(static_cast<unsigned char>(call.name[0])) != 0) {
      return nullptr;
    }
    auto it = by_name_.find(call.name);
    if (it == by_name_.end()) return nullptr;
    const std::vector<FunctionRef>& candidates = it->second;
    if (!call.qualifier.empty()) {
      const FunctionRef* match = nullptr;
      for (const FunctionRef& ref : candidates) {
        if (ref.fn->qualifier == call.qualifier) {
          if (match != nullptr) return nullptr;  // overload set: skip
          match = &ref;
        }
      }
      return match;
    }
    return candidates.size() == 1 ? &candidates[0] : nullptr;
  }

  // Fixpoint over the call graph: the set of labels each function may
  // acquire, directly or through resolvable callees.
  void ComputeMayAcquire() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const FileModel& file : program_.files) {
        for (const FunctionModel& fn : file.functions) {
          if (fn.no_thread_safety_analysis) continue;
          std::set<std::string>& mine = may_acquire_[&fn];
          size_t before = mine.size();
          for (const LockSite& lock : fn.locks) {
            std::string label = Resolve(fn, lock.expr);
            if (!label.empty()) mine.insert(label);
          }
          for (const CallSite& call : fn.calls) {
            const FunctionRef* callee = ResolveCall(call);
            if (callee == nullptr || callee->fn == &fn) continue;
            auto it = may_acquire_.find(callee->fn);
            if (it == may_acquire_.end()) continue;
            mine.insert(it->second.begin(), it->second.end());
          }
          if (mine.size() != before) changed = true;
        }
      }
    }
  }

  void AddEdge(const std::string& from, const std::string& to,
               const std::string& file, int line, const std::string& why) {
    auto& slot = graph_[from];
    if (!slot.count(to)) slot[to] = {file, line, why};
  }

  void CollectEdges() {
    for (const FileModel& file : program_.files) {
      for (const FunctionModel& fn : file.functions) {
        if (fn.no_thread_safety_analysis) continue;
        for (size_t i = 0; i < fn.locks.size(); ++i) {
          const LockSite& held = fn.locks[i];
          std::string held_label = Resolve(fn, held.expr);
          if (held_label.empty()) continue;
          // 1. Later acquisitions inside this one's scope extent.
          for (size_t j = i + 1; j < fn.locks.size(); ++j) {
            const LockSite& inner = fn.locks[j];
            if (inner.token_index <= held.token_index ||
                inner.token_index >= held.scope_end) {
              continue;
            }
            std::string inner_label = Resolve(fn, inner.expr);
            if (inner_label.empty()) continue;
            if (inner_label == held_label) {
              out_.push_back(
                  {file.path, inner.line, "lock-order",
                   "'" + held_label + "' acquired while already held "
                   "(self-deadlock on non-reentrant lock)"});
              continue;
            }
            AddEdge(held_label, inner_label, file.path, inner.line,
                    "nested acquisition in " + fn.name);
          }
          // 2. Calls made while held, through their may-acquire sets.
          for (const CallSite& call : fn.calls) {
            if (call.token_index <= held.token_index ||
                call.token_index >= held.scope_end) {
              continue;
            }
            const FunctionRef* callee = ResolveCall(call);
            if (callee == nullptr || callee->fn == &fn) continue;
            auto it = may_acquire_.find(callee->fn);
            if (it == may_acquire_.end()) continue;
            for (const std::string& acquired : it->second) {
              if (acquired == held_label) {
                out_.push_back(
                    {file.path, call.line, "lock-order",
                     "call to " + call.name + "() while holding '" +
                         held_label + "', which " + call.name +
                         "() may acquire (self-deadlock)"});
                continue;
              }
              AddEdge(held_label, acquired, file.path, call.line,
                      "call to " + call.name + "() while held");
            }
          }
        }
      }
    }
  }

  // Reports each acquired-before cycle once (keyed by its label set).
  void ReportCycles() {
    std::set<std::string> reported;
    for (const auto& [start, _] : graph_) {
      std::vector<std::string> path = {start};
      std::set<std::string> on_path = {start};
      struct Frame {
        std::string node;
        std::map<std::string, EdgeSite>::const_iterator it, end;
      };
      std::vector<Frame> stack;
      auto push = [&](const std::string& node) {
        auto g = graph_.find(node);
        Frame f;
        f.node = node;
        if (g != graph_.end()) {
          f.it = g->second.begin();
          f.end = g->second.end();
        } else {
          f.it = empty_.begin();
          f.end = empty_.end();
        }
        stack.push_back(f);
      };
      push(start);
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.it == f.end) {
          on_path.erase(f.node);
          if (!path.empty()) path.pop_back();
          stack.pop_back();
          continue;
        }
        const std::string& next = f.it->first;
        const EdgeSite& site = f.it->second;
        ++f.it;
        if (next == start) {
          std::vector<std::string> members = path;
          std::sort(members.begin(), members.end());
          std::string key;
          for (const std::string& m : members) key += m + "|";
          if (reported.insert(key).second) {
            std::string cycle;
            for (const std::string& m : path) cycle += m + " -> ";
            cycle += start;
            out_.push_back({site.file, site.line, "lock-order",
                            "acquired-before cycle: " + cycle + " (" +
                                site.why + ")"});
          }
          continue;
        }
        if (on_path.count(next)) continue;
        on_path.insert(next);
        path.push_back(next);
        push(next);
      }
    }
  }

  const ProgramModel& program_;
  std::map<std::string, std::set<std::string>> by_member_;
  std::set<std::string> declared_;
  std::map<std::string, std::vector<FunctionRef>> by_name_;
  std::map<const FunctionModel*, std::set<std::string>> may_acquire_;
  std::map<std::string, std::map<std::string, EdgeSite>> graph_;
  std::map<std::string, EdgeSite> empty_;
  std::vector<Violation> out_;
};

}  // namespace

std::vector<Violation> CheckLockOrder(const ProgramModel& program) {
  return LockOrderAnalysis(program).Run();
}

}  // namespace s2rdf::lint
