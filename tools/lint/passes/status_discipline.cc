#include <set>
#include <string>
#include <vector>

#include "passes/passes.h"

// Status-discipline pass, two rules over function-local Status /
// StatusOr values:
//
//   1. A StatusOr local whose value is accessed (.value(), ->, or
//      unary *) before any .ok() / .status() consultation. The check
//      is a linear-order dominance approximation: the first value
//      access must come after the first ok()/status() mention of the
//      same local. (Token-level: branches are not modeled; code that
//      checks in one branch and accesses in another is accepted as
//      long as the check appears first in source order, which matches
//      the house early-return style.)
//
//   2. A Status local that is initialized and then never mentioned
//      again — a constructed-and-dropped error. Passing the local
//      anywhere (return, macro, &s out-param, EXPECT_...) counts as a
//      mention, so only genuinely dead error objects fire.
//
// Rule name: status-discipline.

namespace s2rdf::lint {
namespace {

bool IsPunct(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].kind == TokenKind::kPunct &&
         toks[i].text == text;
}

bool IsIdentTok(const std::vector<Token>& toks, size_t i) {
  return i < toks.size() && toks[i].kind == TokenKind::kIdentifier;
}

// Token index one past the matching closer, or toks.size().
size_t SkipBalanced(const std::vector<Token>& toks, size_t open_index,
                    const char* open, const char* close) {
  int depth = 0;
  for (size_t i = open_index; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open) ++depth;
    if (toks[i].text == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

struct Local {
  std::string name;
  bool statusor = false;
  size_t decl_index = 0;  // index of the name token
  int line = 0;
};

// Finds `Status name` / `StatusOr<...> name` declarations in a body.
std::vector<Local> FindLocals(const std::vector<Token>& toks, size_t begin,
                              size_t end) {
  std::vector<Local> out;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text != "Status" && t.text != "StatusOr") continue;
    bool statusor = t.text == "StatusOr";
    size_t name_index = i + 1;
    if (statusor) {
      if (!IsPunct(toks, i + 1, "<")) continue;
      name_index = SkipBalanced(toks, i + 1, "<", ">");
    }
    if (!IsIdentTok(toks, name_index)) continue;
    // Declaration shapes: `= init`, `(args)`, `{args}`, or plain `;`.
    size_t after = name_index + 1;
    bool is_decl = IsPunct(toks, after, "=") || IsPunct(toks, after, "(") ||
                   IsPunct(toks, after, "{") || IsPunct(toks, after, ";");
    if (!is_decl) continue;
    out.push_back({toks[name_index].text, statusor, name_index,
                   toks[name_index].line});
    i = name_index;
  }
  return out;
}

// Index just past the declaration's terminating `;` (depth-aware).
size_t DeclEnd(const std::vector<Token>& toks, size_t decl_index,
               size_t end) {
  int depth = 0;
  for (size_t i = decl_index; i < end && i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    const std::string& p = toks[i].text;
    if (p == "(" || p == "{" || p == "[") ++depth;
    if (p == ")" || p == "}" || p == "]") --depth;
    if (p == ";" && depth <= 0) return i + 1;
  }
  return end;
}

}  // namespace

std::vector<Violation> CheckStatusDiscipline(const ProgramModel& program) {
  std::vector<Violation> out;
  for (const FileModel& file : program.files) {
    const std::vector<Token>& toks = file.tokens;
    for (const FunctionModel& fn : file.functions) {
      if (fn.body_end <= fn.body_begin) continue;
      std::vector<Local> locals =
          FindLocals(toks, fn.body_begin, fn.body_end);
      for (const Local& local : locals) {
        size_t first_check = 0, first_value = 0;  // 0 = none found
        size_t last_mention = 0;
        for (size_t i = local.decl_index + 1; i < fn.body_end; ++i) {
          if (!(toks[i].kind == TokenKind::kIdentifier &&
                toks[i].text == local.name)) {
            continue;
          }
          last_mention = i;
          if (!local.statusor) continue;
          // `v.ok(` / `v.status(` vs `v.value(` / `v->` / `*v`.
          if (IsPunct(toks, i + 1, ".") && IsIdentTok(toks, i + 2)) {
            const std::string& member = toks[i + 2].text;
            if (member == "ok" || member == "status") {
              if (first_check == 0) first_check = i;
            } else if (member == "value") {
              if (first_value == 0) first_value = i;
            }
          } else if (IsPunct(toks, i + 1, "->")) {
            if (first_value == 0) first_value = i;
          } else if (i > 0 && IsPunct(toks, i - 1, "*") &&
                     !(i >= 2 && (IsIdentTok(toks, i - 2) ||
                                  IsPunct(toks, i - 2, ")")))) {
            if (first_value == 0) first_value = i;
          }
        }
        if (local.statusor && first_value != 0 &&
            (first_check == 0 || first_value < first_check)) {
          out.push_back(
              {file.path, toks[first_value].line, "status-discipline",
               "StatusOr '" + local.name +
                   "' value accessed before ok() check"});
        }
        if (!local.statusor) {
          size_t decl_end = DeclEnd(toks, local.decl_index, fn.body_end);
          if (last_mention < decl_end) {
            out.push_back({file.path, local.line, "status-discipline",
                           "Status '" + local.name +
                               "' constructed and never consulted "
                               "(dropped error)"});
          }
        }
      }
    }
  }
  return out;
}

std::vector<Violation> CheckSuppressionHygiene(
    const std::vector<MarkerUsage>& markers) {
  std::vector<Violation> out;
  for (const MarkerUsage& m : markers) {
    if (m.used) continue;
    std::string kind = m.marker.file_scope ? "allow-file" : "allow";
    std::string extra =
        m.marker.file_scope && m.marker.line > 20
            ? " (allow-file is only honored in the first 20 lines)"
            : "";
    out.push_back({m.path, m.marker.line, "stale-suppression",
                   "suppression '" + kind + "(" + m.marker.rule +
                       ")' matches no finding; remove it" + extra});
  }
  return out;
}

}  // namespace s2rdf::lint
