#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes/passes.h"

// Layering pass: the module dependency DAG, derived from the include
// graph. Layer ranks (lower may never include higher):
//
//   0  common
//   1  rdf, sparql, storage, mapreduce, watdiv
//   2  core, engine
//   3  server, baselines
//   4  tools
//   5  tests, bench
//
// Same-rank cross-module edges are legal (e.g. sparql → rdf) but must
// stay acyclic; the pass reports any same-rank include cycle. It also
// enforces include-what-you-use for the locking seam: any file using
// common::Mutex types must include common/mutex.h directly rather than
// relying on a transitive include (rule `transitive-include`).

namespace s2rdf::lint {
namespace {

int RankOfModule(const std::string& m) {
  if (m == "common") return 0;
  if (m == "rdf" || m == "sparql" || m == "storage" || m == "mapreduce" ||
      m == "watdiv") {
    return 1;
  }
  if (m == "core" || m == "engine") return 2;
  if (m == "server" || m == "baselines") return 3;
  if (m == "tools") return 4;
  if (m == "tests" || m == "bench") return 5;
  return -1;
}

std::string FirstComponent(const std::string& path) {
  size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Module of a repo-relative file path: "src/engine/plan.cc" → "engine",
// "tests/engine_test.cc" → "tests". "" when outside the layered tree.
std::string ModuleOfPath(const std::string& path) {
  std::string top = FirstComponent(path);
  if (top == "src") {
    std::string rest = path.substr(4);
    std::string mod = FirstComponent(rest);
    return RankOfModule(mod) >= 0 ? mod : std::string();
  }
  if (RankOfModule(top) >= 0) return top;
  return "";
}

// Module of an include target. Project includes are rooted at src/
// ("common/mutex.h" → "common"); angled and unrecognized includes are
// not part of the layered graph.
std::string ModuleOfInclude(const Include& inc) {
  if (inc.angled) return "";
  std::string mod = FirstComponent(inc.target);
  return RankOfModule(mod) >= 0 ? mod : std::string();
}

struct Edge {
  std::string file;
  int line = 0;
  std::string target;
};

void CheckBackEdges(const ProgramModel& program, std::vector<Violation>* out,
                    std::map<std::string, std::map<std::string, Edge>>* graph) {
  for (const FileModel& file : program.files) {
    std::string from = ModuleOfPath(file.path);
    if (from.empty()) continue;
    int from_rank = RankOfModule(from);
    for (const Include& inc : file.includes) {
      std::string to = ModuleOfInclude(inc);
      if (to.empty() || to == from) continue;
      int to_rank = RankOfModule(to);
      if (to_rank > from_rank) {
        out->push_back(
            {file.path, inc.line, "layering",
             "include of '" + inc.target + "' crosses layering: " + from +
                 " (layer " + std::to_string(from_rank) +
                 ") must not depend on " + to + " (layer " +
                 std::to_string(to_rank) + ")"});
        continue;  // illegal edges stay out of the cycle graph
      }
      auto& slot = (*graph)[from];
      if (!slot.count(to)) slot[to] = {file.path, inc.line, inc.target};
    }
  }
}

// Reports same-rank module cycles among the rank-legal edges. (A cycle
// through differing ranks is impossible: every legal edge goes to an
// equal-or-lower rank, so a cycle's members all share one rank.)
void CheckCycles(const std::map<std::string, std::map<std::string, Edge>>& graph,
                 std::vector<Violation>* out) {
  std::set<std::string> reported;  // canonical cycle keys
  for (const auto& [start, _] : graph) {
    // DFS from `start`; a path back to `start` is a cycle.
    std::vector<std::string> path = {start};
    std::set<std::string> on_path = {start};
    // Iterative DFS with explicit stack of (node, next-neighbor iterator).
    struct Frame {
      std::string node;
      std::map<std::string, Edge>::const_iterator it, end;
    };
    std::vector<Frame> stack;
    auto push = [&](const std::string& node) {
      auto g = graph.find(node);
      if (g == graph.end()) {
        stack.push_back({node, {}, {}});
        stack.back().it = stack.back().end;
      } else {
        stack.push_back({node, g->second.begin(), g->second.end()});
      }
    };
    push(start);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.it == f.end) {
        on_path.erase(f.node);
        if (!path.empty()) path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string& next = f.it->first;
      const Edge& edge = f.it->second;
      ++f.it;
      if (next == start) {
        // Canonicalize: cycles are reported once, keyed by member set.
        std::vector<std::string> members = path;
        std::sort(members.begin(), members.end());
        std::string key;
        for (const std::string& m : members) key += m + "|";
        if (reported.insert(key).second) {
          std::string cycle;
          for (const std::string& m : path) cycle += m + " -> ";
          cycle += start;
          out->push_back({edge.file, edge.line, "layering",
                          "module dependency cycle: " + cycle});
        }
        continue;
      }
      if (on_path.count(next)) continue;
      on_path.insert(next);
      path.push_back(next);
      push(next);
    }
  }
}

void CheckTransitiveIncludes(const ProgramModel& program,
                             std::vector<Violation>* out) {
  static const std::set<std::string> kMutexTypes = {
      "MutexLock", "ReaderLock", "WriterLock", "SharedMutex", "CondVar"};
  for (const FileModel& file : program.files) {
    if (ModuleOfPath(file.path).empty()) continue;
    if (file.path == "src/common/mutex.h" ||
        file.path == "src/common/thread_annotations.h") {
      continue;
    }
    bool includes_mutex_h = false;
    for (const Include& inc : file.includes) {
      if (!inc.angled && inc.target == "common/mutex.h") {
        includes_mutex_h = true;
        break;
      }
    }
    if (includes_mutex_h) continue;
    for (const Token& tok : file.tokens) {
      if (tok.kind != TokenKind::kIdentifier) continue;
      bool uses = kMutexTypes.count(tok.text) > 0;
      if (!uses && tok.text == "Mutex") {
        // `Mutex` alone only counts as a type use, not e.g. a name
        // fragment: require it to start a declaration (`Mutex mu_;`,
        // `Mutex* mu`, `common::Mutex& m`).
        size_t idx = static_cast<size_t>(&tok - file.tokens.data());
        if (idx + 1 < file.tokens.size()) {
          const Token& next = file.tokens[idx + 1];
          uses = next.kind == TokenKind::kIdentifier ||
                 (next.kind == TokenKind::kPunct &&
                  (next.text == "*" || next.text == "&"));
        }
      }
      if (uses) {
        out->push_back({file.path, tok.line, "transitive-include",
                        "uses common::Mutex types but does not include "
                        "common/mutex.h directly"});
        break;  // one finding per file
      }
    }
  }
}

}  // namespace

int LayerRank(const std::string& path) {
  std::string mod = ModuleOfPath(path);
  return mod.empty() ? -1 : RankOfModule(mod);
}

std::vector<Violation> CheckLayering(const ProgramModel& program) {
  std::vector<Violation> out;
  std::map<std::string, std::map<std::string, Edge>> graph;
  CheckBackEdges(program, &out, &graph);
  CheckCycles(graph, &out);
  CheckTransitiveIncludes(program, &out);
  return out;
}

}  // namespace s2rdf::lint
