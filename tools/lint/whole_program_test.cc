// Tests for the whole-program analyzer: the syntactic model, each
// cross-file pass against its golden fixture trees
// (testdata/wp/<pass>_{ok,bad}/), report shapes (text/JSON/SARIF), the
// baseline ratchet, and the self-test that the repo tree itself is
// green against the checked-in baseline.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analyzer.h"
#include "lint.h"
#include "model.h"
#include "passes/passes.h"
#include "report.h"

namespace s2rdf::lint {
namespace {

std::string Testdata(const std::string& rel) {
  return std::string(S2RDF_LINT_TESTDATA) + "/" + rel;
}

AnalysisResult AnalyzeFixture(const std::string& name) {
  AnalyzerOptions options;
  options.root = Testdata("wp/" + name);
  options.subdirs = {"src"};
  return AnalyzeTree(options);
}

std::vector<Violation> FindingsFor(const AnalysisResult& result,
                                   const std::string& rule) {
  std::vector<Violation> out;
  for (const Violation& v : result.findings) {
    if (v.rule == rule) out.push_back(v);
  }
  return out;
}

// --- Phase 1: tokenizer + model ---------------------------------------------

TEST(Model, TokenizerSkipsCommentsStringsAndPreprocessor) {
  std::vector<Token> toks = Tokenize(
      "#include <mutex>\n"
      "// MutexLock in a comment\n"
      "int x = 1; /* \"quoted\" */ const char* s = \"MutexLock\";\n");
  for (const Token& t : toks) {
    if (t.kind == TokenKind::kIdentifier) {
      EXPECT_NE(t.text, "MutexLock");
      EXPECT_NE(t.text, "include");
    }
  }
  // The string literal survives as a single kString token.
  int strings = 0;
  for (const Token& t : toks) strings += t.kind == TokenKind::kString;
  EXPECT_EQ(strings, 1);
}

TEST(Model, CapturesIncludesFunctionsLocksAndLoops) {
  FileModel m = BuildFileModel("src/core/x.cc",
                               "#include \"common/mutex.h\"\n"
                               "#include <vector>\n"
                               "namespace s2rdf {\n"
                               "class Cache {\n"
                               " public:\n"
                               "  void Put() {\n"
                               "    MutexLock lock(&mu_);\n"
                               "    for (int i = 0; i < 3; ++i) { Use(i); }\n"
                               "  }\n"
                               " private:\n"
                               "  Mutex mu_;\n"
                               "};\n"
                               "}  // namespace s2rdf\n");
  ASSERT_EQ(m.includes.size(), 2u);
  EXPECT_EQ(m.includes[0].target, "common/mutex.h");
  EXPECT_FALSE(m.includes[0].angled);
  EXPECT_TRUE(m.includes[1].angled);
  ASSERT_EQ(m.functions.size(), 1u);
  const FunctionModel& f = m.functions[0];
  EXPECT_EQ(f.name, "Put");
  EXPECT_EQ(f.qualifier, "Cache");
  ASSERT_EQ(f.locks.size(), 1u);
  EXPECT_EQ(f.locks[0].expr, "mu_");
  EXPECT_GT(f.locks[0].scope_end, f.locks[0].token_index);
  ASSERT_EQ(f.loops.size(), 1u);
  EXPECT_FALSE(f.loops[0].range_for);
  ASSERT_EQ(m.mutex_decls.size(), 1u);
  EXPECT_EQ(m.mutex_decls[0].class_name, "Cache");
  EXPECT_EQ(m.mutex_decls[0].name, "mu_");
}

TEST(Model, AcquiredBeforeAnnotationBecomesOrderEdge) {
  FileModel m = BuildFileModel(
      "src/core/x.h",
      "class Db {\n"
      "  Mutex ingest_mu_ S2RDF_ACQUIRED_BEFORE(lazy_mu_);\n"
      "  Mutex lazy_mu_;\n"
      "};\n");
  ASSERT_EQ(m.order_annotations.size(), 1u);
  EXPECT_EQ(m.order_annotations[0].first, "Db::ingest_mu_");
  EXPECT_EQ(m.order_annotations[0].second, "Db::lazy_mu_");
}

TEST(Model, NoThreadSafetyAnalysisFlagged) {
  FileModel m = BuildFileModel(
      "src/core/x.cc",
      "Catalog& Catalog::operator=(Catalog&& o)"
      " S2RDF_NO_THREAD_SAFETY_ANALYSIS {\n"
      "  MutexLock a(&mu_);\n"
      "  MutexLock b(&o.mu_);\n"
      "  return *this;\n"
      "}\n");
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_TRUE(m.functions[0].no_thread_safety_analysis);
  EXPECT_EQ(m.functions[0].name, "operator=");
}

// --- Layering ---------------------------------------------------------------

TEST(Layering, RankTable) {
  EXPECT_EQ(LayerRank("src/common/mutex.h"), 0);
  EXPECT_EQ(LayerRank("src/storage/catalog.cc"), 1);
  EXPECT_EQ(LayerRank("src/engine/plan.cc"), 2);
  EXPECT_EQ(LayerRank("src/server/worker_pool.cc"), 3);
  EXPECT_EQ(LayerRank("tools/lint/lint.cc"), 4);
  EXPECT_EQ(LayerRank("tests/core_test.cc"), 5);
  EXPECT_EQ(LayerRank("README.md"), -1);
}

TEST(Layering, CleanTreePasses) {
  AnalysisResult result = AnalyzeFixture("layering_ok");
  EXPECT_TRUE(FindingsFor(result, "layering").empty());
  EXPECT_TRUE(FindingsFor(result, "transitive-include").empty());
}

TEST(Layering, BackEdgeCycleAndTransitiveIncludeCaught) {
  AnalysisResult result = AnalyzeFixture("layering_bad");
  std::vector<Violation> layering = FindingsFor(result, "layering");
  bool back_edge = false;
  bool cycle = false;
  for (const Violation& v : layering) {
    if (v.file == "src/storage/store.h" &&
        v.message.find("must not depend on engine") != std::string::npos) {
      back_edge = true;
    }
    if (v.message.find("module dependency cycle") != std::string::npos) {
      cycle = true;
      EXPECT_NE(v.message.find("rdf"), std::string::npos);
      EXPECT_NE(v.message.find("sparql"), std::string::npos);
    }
  }
  EXPECT_TRUE(back_edge);
  EXPECT_TRUE(cycle);
  std::vector<Violation> trans = FindingsFor(result, "transitive-include");
  ASSERT_EQ(trans.size(), 1u);
  EXPECT_EQ(trans[0].file, "src/core/user.cc");
}

// --- Lock order -------------------------------------------------------------

TEST(LockOrder, ConsistentOrderPasses) {
  AnalysisResult result = AnalyzeFixture("lock_order_ok");
  EXPECT_TRUE(FindingsFor(result, "lock-order").empty());
}

TEST(LockOrder, OpposedNestingIsACycle) {
  AnalysisResult result = AnalyzeFixture("lock_order_bad");
  std::vector<Violation> cycles = FindingsFor(result, "lock-order");
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_NE(cycles[0].message.find("acquired-before cycle"),
            std::string::npos);
  EXPECT_NE(cycles[0].message.find("g_first"), std::string::npos);
  EXPECT_NE(cycles[0].message.find("g_second"), std::string::npos);
}

TEST(LockOrder, AnnotationContradictionIsACycle) {
  // A declared order edge opposing a lexical nesting must cycle even
  // though no single function nests both ways.
  ProgramModel program;
  program.files.push_back(BuildFileModel(
      "src/common/a.cc",
      "#include \"common/mutex.h\"\n"
      "namespace s2rdf {\n"
      "Mutex g_a S2RDF_ACQUIRED_BEFORE(g_b);\n"
      "Mutex g_b;\n"
      "void F() {\n"
      "  MutexLock b(&g_b);\n"
      "  MutexLock a(&g_a);\n"
      "}\n"
      "}  // namespace s2rdf\n"));
  std::vector<Violation> out = CheckLockOrder(program);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("acquired-before cycle"), std::string::npos);
}

TEST(LockOrder, SelfDeadlockThroughCalleeCaught) {
  ProgramModel program;
  program.files.push_back(BuildFileModel(
      "src/common/a.cc",
      "#include \"common/mutex.h\"\n"
      "namespace s2rdf {\n"
      "class C {\n"
      " public:\n"
      "  void Outer() {\n"
      "    MutexLock lock(&mu_);\n"
      "    Inner();\n"
      "  }\n"
      "  void Inner() {\n"
      "    MutexLock lock(&mu_);\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace s2rdf\n"));
  std::vector<Violation> out = CheckLockOrder(program);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].message.find("self-deadlock"), std::string::npos);
}

TEST(LockOrder, StlMemberCallsDoNotResolveToProjectMethods) {
  // `by_id_.size()` must not resolve to C::size() (the Dictionary
  // false-positive class).
  ProgramModel program;
  program.files.push_back(BuildFileModel(
      "src/common/a.cc",
      "#include \"common/mutex.h\"\n"
      "namespace s2rdf {\n"
      "class C {\n"
      " public:\n"
      "  size_t size() const {\n"
      "    MutexLock lock(&mu_);\n"
      "    return items_.size();\n"
      "  }\n"
      "  size_t Count() const {\n"
      "    MutexLock lock(&mu_);\n"
      "    return items_.size();\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace s2rdf\n"));
  EXPECT_TRUE(CheckLockOrder(program).empty());
}

// --- Interrupt coverage -----------------------------------------------------

TEST(InterruptCoverage, CheckedLoopPasses) {
  AnalysisResult result = AnalyzeFixture("interrupt_ok");
  EXPECT_TRUE(FindingsFor(result, "interrupt-coverage").empty());
}

TEST(InterruptCoverage, UncheckedRowLoopsCaught) {
  AnalysisResult result = AnalyzeFixture("interrupt_bad");
  std::vector<Violation> out = FindingsFor(result, "interrupt-coverage");
  // Both the direct NumRows() loop and the tainted-bound loop.
  EXPECT_EQ(out.size(), 2u);
  for (const Violation& v : out) {
    EXPECT_EQ(v.file, "src/engine/op.cc");
  }
}

TEST(InterruptCoverage, OuterLoopCheckCoversInnerLoop) {
  ProgramModel program;
  program.files.push_back(BuildFileModel(
      "src/engine/join.cc",
      "namespace s2rdf::engine {\n"
      "void Join(const Table& l, const Table& r, ExecContext* ctx,"
      " Table* out) {\n"
      "  for (size_t i = 0; i < l.NumRows(); ++i) {\n"
      "    if ((i % kInterruptCheckRows) == 0 && ctx->CheckInterrupt()) {\n"
      "      break;\n"
      "    }\n"
      "    for (size_t j = 0; j < r.NumRows(); ++j) {\n"
      "      out->AppendRowFrom(l, i);\n"
      "    }\n"
      "  }\n"
      "}\n"
      "}  // namespace s2rdf::engine\n"));
  EXPECT_TRUE(CheckInterruptCoverage(program).empty());
}

TEST(InterruptCoverage, OutsideEngineNotInScope) {
  ProgramModel program;
  program.files.push_back(BuildFileModel(
      "src/storage/scan.cc",
      "void Scan(const Table& t, ExecContext* ctx) {\n"
      "  for (size_t r = 0; r < t.NumRows(); ++r) {}\n"
      "}\n"));
  EXPECT_TRUE(CheckInterruptCoverage(program).empty());
}

// --- Status discipline ------------------------------------------------------

TEST(StatusDiscipline, CheckedUsePasses) {
  AnalysisResult result = AnalyzeFixture("status_ok");
  EXPECT_TRUE(FindingsFor(result, "status-discipline").empty());
}

TEST(StatusDiscipline, UncheckedValueAndDroppedStatusCaught) {
  AnalysisResult result = AnalyzeFixture("status_bad");
  std::vector<Violation> out = FindingsFor(result, "status-discipline");
  ASSERT_EQ(out.size(), 2u);
  bool unchecked = false;
  bool dropped = false;
  for (const Violation& v : out) {
    if (v.message.find("value accessed before ok()") != std::string::npos) {
      unchecked = true;
    }
    if (v.message.find("constructed and never consulted") !=
        std::string::npos) {
      dropped = true;
    }
  }
  EXPECT_TRUE(unchecked);
  EXPECT_TRUE(dropped);
}

TEST(StatusDiscipline, ReturnCountsAsConsulted) {
  ProgramModel program;
  program.files.push_back(BuildFileModel(
      "src/core/a.cc",
      "Status F() {\n"
      "  Status s = G();\n"
      "  return s;\n"
      "}\n"));
  EXPECT_TRUE(CheckStatusDiscipline(program).empty());
}

// --- Suppression hygiene ----------------------------------------------------

TEST(SuppressionHygiene, UsedMarkerIsNotStale) {
  AnalysisResult result = AnalyzeFixture("suppress_ok");
  EXPECT_TRUE(result.findings.empty())
      << FormatViolation(result.findings.front());
  ASSERT_EQ(result.markers.size(), 1u);
  EXPECT_TRUE(result.markers[0].used);
}

TEST(SuppressionHygiene, StaleMarkerIsAFinding) {
  AnalysisResult result = AnalyzeFixture("suppress_bad");
  std::vector<Violation> out = FindingsFor(result, "stale-suppression");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].file, "src/core/io.cc");
  EXPECT_NE(out[0].message.find("allow(raw-io)"), std::string::npos);
}

TEST(SuppressionHygiene, MarkersInStringsAndDocsAreInert) {
  // A marker inside a string literal is not a marker; a doc mention
  // with a placeholder rule name is not tracked.
  std::vector<SuppressionMarker> markers = ParseSuppressionMarkers(
      "const char* kFixture = \"x; // s2rdf-lint: allow(raw-io)\";\n"
      "// syntax: s2rdf-lint: allow(raw-io)\n");
  ASSERT_EQ(markers.size(), 1u);  // only the comment one
  EXPECT_EQ(markers[0].line, 2);
  EXPECT_FALSE(IsKnownRule("<rule>"));
  EXPECT_TRUE(IsKnownRule("raw-io"));
  EXPECT_TRUE(IsKnownRule("interrupt-coverage"));
}

// --- Profiles ---------------------------------------------------------------

TEST(Profiles, RelaxationsPerTopDir) {
  EXPECT_TRUE(RuleEnabledFor("bare-mutex", "src/engine/plan.cc"));
  EXPECT_FALSE(RuleEnabledFor("bare-mutex", "tests/common_test.cc"));
  EXPECT_FALSE(RuleEnabledFor("nondeterminism", "bench/bench_micro.cc"));
  EXPECT_FALSE(RuleEnabledFor("clock", "bench/bench_micro.cc"));
  EXPECT_TRUE(RuleEnabledFor("clock", "tests/engine_test.cc"));
  EXPECT_FALSE(RuleEnabledFor("raw-io", "tools/bulkload/main.cc"));
  EXPECT_TRUE(RuleEnabledFor("raw-io", "src/core/s2rdf.cc"));
  EXPECT_TRUE(RuleEnabledFor("layering", "tests/engine_test.cc"));
}

// --- Report shapes ----------------------------------------------------------

AnalysisResult OneFinding() {
  AnalysisResult result;
  result.files_scanned = 3;
  result.findings.push_back(
      {"src/a.cc", 12, "layering", "include of \"x\" crosses layering"});
  return result;
}

TEST(Report, JsonShape) {
  AnalysisResult result = OneFinding();
  std::string json = RenderJson(result, result.findings, nullptr);
  EXPECT_NE(json.find("\"tool\":\"s2rdf_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\":3"), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":12"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"layering\""), std::string::npos);
  // The embedded quotes must be escaped.
  EXPECT_NE(json.find("include of \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressions\""), std::string::npos);
}

TEST(Report, SarifShape) {
  AnalysisResult result = OneFinding();
  std::string sarif = RenderSarif(result, result.findings);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"s2rdf_lint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"layering\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":12"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\":[{\"id\":\"layering\"}]"),
            std::string::npos);
}

// --- Baseline ratchet -------------------------------------------------------

TEST(Baseline, MatchingAbsorbsAndFlagsStale) {
  Baseline b;
  b.exists = true;
  b.entries = {"layering|src/a.cc|msg-one", "layering|src/b.cc|gone"};
  std::vector<Violation> findings = {{"src/a.cc", 7, "layering", "msg-one"}};
  BaselineDelta delta = ApplyBaseline(findings, b);
  EXPECT_EQ(delta.matched, 1u);
  EXPECT_TRUE(delta.fresh.empty());
  ASSERT_EQ(delta.stale.size(), 1u);
  EXPECT_EQ(delta.stale[0], "layering|src/b.cc|gone");
}

TEST(Baseline, NewFindingIsFresh) {
  Baseline b;
  b.exists = true;
  b.entries = {"layering|src/a.cc|msg-one"};
  std::vector<Violation> findings = {
      {"src/a.cc", 7, "layering", "msg-one"},
      {"src/c.cc", 3, "lock-order", "brand new"},
  };
  BaselineDelta delta = ApplyBaseline(findings, b);
  ASSERT_EQ(delta.fresh.size(), 1u);
  EXPECT_EQ(delta.fresh[0].file, "src/c.cc");
}

TEST(Baseline, RatchetShrinksButRefusesToGrow) {
  std::string path = testing::TempDir() + "/ratchet_baseline.txt";
  Baseline b;
  b.exists = true;
  b.entries = {"layering|src/a.cc|kept", "layering|src/b.cc|fixed"};
  ASSERT_TRUE(WriteBaseline(path, b.entries));

  // A run where src/b.cc's finding is fixed: the ratchet shrinks.
  std::vector<Violation> findings = {{"src/a.cc", 1, "layering", "kept"}};
  BaselineDelta delta = ApplyBaseline(findings, LoadBaseline(path));
  ASSERT_TRUE(RatchetBaseline(path, LoadBaseline(path), delta));
  Baseline after = LoadBaseline(path);
  ASSERT_EQ(after.entries.size(), 1u);
  EXPECT_EQ(after.entries[0], "layering|src/a.cc|kept");

  // A run with a NEW finding: the ratchet refuses to grow, file intact.
  findings.push_back({"src/new.cc", 2, "lock-order", "regression"});
  delta = ApplyBaseline(findings, LoadBaseline(path));
  ASSERT_FALSE(delta.fresh.empty());
  EXPECT_FALSE(RatchetBaseline(path, LoadBaseline(path), delta));
  after = LoadBaseline(path);
  ASSERT_EQ(after.entries.size(), 1u);
  EXPECT_EQ(after.entries[0], "layering|src/a.cc|kept");
  std::remove(path.c_str());
}

TEST(Baseline, DuplicateEntriesMatchAsMultiset) {
  Baseline b;
  b.exists = true;
  b.entries = {"layering|src/a.cc|dup", "layering|src/a.cc|dup"};
  std::vector<Violation> findings = {
      {"src/a.cc", 1, "layering", "dup"},
      {"src/a.cc", 9, "layering", "dup"},
      {"src/a.cc", 20, "layering", "dup"},
  };
  BaselineDelta delta = ApplyBaseline(findings, b);
  EXPECT_EQ(delta.matched, 2u);
  EXPECT_EQ(delta.fresh.size(), 1u);
  EXPECT_TRUE(delta.stale.empty());
}

// --- The repo itself --------------------------------------------------------

TEST(RepoTree, GreenAgainstCheckedInBaseline) {
  AnalyzerOptions options;
  options.root = S2RDF_LINT_REPO_ROOT;
  options.subdirs = {"src", "tests", "bench", "tools"};
  // Wall-clock measurement of the tool itself; no injectable clock in
  // play here.
  auto start = std::chrono::steady_clock::now();  // s2rdf-lint: allow(clock)
  AnalysisResult result = AnalyzeTree(options);
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() -  // s2rdf-lint: allow(clock)
                    start)
                    .count();
  Baseline baseline = LoadBaseline(S2RDF_LINT_BASELINE);
  ASSERT_TRUE(baseline.exists) << S2RDF_LINT_BASELINE;
  BaselineDelta delta = ApplyBaseline(result.findings, baseline);
  for (const Violation& v : delta.fresh) {
    ADD_FAILURE() << FormatViolation(v);
  }
  for (const std::string& e : delta.stale) {
    ADD_FAILURE() << "stale baseline entry: " << e;
  }
  EXPECT_GT(result.files_scanned, 100u);
  // EXPERIMENTS.md promises < 5s on the full tree; leave slack for
  // loaded CI machines but catch order-of-magnitude regressions.
  EXPECT_LT(secs, 30.0);
}

TEST(RepoTree, BaselineOnlyGrandfathersLayering) {
  // The checked-in baseline must never grow beyond the layering debt:
  // every other rule is enforced at zero.
  Baseline baseline = LoadBaseline(S2RDF_LINT_BASELINE);
  ASSERT_TRUE(baseline.exists);
  for (const std::string& e : baseline.entries) {
    EXPECT_EQ(e.rfind("layering|", 0), 0u) << e;
  }
}

}  // namespace
}  // namespace s2rdf::lint
