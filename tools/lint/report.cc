#include "report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace s2rdf::lint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendFindingJson(const Violation& v, std::string* out) {
  *out += "{\"file\":\"" + JsonEscape(v.file) +
          "\",\"line\":" + std::to_string(v.line) + ",\"rule\":\"" +
          JsonEscape(v.rule) + "\",\"message\":\"" + JsonEscape(v.message) +
          "\"}";
}

size_t CountStaleMarkers(const AnalysisResult& result) {
  size_t stale = 0;
  for (const MarkerUsage& m : result.markers) {
    if (!m.used) ++stale;
  }
  return stale;
}

}  // namespace

std::string BaselineKey(const Violation& v) {
  return v.rule + "|" + v.file + "|" + v.message;
}

Baseline LoadBaseline(const std::string& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;
  b.exists = true;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    size_t s = line.find_first_not_of(" \t");
    if (s == std::string::npos || line[s] == '#') continue;
    b.entries.push_back(line.substr(s));
  }
  return b;
}

bool WriteBaseline(const std::string& path,
                   const std::vector<std::string>& entries) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# s2rdf_lint baseline: grandfathered whole-program findings.\n"
      << "# One `rule|path|message` per line (no line numbers, so edits\n"
      << "# elsewhere in a file do not churn this list). This file is a\n"
      << "# ratchet: it may only shrink. `s2rdf_lint --update-baseline`\n"
      << "# removes entries that no longer fire; it refuses to add new\n"
      << "# ones. See DESIGN.md §13.\n";
  for (const std::string& e : entries) out << e << "\n";
  return out.good();
}

BaselineDelta ApplyBaseline(const std::vector<Violation>& findings,
                            const Baseline& baseline) {
  BaselineDelta delta;
  std::multiset<std::string> pool(baseline.entries.begin(),
                                  baseline.entries.end());
  for (const Violation& v : findings) {
    auto it = pool.find(BaselineKey(v));
    if (it != pool.end()) {
      pool.erase(it);
      ++delta.matched;
    } else {
      delta.fresh.push_back(v);
    }
  }
  delta.stale.assign(pool.begin(), pool.end());
  return delta;
}

bool RatchetBaseline(const std::string& path, const Baseline& current,
                     const BaselineDelta& delta) {
  if (!delta.fresh.empty()) return false;
  std::multiset<std::string> stale(delta.stale.begin(), delta.stale.end());
  std::vector<std::string> kept;
  for (const std::string& e : current.entries) {
    auto it = stale.find(e);
    if (it != stale.end()) {
      stale.erase(it);
      continue;
    }
    kept.push_back(e);
  }
  return WriteBaseline(path, kept);
}

std::string RenderText(const AnalysisResult& result,
                       const std::vector<Violation>& fresh,
                       const BaselineDelta* delta) {
  std::string out;
  for (const Violation& v : fresh) {
    out += FormatViolation(v) + "\n";
  }
  if (delta != nullptr) {
    for (const std::string& e : delta->stale) {
      out += "stale baseline entry (fixed? run --update-baseline): " + e +
             "\n";
    }
  }
  out += "s2rdf_lint: " + std::to_string(result.files_scanned) +
         " file(s), " + std::to_string(fresh.size()) + " finding(s)";
  if (delta != nullptr) {
    out += ", " + std::to_string(delta->matched) + " baselined, " +
           std::to_string(delta->stale.size()) + " stale baseline entr" +
           (delta->stale.size() == 1 ? "y" : "ies");
  }
  size_t total_markers = result.markers.size();
  size_t stale_markers = CountStaleMarkers(result);
  out += "; suppressions: " + std::to_string(total_markers) + " (" +
         std::to_string(stale_markers) + " stale)\n";
  return out;
}

std::string RenderJson(const AnalysisResult& result,
                       const std::vector<Violation>& fresh,
                       const BaselineDelta* delta) {
  std::string out = "{\"tool\":\"s2rdf_lint\",\"files_scanned\":" +
                    std::to_string(result.files_scanned) + ",";
  out += "\"findings\":[";
  for (size_t i = 0; i < fresh.size(); ++i) {
    if (i) out += ",";
    AppendFindingJson(fresh[i], &out);
  }
  out += "],";
  out += "\"suppressions\":{\"total\":" +
         std::to_string(result.markers.size()) +
         ",\"stale\":" + std::to_string(CountStaleMarkers(result)) + "}";
  if (delta != nullptr) {
    out += ",\"baseline\":{\"matched\":" + std::to_string(delta->matched) +
           ",\"fresh\":" + std::to_string(delta->fresh.size()) +
           ",\"stale\":[";
    for (size_t i = 0; i < delta->stale.size(); ++i) {
      if (i) out += ",";
      out += "\"" + JsonEscape(delta->stale[i]) + "\"";
    }
    out += "]}";
  }
  out += "}\n";
  return out;
}

std::string RenderSarif(const AnalysisResult& result,
                        const std::vector<Violation>& fresh) {
  (void)result;
  // Rule metadata: one reportingDescriptor per distinct rule.
  std::vector<std::string> rules;
  {
    std::set<std::string> seen;
    for (const Violation& v : fresh) {
      if (seen.insert(v.rule).second) rules.push_back(v.rule);
    }
    std::sort(rules.begin(), rules.end());
  }
  std::map<std::string, size_t> rule_index;
  for (size_t i = 0; i < rules.size(); ++i) rule_index[rules[i]] = i;

  std::string out =
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      "\"name\":\"s2rdf_lint\",\"informationUri\":"
      "\"https://example.invalid/s2rdf/tools/lint\",\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ",";
    out += "{\"id\":\"" + JsonEscape(rules[i]) + "\"}";
  }
  out += "]}},\"results\":[";
  for (size_t i = 0; i < fresh.size(); ++i) {
    const Violation& v = fresh[i];
    if (i) out += ",";
    out += "{\"ruleId\":\"" + JsonEscape(v.rule) + "\",\"ruleIndex\":" +
           std::to_string(rule_index[v.rule]) +
           ",\"level\":\"error\",\"message\":{\"text\":\"" +
           JsonEscape(v.message) + "\"},\"locations\":[{"
           "\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"" +
           JsonEscape(v.file) + "\"},\"region\":{\"startLine\":" +
           std::to_string(std::max(v.line, 1)) + "}}}]}";
  }
  out += "]}]}\n";
  return out;
}

}  // namespace s2rdf::lint
