#ifndef S2RDF_TOOLS_LINT_MODEL_H_
#define S2RDF_TOOLS_LINT_MODEL_H_

#include <string>
#include <vector>

// Phase 1 of the whole-program analyzer: a real tokenizer (replacing
// the regex-style stripping that per-line rules use) and a lightweight
// syntactic model of one translation unit. The model captures exactly
// what the cross-file passes (tools/lint/passes/) need:
//
//   - includes            the project include graph (layering pass)
//   - functions           name, enclosing class, body token range
//   - lock acquisitions   MutexLock/ReaderLock/WriterLock sites with
//                         their scope extent (lock-order pass)
//   - mutex declarations  Mutex/SharedMutex members per class, plus
//                         S2RDF_ACQUIRED_BEFORE / _AFTER annotations
//   - guarded members     S2RDF_GUARDED_BY / PT_GUARDED_BY declarations
//   - loops               for/while headers with body extents
//                         (interrupt-coverage pass)
//   - calls               call sites for one-level lock propagation
//
// The model is deliberately token-level, not a full C++ parse: it must
// stay fast (<5s over the whole tree, see EXPERIMENTS.md) and robust to
// code it has never seen. Heuristics err conservative; see each pass
// for the invariant it enforces and DESIGN.md §13 for the architecture.

namespace s2rdf::lint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,   // string or char literal (text is the raw literal)
  kPunct,    // single punctuation char, or one of :: -> . & * etc.
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based
};

// Tokenizes C++ source. Comments and preprocessor directives are not
// emitted (includes are captured separately by BuildFileModel); string
// and char literals come out as single kString tokens. `::` and `->`
// are single tokens, all other punctuation is one char per token.
std::vector<Token> Tokenize(const std::string& content);

struct Include {
  std::string target;  // e.g. "common/mutex.h" or "vector"
  int line = 0;
  bool angled = false;  // <...> (system) vs "..." (project)
};

// One MutexLock/ReaderLock/WriterLock acquisition inside a function.
struct LockSite {
  std::string holder;  // "MutexLock" | "ReaderLock" | "WriterLock"
  std::string expr;    // argument text, '&' stripped: "mu_", "other.mu_"
  int line = 0;
  size_t token_index = 0;  // position of the holder token
  size_t scope_end = 0;    // token index where the enclosing scope closes
};

struct CallSite {
  std::string name;       // unqualified callee name
  std::string qualifier;  // "Catalog" for Catalog::Fn(, "" otherwise
  bool member_access = false;  // `recv.name(` / `recv->name(`, recv != this
  int line = 0;
  size_t token_index = 0;
};

struct LoopSite {
  int header_line = 0;
  bool range_for = false;
  size_t header_begin = 0, header_end = 0;  // token range of (...) incl parens
  size_t body_begin = 0, body_end = 0;      // token range of body (inclusive)
};

struct FunctionModel {
  std::string name;       // unqualified: "Execute", "operator="
  std::string qualifier;  // "Catalog" for Catalog::Execute or inline methods
  int line = 0;
  size_t sig_begin = 0;            // token index of the name token
  size_t body_begin = 0, body_end = 0;  // token range incl. braces
  bool no_thread_safety_analysis = false;
  std::vector<LockSite> locks;    // in source order
  std::vector<CallSite> calls;    // in source order
  std::vector<LoopSite> loops;    // in source order (outer before inner)
};

// `Mutex name_;` / `SharedMutex name_;` declared as a class member.
struct MutexDecl {
  std::string class_name;  // "" for a namespace-scope mutex
  std::string name;
  int line = 0;
};

// S2RDF_ACQUIRED_BEFORE(x) / S2RDF_ACQUIRED_AFTER(x) on a mutex member:
// a declared edge in the acquired-before graph. `first` must be taken
// before `second`; labels are "Class::member" (or the raw argument when
// it is already qualified).
struct OrderAnnotation {
  std::string first;
  std::string second;
  int line = 0;
};

// S2RDF_GUARDED_BY(mu) / S2RDF_PT_GUARDED_BY(mu) on a member.
struct GuardDecl {
  std::string class_name;
  std::string member;
  std::string mutex_expr;
  int line = 0;
};

struct FileModel {
  std::string path;  // as given (repo-relative under the analyzer)
  std::vector<Token> tokens;
  std::vector<Include> includes;
  std::vector<FunctionModel> functions;
  std::vector<MutexDecl> mutex_decls;
  std::vector<OrderAnnotation> order_annotations;
  std::vector<GuardDecl> guards;

  // True when any token in [begin, end) is an identifier `name`.
  bool RangeMentions(size_t begin, size_t end, const std::string& name) const;
};

FileModel BuildFileModel(const std::string& path, const std::string& content);

// Phase-1 output for the whole program: every parsed file.
struct ProgramModel {
  std::vector<FileModel> files;
};

}  // namespace s2rdf::lint

#endif  // S2RDF_TOOLS_LINT_MODEL_H_
