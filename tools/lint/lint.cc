#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace s2rdf::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Blanks comment bodies, string literals and char literals (newlines
// preserved) so token matching never fires on documentation or test
// data. Handles //, /* */, "...", '...' and R"delim(...)delim".
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out = in;
  size_t i = 0;
  const size_t n = in.size();
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    char c = in[i];
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      while (i < n && in[i] != '\n') blank(i++);
    } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      blank(i++);
      blank(i++);
      while (i < n && !(in[i] == '*' && i + 1 < n && in[i + 1] == '/')) {
        blank(i++);
      }
      if (i < n) blank(i++);
      if (i < n) blank(i++);
    } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
               (i == 0 || !IsIdentChar(in[i - 1]))) {
      // Raw string literal: R"delim( ... )delim".
      size_t open = in.find('(', i + 2);
      if (open == std::string::npos) break;
      std::string close = ")" + in.substr(i + 2, open - i - 2) + "\"";
      size_t end = in.find(close, open + 1);
      if (end == std::string::npos) end = n;
      for (size_t j = i; j < std::min(end + close.size(), n); ++j) blank(j);
      i = std::min(end + close.size(), n);
    } else if (c == '"' || c == '\'') {
      char quote = c;
      blank(i++);
      while (i < n && in[i] != quote && in[i] != '\n') {
        if (in[i] == '\\' && i + 1 < n) blank(i++);
        blank(i++);
      }
      if (i < n && in[i] == quote) blank(i++);
    } else {
      ++i;
    }
  }
  return out;
}

// The inverse view of StripCommentsAndStrings: keeps // and /* */
// comment text, blanks code and string literals (newlines preserved).
// Suppression markers are parsed from this view so a marker spelled
// inside a string literal (e.g. a linter test fixture) is not a real
// marker, while apostrophes in comments never derail the scan.
std::string CommentsOnlyView(const std::string& in) {
  std::string out(in.size(), ' ');
  size_t i = 0;
  const size_t n = in.size();
  auto keep_newlines = [&](size_t from, size_t to) {
    for (size_t j = from; j < to && j < n; ++j) {
      if (in[j] == '\n') out[j] = '\n';
    }
  };
  while (i < n) {
    char c = in[i];
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      while (i < n && in[i] != '\n') {
        out[i] = in[i];
        ++i;
      }
    } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      while (i < n && !(in[i] == '*' && i + 1 < n && in[i + 1] == '/')) {
        out[i] = in[i];
        ++i;
      }
      if (i < n) out[i] = in[i], ++i;
      if (i < n) out[i] = in[i], ++i;
    } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
               (i == 0 || !IsIdentChar(in[i - 1]))) {
      size_t open = in.find('(', i + 2);
      if (open == std::string::npos) {
        keep_newlines(i, n);
        break;
      }
      std::string close = ")" + in.substr(i + 2, open - i - 2) + "\"";
      size_t end = in.find(close, open + 1);
      size_t stop = end == std::string::npos ? n : end + close.size();
      keep_newlines(i, stop);
      i = stop;
    } else if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      while (i < n && in[i] != quote && in[i] != '\n') {
        if (in[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n && in[i] == quote) ++i;
    } else {
      if (c == '\n') out[i] = '\n';
      ++i;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  lines.push_back(cur);
  return lines;
}

// --- Token matching --------------------------------------------------------

enum class TokenKind {
  kCall,  // Must be followed by '(' (optionally across whitespace).
  kType,  // Must not be followed by an identifier character.
};

struct BannedToken {
  std::string token;
  TokenKind kind;
};

// Finds every match of `t` in `line` that sits on an identifier
// boundary; returns 0-based column positions.
std::vector<size_t> FindToken(const std::string& line, const BannedToken& t) {
  std::vector<size_t> hits;
  size_t pos = line.find(t.token);
  while (pos != std::string::npos) {
    bool ok = true;
    if (pos > 0 && (IsIdentChar(line[pos - 1]) ||
                    (line[pos - 1] == ':' && t.token[0] != ':'))) {
      ok = false;  // Mid-identifier or namespace-qualified variant.
    }
    size_t end = pos + t.token.size();
    if (ok) {
      if (t.kind == TokenKind::kCall) {
        size_t p = end;
        while (p < line.size() && line[p] == ' ') ++p;
        if (p >= line.size() || line[p] != '(') ok = false;
      } else {
        if (end < line.size() && IsIdentChar(line[end])) ok = false;
      }
    }
    if (ok) hits.push_back(pos);
    pos = line.find(t.token, pos + 1);
  }
  return hits;
}

// time(nullptr) / time(NULL) — only the wall-clock-seeded form is
// banned; time(&out) style is not used in this codebase but would be
// equally nondeterministic, so it is NOT special-cased as allowed.
bool LineHasWallClockTime(const std::string& line) {
  static const BannedToken kTime{"time", TokenKind::kCall};
  for (size_t pos : FindToken(line, kTime)) {
    size_t p = line.find('(', pos);
    if (p == std::string::npos) continue;
    ++p;
    while (p < line.size() && line[p] == ' ') ++p;
    if (line.compare(p, 7, "nullptr") == 0 || line.compare(p, 4, "NULL") == 0) {
      return true;
    }
  }
  return false;
}

// Raw diagnostics to stderr: fprintf/fputs whose stream argument is
// stderr, or the std::cerr / std::clog streams. fprintf(stdout, ...)
// stays legal — benches emit machine-readable JSON there — so a plain
// BannedToken on fprintf would be too broad; the stream argument is
// what distinguishes a diagnostic from an output channel.
bool LineHasRawStderrWrite(const std::string& line, std::string* which) {
  static const BannedToken kCerr{"std::cerr", TokenKind::kType};
  static const BannedToken kClog{"std::clog", TokenKind::kType};
  if (!FindToken(line, kCerr).empty()) {
    *which = "std::cerr";
    return true;
  }
  if (!FindToken(line, kClog).empty()) {
    *which = "std::clog";
    return true;
  }
  // Both spellings: the plain-token boundary check rejects matches
  // preceded by ':', so "std::fprintf" needs its own qualified token.
  static const BannedToken kFprintf{"fprintf", TokenKind::kCall};
  static const BannedToken kStdFprintf{"std::fprintf", TokenKind::kCall};
  static const BannedToken kFputs{"fputs", TokenKind::kCall};
  static const BannedToken kStdFputs{"std::fputs", TokenKind::kCall};
  static const BannedToken kStderr{"stderr", TokenKind::kType};
  for (const BannedToken* call :
       {&kFprintf, &kStdFprintf, &kFputs, &kStdFputs}) {
    if (FindToken(line, *call).empty()) continue;
    if (!FindToken(line, kStderr).empty()) {
      *which = call->token + "(stderr, ...)";
      return true;
    }
  }
  return false;
}

// Direct reads of the C++ chrono clocks ("steady_clock::now()" and
// friends). A plain BannedToken cannot express this: the clock name is
// always namespace-qualified (std::chrono::steady_clock), which the
// preceding-':' boundary check would reject, and the mere mention of a
// clock type (e.g. the MonotonicTime alias in common/clock.h) is fine —
// only the ::now() call bypasses the injectable seam.
bool LineHasDirectClockRead(const std::string& line, std::string* which) {
  static const char* kClocks[] = {"steady_clock", "system_clock",
                                  "high_resolution_clock"};
  for (const char* clock : kClocks) {
    const std::string token(clock);
    size_t pos = line.find(token);
    while (pos != std::string::npos) {
      if (pos == 0 || !IsIdentChar(line[pos - 1])) {
        size_t p = pos + token.size();
        while (p < line.size() && line[p] == ' ') ++p;
        if (line.compare(p, 5, "::now") == 0) {
          p += 5;
          while (p < line.size() && line[p] == ' ') ++p;
          if (p < line.size() && line[p] == '(') {
            *which = token;
            return true;
          }
        }
      }
      pos = line.find(token, pos + 1);
    }
  }
  return false;
}

std::string NormalizePath(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool EndsWithAny(const std::string& path,
                 std::initializer_list<const char*> suffixes) {
  for (const char* s : suffixes) {
    std::string suffix(s);
    if (path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

// --- Rules -----------------------------------------------------------------

const std::vector<BannedToken>& RawIoTokens() {
  static const std::vector<BannedToken> kTokens = {
      {"fopen", TokenKind::kCall},          {"freopen", TokenKind::kCall},
      {"tmpfile", TokenKind::kCall},        {"::open", TokenKind::kCall},
      {"::creat", TokenKind::kCall},        {"std::ofstream", TokenKind::kType},
      {"std::ifstream", TokenKind::kType},  {"std::fstream", TokenKind::kType},
      {"std::filebuf", TokenKind::kType},
  };
  return kTokens;
}

const std::vector<BannedToken>& BareMutexTokens() {
  static const std::vector<BannedToken> kTokens = {
      {"std::mutex", TokenKind::kType},
      {"std::shared_mutex", TokenKind::kType},
      {"std::recursive_mutex", TokenKind::kType},
      {"std::timed_mutex", TokenKind::kType},
      {"std::condition_variable", TokenKind::kType},
      {"std::condition_variable_any", TokenKind::kType},
      {"std::lock_guard", TokenKind::kType},
      {"std::unique_lock", TokenKind::kType},
      {"std::shared_lock", TokenKind::kType},
      {"std::scoped_lock", TokenKind::kType},
  };
  return kTokens;
}

// Deprecated back-compat aliases; the message names the replacement.
const std::vector<BannedToken>& DeprecatedApiTokens() {
  static const std::vector<BannedToken> kTokens = {
      {"optimize_join_order", TokenKind::kType},
  };
  return kTokens;
}

// Filesystem mutations that bypass the Env seam. Renames and unlinks
// are the commit-protocol primitives (atomic manifest flips, orphan
// sweeps); issued directly they evade fault injection AND can break
// crash-atomicity invariants, so they are confined to common/ (the Env
// implementations) and storage/ (which always goes through an Env —
// belt and suspenders for the layer that owns the protocol).
const std::vector<BannedToken>& RawFileMutationTokens() {
  static const std::vector<BannedToken> kTokens = {
      {"std::rename", TokenKind::kCall},
      {"::rename", TokenKind::kCall},
      {"rename", TokenKind::kCall},
      {"::unlink", TokenKind::kCall},
      {"unlink", TokenKind::kCall},
  };
  return kTokens;
}

const std::vector<BannedToken>& NondeterminismTokens() {
  static const std::vector<BannedToken> kTokens = {
      {"rand", TokenKind::kCall},
      {"srand", TokenKind::kCall},
      {"drand48", TokenKind::kCall},
      {"lrand48", TokenKind::kCall},
      {"std::random_device", TokenKind::kType},
  };
  return kTokens;
}

void CheckTokens(const std::string& path, const std::vector<std::string>& lines,
                 const std::string& rule, const std::vector<BannedToken>& bans,
                 const std::string& why, std::vector<Violation>* out) {
  for (size_t i = 0; i < lines.size(); ++i) {
    int lineno = static_cast<int>(i) + 1;
    for (const BannedToken& t : bans) {
      if (FindToken(lines[i], t).empty()) continue;
      out->push_back({path, lineno, rule, "'" + t.token + "' " + why});
    }
  }
}

void CheckIncludeGuard(const std::string& path,
                       const std::vector<std::string>& lines,
                       std::vector<Violation>* out) {
  if (!EndsWithAny(NormalizePath(path), {".h"})) return;
  int first_line = 0;
  std::string first;
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string trimmed = lines[i];
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (!trimmed.empty()) {
      first = trimmed;
      first_line = static_cast<int>(i) + 1;
      break;
    }
  }
  const std::string kRule = "include-guard";
  if (first_line == 0) return;  // Empty header: nothing to protect.
  if (first.rfind("#ifndef S2RDF_", 0) != 0) {
    out->push_back({path, first_line, kRule,
                    "header must open with an '#ifndef S2RDF_...' include "
                    "guard (found: '" +
                        first.substr(0, 40) + "')"});
    return;
  }
  std::string macro = first.substr(std::string("#ifndef ").size());
  macro.erase(macro.find_last_not_of(" \t") + 1);
  for (size_t i = first_line; i < lines.size(); ++i) {
    std::string trimmed = lines[i];
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    if (trimmed.empty()) continue;
    if (trimmed.rfind("#define " + macro, 0) != 0) {
      out->push_back({path, static_cast<int>(i) + 1, kRule,
                      "'#ifndef " + macro +
                          "' must be followed by '#define " + macro + "'"});
    }
    return;
  }
}

}  // namespace

Suppressions::Suppressions(const std::vector<SuppressionMarker>& markers)
    : markers_(markers) {}

bool Suppressions::Allows(const std::string& rule, int line,
                          size_t* used_marker) const {
  for (size_t i = 0; i < markers_.size(); ++i) {
    const SuppressionMarker& m = markers_[i];
    if (m.rule != rule) continue;
    bool matches = m.file_scope
                       ? m.line <= 20  // allow-file only near the top
                       : (line == m.line || line == m.line + 1);
    if (matches) {
      if (used_marker != nullptr) *used_marker = i;
      return true;
    }
  }
  return false;
}

bool IsKnownRule(const std::string& rule) {
  static const std::set<std::string> kRules = {
      "raw-io",         "raw-file-mutation", "bare-mutex",
      "nondeterminism", "clock",             "include-guard",
      "deprecated-api", "layering",          "transitive-include",
      "lock-order",     "interrupt-coverage", "status-discipline",
      "raw-log",        "io",
  };
  return kRules.count(rule) > 0;
}

std::vector<SuppressionMarker> ParseSuppressionMarkers(
    const std::string& content) {
  std::vector<SuppressionMarker> out;
  std::vector<std::string> raw_lines = SplitLines(CommentsOnlyView(content));
  const std::string kTag = "s2rdf-lint:";
  for (size_t i = 0; i < raw_lines.size(); ++i) {
    const std::string& line = raw_lines[i];
    int lineno = static_cast<int>(i) + 1;
    size_t pos = line.find(kTag);
    while (pos != std::string::npos) {
      size_t p = pos + kTag.size();
      while (p < line.size() && line[p] == ' ') ++p;
      bool file_scope = false;
      if (line.compare(p, 11, "allow-file(") == 0) {
        file_scope = true;
        p += 11;
      } else if (line.compare(p, 6, "allow(") == 0) {
        p += 6;
      } else {
        pos = line.find(kTag, pos + 1);
        continue;
      }
      size_t close = line.find(')', p);
      if (close == std::string::npos) break;
      std::stringstream rules(line.substr(p, close - p));
      std::string rule;
      while (std::getline(rules, rule, ',')) {
        rule.erase(std::remove(rule.begin(), rule.end(), ' '), rule.end());
        if (rule.empty()) continue;
        out.push_back({lineno, rule, file_scope});
      }
      pos = line.find(kTag, close);
    }
  }
  return out;
}

FileScanResult ScanContent(const std::string& path,
                           const std::string& content) {
  FileScanResult result;
  result.markers = ParseSuppressionMarkers(content);
  std::vector<Violation>& out = result.violations;
  std::string npath = NormalizePath(path);
  std::vector<std::string> lines =
      SplitLines(StripCommentsAndStrings(content));

  // raw-io: only the Env implementation may touch the OS directly.
  if (!EndsWithAny(npath, {"common/posix_env.cc", "common/env.cc"})) {
    CheckTokens(path, lines, "raw-io", RawIoTokens(),
                "bypasses the injectable storage Env (route I/O through "
                "s2rdf::Env so fault-injection tests cover it)",
                &out);
  }

  // bare-mutex: only the annotated wrapper may use std primitives.
  if (!EndsWithAny(npath, {"common/mutex.h"})) {
    CheckTokens(path, lines, "bare-mutex", BareMutexTokens(),
                "evades Clang thread-safety analysis (use s2rdf::Mutex / "
                "MutexLock / CondVar from common/mutex.h)",
                &out);
  }

  // deprecated-api: back-compat aliases stay contained. The declaring
  // header keeps the field; everything else uses the replacement.
  if (!EndsWithAny(npath, {"core/compiler.h"})) {
    CheckTokens(path, lines, "deprecated-api", DeprecatedApiTokens(),
                "is a deprecated alias (use "
                "CompilerOptions::optimizer.reorder_joins)",
                &out);
  }

  // raw-file-mutation: rename/unlink are commit-protocol primitives
  // (atomic flips, orphan sweeps); only common/ and storage/ may issue
  // them.
  if (npath.find("common/") == std::string::npos &&
      npath.find("storage/") == std::string::npos) {
    CheckTokens(path, lines, "raw-file-mutation", RawFileMutationTokens(),
                "mutates the filesystem behind the Env seam (use "
                "Env::RenameFile / Env::RemoveFile so crash-injection "
                "tests cover it)",
                &out);
  }

  // nondeterminism: only common/random.* may draw entropy.
  if (npath.find("common/random.") == std::string::npos) {
    CheckTokens(path, lines, "nondeterminism", NondeterminismTokens(),
                "makes runs unreproducible (use the seeded SplitMix64 from "
                "common/random.h)",
                &out);
    for (size_t i = 0; i < lines.size(); ++i) {
      int lineno = static_cast<int>(i) + 1;
      if (LineHasWallClockTime(lines[i])) {
        out.push_back({path, lineno, "nondeterminism",
                       "'time(nullptr)' seeds from the wall clock (use the "
                       "seeded SplitMix64 from common/random.h)"});
      }
    }
  }

  // clock: only common/ may read the OS clocks directly; everything
  // else goes through MonotonicNow() so tests can freeze time.
  if (npath.find("common/") == std::string::npos) {
    for (size_t i = 0; i < lines.size(); ++i) {
      int lineno = static_cast<int>(i) + 1;
      std::string which;
      if (LineHasDirectClockRead(lines[i], &which)) {
        out.push_back({path, lineno, "clock",
                       "'" + which +
                           "::now()' bypasses the injectable clock seam "
                           "(use s2rdf::MonotonicNow() from common/clock.h)"});
      }
    }
  }

  // raw-log: diagnostics go through the structured event log; only
  // common/ (the sink itself, crash paths) may write stderr raw.
  if (npath.find("common/") == std::string::npos) {
    for (size_t i = 0; i < lines.size(); ++i) {
      int lineno = static_cast<int>(i) + 1;
      std::string which;
      if (LineHasRawStderrWrite(lines[i], &which)) {
        out.push_back({path, lineno, "raw-log",
                       "'" + which +
                           "' bypasses the structured event log (use "
                           "s2rdf::LogEvent from common/log.h so lines "
                           "share one schema, sink and rate limit)"});
      }
    }
  }

  CheckIncludeGuard(path, lines, &out);

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });
  return result;
}

std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content) {
  FileScanResult scan = ScanContent(path, content);
  Suppressions supp(scan.markers);
  std::vector<Violation> out;
  for (Violation& v : scan.violations) {
    if (!supp.Allows(v.rule, v.line)) out.push_back(std::move(v));
  }
  return out;
}

std::vector<Violation> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, "io", "cannot read file"}};
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LintContent(path, buffer.str());
}

std::vector<Violation> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<Violation> out;
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    return LintFile(root);
  }
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    std::string p = it->path().string();
    if (EndsWithAny(p, {".h", ".cc", ".cpp"})) files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  for (const std::string& f : files) {
    std::vector<Violation> v = LintFile(f);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

std::string FormatViolation(const Violation& v) {
  return v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " +
         v.message;
}

}  // namespace s2rdf::lint
