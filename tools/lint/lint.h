#ifndef S2RDF_TOOLS_LINT_LINT_H_
#define S2RDF_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

// Repo-invariant linter for the S2RDF codebase. Each rule protects an
// invariant the design depends on (see DESIGN.md "Static enforcement"):
//
//   raw-io          All file I/O must flow through the injectable
//                   storage Env so fault-injection tests cover it. Raw
//                   primitives (fopen, std::ofstream, ::open, ...) are
//                   permitted only in the Env implementation itself
//                   (common/posix_env.cc, common/env.cc).
//   raw-file-mutation
//                   rename/unlink are the commit-protocol primitives
//                   (atomic manifest flips, orphan sweeps); called
//                   directly they evade fault injection and can break
//                   crash atomicity, so they are permitted only under
//                   common/ (Env implementations) and storage/ (the
//                   layer owning the commit protocol).
//   bare-mutex      Locking must use the annotated common::Mutex
//                   wrappers so Clang thread-safety analysis sees every
//                   acquisition. std::mutex & friends are permitted
//                   only inside common/mutex.h.
//   nondeterminism  Reproducible runs: rand()/time(nullptr)/
//                   std::random_device are permitted only in
//                   common/random.* (the seeded SplitMix64 home).
//   include-guard   Headers must open with an #ifndef S2RDF_...
//                   include guard (no #pragma once, no missing guard).
//   deprecated-api  Identifiers kept only as [[deprecated]] back-compat
//                   aliases (e.g. CompilerOptions::optimize_join_order)
//                   must not spread to new code; the declaring header
//                   is allowlisted, intentional shims suppress inline.
//   raw-log         Diagnostics must flow through the structured event
//                   log (common/log.h) so every line shares one JSON
//                   schema, one injectable sink, and rate limiting.
//                   fprintf(stderr, ...) / std::cerr are permitted only
//                   under common/ (the sink implementation and crash
//                   paths); bench, tools and tests are exempt tree-wide
//                   (human-facing CLIs).
//
// Suppressions:
//   // s2rdf-lint: allow(<rule>)       same line or the line above
//   // s2rdf-lint: allow-file(<rule>)  within the first 20 lines
//
// Matching runs on a comment- and string-stripped copy of the source,
// so rule names in documentation never trip the linter.

namespace s2rdf::lint {

struct Violation {
  std::string file;
  int line = 0;        // 1-based.
  std::string rule;    // One of the rule names above.
  std::string message;
};

// One `// s2rdf-lint: allow(rule)` / `allow-file(rule)` marker as
// written in the source. The whole-program analyzer tracks which
// markers actually suppress something; a marker that suppresses
// nothing is itself an error (rule `stale-suppression`).
struct SuppressionMarker {
  int line = 0;         // 1-based line the marker sits on
  std::string rule;
  bool file_scope = false;  // allow-file(...) within the first 20 lines
};

// Suppression lookup built from markers. `Allows` matches a finding on
// the marker's line or the line below it (i.e. markers suppress their
// own line and the next), or anywhere for file-scope markers.
class Suppressions {
 public:
  explicit Suppressions(const std::vector<SuppressionMarker>& markers);
  // True when a finding of `rule` at `line` is suppressed. When
  // `used_marker` is non-null it receives the index (into the marker
  // vector passed to the constructor) of the marker that matched.
  bool Allows(const std::string& rule, int line,
              size_t* used_marker = nullptr) const;

 private:
  std::vector<SuppressionMarker> markers_;
};

// Parses every suppression marker in `content`. Markers are only
// recognized inside comments — one spelled in a string literal (e.g. a
// linter test fixture) is not a marker.
std::vector<SuppressionMarker> ParseSuppressionMarkers(
    const std::string& content);

// True for rule names the linter can emit (line rules, whole-program
// passes, and "io"). The suppression-hygiene census only tracks
// markers naming a known rule, so documentation placeholders like
// `allow(<rule>)` are inert rather than "stale".
bool IsKnownRule(const std::string& rule);

// Per-file scan WITHOUT suppression filtering: returns every violation
// the line rules find plus the parsed markers. The whole-program
// analyzer uses this so it can apply suppressions centrally (across
// line rules and cross-file passes) and detect stale markers.
struct FileScanResult {
  std::vector<Violation> violations;        // unfiltered
  std::vector<SuppressionMarker> markers;   // parsed from comments
};
FileScanResult ScanContent(const std::string& path,
                           const std::string& content);

// Lints one file's contents (suppressions applied). `path` is used for
// reporting and for the per-rule allowlists (posix_env.cc etc.), so
// pass repo-relative or absolute paths, not bare basenames, where
// possible.
std::vector<Violation> LintContent(const std::string& path,
                                   const std::string& content);

// Reads and lints one file from disk. Unreadable files yield a single
// violation with rule "io" so a broken tree fails loudly.
std::vector<Violation> LintFile(const std::string& path);

// Recursively lints every *.h / *.cc / *.cpp under `root` (or the file
// itself when `root` is a regular file). Results are path-sorted.
std::vector<Violation> LintTree(const std::string& root);

// "file:line: [rule] message" rendering used by the CLI.
std::string FormatViolation(const Violation& v);

}  // namespace s2rdf::lint

#endif  // S2RDF_TOOLS_LINT_LINT_H_
