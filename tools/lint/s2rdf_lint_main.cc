// s2rdf_lint: repo-invariant linter CLI.
//
// Whole-program mode (the CI entry point):
//
//   s2rdf_lint --root=<repo> [--format=text|json|sarif]
//              [--baseline=<file>] [--update-baseline] [subdir...]
//
//   Runs phase 1 (per-file line rules + syntactic model) and phase 2
//   (layering, lock-order, interrupt-coverage, status-discipline,
//   suppression hygiene) over the given subdirs (default: src tests
//   bench tools). Exits 0 only when there are zero non-baselined
//   findings and zero stale baseline entries.
//
//   --update-baseline rewrites the baseline, removing entries that no
//   longer fire. It refuses to add entries (the ratchet only shrinks)
//   unless the baseline file does not exist yet (bootstrap).
//
// Legacy per-file mode (kept for ad-hoc use and back-compat):
//
//   s2rdf_lint <file-or-dir>...
//
//   Line rules only, suppressions applied per file, text output.
//
// See tools/lint/lint.h for the rules, tools/lint/passes/passes.h for
// the whole-program passes, and DESIGN.md §13 for the architecture.

#include <cstdio>
#include <string>
#include <vector>

#include "analyzer.h"
#include "lint.h"
#include "report.h"

namespace {

bool ConsumeFlag(const std::string& arg, const char* name,
                 std::string* value) {
  std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --root=<repo> [--format=text|json|sarif]\n"
      "          [--baseline=<file>] [--update-baseline] [subdir...]\n"
      "       %s <file-or-dir>...   (legacy per-file mode)\n",
      argv0, argv0);
  return 2;
}

int RunLegacy(const std::vector<std::string>& paths) {
  std::vector<s2rdf::lint::Violation> all;
  for (const std::string& p : paths) {
    std::vector<s2rdf::lint::Violation> v = s2rdf::lint::LintTree(p);
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const s2rdf::lint::Violation& v : all) {
    std::fprintf(stderr, "%s\n", s2rdf::lint::FormatViolation(v).c_str());
  }
  if (!all.empty()) {
    std::fprintf(stderr, "s2rdf_lint: %zu violation(s)\n", all.size());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string format = "text";
  std::string baseline_path;
  bool update_baseline = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ConsumeFlag(arg, "--root", &value)) {
      root = value;
    } else if (ConsumeFlag(arg, "--format", &value)) {
      format = value;
    } else if (ConsumeFlag(arg, "--baseline", &value)) {
      baseline_path = value;
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "unknown --format: %s\n", format.c_str());
    return Usage(argv[0]);
  }
  if (update_baseline && baseline_path.empty()) {
    std::fprintf(stderr, "--update-baseline requires --baseline=<file>\n");
    return Usage(argv[0]);
  }

  if (root.empty()) {
    if (paths.empty()) return Usage(argv[0]);
    if (!baseline_path.empty() || format != "text") {
      std::fprintf(stderr,
                   "--baseline/--format require whole-program mode "
                   "(--root=<repo>)\n");
      return Usage(argv[0]);
    }
    return RunLegacy(paths);
  }

  s2rdf::lint::AnalyzerOptions options;
  options.root = root;
  options.subdirs = paths.empty()
                        ? std::vector<std::string>{"src", "tests", "bench",
                                                   "tools"}
                        : paths;
  s2rdf::lint::AnalysisResult result = s2rdf::lint::AnalyzeTree(options);

  std::vector<s2rdf::lint::Violation> fresh = result.findings;
  s2rdf::lint::BaselineDelta delta;
  bool have_baseline = false;
  if (!baseline_path.empty()) {
    s2rdf::lint::Baseline baseline = s2rdf::lint::LoadBaseline(baseline_path);
    if (!baseline.exists && !update_baseline) {
      std::fprintf(stderr, "s2rdf_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    if (!baseline.exists && update_baseline) {
      // Bootstrap: grandfather everything currently firing.
      std::vector<std::string> entries;
      for (const s2rdf::lint::Violation& v : result.findings) {
        entries.push_back(s2rdf::lint::BaselineKey(v));
      }
      if (!s2rdf::lint::WriteBaseline(baseline_path, entries)) {
        std::fprintf(stderr, "s2rdf_lint: cannot write %s\n",
                     baseline_path.c_str());
        return 2;
      }
      std::fprintf(stderr, "s2rdf_lint: baseline bootstrapped with %zu entr%s\n",
                   entries.size(), entries.size() == 1 ? "y" : "ies");
      return 0;
    }
    have_baseline = true;
    delta = s2rdf::lint::ApplyBaseline(result.findings, baseline);
    fresh = delta.fresh;
    if (update_baseline) {
      if (!fresh.empty()) {
        for (const s2rdf::lint::Violation& v : fresh) {
          std::fprintf(stderr, "%s\n",
                       s2rdf::lint::FormatViolation(v).c_str());
        }
        std::fprintf(stderr,
                     "s2rdf_lint: refusing to add %zu new finding(s) to the "
                     "baseline (the ratchet only shrinks); fix or suppress "
                     "them instead\n",
                     fresh.size());
        return 1;
      }
      if (!s2rdf::lint::RatchetBaseline(baseline_path, baseline, delta)) {
        std::fprintf(stderr, "s2rdf_lint: cannot write %s\n",
                     baseline_path.c_str());
        return 2;
      }
      size_t kept = baseline.entries.size() - delta.stale.size();
      std::fprintf(stderr, "s2rdf_lint: baseline now %zu entr%s\n", kept,
                   kept == 1 ? "y" : "ies");
      return 0;
    }
  }

  std::string report;
  if (format == "json") {
    report = s2rdf::lint::RenderJson(result, fresh,
                                     have_baseline ? &delta : nullptr);
  } else if (format == "sarif") {
    report = s2rdf::lint::RenderSarif(result, fresh);
  } else {
    report = s2rdf::lint::RenderText(result, fresh,
                                     have_baseline ? &delta : nullptr);
  }
  std::fputs(report.c_str(), format == "text" ? stderr : stdout);

  bool failed = !fresh.empty() || (have_baseline && !delta.stale.empty());
  return failed ? 1 : 0;
}
