// s2rdf_lint: repo-invariant linter CLI.
//
//   s2rdf_lint <path>...   lints each file or directory tree; prints
//                          "file:line: [rule] message" per violation
//                          and exits 1 if any were found.
//
// Run as part of ctest ("ctest -L lint") over src/; see tools/lint/lint.h
// for the rules and the suppression syntax.

#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::vector<s2rdf::lint::Violation> all;
  for (int i = 1; i < argc; ++i) {
    std::vector<s2rdf::lint::Violation> v = s2rdf::lint::LintTree(argv[i]);
    all.insert(all.end(), v.begin(), v.end());
  }
  for (const s2rdf::lint::Violation& v : all) {
    std::fprintf(stderr, "%s\n", s2rdf::lint::FormatViolation(v).c_str());
  }
  if (!all.empty()) {
    std::fprintf(stderr, "s2rdf_lint: %zu violation(s)\n", all.size());
    return 1;
  }
  return 0;
}
