#ifndef S2RDF_TOOLS_LINT_REPORT_H_
#define S2RDF_TOOLS_LINT_REPORT_H_

#include <string>
#include <vector>

#include "analyzer.h"
#include "lint.h"

// Reporting and the finding baseline for the whole-program analyzer.
//
// Baseline file format (tools/lint/lint_baseline.txt): one grandfathered
// finding per line, `rule|path|message`, '#' comments and blank lines
// ignored. Line numbers are deliberately NOT part of the key so
// unrelated edits do not churn the baseline. Matching is multiset:
// duplicates must be listed as many times as they occur.
//
// The baseline is a ratchet — it may only shrink:
//   * a finding not covered by the baseline fails the run;
//   * a baseline entry with no matching finding is itself an error
//     ("stale baseline entry") and `--update-baseline` removes it;
//   * `--update-baseline` refuses to ADD entries (it reports the fresh
//     findings and fails), except when the baseline file does not
//     exist yet (bootstrap).

namespace s2rdf::lint {

struct Baseline {
  bool exists = false;
  std::vector<std::string> entries;  // keys, file order preserved
};

std::string BaselineKey(const Violation& v);

Baseline LoadBaseline(const std::string& path);

// Writes `entries` one per line with a header comment.
bool WriteBaseline(const std::string& path,
                   const std::vector<std::string>& entries);

struct BaselineDelta {
  std::vector<Violation> fresh;     // findings not in the baseline
  std::vector<std::string> stale;   // baseline entries with no finding
  size_t matched = 0;               // findings absorbed by the baseline
};

BaselineDelta ApplyBaseline(const std::vector<Violation>& findings,
                            const Baseline& baseline);

// The ratchet update: when `delta.fresh` is empty, rewrites `path`
// keeping only the entries of `current` that still fire (each stale
// occurrence removes exactly one matching line, order preserved) and
// returns true. When `delta.fresh` is non-empty the baseline may not
// grow: the file is left untouched and the call returns false.
bool RatchetBaseline(const std::string& path, const Baseline& current,
                     const BaselineDelta& delta);

// Rendered reports. `fresh` is what remains after baseline filtering
// (== result.findings when no baseline is in play).
std::string RenderText(const AnalysisResult& result,
                       const std::vector<Violation>& fresh,
                       const BaselineDelta* delta);
std::string RenderJson(const AnalysisResult& result,
                       const std::vector<Violation>& fresh,
                       const BaselineDelta* delta);
std::string RenderSarif(const AnalysisResult& result,
                        const std::vector<Violation>& fresh);

}  // namespace s2rdf::lint

#endif  // S2RDF_TOOLS_LINT_REPORT_H_
