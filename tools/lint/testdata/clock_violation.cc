// Fixture: direct chrono-clock reads outside common/ must be flagged.
#include <chrono>

double Bad() {
  auto t0 = std::chrono::steady_clock::now();
  auto wall = std::chrono::system_clock::now();
  (void)wall;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
