// Fixture: raw rename/unlink outside common/ and storage/ must be
// flagged (they bypass the Env seam the crash tests inject into).
#include <cstdio>

void BadCommit(const char* tmp, const char* final_path) {
  std::rename(tmp, final_path);
  ::unlink(tmp);
}
