#pragma once

// Fixture: headers must use an #ifndef S2RDF_... include guard, not
// #pragma once.
inline int Answer() { return 42; }
