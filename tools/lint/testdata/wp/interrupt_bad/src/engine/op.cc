#include "engine/exec_context.h"
namespace s2rdf::engine {
Table Select(const Table& t, ExecContext* ctx) {
  Table out;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    out.AppendRowFrom(t, r);
  }
  const size_t n = t.NumRows();
  size_t hits = 0;
  for (size_t r = 0; r < n; ++r) {
    ++hits;
  }
  (void)hits;
  return out;
}
}  // namespace s2rdf::engine
