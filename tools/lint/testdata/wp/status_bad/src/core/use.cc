#include "common/status.h"
namespace s2rdf::core {
int Use() {
  StatusOr<int> result = Compute();
  int v = result.value();
  if (!result.ok()) return -1;
  Status dropped = Persist(v);
  return v;
}
}  // namespace s2rdf::core
