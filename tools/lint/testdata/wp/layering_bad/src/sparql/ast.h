#ifndef S2RDF_SPARQL_AST_H_
#define S2RDF_SPARQL_AST_H_
#include "rdf/term.h"
namespace s2rdf::sparql {
struct Ast {};
}  // namespace s2rdf::sparql
#endif  // S2RDF_SPARQL_AST_H_
