#ifndef S2RDF_RDF_TERM_H_
#define S2RDF_RDF_TERM_H_
#include "sparql/ast.h"
namespace s2rdf::rdf {
struct Term {};
}  // namespace s2rdf::rdf
#endif  // S2RDF_RDF_TERM_H_
