#ifndef S2RDF_STORAGE_STORE_H_
#define S2RDF_STORAGE_STORE_H_
#include "engine/table.h"
namespace s2rdf::storage {
struct Store { engine::Table t; };
}  // namespace s2rdf::storage
#endif  // S2RDF_STORAGE_STORE_H_
