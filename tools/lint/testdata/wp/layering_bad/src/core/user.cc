#include "common/base.h"
namespace s2rdf::core {
void User() {
  MutexLock lock(&gate);
}
}  // namespace s2rdf::core
