#ifndef S2RDF_ENGINE_TABLE_H_
#define S2RDF_ENGINE_TABLE_H_
namespace s2rdf::engine {
struct Table {};
}  // namespace s2rdf::engine
#endif  // S2RDF_ENGINE_TABLE_H_
