#ifndef S2RDF_STORAGE_STORE_H_
#define S2RDF_STORAGE_STORE_H_
#include "common/base.h"
namespace s2rdf::storage {
inline int Store() { return Base(); }
}  // namespace s2rdf::storage
#endif  // S2RDF_STORAGE_STORE_H_
