#ifndef S2RDF_COMMON_BASE_H_
#define S2RDF_COMMON_BASE_H_
namespace s2rdf {
inline int Base() { return 1; }
}  // namespace s2rdf
#endif  // S2RDF_COMMON_BASE_H_
