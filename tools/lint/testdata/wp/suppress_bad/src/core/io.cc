#include <cstdio>
namespace s2rdf::core {
void Dump() {
  // s2rdf-lint: allow(raw-io)
  int x = 0;
  (void)x;
}
}  // namespace s2rdf::core
