#include "engine/exec_context.h"
namespace s2rdf::engine {
Table Select(const Table& t, ExecContext* ctx) {
  Table out;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if ((r % kInterruptCheckRows) == 0 && ctx != nullptr &&
        ctx->CheckInterrupt()) {
      break;
    }
    out.AppendRowFrom(t, r);
  }
  return out;
}
}  // namespace s2rdf::engine
