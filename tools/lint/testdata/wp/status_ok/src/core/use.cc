#include "common/status.h"
namespace s2rdf::core {
int Use() {
  StatusOr<int> result = Compute();
  if (!result.ok()) return -1;
  int v = result.value();
  Status s = Persist(v);
  if (!s.ok()) return -2;
  return v;
}
}  // namespace s2rdf::core
