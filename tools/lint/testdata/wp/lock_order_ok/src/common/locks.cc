#include "common/mutex.h"
namespace s2rdf {
Mutex g_first S2RDF_ACQUIRED_BEFORE(g_second);
Mutex g_second;
void TakeBoth() {
  MutexLock a(&g_first);
  MutexLock b(&g_second);
}
void TakeSecondAlone() {
  MutexLock b(&g_second);
}
}  // namespace s2rdf
