#include "common/mutex.h"
namespace s2rdf {
Mutex g_first;
Mutex g_second;
void Forward() {
  MutexLock a(&g_first);
  MutexLock b(&g_second);
}
void Backward() {
  MutexLock b(&g_second);
  MutexLock a(&g_first);
}
}  // namespace s2rdf
