#include <cstdio>
namespace s2rdf::core {
void Dump() {
  // Crash-dump path: must not depend on the Env it is reporting on.
  FILE* f = fopen("/tmp/dump", "w");  // s2rdf-lint: allow(raw-io)
  if (f) { fclose(f); }
}
}  // namespace s2rdf::core
