// Fixture: suppression markers silence the raw-file-mutation rule.
#include <cstdio>

void DeliberateRename(const char* tmp, const char* final_path) {
  std::rename(tmp, final_path);  // s2rdf-lint: allow(raw-file-mutation)
  // s2rdf-lint: allow(raw-file-mutation)
  ::unlink(tmp);
}
