// Fixture: per-line suppression silences the bare-mutex rule.
#include <mutex>

std::mutex g_mu;  // s2rdf-lint: allow(bare-mutex)

void Fine() {
  // s2rdf-lint: allow(bare-mutex)
  std::lock_guard<std::mutex> lock(g_mu);
}
