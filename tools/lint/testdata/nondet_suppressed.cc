// Fixture: a file-level suppression silences the nondeterminism rule
// everywhere in the file.
// s2rdf-lint: allow-file(nondeterminism)
#include <cstdlib>
#include <ctime>

unsigned Fine() {
  srand(static_cast<unsigned>(time(nullptr)));
  return rand();
}
