// Fixture: a clean file; mentions of std::mutex, fopen( and rand( in
// comments or strings must NOT be flagged.
#include <string>

const char* Doc() {
  return "docs may say fopen(...) or std::mutex or time(nullptr) freely";
}
