// Fixture: std locking primitives outside common/mutex.h must be
// flagged (they evade Clang thread-safety analysis).
#include <mutex>

std::mutex g_mu;

void Bad() { std::lock_guard<std::mutex> lock(g_mu); }
