// Fixture: line suppressions silence the clock rule; clock types
// without ::now() never fire in the first place.
#include <chrono>

using Clock = std::chrono::steady_clock;  // Type mention alone: fine.

double Fine() {
  auto t0 = std::chrono::steady_clock::now();  // s2rdf-lint: allow(clock)
  // s2rdf-lint: allow(clock)
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
