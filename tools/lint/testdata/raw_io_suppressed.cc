// Fixture: suppression markers silence the raw-io rule.
#include <cstdio>

void DeliberateRawWrite(const char* path) {
  FILE* f = fopen(path, "wb");  // s2rdf-lint: allow(raw-io)
  // s2rdf-lint: allow(raw-io)
  FILE* g = fopen(path, "ab");
  if (f) std::fclose(f);
  if (g) std::fclose(g);
}
