// Fixture: raw file I/O outside the Env implementation must be flagged.
#include <cstdio>
#include <fstream>

void BadWrite(const char* path) {
  FILE* f = fopen(path, "wb");
  if (f) std::fclose(f);
  std::ofstream out(path);
}
