// Fixture: entropy sources outside common/random.* must be flagged.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned Bad() {
  srand(static_cast<unsigned>(time(nullptr)));
  std::random_device rd;
  return rand() + rd();
}
