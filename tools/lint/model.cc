#include "model.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace s2rdf::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// Keywords that look like `ident (` but never start a function
// definition or a call we care about.
const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {
      "if",       "for",     "while",        "switch",  "return",
      "sizeof",   "alignof", "decltype",     "catch",   "new",
      "delete",   "throw",   "static_cast",  "const_cast",
      "dynamic_cast",        "reinterpret_cast",        "static_assert",
      "alignas",  "noexcept","co_return",    "co_await","co_yield",
  };
  return kSet;
}

}  // namespace

std::vector<Token> Tokenize(const std::string& content) {
  std::vector<Token> out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (content[i] == '\n') {
        ++line;
        at_line_start = true;
      }
      ++i;
    }
  };
  while (i < n) {
    char c = content[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      while (i < n && content[i] != '\n') advance(1);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      advance(2);
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        advance(1);
      }
      advance(2);
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: consumed whole (with continuations);
      // includes are captured by BuildFileModel from the raw text.
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (content[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;
    if (c == 'R' && i + 1 < n && content[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(content[i - 1]))) {
      size_t open = content.find('(', i + 2);
      if (open == std::string::npos) {
        advance(n - i);
        continue;
      }
      std::string close = ")" + content.substr(i + 2, open - i - 2) + "\"";
      size_t end = content.find(close, open + 1);
      size_t stop = end == std::string::npos ? n : end + close.size();
      out.push_back({TokenKind::kString, content.substr(i, stop - i), line});
      advance(stop - i);
      continue;
    }
    if (c == '"' || c == '\'') {
      size_t start = i;
      int start_line = line;
      advance(1);
      while (i < n && content[i] != c && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) advance(1);
        advance(1);
      }
      if (i < n && content[i] == c) advance(1);
      out.push_back(
          {TokenKind::kString, content.substr(start, i - start), start_line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(content[i])) advance(1);
      out.push_back(
          {TokenKind::kIdentifier, content.substr(start, i - start), line});
      continue;
    }
    if (IsDigit(c)) {
      size_t start = i;
      while (i < n && (IsIdentChar(content[i]) || content[i] == '.' ||
                       content[i] == '\'' ||
                       ((content[i] == '+' || content[i] == '-') && i > start &&
                        (content[i - 1] == 'e' || content[i - 1] == 'E')))) {
        advance(1);
      }
      out.push_back(
          {TokenKind::kNumber, content.substr(start, i - start), line});
      continue;
    }
    // Punctuation; `::` and `->` are kept whole (the model needs them
    // to read qualified names and member accesses).
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      out.push_back({TokenKind::kPunct, "::", line});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < n && content[i + 1] == '>') {
      out.push_back({TokenKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    out.push_back({TokenKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

bool FileModel::RangeMentions(size_t begin, size_t end,
                              const std::string& name) const {
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == name) {
      return true;
    }
  }
  return false;
}

namespace {

// Index of the token matching tokens[open_index] (which must be `open`),
// or tokens.size() when unbalanced.
size_t FindMatching(const std::vector<Token>& toks, size_t open_index,
                    const std::string& open, const std::string& close) {
  int depth = 0;
  for (size_t i = open_index; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == open) ++depth;
    if (toks[i].text == close && --depth == 0) return i;
  }
  return toks.size();
}

bool IsIdent(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].kind == TokenKind::kIdentifier &&
         toks[i].text == text;
}

bool IsPunct(const std::vector<Token>& toks, size_t i, const char* text) {
  return i < toks.size() && toks[i].kind == TokenKind::kPunct &&
         toks[i].text == text;
}

std::string JoinTokens(const std::vector<Token>& toks, size_t begin,
                       size_t end) {
  std::string out;
  for (size_t i = begin; i < end && i < toks.size(); ++i) {
    out += toks[i].text;
  }
  return out;
}

// Parses the captured includes from the raw text (the tokenizer skips
// preprocessor lines).
void ParseIncludes(const std::string& content, FileModel* model) {
  int line = 1;
  size_t pos = 0;
  const size_t n = content.size();
  while (pos < n) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = n;
    std::string_view l(content.data() + pos, eol - pos);
    size_t s = l.find_first_not_of(" \t");
    if (s != std::string_view::npos && l[s] == '#') {
      size_t p = l.find_first_not_of(" \t", s + 1);
      if (p != std::string_view::npos && l.substr(p, 7) == "include") {
        size_t q = l.find_first_of("\"<", p + 7);
        if (q != std::string_view::npos) {
          char closer = l[q] == '<' ? '>' : '"';
          size_t e = l.find(closer, q + 1);
          if (e != std::string_view::npos) {
            model->includes.push_back({std::string(l.substr(q + 1, e - q - 1)),
                                       line, l[q] == '<'});
          }
        }
      }
    }
    pos = eol + 1;
    ++line;
  }
}

// The model builder proper: a single forward walk over the token
// stream, tracking namespace/class/function scope with a brace stack.
class ModelBuilder {
 public:
  ModelBuilder(const std::vector<Token>& toks, FileModel* model)
      : toks_(toks), model_(model) {}

  void Run() {
    for (size_t i = 0; i < toks_.size();) {
      i = Step(i);
    }
    // Unterminated scopes (truncated file): close functions at EOF.
    for (FunctionModel& f : model_->functions) {
      if (f.body_end == 0) f.body_end = toks_.size();
      for (LockSite& l : f.locks) {
        if (l.scope_end == 0) l.scope_end = f.body_end;
      }
    }
  }

 private:
  struct Scope {
    enum Kind { kNamespace, kClass, kFunctionBody, kBlock } kind;
    std::string name;            // class/namespace name
    int function_index = -1;     // for kFunctionBody
    std::vector<size_t> locks;   // lock indices opened in this scope
  };

  const std::vector<Token>& toks_;
  FileModel* model_;
  std::vector<Scope> scopes_;
  // Pending classification for the next `{`.
  enum class Pending { kNone, kNamespace, kClass, kSkip } pending_ =
      Pending::kNone;
  std::string pending_name_;
  int pending_function_ = -1;

  int FunctionIndex() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunctionBody) return it->function_index;
    }
    return -1;
  }

  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  size_t Step(size_t i) {
    const Token& t = toks_[i];
    if (t.kind == TokenKind::kPunct) {
      if (t.text == "{") return OpenBrace(i);
      if (t.text == "}") return CloseBrace(i);
      return i + 1;
    }
    if (t.kind != TokenKind::kIdentifier) return i + 1;

    const int fn = pending_function_ >= 0 ? -1 : FunctionIndex();
    if (fn >= 0) return StepInFunction(i, fn);

    if (t.text == "namespace") {
      pending_ = Pending::kNamespace;
      pending_name_.clear();
      if (i + 1 < toks_.size() &&
          toks_[i + 1].kind == TokenKind::kIdentifier) {
        pending_name_ = toks_[i + 1].text;
      }
      return i + 1;
    }
    if ((t.text == "class" || t.text == "struct") &&
        !(i > 0 && IsIdent(toks_, i - 1, "enum"))) {
      return ScanClassHead(i);
    }
    if (t.text == "enum" || t.text == "union") {
      pending_ = Pending::kSkip;  // enum/union bodies hold no functions
      return i + 1;
    }
    if (t.text == "Mutex" || t.text == "SharedMutex") {
      size_t next = ScanMutexDecl(i);
      if (next != i) return next;
    }
    if (t.text == "S2RDF_GUARDED_BY" || t.text == "S2RDF_PT_GUARDED_BY") {
      ScanGuard(i);
      return i + 1;
    }
    // Function definition?
    size_t next = TryFunctionDef(i);
    if (next != i) return next;
    return i + 1;
  }

  size_t OpenBrace(size_t i) {
    Scope s;
    switch (pending_) {
      case Pending::kNamespace:
        s.kind = Scope::kNamespace;
        s.name = pending_name_;
        break;
      case Pending::kClass:
        s.kind = Scope::kClass;
        s.name = pending_name_;
        break;
      case Pending::kSkip:
      case Pending::kNone:
        s.kind = Scope::kBlock;
        break;
    }
    if (pending_function_ >= 0) {
      s.kind = Scope::kFunctionBody;
      s.function_index = pending_function_;
      model_->functions[static_cast<size_t>(pending_function_)].body_begin = i;
    }
    pending_ = Pending::kNone;
    pending_function_ = -1;
    scopes_.push_back(std::move(s));
    return i + 1;
  }

  size_t CloseBrace(size_t i) {
    if (scopes_.empty()) return i + 1;
    Scope s = std::move(scopes_.back());
    scopes_.pop_back();
    int fn = -1;
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunctionBody) {
        fn = it->function_index;
        break;
      }
    }
    if (s.kind == Scope::kFunctionBody) fn = s.function_index;
    if (fn >= 0) {
      FunctionModel& f = model_->functions[static_cast<size_t>(fn)];
      for (size_t lock_index : s.locks) f.locks[lock_index].scope_end = i;
    }
    if (s.kind == Scope::kFunctionBody && s.function_index >= 0) {
      FunctionModel& f =
          model_->functions[static_cast<size_t>(s.function_index)];
      f.body_end = i;
      for (LockSite& l : f.locks) {
        if (l.scope_end == 0) l.scope_end = i;
      }
    }
    return i + 1;
  }

  // `class X ... {` / `struct X : Base {` — records the name and flags
  // the next `{` as a class body. Returns the index to resume at.
  size_t ScanClassHead(size_t i) {
    std::string name;
    size_t j = i + 1;
    for (; j < toks_.size(); ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokenKind::kIdentifier) {
        name = t.text;
        continue;
      }
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") {  // attribute macro args, e.g. S2RDF_CAPABILITY("x")
          j = FindMatching(toks_, j, "(", ")");
          // The macro was captured as `name`; forget it.
          continue;
        }
        if (t.text == ":" || t.text == "{") break;
        if (t.text == ";") return j + 1;  // forward declaration
        if (t.text == "<") {  // template args in specializations: skip
          j = FindMatching(toks_, j, "<", ">");
          continue;
        }
      }
    }
    pending_ = Pending::kClass;
    pending_name_ = name;
    // Resume just before the `{` (skip the base clause quickly).
    for (; j < toks_.size(); ++j) {
      if (IsPunct(toks_, j, "{") || IsPunct(toks_, j, ";")) return j;
    }
    return j;
  }

  // `Mutex name_ <annotations>;` as a class/namespace member.
  size_t ScanMutexDecl(size_t i) {
    if (i + 1 >= toks_.size() ||
        toks_[i + 1].kind != TokenKind::kIdentifier) {
      return i;
    }
    std::string name = toks_[i + 1].text;
    std::string class_name = EnclosingClass();
    // Validate the declaration shape: annotations/macros until `;` or
    // `=` (default member init) — anything else (e.g. `(`: a function
    // returning Mutex, a constructor param) is not a member decl.
    size_t j = i + 2;
    while (j < toks_.size()) {
      const Token& t = toks_[j];
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "S2RDF_ACQUIRED_BEFORE" ||
            t.text == "S2RDF_ACQUIRED_AFTER") {
          bool before = t.text == "S2RDF_ACQUIRED_BEFORE";
          if (IsPunct(toks_, j + 1, "(")) {
            size_t close = FindMatching(toks_, j + 1, "(", ")");
            std::string self = Label(class_name, name);
            std::string arg = JoinTokens(toks_, j + 2, close);
            std::string other = arg.find("::") != std::string::npos
                                    ? arg
                                    : Label(class_name, arg);
            if (before) {
              model_->order_annotations.push_back(
                  {self, other, toks_[j].line});
            } else {
              model_->order_annotations.push_back(
                  {other, self, toks_[j].line});
            }
            j = close + 1;
            continue;
          }
        }
        ++j;
        continue;
      }
      if (t.kind == TokenKind::kPunct && t.text == "(") {
        // Could be another annotation macro's args; skip balanced.
        // A bare `Mutex name(...)` constructor-style local is fine too.
        j = FindMatching(toks_, j, "(", ")") + 1;
        continue;
      }
      break;
    }
    if (j < toks_.size() && IsPunct(toks_, j, ";")) {
      model_->mutex_decls.push_back({class_name, name, toks_[i].line});
      return j + 1;
    }
    return i;
  }

  void ScanGuard(size_t i) {
    // `<type> member_ S2RDF_GUARDED_BY(mu_);` — the member is the
    // identifier immediately before the macro.
    if (i == 0 || toks_[i - 1].kind != TokenKind::kIdentifier) return;
    if (!IsPunct(toks_, i + 1, "(")) return;
    size_t close = FindMatching(toks_, i + 1, "(", ")");
    model_->guards.push_back({EnclosingClass(), toks_[i - 1].text,
                              JoinTokens(toks_, i + 2, close),
                              toks_[i].line});
  }

  static std::string Label(const std::string& class_name,
                           const std::string& member) {
    return class_name.empty() ? member : class_name + "::" + member;
  }

  // Attempts to read a function definition whose name token is at or
  // after `i`. Returns `i` unchanged when this is not one.
  size_t TryFunctionDef(size_t i) {
    const Token& t = toks_[i];
    if (ControlKeywords().contains(t.text)) return i;
    std::string name = t.text;
    size_t after_name = i + 1;
    if (t.text == "operator") {
      // operator=, operator==, operator(), operator[] ...
      while (after_name < toks_.size() &&
             toks_[after_name].kind == TokenKind::kPunct &&
             toks_[after_name].text != "(") {
        name += toks_[after_name].text;
        ++after_name;
      }
      if (name == "operator" && IsPunct(toks_, after_name, "(") &&
          IsPunct(toks_, after_name + 1, ")")) {
        name = "operator()";
        after_name += 2;
      }
    }
    if (!IsPunct(toks_, after_name, "(")) return i;
    size_t close = FindMatching(toks_, after_name, "(", ")");
    if (close >= toks_.size()) return i;

    // Signature trailer: `const noexcept override S2RDF_REQUIRES(x)
    // -> T` then `{` (definition), `;`/`=`/`,` (not a definition).
    bool no_tsa = false;
    bool in_init_list = false;
    size_t j = close + 1;
    while (j < toks_.size()) {
      const Token& tok = toks_[j];
      if (tok.kind == TokenKind::kIdentifier) {
        if (tok.text == "S2RDF_NO_THREAD_SAFETY_ANALYSIS") no_tsa = true;
        ++j;
        continue;
      }
      if (tok.kind == TokenKind::kPunct) {
        if (tok.text == "(") {
          j = FindMatching(toks_, j, "(", ")") + 1;
          continue;
        }
        if (tok.text == "{") {
          if (in_init_list && j > 0 &&
              (toks_[j - 1].kind == TokenKind::kIdentifier ||
               toks_[j - 1].text == ">")) {
            // Member brace-init: `: mem_{x}` — skip it.
            j = FindMatching(toks_, j, "{", "}") + 1;
            continue;
          }
          break;  // function body
        }
        if (tok.text == ";" || tok.text == "=") return i;  // declaration
        if (tok.text == ":") {
          in_init_list = true;
          ++j;
          continue;
        }
        if (tok.text == "<") {
          j = FindMatching(toks_, j, "<", ">") + 1;
          continue;
        }
        ++j;
        continue;
      }
      ++j;
    }
    if (j >= toks_.size()) return i;

    FunctionModel f;
    f.name = name;
    f.line = t.line;
    f.sig_begin = i;
    f.no_thread_safety_analysis = no_tsa;
    if (i >= 2 && IsPunct(toks_, i - 1, "::") &&
        toks_[i - 2].kind == TokenKind::kIdentifier) {
      f.qualifier = toks_[i - 2].text;
    } else {
      f.qualifier = EnclosingClass();
    }
    model_->functions.push_back(std::move(f));
    pending_function_ = static_cast<int>(model_->functions.size()) - 1;
    return j;  // the `{` itself is handled by OpenBrace
  }

  size_t StepInFunction(size_t i, int fn) {
    FunctionModel& f = model_->functions[static_cast<size_t>(fn)];
    const Token& t = toks_[i];
    if (t.text == "MutexLock" || t.text == "ReaderLock" ||
        t.text == "WriterLock") {
      // `MutexLock lock(&mu_);` or `MutexLock lock(&other.mu_);`
      size_t open = i + 1;
      if (open < toks_.size() &&
          toks_[open].kind == TokenKind::kIdentifier) {
        ++open;
      }
      if (IsPunct(toks_, open, "(")) {
        size_t close = FindMatching(toks_, open, "(", ")");
        size_t expr_begin = open + 1;
        if (IsPunct(toks_, expr_begin, "&")) ++expr_begin;
        LockSite lock;
        lock.holder = t.text;
        lock.expr = JoinTokens(toks_, expr_begin, close);
        lock.line = t.line;
        lock.token_index = i;
        f.locks.push_back(lock);
        if (!scopes_.empty()) {
          scopes_.back().locks.push_back(f.locks.size() - 1);
        }
        return close + 1;
      }
    }
    if (t.text == "for" || t.text == "while") {
      if (IsPunct(toks_, i + 1, "(")) {
        size_t close = FindMatching(toks_, i + 1, "(", ")");
        LoopSite loop;
        loop.header_line = t.line;
        loop.header_begin = i + 1;
        loop.header_end = close + 1;
        int depth = 0;
        for (size_t k = i + 2; k < close; ++k) {
          if (IsPunct(toks_, k, "(")) ++depth;
          if (IsPunct(toks_, k, ")")) --depth;
          if (depth == 0 && IsPunct(toks_, k, ":")) {
            loop.range_for = t.text == "for";
            break;
          }
        }
        size_t body = close + 1;
        if (IsPunct(toks_, body, "{")) {
          loop.body_begin = body;
          loop.body_end = FindMatching(toks_, body, "{", "}") + 1;
        } else {
          loop.body_begin = body;
          int d = 0;
          size_t k = body;
          for (; k < toks_.size(); ++k) {
            if (toks_[k].kind != TokenKind::kPunct) continue;
            const std::string& p = toks_[k].text;
            if (p == "(" || p == "{") ++d;
            if (p == ")" || p == "}") --d;
            if (p == ";" && d <= 0) break;
          }
          loop.body_end = std::min(k + 1, toks_.size());
        }
        f.loops.push_back(loop);
        return i + 1;  // keep scanning inside the header/body normally
      }
    }
    if (t.kind == TokenKind::kIdentifier && IsPunct(toks_, i + 1, "(") &&
        !ControlKeywords().contains(t.text)) {
      CallSite call;
      call.name = t.text;
      call.line = t.line;
      call.token_index = i;
      if (i >= 2 && IsPunct(toks_, i - 1, "::") &&
          toks_[i - 2].kind == TokenKind::kIdentifier) {
        call.qualifier = toks_[i - 2].text;
      } else if (i >= 1 &&
                 (IsPunct(toks_, i - 1, ".") || IsPunct(toks_, i - 1, "->")) &&
                 !(i >= 2 && IsIdent(toks_, i - 2, "this"))) {
        call.member_access = true;
      }
      f.calls.push_back(call);
    }
    return i + 1;
  }
};

}  // namespace

FileModel BuildFileModel(const std::string& path, const std::string& content) {
  FileModel model;
  model.path = path;
  std::replace(model.path.begin(), model.path.end(), '\\', '/');
  ParseIncludes(content, &model);
  model.tokens = Tokenize(content);
  ModelBuilder(model.tokens, &model).Run();
  return model;
}

}  // namespace s2rdf::lint
