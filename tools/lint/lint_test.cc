#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

// Self-test for the repo-invariant linter: every rule must fire on its
// violation fixture, stay silent on the suppressed variant, and ignore
// comments and string literals. Fixture files live in testdata/
// (S2RDF_LINT_TESTDATA is injected by CMake).

namespace s2rdf::lint {
namespace {

std::string Testdata(const std::string& name) {
  return std::string(S2RDF_LINT_TESTDATA) + "/" + name;
}

std::set<std::string> RulesIn(const std::vector<Violation>& vs) {
  std::set<std::string> rules;
  for (const Violation& v : vs) rules.insert(v.rule);
  return rules;
}

TEST(LintRawIoTest, FiresOnFopenAndOfstream) {
  auto vs = LintFile(Testdata("raw_io_violation.cc"));
  ASSERT_GE(vs.size(), 2u);
  EXPECT_EQ(RulesIn(vs), std::set<std::string>{"raw-io"});
  // fopen on line 6, std::ofstream on line 8.
  EXPECT_TRUE(std::any_of(vs.begin(), vs.end(),
                          [](const Violation& v) { return v.line == 6; }));
  EXPECT_TRUE(std::any_of(vs.begin(), vs.end(),
                          [](const Violation& v) { return v.line == 8; }));
}

TEST(LintRawIoTest, SameLineAndPrecedingLineSuppressionsWork) {
  EXPECT_TRUE(LintFile(Testdata("raw_io_suppressed.cc")).empty());
}

TEST(LintRawIoTest, AllowedInsideEnvImplementation) {
  const std::string snippet = "FILE* f = fopen(\"x\", \"rb\");\n";
  EXPECT_FALSE(LintContent("src/common/file_util.cc", snippet).empty());
  EXPECT_TRUE(LintContent("src/common/posix_env.cc", snippet).empty());
  EXPECT_TRUE(LintContent("src/common/env.cc", snippet).empty());
}

TEST(LintRawFileMutationTest, FiresOnRenameAndUnlink) {
  auto vs = LintFile(Testdata("raw_file_mutation_violation.cc"));
  ASSERT_GE(vs.size(), 2u);
  EXPECT_EQ(RulesIn(vs), std::set<std::string>{"raw-file-mutation"});
  // std::rename on line 6, ::unlink on line 7.
  EXPECT_TRUE(std::any_of(vs.begin(), vs.end(),
                          [](const Violation& v) { return v.line == 6; }));
  EXPECT_TRUE(std::any_of(vs.begin(), vs.end(),
                          [](const Violation& v) { return v.line == 7; }));
}

TEST(LintRawFileMutationTest, SuppressionsWork) {
  EXPECT_TRUE(LintFile(Testdata("raw_file_mutation_suppressed.cc")).empty());
}

TEST(LintRawFileMutationTest, AllowedInsideCommonAndStorage) {
  const std::string snippet = "int rc = ::rename(tmp, dst);\n";
  EXPECT_FALSE(LintContent("src/core/ingest.cc", snippet).empty());
  EXPECT_TRUE(LintContent("src/common/posix_env.cc", snippet).empty());
  EXPECT_TRUE(LintContent("src/storage/catalog.cc", snippet).empty());
}

TEST(LintRawFileMutationTest, DoesNotFireOnIdentifiersOrMembers) {
  // Identifier substrings ("renamed", "unlink_count") and CamelCase
  // member functions are not the banned libc calls.
  const std::string snippet =
      "void RenameColumn(int);\n"
      "bool renamed = unlink_count > 0;\n"
      "env->RenameFile(a, b);\n";
  EXPECT_TRUE(LintContent("src/engine/x.cc", snippet).empty());
}

TEST(LintBareMutexTest, FiresOnStdMutexAndLockGuard) {
  auto vs = LintFile(Testdata("bare_mutex_violation.cc"));
  ASSERT_GE(vs.size(), 2u);
  EXPECT_EQ(RulesIn(vs), std::set<std::string>{"bare-mutex"});
}

TEST(LintBareMutexTest, SuppressionsWork) {
  EXPECT_TRUE(LintFile(Testdata("bare_mutex_suppressed.cc")).empty());
}

TEST(LintBareMutexTest, AllowedInsideWrapperHeader) {
  // (Guard-less .h snippets still trip include-guard, so assert on the
  // bare-mutex rule specifically.)
  const std::string snippet = "std::mutex mu_;\n";
  EXPECT_TRUE(RulesIn(LintContent("src/server/worker_pool.h", snippet))
                  .contains("bare-mutex"));
  EXPECT_FALSE(RulesIn(LintContent("src/common/mutex.h", snippet))
                   .contains("bare-mutex"));
}

TEST(LintNondeterminismTest, FiresOnRandSrandTimeAndRandomDevice) {
  auto vs = LintFile(Testdata("nondet_violation.cc"));
  EXPECT_EQ(RulesIn(vs), std::set<std::string>{"nondeterminism"});
  // srand, time(nullptr), std::random_device, rand -> at least 4 hits.
  EXPECT_GE(vs.size(), 4u);
}

TEST(LintNondeterminismTest, AllowFileSuppressesWholeFile) {
  EXPECT_TRUE(LintFile(Testdata("nondet_suppressed.cc")).empty());
}

TEST(LintNondeterminismTest, AllowedInsideRandomImplementation) {
  const std::string snippet = "unsigned x = rand();\n";
  EXPECT_FALSE(LintContent("src/core/s2rdf.cc", snippet).empty());
  EXPECT_TRUE(LintContent("src/common/random.cc", snippet).empty());
  EXPECT_FALSE(RulesIn(LintContent("src/common/random.h", snippet))
                   .contains("nondeterminism"));
}

TEST(LintNondeterminismTest, DoesNotFireOnOperandsOrSubstrings) {
  // "strand(" and "Brand(" must not trip the rand/srand tokens;
  // monotonic time calls without nullptr/NULL are not the banned form.
  const std::string snippet =
      "void strand(int);\nint Brand();\nvoid F() { strand(Brand()); }\n"
      "double t = NowSeconds();  // not time(...)\n";
  EXPECT_TRUE(LintContent("src/engine/x.cc", snippet).empty());
}

TEST(LintClockTest, FiresOnSteadyAndSystemClockNow) {
  auto vs = LintFile(Testdata("clock_violation.cc"));
  EXPECT_EQ(RulesIn(vs), std::set<std::string>{"clock"});
  // steady_clock::now (x2) + system_clock::now -> at least 3 hits.
  EXPECT_GE(vs.size(), 3u);
}

TEST(LintClockTest, SuppressionsAndBareTypeMentionsDoNotFire) {
  EXPECT_TRUE(LintFile(Testdata("clock_suppressed.cc")).empty());
}

TEST(LintClockTest, AllowedInsideCommon) {
  const std::string snippet =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_FALSE(LintContent("src/engine/plan.cc", snippet).empty());
  EXPECT_TRUE(LintContent("src/common/clock.cc", snippet).empty());
}

TEST(LintClockTest, RequiresTheNowCall) {
  // Mentioning the clock type (time_point aliases, template args) is
  // legal everywhere; only the ::now() read is the violation.
  const std::string snippet =
      "using T = std::chrono::steady_clock::time_point;\n"
      "std::chrono::time_point<std::chrono::steady_clock> deadline;\n";
  EXPECT_TRUE(LintContent("src/engine/x.cc", snippet).empty());
}

TEST(LintRawLogTest, FiresOnStderrWritesAndCerr) {
  const std::string snippet =
      "std::fprintf(stderr, \"%s\", line.c_str());\n"
      "std::cerr << \"oops\";\n"
      "fputs(line.c_str(), stderr);\n";
  auto vs = LintContent("src/server/x.cc", snippet);
  EXPECT_EQ(RulesIn(vs), std::set<std::string>{"raw-log"});
  EXPECT_EQ(vs.size(), 3u);
}

TEST(LintRawLogTest, StdoutAndCommonAreExempt) {
  // fprintf(stdout) is an output channel (bench JSON), not a
  // diagnostic; common/ hosts the sink itself.
  EXPECT_TRUE(
      LintContent("src/server/x.cc", "std::fprintf(stdout, \"%s\", s);\n")
          .empty());
  EXPECT_TRUE(
      LintContent("src/common/log.cc", "std::fprintf(stderr, \"%s\", s);\n")
          .empty());
}

TEST(LintRawLogTest, SuppressionsWork) {
  const std::string snippet =
      "std::fprintf(stderr, \"%s\", s);  // s2rdf-lint: allow(raw-log)\n";
  EXPECT_TRUE(LintContent("src/server/x.cc", snippet).empty());
}

TEST(LintDeprecatedApiTest, FiresOutsideDeclaringHeader) {
  const std::string snippet = "options.optimize_join_order = false;\n";
  EXPECT_EQ(RulesIn(LintContent("src/core/s2rdf.cc", snippet)),
            std::set<std::string>{"deprecated-api"});
  // The declaring header keeps the field without tripping the rule.
  EXPECT_FALSE(RulesIn(LintContent("src/core/compiler.h", snippet))
                   .contains("deprecated-api"));
}

TEST(LintDeprecatedApiTest, InlineSuppressionMarksIntentionalShims) {
  const std::string snippet =
      "// s2rdf-lint: allow(deprecated-api)\n"
      "if (!options.optimize_join_order) opt.reorder_joins = false;\n";
  EXPECT_TRUE(LintContent("src/core/compiler.cc", snippet).empty());
}

TEST(LintDeprecatedApiTest, DoesNotFireOnSubstrings) {
  const std::string snippet = "bool my_optimize_join_order_flag = true;\n";
  EXPECT_TRUE(LintContent("src/core/x.cc", snippet).empty());
}

TEST(LintIncludeGuardTest, FiresOnPragmaOnce) {
  auto vs = LintFile(Testdata("missing_guard.h"));
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "include-guard");
}

TEST(LintIncludeGuardTest, AcceptsProperGuard) {
  EXPECT_TRUE(LintFile(Testdata("good_guard.h")).empty());
}

TEST(LintIncludeGuardTest, RequiresMatchingDefine) {
  const std::string mismatched =
      "#ifndef S2RDF_FOO_H_\n#define S2RDF_BAR_H_\n#endif\n";
  auto vs = LintContent("src/foo.h", mismatched);
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].rule, "include-guard");
  EXPECT_EQ(vs[0].line, 2);
}

TEST(LintIncludeGuardTest, OnlyAppliesToHeaders) {
  EXPECT_TRUE(LintContent("src/foo.cc", "int x = 1;\n").empty());
}

TEST(LintStrippingTest, CommentsAndStringsNeverFire) {
  EXPECT_TRUE(LintFile(Testdata("clean.cc")).empty());
  const std::string tricky =
      "// std::mutex fopen( rand() time(nullptr)\n"
      "/* std::lock_guard<std::mutex> */\n"
      "const char* s = \"fopen(\";\n"
      "const char* r = R\"(std::mutex rand())\";\n";
  EXPECT_TRUE(LintContent("src/engine/doc.cc", tricky).empty());
}

TEST(LintCliContractTest, FormatIsFileLineRuleMessage) {
  Violation v{"src/a.cc", 7, "raw-io", "msg"};
  EXPECT_EQ(FormatViolation(v), "src/a.cc:7: [raw-io] msg");
}

TEST(LintTreeTest, WalksDirectoriesAndSortsResults) {
  auto vs = LintTree(std::string(S2RDF_LINT_TESTDATA));
  // The violation fixtures fire; the suppressed/clean ones do not.
  EXPECT_FALSE(vs.empty());
  EXPECT_TRUE(std::is_sorted(
      vs.begin(), vs.end(), [](const Violation& a, const Violation& b) {
        return std::tie(a.file, a.line, a.rule) <
               std::tie(b.file, b.line, b.rule);
      }));
  for (const Violation& v : vs) {
    EXPECT_TRUE(v.file.find("suppressed") == std::string::npos &&
                v.file.find("clean") == std::string::npos &&
                v.file.find("good_guard") == std::string::npos)
        << FormatViolation(v);
  }
}

// The real tree must be lint-clean — the same invariant the ctest entry
// enforces via the CLI, asserted here with precise diagnostics.
TEST(LintTreeTest, RepoSourceTreeIsClean) {
  auto vs = LintTree(std::string(S2RDF_LINT_SRC));
  for (const Violation& v : vs) ADD_FAILURE() << FormatViolation(v);
}

}  // namespace
}  // namespace s2rdf::lint
