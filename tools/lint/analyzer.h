#ifndef S2RDF_TOOLS_LINT_ANALYZER_H_
#define S2RDF_TOOLS_LINT_ANALYZER_H_

#include <string>
#include <vector>

#include "lint.h"
#include "passes/passes.h"

// The whole-program analyzer driver: walks the tree, runs phase 1
// (per-file line rules + syntactic model) and phase 2 (cross-file
// passes), applies per-directory rule profiles and the central
// suppression filter, and reports stale suppressions.
//
// Rule profiles — each analyzed top-level directory gets the full rule
// set minus documented relaxations:
//
//   src/     everything
//   tests/   no bare-mutex (tests exercise raw primitives to provoke
//            races on purpose) and no status-discipline (tests
//            construct Status values purely to assert on shapes)
//   bench/   additionally no nondeterminism / clock (benchmarks time
//            with the real clock and shuffle with real entropy) and no
//            status-discipline
//   tools/   no raw-io (offline CLIs write real files; there is no Env
//            seam to inject faults through)
//
// Paths containing /testdata/ or /compile_fail/ are never analyzed —
// they are fixtures, many intentionally broken.
//
// Suppressions are applied centrally across BOTH phases, tracking
// which marker matched what; an unused marker is a finding of its own
// (stale-suppression, itself unsuppressible).

namespace s2rdf::lint {

struct AnalyzerOptions {
  std::string root;                  // repo root (absolute or relative)
  std::vector<std::string> subdirs;  // e.g. {"src","tests","bench","tools"}
};

struct AnalysisResult {
  std::vector<Violation> findings;  // filtered, sorted by (file,line,rule)
  std::vector<MarkerUsage> markers;  // suppression census (all markers)
  size_t files_scanned = 0;
};

// Runs the full two-phase analysis. All reported paths are
// root-relative with forward slashes ("src/engine/plan.cc").
AnalysisResult AnalyzeTree(const AnalyzerOptions& options);

// True when `rule` is enforced for a root-relative path under the
// profile table above. Exposed for tests.
bool RuleEnabledFor(const std::string& rule, const std::string& rel_path);

}  // namespace s2rdf::lint

#endif  // S2RDF_TOOLS_LINT_ANALYZER_H_
