// Bulk loader: streams N-Triples files into an existing S2RDF store as
// a sequence of atomic ingest batches.
//
//   s2rdf_bulkload <store-dir> [flags] <file.nt> [<file.nt> ...]
//
//   --batch-size=N   triples per ingest batch (default 100000); each
//                    batch commits through one manifest flip, so a
//                    crash mid-load loses at most the current batch
//   --defer          skip ExtVP delta maintenance per batch (marks the
//                    touched VP tables stale; queries degrade safely)
//   --refresh        recompute all stale ExtVP reductions at the end —
//                    the natural partner of --defer for big loads
//
// Every batch reports what the store accepted: duplicates against the
// existing data (and within the batch) are dropped, so triples_added
// can be smaller than the batch size.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/ingest.h"
#include "core/s2rdf.h"
#include "storage/ingest.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <store-dir> [--batch-size=N] [--defer] [--refresh] "
               "<file.nt>...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  std::vector<std::string> files;
  bool defer = false;
  bool refresh = false;
  uint64_t batch_size = 100000;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--defer") == 0) {
      defer = true;
    } else if (std::strcmp(arg, "--refresh") == 0) {
      refresh = true;
    } else if (std::strncmp(arg, "--batch-size=", 13) == 0) {
      batch_size = std::strtoull(arg + 13, nullptr, 10);
      if (batch_size == 0) return Usage(argv[0]);
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else if (store_dir.empty()) {
      store_dir = arg;
    } else {
      files.push_back(arg);
    }
  }
  if (store_dir.empty() || files.empty()) return Usage(argv[0]);

  auto db_or = s2rdf::core::S2Rdf::Open(store_dir);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open %s: %s\n", store_dir.c_str(),
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<s2rdf::core::S2Rdf> db = std::move(db_or).value();

  uint64_t total_added = 0;
  uint64_t total_seen = 0;
  int batch_no = 0;

  // Flushes the accumulated N-Triples text as one atomic batch.
  std::string pending;
  uint64_t pending_lines = 0;
  auto flush = [&]() -> bool {
    if (pending_lines == 0) return true;
    auto batch_or = s2rdf::core::MakeBatchFromNTriples(pending);
    pending.clear();
    pending_lines = 0;
    if (!batch_or.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   batch_or.status().ToString().c_str());
      return false;
    }
    s2rdf::storage::IngestBatch batch = std::move(batch_or).value();
    batch.defer_extvp_maintenance = defer;
    auto result_or = db->Ingest(batch);
    if (!result_or.ok()) {
      std::fprintf(stderr, "ingest error: %s\n",
                   result_or.status().ToString().c_str());
      return false;
    }
    const s2rdf::storage::IngestResult& r = result_or.value();
    total_seen += r.triples_in_batch;
    total_added += r.triples_added;
    std::printf(
        "batch %d: %llu triples, %llu new, gen %llu, vp=%llu extvp=%llu "
        "stale=%llu, %llu ms\n",
        ++batch_no, static_cast<unsigned long long>(r.triples_in_batch),
        static_cast<unsigned long long>(r.triples_added),
        static_cast<unsigned long long>(r.generation),
        static_cast<unsigned long long>(r.vp_tables_updated),
        static_cast<unsigned long long>(r.extvp_tables_updated),
        static_cast<unsigned long long>(r.stale_sources_marked),
        static_cast<unsigned long long>(r.millis));
    return true;
  };

  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      pending += line;
      pending += '\n';
      ++pending_lines;
      if (pending_lines >= batch_size && !flush()) return 1;
    }
  }
  if (!flush()) return 1;

  if (refresh) {
    auto refreshed_or = db->RefreshStaleExtVp();
    if (!refreshed_or.ok()) {
      std::fprintf(stderr, "refresh error: %s\n",
                   refreshed_or.status().ToString().c_str());
      return 1;
    }
    std::printf("refresh: %llu reductions recomputed\n",
                static_cast<unsigned long long>(refreshed_or.value()));
  }

  std::printf("done: %llu triples read, %llu added across %d batches\n",
              static_cast<unsigned long long>(total_seen),
              static_cast<unsigned long long>(total_added), batch_no);
  return 0;
}
