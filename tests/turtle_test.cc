#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "rdf/turtle.h"

namespace s2rdf::rdf {
namespace {

TEST(TurtleTest, PrefixedTriples) {
  Graph g;
  Status s = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "ex:A ex:knows ex:B .\n"
      "ex:B ex:knows ex:C .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_TRUE(
      g.dictionary().Find("<http://example.org/A>").has_value());
}

TEST(TurtleTest, SparqlStylePrefix) {
  Graph g;
  Status s = ParseTurtle(
      "PREFIX ex: <http://example.org/>\n"
      "ex:A ex:p ex:B .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleTest, PredicateAndObjectLists) {
  Graph g;
  Status s = ParseTurtle(
      "@prefix ex: <http://e/> .\n"
      "ex:A ex:p ex:B , ex:C ;\n"
      "     ex:q ex:D ;\n"
      "     .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(g.NumTriples(), 3u);
}

TEST(TurtleTest, AKeywordIsRdfType) {
  Graph g;
  ASSERT_TRUE(ParseTurtle("<http://e/A> a <http://e/Class> .", &g).ok());
  EXPECT_TRUE(g.dictionary()
                  .Find("<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>")
                  .has_value());
}

TEST(TurtleTest, LiteralFlavors) {
  Graph g;
  Status s = ParseTurtle(
      "@prefix ex: <http://e/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:A ex:name \"Alice\" .\n"
      "ex:A ex:greet \"bonjour\"@fr .\n"
      "ex:A ex:age 42 .\n"
      "ex:A ex:height 1.75 .\n"
      "ex:A ex:score 3.2e1 .\n"
      "ex:A ex:ok true .\n"
      "ex:A ex:id \"x7\"^^xsd:string .\n"
      "ex:A ex:note \"\"\"multi\nline\"\"\" .\n"
      "ex:A ex:quoted 'single' .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(g.NumTriples(), 9u);
  const Dictionary& dict = g.dictionary();
  EXPECT_TRUE(dict.Find("\"Alice\"").has_value());
  EXPECT_TRUE(dict.Find("\"bonjour\"@fr").has_value());
  EXPECT_TRUE(
      dict.Find("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>")
          .has_value());
  EXPECT_TRUE(
      dict.Find("\"1.75\"^^<http://www.w3.org/2001/XMLSchema#decimal>")
          .has_value());
  EXPECT_TRUE(
      dict.Find("\"true\"^^<http://www.w3.org/2001/XMLSchema#boolean>")
          .has_value());
  EXPECT_TRUE(dict.Find("\"multi\\nline\"").has_value());
  EXPECT_TRUE(dict.Find("\"single\"").has_value());
}

TEST(TurtleTest, BlankNodeLabels) {
  Graph g;
  ASSERT_TRUE(
      ParseTurtle("_:a <http://e/p> _:b . _:b <http://e/p> _:a .", &g).ok());
  EXPECT_EQ(g.NumTriples(), 2u);
  EXPECT_TRUE(g.dictionary().Find("_:a").has_value());
}

TEST(TurtleTest, BaseResolution) {
  Graph g;
  Status s = ParseTurtle(
      "@base <http://example.org/> .\n"
      "<A> <p> <B> .\n",
      &g);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(g.dictionary().Find("<http://example.org/A>").has_value());
}

TEST(TurtleTest, CommentsIgnored) {
  Graph g;
  ASSERT_TRUE(ParseTurtle("# header\n<a> <b> <c> . # trailing\n# end\n",
                          &g)
                  .ok());
  EXPECT_EQ(g.NumTriples(), 1u);
}

TEST(TurtleTest, ErrorsCarryLineNumbers) {
  Graph g;
  Status s = ParseTurtle("<a> <b> <c> .\n<a> <b> .\n", &g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line"), std::string::npos);
}

TEST(TurtleTest, UnsupportedConstructsRejectedCleanly) {
  Graph g;
  EXPECT_FALSE(ParseTurtle("<a> <b> [ <c> <d> ] .", &g).ok());
  EXPECT_FALSE(ParseTurtle("<a> <b> ( <c> <d> ) .", &g).ok());
  EXPECT_FALSE(ParseTurtle("ex:A <b> <c> .", &g).ok());  // Undeclared.
}

TEST(TurtleTest, RoundtripThroughNTriples) {
  Graph g;
  ASSERT_TRUE(ParseTurtle(
                  "@prefix ex: <http://e/> .\n"
                  "ex:A ex:p ex:B ; ex:q \"v\" , 7 .\n",
                  &g)
                  .ok());
  std::string nt = WriteNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(nt, &g2).ok());
  EXPECT_EQ(g2.NumTriples(), g.NumTriples());
}

}  // namespace
}  // namespace s2rdf::rdf
