#include <gtest/gtest.h>

#include "common/bitmap.h"
#include "common/file_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"

namespace s2rdf {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "invalid_argument: bad input");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  S2RDF_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(UseAssignOrReturn(-1, &out).ok());
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("vp_follows", "vp_"));
  EXPECT_FALSE(StartsWith("vp", "vp_"));
  EXPECT_TRUE(EndsWith("file.s2tb", ".s2tb"));
  EXPECT_FALSE(EndsWith("s2tb", ".s2tb"));
}

TEST(StringsTest, ParseNumbers) {
  long long i = 0;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("42x", &i));
  EXPECT_FALSE(ParseInt64("", &i));
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5e2", &d));
  EXPECT_DOUBLE_EQ(d, 350.0);
  EXPECT_FALSE(ParseDouble("abc", &d));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(StrReplaceAll("%v%-%v%", "%v%", "X"), "X-X");
  EXPECT_EQ(StrReplaceAll("abc", "z", "y"), "abc");
}

TEST(HashTest, Fnv1aIsStable) {
  // Known FNV-1a test vector.
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
}

TEST(HashTest, MixAvalanches) {
  EXPECT_NE(MixHash64(1), MixHash64(2));
  EXPECT_NE(HashCombine(0, 1), HashCombine(1, 0));
}

TEST(RandomTest, Deterministic) {
  SplitMix64 a(7);
  SplitMix64 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInBounds) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RandomTest, ZipfSkewsTowardsSmallValues) {
  SplitMix64 rng(3);
  int low = 0;
  const int kSamples = 5000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = rng.Zipf(1000, 1.5);
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // With s = 1.5 the first 10 ranks carry the clear majority of mass.
  EXPECT_GT(low, kSamples / 2);
}

TEST(FileUtilTest, WriteReadRoundtrip) {
  ScopedTempDir dir;
  ASSERT_FALSE(dir.path().empty());
  std::string path = dir.path() + "/data.bin";
  std::string payload = "hello\0world";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  EXPECT_TRUE(PathExists(path));
  EXPECT_EQ(FileSizeBytes(path), payload.size());
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back).ok());
  EXPECT_EQ(back, payload);
}

TEST(FileUtilTest, ListDirSeesFiles) {
  ScopedTempDir dir;
  ASSERT_TRUE(WriteFile(dir.path() + "/a.txt", "a").ok());
  ASSERT_TRUE(WriteFile(dir.path() + "/b.txt", "b").ok());
  auto files = ListDir(dir.path());
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 2u);
}

TEST(FileUtilTest, MakeDirsIsRecursiveAndIdempotent) {
  ScopedTempDir dir;
  std::string nested = dir.path() + "/x/y/z";
  EXPECT_TRUE(MakeDirs(nested).ok());
  EXPECT_TRUE(MakeDirs(nested).ok());
  EXPECT_TRUE(PathExists(nested));
  // Clean up nested dirs so ScopedTempDir can remove its root.
  rmdir((dir.path() + "/x/y/z").c_str());
  rmdir((dir.path() + "/x/y").c_str());
  rmdir((dir.path() + "/x").c_str());
}

TEST(FileUtilTest, ReadMissingFileFails) {
  // Missing files report kNotFound (distinct from kIoError) now that
  // file_util routes through Env, whose recovery callers rely on the
  // distinction.
  std::string data;
  EXPECT_EQ(ReadFile("/nonexistent/s2rdf", &data).code(),
            StatusCode::kNotFound);
}

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_EQ(b.CountSetBits(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.CountSetBits(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.CountSetBits(), 2u);
}

TEST(BitmapTest, InitiallySetMasksTail) {
  Bitmap b(70, /*initially_set=*/true);
  EXPECT_EQ(b.CountSetBits(), 70u);
  EXPECT_TRUE(b.Test(69));
}

TEST(BitmapTest, IntersectAndUnion) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(3);
  a.Set(70);
  b.Set(70);
  b.Set(99);
  Bitmap intersection = a;
  intersection.IntersectWith(b);
  EXPECT_EQ(intersection.CountSetBits(), 1u);
  EXPECT_TRUE(intersection.Test(70));
  Bitmap both = a;
  both.UnionWith(b);
  EXPECT_EQ(both.CountSetBits(), 3u);
}

TEST(BitmapTest, ByteSizeIsWordGranular) {
  EXPECT_EQ(Bitmap(1).ByteSize(), 8u);
  EXPECT_EQ(Bitmap(64).ByteSize(), 8u);
  EXPECT_EQ(Bitmap(65).ByteSize(), 16u);
  EXPECT_EQ(Bitmap(0).ByteSize(), 0u);
}

TEST(BitmapTest, Equality) {
  Bitmap a(10);
  Bitmap b(10);
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace s2rdf
