#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/strings.h"
#include "core/ingest.h"
#include "core/layout_names.h"
#include "core/s2rdf.h"
#include "server/sparql_endpoint.h"
#include "storage/catalog.h"
#include "storage/fault_injection_env.h"
#include "storage/ingest.h"

// Incremental-ingest suite: delta-maintained ExtVP reductions and SF
// statistics must be indistinguishable from a from-scratch rebuild over
// the concatenated triple stream — same stats entries, same row
// contents, same row ORDER — at every generation; every crash point and
// bit-flip in the ingest path must roll back or commit atomically; and
// deferred (stale) maintenance must degrade queries safely until a
// refresh converges back to the rebuild state.

namespace s2rdf::core {
namespace {

using storage::Catalog;
using storage::FaultInjectionEnv;
using storage::IngestBatch;
using storage::IngestResult;
using storage::IngestTriple;

// Bare-IRI triple; the canonical term is "<name>".
struct T {
  std::string s, p, o;
};

// The paper's running example graph G1 (Fig. 1).
std::vector<T> G1() {
  return {{"A", "follows", "B"}, {"B", "follows", "C"}, {"B", "follows", "D"},
          {"C", "follows", "D"}, {"A", "likes", "I1"},  {"A", "likes", "I2"},
          {"C", "likes", "I2"}};
}

// Q1 (Fig. 2) plus simpler probes; together they exercise ExtVP, VP and
// TT scans.
constexpr char kQ1[] =
    "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y . "
    "?y <follows> ?z . ?z <likes> ?w }";
constexpr char kLikes[] = "SELECT * WHERE { ?s <likes> ?o }";
constexpr char kSpo[] = "SELECT * WHERE { ?s ?p ?o }";

rdf::Graph GraphFrom(const std::vector<T>& triples) {
  rdf::Graph g;
  for (const T& t : triples) g.AddIris(t.s, t.p, t.o);
  return g;
}

IngestBatch MakeBatch(const std::vector<T>& triples) {
  IngestBatch batch;
  for (const T& t : triples) {
    batch.triples.push_back(
        IngestTriple{"<" + t.s + ">", "<" + t.p + ">", "<" + t.o + ">"});
  }
  return batch;
}

std::vector<std::vector<std::string>> SortedRows(S2Rdf* db,
                                                 const std::string& query) {
  auto result = db->Execute(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  std::vector<std::vector<std::string>> rows = db->DecodeRows(result->table);
  std::sort(rows.begin(), rows.end());
  return rows;
}

// A from-scratch in-memory reference store over the full stream.
std::unique_ptr<S2Rdf> Rebuild(const std::vector<T>& stream,
                               double sf_threshold = 1.0) {
  S2RdfOptions options;
  options.sf_threshold = sf_threshold;
  auto db = S2Rdf::Create(GraphFrom(stream), options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// The oracle: the delta-maintained store and the rebuild must have the
// same statistics entries (rows, SF, materialization decision) and, for
// every materialized table, byte-identical contents in identical row
// order. bytes/file_gen are storage-representation details and ignored.
void ExpectStoresIdentical(S2Rdf* delta, S2Rdf* rebuild) {
  std::map<std::string, const storage::TableStats*> ds, rs;
  for (const storage::TableStats* s : delta->catalog().AllStats()) {
    ds[s->name] = s;
  }
  for (const storage::TableStats* s : rebuild->catalog().AllStats()) {
    rs[s->name] = s;
  }
  for (const auto& [name, stats] : rs) {
    ASSERT_TRUE(ds.contains(name)) << "delta store missing " << name;
  }
  for (const auto& [name, stats] : ds) {
    auto it = rs.find(name);
    ASSERT_TRUE(it != rs.end()) << "delta store has extra entry " << name;
    const storage::TableStats* ref = it->second;
    EXPECT_EQ(stats->rows, ref->rows) << name;
    EXPECT_DOUBLE_EQ(stats->selectivity, ref->selectivity) << name;
    EXPECT_EQ(stats->materialized, ref->materialized) << name;
    if (!stats->materialized || !ref->materialized) continue;
    auto dt = delta->catalog().GetTable(name);
    auto rt = rebuild->catalog().GetTable(name);
    ASSERT_TRUE(dt.ok()) << name << ": " << dt.status().ToString();
    ASSERT_TRUE(rt.ok()) << name << ": " << rt.status().ToString();
    ASSERT_EQ((*dt)->NumRows(), (*rt)->NumRows()) << name;
    ASSERT_EQ((*dt)->NumColumns(), (*rt)->NumColumns()) << name;
    for (size_t r = 0; r < (*dt)->NumRows(); ++r) {
      for (size_t c = 0; c < (*dt)->NumColumns(); ++c) {
        ASSERT_EQ((*dt)->At(r, c), (*rt)->At(r, c))
            << name << " row " << r << " col " << c;
      }
    }
  }
}

void ExpectSameAnswers(S2Rdf* a, S2Rdf* b) {
  for (const char* q : {kQ1, kLikes, kSpo}) {
    EXPECT_EQ(SortedRows(a, q), SortedRows(b, q)) << q;
  }
}

// --- Delta maintenance == full rebuild -----------------------------------

TEST(IngestDeltaTest, MatchesFullRebuildAtEveryGeneration) {
  ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  auto db = S2Rdf::Create(GraphFrom(G1()), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<T> stream = G1();
  // Batch 1: growth among existing terms (part-2 delta rows) plus a row
  // that makes old VP rows newly match (part-1 retro-gain).
  // Batch 2: a brand-new predicate and brand-new terms.
  // Batch 3: a subject that demotes an SF=1 pair and retro-connects the
  // new predicate.
  const std::vector<std::vector<T>> batches = {
      {{"D", "follows", "A"}, {"B", "likes", "I1"}},
      {{"A", "knows", "C"}, {"E", "follows", "A"}, {"E", "likes", "I3"}},
      {{"D", "likes", "I2"}, {"C", "knows", "E"}},
  };
  uint64_t expect_gen = 1;
  for (const std::vector<T>& batch : batches) {
    auto result = (*db)->Ingest(MakeBatch(batch));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->triples_in_batch, batch.size());
    EXPECT_EQ(result->triples_added, batch.size());
    EXPECT_EQ(result->generation, ++expect_gen);
    EXPECT_GT(result->vp_tables_updated, 0u);
    stream.insert(stream.end(), batch.begin(), batch.end());
    std::unique_ptr<S2Rdf> reference = Rebuild(stream);
    ExpectStoresIdentical(db->get(), reference.get());
    ExpectSameAnswers(db->get(), reference.get());
  }

  // The final state also survives a reopen (tables page in from disk).
  db->reset();
  auto reopened = S2Rdf::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_report().tables_quarantined, 0u);
  std::unique_ptr<S2Rdf> reference = Rebuild(stream);
  ExpectStoresIdentical(reopened->get(), reference.get());
  ExpectSameAnswers(reopened->get(), reference.get());
}

TEST(IngestDeltaTest, DuplicatesDropAndFullyDuplicateBatchCommitsNothing) {
  ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  auto db = S2Rdf::Create(GraphFrom(G1()), options);
  ASSERT_TRUE(db.ok());

  // One new triple, one duplicate of stored data, one internal repeat.
  auto result = (*db)->Ingest(MakeBatch(
      {{"D", "follows", "A"}, {"A", "likes", "I1"}, {"D", "follows", "A"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->triples_in_batch, 3u);
  EXPECT_EQ(result->triples_added, 1u);
  EXPECT_EQ(result->generation, 2u);

  // A fully-duplicate batch is a no-op: no manifest flip.
  auto noop = (*db)->Ingest(MakeBatch({{"D", "follows", "A"}}));
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop->triples_added, 0u);
  EXPECT_EQ((*db)->catalog().generation(), 2u);

  std::vector<T> stream = G1();
  stream.push_back({"D", "follows", "A"});
  std::unique_ptr<S2Rdf> reference = Rebuild(stream);
  ExpectStoresIdentical(db->get(), reference.get());
  ExpectSameAnswers(db->get(), reference.get());
}

TEST(IngestDeltaTest, ThresholdStoreMatchesRebuild) {
  // SF threshold below 1 exercises both decision flips: a reduction
  // crossing under the threshold materializes; one pinned at SF = 1
  // stays stats-only until a batch breaks the full match.
  ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  options.sf_threshold = 0.9;
  auto db = S2Rdf::Create(GraphFrom(G1()), options);
  ASSERT_TRUE(db.ok());

  std::vector<T> stream = G1();
  for (const std::vector<T>& batch : std::vector<std::vector<T>>{
           {{"D", "likes", "I2"}},          // breaks SS likes|follows SF=1
           {{"F", "follows", "D"}, {"F", "likes", "I9"}},
       }) {
    auto result = (*db)->Ingest(MakeBatch(batch));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    stream.insert(stream.end(), batch.begin(), batch.end());
    std::unique_ptr<S2Rdf> reference = Rebuild(stream, options.sf_threshold);
    ExpectStoresIdentical(db->get(), reference.get());
    ExpectSameAnswers(db->get(), reference.get());
  }
}

TEST(IngestDeltaTest, LazyStoreMaintainsOnlyComputedPairs) {
  ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  options.lazy_extvp = true;
  auto db = S2Rdf::Create(GraphFrom(G1()), options);
  ASSERT_TRUE(db.ok());
  // Materialize the pairs Q1 needs, then ingest.
  auto before = SortedRows(db->get(), kQ1);
  ASSERT_EQ(before.size(), 1u);
  EXPECT_GT((*db)->lazy_pairs_computed(), 0u);

  auto result = (*db)->Ingest(MakeBatch({{"D", "follows", "A"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Answers match a lazy rebuild over the full stream.
  std::vector<T> stream = G1();
  stream.push_back({"D", "follows", "A"});
  S2RdfOptions ref_options = options;
  ref_options.storage_dir.clear();
  auto reference = S2Rdf::Create(GraphFrom(stream), ref_options);
  ASSERT_TRUE(reference.ok());
  ExpectSameAnswers(db->get(), reference->get());
}

// --- Crash-point matrix over the ingest path -----------------------------

// One deterministic ingest workload: open the pre-built store through
// the fault env and apply the batch.
const std::vector<T>& CrashBatch() {
  static const std::vector<T> batch = {
      {"D", "follows", "A"}, {"E", "likes", "I1"}, {"A", "knows", "C"}};
  return batch;
}

void BuildCrashBaseStore(const std::string& dir) {
  S2RdfOptions options;
  options.storage_dir = dir;
  auto db = S2Rdf::Create(GraphFrom(G1()), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
}

TEST(IngestCrashMatrixTest, EveryCrashPointRollsBackOrCommits) {
  // References for the two legal post-recovery states.
  std::unique_ptr<S2Rdf> pre_ref = Rebuild(G1());
  std::vector<T> post_stream = G1();
  post_stream.insert(post_stream.end(), CrashBatch().begin(),
                     CrashBatch().end());
  std::unique_ptr<S2Rdf> post_ref = Rebuild(post_stream);

  // Pass 1: count the ingest path's mutating ops on a healthy run.
  uint64_t total_mutations = 0;
  {
    ScopedTempDir dir;
    BuildCrashBaseStore(dir.path());
    FaultInjectionEnv env;
    auto db = S2Rdf::Open(dir.path(), 9, &env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto result = (*db)->Ingest(MakeBatch(CrashBatch()));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    total_mutations = env.mutation_count();
    ASSERT_GT(total_mutations, 5u);  // Dictionary + tables + manifest.
  }

  // Pass 2: crash at every point, in both styles, and reboot.
  for (FaultInjectionEnv::CrashStyle style :
       {FaultInjectionEnv::CrashStyle::kClean,
        FaultInjectionEnv::CrashStyle::kTorn}) {
    for (uint64_t k = 0; k < total_mutations; ++k) {
      SCOPED_TRACE("style=" + std::to_string(static_cast<int>(style)) +
                   " crash_after=" + std::to_string(k));
      ScopedTempDir dir;
      BuildCrashBaseStore(dir.path());
      bool committed = false;
      {
        FaultInjectionEnv env;
        env.set_crash_style(style);
        auto db = S2Rdf::Open(dir.path(), 9, &env);
        ASSERT_TRUE(db.ok()) << db.status().ToString();
        env.CrashAfterMutations(k);
        // Crash points past the manifest flip still report success —
        // only best-effort cleanup remains at that point.
        committed = (*db)->Ingest(MakeBatch(CrashBatch())).ok();
      }
      // "Reboot" with a healthy environment: the store must recover to
      // exactly generation 1 (rolled back) or generation 2 (committed),
      // with no quarantine, no staging debris, and tables byte-identical
      // to the corresponding rebuild.
      auto db = S2Rdf::Open(dir.path());
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      const storage::RecoveryReport& report = (*db)->recovery_report();
      EXPECT_EQ(report.tables_quarantined, 0u);
      ASSERT_TRUE(report.generation == 1u || report.generation == 2u)
          << report.generation;
      if (committed) EXPECT_EQ(report.generation, 2u);
      auto files = ListDir(dir.path());
      ASSERT_TRUE(files.ok());
      for (const std::string& file : *files) {
        EXPECT_FALSE(EndsWith(file, ".tmp")) << file;
      }
      S2Rdf* expected =
          report.generation == 2u ? post_ref.get() : pre_ref.get();
      ExpectStoresIdentical(db->get(), expected);
      ExpectSameAnswers(db->get(), expected);
    }
  }
}

TEST(IngestCrashMatrixTest, BitFlipAtEveryWriteSiteIsNeverSilent) {
  std::unique_ptr<S2Rdf> pre_ref = Rebuild(G1());
  std::vector<T> post_stream = G1();
  post_stream.insert(post_stream.end(), CrashBatch().begin(),
                     CrashBatch().end());
  std::unique_ptr<S2Rdf> post_ref = Rebuild(post_stream);

  uint64_t total_writes = 0;
  {
    ScopedTempDir dir;
    BuildCrashBaseStore(dir.path());
    FaultInjectionEnv env;
    auto db = S2Rdf::Open(dir.path(), 9, &env);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Ingest(MakeBatch(CrashBatch())).ok());
    total_writes = env.write_count();
    ASSERT_GT(total_writes, 3u);
  }

  for (uint64_t k = 0; k < total_writes; ++k) {
    SCOPED_TRACE("flip_write=" + std::to_string(k));
    ScopedTempDir dir;
    BuildCrashBaseStore(dir.path());
    {
      FaultInjectionEnv env;
      auto db = S2Rdf::Open(dir.path(), 9, &env);
      ASSERT_TRUE(db.ok());
      env.FlipBitInWrite(k);
      // The write itself reports success; the batch may commit, abort
      // on a later verification, or leave damage for recovery. All are
      // legal — silence about wrong DATA is not.
      (void)(*db)->Ingest(MakeBatch(CrashBatch()));
    }
    // Reboot: the flip must never produce silently wrong data. Either
    // the damage was caught before commit (rollback — answers match the
    // pre reference), or the flip landed in a committed file and
    // recovery's checksum pass detected it (quarantine; queries then
    // degrade to a superset scan or fail loudly, never answer from the
    // corrupt bytes). A clean reopen with nothing quarantined MUST match
    // one of the two references exactly.
    auto db = S2Rdf::Open(dir.path());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const storage::RecoveryReport& report = (*db)->recovery_report();
    ASSERT_TRUE(report.generation == 1u || report.generation == 2u)
        << report.generation;
    if (report.tables_quarantined == 0u) {
      S2Rdf* expected =
          report.generation == 2u ? post_ref.get() : pre_ref.get();
      ExpectSameAnswers(db->get(), expected);
    } else {
      // Detected corruption: any query that still succeeds (degraded
      // superset scan) must agree with the committed generation.
      S2Rdf* expected =
          report.generation == 2u ? post_ref.get() : pre_ref.get();
      for (const char* q : {kQ1, kLikes, kSpo}) {
        auto result = (*db)->Execute(q);
        if (!result.ok()) continue;  // Loud failure is acceptable.
        std::vector<std::vector<std::string>> rows =
            (*db)->DecodeRows(result->table);
        std::sort(rows.begin(), rows.end());
        EXPECT_EQ(rows, SortedRows(expected, q)) << q;
      }
    }
  }
}

// --- Deferred maintenance (staleness) ------------------------------------

TEST(IngestDeferredTest, StaleDegradationThenRefreshConverges) {
  ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  auto db = S2Rdf::Create(GraphFrom(G1()), options);
  ASSERT_TRUE(db.ok());

  IngestBatch batch = MakeBatch({{"D", "follows", "A"}, {"D", "likes", "I1"}});
  batch.defer_extvp_maintenance = true;
  auto result = (*db)->Ingest(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->triples_added, 2u);
  EXPECT_EQ(result->extvp_tables_updated, 0u);
  EXPECT_EQ(result->stale_sources_marked, 2u);
  EXPECT_EQ((*db)->catalog().stale_source_count(), 2u);

  // Queries stay correct: stale reductions are never scanned.
  std::vector<T> stream = G1();
  stream.push_back({"D", "follows", "A"});
  stream.push_back({"D", "likes", "I1"});
  std::unique_ptr<S2Rdf> reference = Rebuild(stream);
  ExpectSameAnswers(db->get(), reference.get());

  // The cost optimizer ignores stale statistics and counts the
  // conservative fallback.
  QueryRequest request;
  request.query = kQ1;
  request.options.optimizer.mode = OptimizerMode::kCost;
  ASSERT_TRUE((*db)->Execute(request).ok());
  EXPECT_GT((*db)->catalog().stale_sf_fallbacks(), 0u);

  // Staleness is durable: it survives a reopen via the manifest.
  db->reset();
  auto reopened = S2Rdf::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->catalog().stale_source_count(), 2u);
  ExpectSameAnswers(reopened->get(), reference.get());

  // A further non-deferred batch must not delta-maintain pairs whose
  // sources are stale (their reductions already miss rows).
  auto more = (*reopened)->Ingest(MakeBatch({{"E", "follows", "D"}}));
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  stream.push_back({"E", "follows", "D"});
  reference = Rebuild(stream);
  ExpectSameAnswers(reopened->get(), reference.get());
  EXPECT_EQ((*reopened)->catalog().stale_source_count(), 2u);

  // Refresh recomputes everything stale and converges to the rebuild.
  auto refreshed = (*reopened)->RefreshStaleExtVp();
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_GT(*refreshed, 0u);
  EXPECT_EQ((*reopened)->catalog().stale_source_count(), 0u);
  ExpectStoresIdentical(reopened->get(), reference.get());
  ExpectSameAnswers(reopened->get(), reference.get());

  // Idempotent when nothing is stale.
  auto again = (*reopened)->RefreshStaleExtVp();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

// --- Quarantine interaction (recovery races) -----------------------------

// Flips one bit in the middle of every matching table file.
int CorruptTables(const std::string& dir, const std::string& prefix) {
  auto files = ListDir(dir);
  EXPECT_TRUE(files.ok());
  int corrupted = 0;
  for (const std::string& file : *files) {
    if (!StartsWith(file, prefix) || !EndsWith(file, ".s2tb")) continue;
    std::string blob;
    EXPECT_TRUE(ReadFile(dir + "/" + file, &blob).ok());
    blob[blob.size() / 2] ^= 0x01;
    EXPECT_TRUE(WriteFile(dir + "/" + file, blob).ok());
    ++corrupted;
  }
  return corrupted;
}

TEST(IngestRecoveryTest, QuarantinedVpReingestedUnderSameName) {
  ScopedTempDir dir;
  {
    S2RdfOptions options;
    options.storage_dir = dir.path();
    auto created = S2Rdf::Create(GraphFrom(G1()), options);
    ASSERT_TRUE(created.ok());
  }
  ASSERT_GT(CorruptTables(dir.path(), "vp_likes"), 0);

  auto db = S2Rdf::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_GE((*db)->recovery_report().tables_quarantined, 1u);
  const std::string vp_likes = VpTableName(
      (*db)->graph().dictionary(),
      *(*db)->graph().dictionary().Find("<likes>"));
  ASSERT_TRUE((*db)->catalog().IsQuarantined(vp_likes));

  // Ingest a batch under the quarantined predicate: the pre-batch VP
  // rows are reconstructed from the triples table (byte-identical), so
  // the commit rewrites the table whole — self-healing the quarantine.
  auto result = (*db)->Ingest(MakeBatch({{"D", "likes", "I1"}}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE((*db)->catalog().IsQuarantined(vp_likes));

  std::vector<T> stream = G1();
  stream.push_back({"D", "likes", "I1"});
  std::unique_ptr<S2Rdf> reference = Rebuild(stream);
  ExpectSameAnswers(db->get(), reference.get());

  // A fresh Recover must verify the re-ingested table (no re-quarantine
  // under the same name) and sweep the superseded corrupt file.
  db->reset();
  auto reopened = S2Rdf::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_report().tables_quarantined, 0u);
  EXPECT_FALSE((*reopened)->catalog().IsQuarantined(vp_likes));
  ExpectStoresIdentical(reopened->get(), reference.get());
  ExpectSameAnswers(reopened->get(), reference.get());
}

// --- Transient reads during ingest ---------------------------------------

TEST(IngestRetryTest, TransientReadFailuresAreRetriedAndCounted) {
  ScopedTempDir dir;
  BuildCrashBaseStore(dir.path());
  FaultInjectionEnv env;
  auto db = S2Rdf::Open(dir.path(), 9, &env);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // No sleeping in tests: the retry path's backoff is injectable.
  Catalog::SetRetrySleepFnForTest([](std::chrono::milliseconds) {});
  env.FailNextReads(2);
  auto result = (*db)->Ingest(MakeBatch({{"D", "follows", "A"}}));
  Catalog::SetRetrySleepFnForTest(nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE((*db)->catalog().read_retries(), 2u);

  std::vector<T> stream = G1();
  stream.push_back({"D", "follows", "A"});
  std::unique_ptr<S2Rdf> reference = Rebuild(stream);
  ExpectStoresIdentical(db->get(), reference.get());
}

// --- HTTP surface ---------------------------------------------------------

TEST(IngestHttpTest, PostIngestDeferAndRefreshEndToEnd) {
  auto db = S2Rdf::Create(GraphFrom(G1()), S2RdfOptions());
  ASSERT_TRUE(db.ok());
  server::SparqlEndpoint endpoint(db->get());

  server::HttpRequest request;
  request.method = "GET";
  request.path = "/ingest";
  EXPECT_EQ(endpoint.Handle(request).status_code, 405);

  request.method = "POST";
  request.body = "<D> <follows> <A> .\n<A> <likes> <I1> .\n";
  server::HttpResponse response = endpoint.Handle(request);
  EXPECT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"triples_in_batch\":2"), std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("\"triples_added\":1"), std::string::npos)
      << response.body;  // <A> <likes> <I1> is already stored.
  EXPECT_EQ(SortedRows(db->get(), "SELECT * WHERE { <D> <follows> ?o }")
                .size(),
            1u);

  // Deferred batch, then refresh.
  request.query_string = "defer=1";
  request.body = "<E> <likes> <I2> .\n";
  response = endpoint.Handle(request);
  EXPECT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"stale_sources_marked\":1"),
            std::string::npos)
      << response.body;
  EXPECT_EQ((*db)->catalog().stale_source_count(), 1u);

  request.query_string = "refresh=1";
  request.body.clear();
  response = endpoint.Handle(request);
  EXPECT_EQ(response.status_code, 200) << response.body;
  EXPECT_NE(response.body.find("\"extvp_refreshed\""), std::string::npos);
  EXPECT_EQ((*db)->catalog().stale_source_count(), 0u);

  // A malformed body fails loudly and is counted.
  request.query_string.clear();
  request.body = "this is not n-triples";
  EXPECT_EQ(endpoint.Handle(request).status_code, 400);

  request.method = "GET";
  request.path = "/metrics";
  request.body.clear();
  response = endpoint.Handle(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("s2rdf_ingest_batches_total 2"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("s2rdf_ingest_failures_total 1"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("s2rdf_read_retries_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_stale_extvp_sources 0"),
            std::string::npos)
      << response.body;
}

}  // namespace
}  // namespace s2rdf::core
