#include <gtest/gtest.h>

#include "engine/table.h"
#include "rdf/dictionary.h"
#include "sparql/results_io.h"

namespace s2rdf::sparql {
namespace {

struct Fixture {
  rdf::Dictionary dict;
  engine::Table table{std::vector<std::string>{"x", "name", "age"}};

  Fixture() {
    rdf::TermId a = dict.Encode("<http://e/A>");
    rdf::TermId name = dict.Encode("\"Alice \\\"Al\\\"\"@en");
    rdf::TermId age =
        dict.Encode("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
    rdf::TermId blank = dict.Encode("_:b0");
    table.AppendRow({a, name, age});
    table.AppendRow({blank, engine::kNullTermId, age});
  }
};

TEST(ResultsIoTest, JsonFormat) {
  Fixture f;
  std::string json = ResultsToJson(f.table, f.dict);
  EXPECT_NE(json.find("\"vars\": [\"x\", \"name\", \"age\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"uri\", \"value\": \"http://e/A\""),
            std::string::npos);
  EXPECT_NE(json.find("\"xml:lang\": \"en\""), std::string::npos);
  EXPECT_NE(json.find("\"datatype\": "
                      "\"http://www.w3.org/2001/XMLSchema#integer\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"bnode\""), std::string::npos);
  // The escaped quote inside the literal survives JSON escaping.
  EXPECT_NE(json.find("Alice \\\"Al\\\""), std::string::npos);
  // Unbound binding omitted: the second row has no "name" key after
  // its bnode binding.
  size_t second_row = json.find("bnode");
  ASSERT_NE(second_row, std::string::npos);
  EXPECT_EQ(json.find("\"name\"", second_row), std::string::npos);
}

TEST(ResultsIoTest, XmlFormat) {
  Fixture f;
  std::string xml = ResultsToXml(f.table, f.dict);
  EXPECT_NE(xml.find("<variable name=\"x\"/>"), std::string::npos);
  EXPECT_NE(xml.find("<uri>http://e/A</uri>"), std::string::npos);
  EXPECT_NE(xml.find("<literal xml:lang=\"en\">"), std::string::npos);
  EXPECT_NE(xml.find("<bnode>b0</bnode>"), std::string::npos);
  EXPECT_NE(xml.find("datatype=\"http://www.w3.org/2001/"
                     "XMLSchema#integer\""),
            std::string::npos);
}

TEST(ResultsIoTest, CsvQuotesSpecialCharacters) {
  rdf::Dictionary dict;
  engine::Table t({"v"});
  t.AppendRow({dict.Encode("\"a,b\"")});
  t.AppendRow({dict.Encode("\"say \\\"hi\\\"\"")});
  t.AppendRow({dict.Encode("<http://e/plain>")});
  std::string csv = ResultsToCsv(t, dict);
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("http://e/plain"), std::string::npos);
}

TEST(ResultsIoTest, TsvUsesNTriplesSyntax) {
  Fixture f;
  std::string tsv = ResultsToTsv(f.table, f.dict);
  EXPECT_NE(tsv.find("?x\t?name\t?age"), std::string::npos);
  EXPECT_NE(tsv.find("<http://e/A>"), std::string::npos);
  EXPECT_NE(tsv.find("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
            std::string::npos);
}

TEST(ResultsIoTest, AskFormats) {
  EXPECT_NE(AskToJson(true).find("\"boolean\": true"), std::string::npos);
  EXPECT_NE(AskToJson(false).find("\"boolean\": false"), std::string::npos);
  EXPECT_NE(AskToXml(true).find("<boolean>true</boolean>"),
            std::string::npos);
}

TEST(ResultsIoTest, EmptyTable) {
  rdf::Dictionary dict;
  engine::Table t({"a"});
  EXPECT_NE(ResultsToJson(t, dict).find("\"bindings\": [\n  ]"),
            std::string::npos);
  EXPECT_NE(ResultsToXml(t, dict).find("<results>\n  </results>"),
            std::string::npos);
}

}  // namespace
}  // namespace s2rdf::sparql
