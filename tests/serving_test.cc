// Live-socket serving tests: the observability contract of the full
// HTTP path (acceptor -> worker pool -> Handle), which the in-process
// Handle() tests cannot cover — response headers on the wire, admission
// metrics that only move when real connections queue, /statusz under a
// running pool. Suites skip (printing SKIPPED, which ctest maps to the
// Skipped state via SKIP_REGULAR_EXPRESSION) on hosts where binding a
// loopback listener fails.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "common/build_info.h"
#include "core/s2rdf.h"
#include "server/sparql_endpoint.h"

namespace s2rdf::server {
namespace {

std::string RoundTrip(int port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  (void)!write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RoundTrip(port, "GET " + path +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: close\r\n\r\n");
}

constexpr char kQueryPath[] =
    "/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
    "%3Fo%20%7D";

class ServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph g;
    g.AddIris("A", "follows", "B");
    g.AddIris("B", "follows", "C");
    auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    endpoint_ = std::make_unique<SparqlEndpoint>(db_.get());
    auto port = endpoint_->Start(0);
    if (!port.ok()) {
      GTEST_SKIP() << "SKIPPED: cannot bind a loopback listener: "
                   << port.status().ToString();
    }
    port_ = *port;
  }

  void TearDown() override {
    if (endpoint_ != nullptr) endpoint_->Stop();
  }

  std::unique_ptr<core::S2Rdf> db_;
  std::unique_ptr<SparqlEndpoint> endpoint_;
  int port_ = 0;
};

// Extracts the X-S2RDF-Trace-Id header value from a raw response.
std::string TraceIdOf(const std::string& response) {
  const std::string key = "X-S2RDF-Trace-Id: ";
  size_t pos = response.find(key);
  if (pos == std::string::npos) return "";
  size_t end = response.find("\r\n", pos);
  return response.substr(pos + key.size(), end - pos - key.size());
}

TEST_F(ServingTest, EveryQueryResponseCarriesATraceIdOnTheWire) {
  std::string ok = Get(port_, kQueryPath);
  EXPECT_NE(ok.find("HTTP/1.1 200"), std::string::npos);
  std::string trace = TraceIdOf(ok);
  ASSERT_EQ(trace.size(), 16u) << ok;

  // Error responses carry one too: a failing request must stay
  // traceable.
  std::string bad = Get(port_, "/sparql?query=NOT%20SPARQL");
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  std::string bad_trace = TraceIdOf(bad);
  EXPECT_EQ(bad_trace.size(), 16u);
  EXPECT_NE(trace, bad_trace);

  // The same id indexes /debug/queries: client-side header and
  // server-side introspection agree end to end.
  std::string debug = Get(port_, "/debug/queries");
  EXPECT_NE(debug.find("trace=" + trace), std::string::npos);
  EXPECT_NE(debug.find("trace=" + bad_trace), std::string::npos);
}

TEST_F(ServingTest, DistinctQueriesMintDistinctTraceIds) {
  std::string a = TraceIdOf(Get(port_, kQueryPath));
  std::string b = TraceIdOf(Get(port_, kQueryPath));
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NE(a, b);
}

TEST_F(ServingTest, StatuszRendersBuildStoreAndPoolState) {
  // Serve one query first so the counters are non-trivial.
  EXPECT_NE(Get(port_, kQueryPath).find("HTTP/1.1 200"), std::string::npos);
  std::string statusz = Get(port_, "/statusz");
  EXPECT_NE(statusz.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(statusz.find(std::string("build: sha=") +
                         GetBuildInfo().git_sha),
            std::string::npos);
  EXPECT_NE(statusz.find("uptime_ms: "), std::string::npos);
  EXPECT_NE(statusz.find("store: tables="), std::string::npos);
  EXPECT_NE(statusz.find("queries: total=1"), std::string::npos);
  // The worker pool is running, so /statusz reports its saturation.
  EXPECT_NE(statusz.find("workers: total=4 busy="), std::string::npos);
  EXPECT_NE(statusz.find("task_pool: width="), std::string::npos);
}

TEST_F(ServingTest, HealthEchoesTheBuildSha) {
  std::string health = Get(port_, "/health");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(health.find(std::string("ok ") + GetBuildInfo().git_sha),
            std::string::npos);
}

TEST_F(ServingTest, AdmissionAndSaturationMetricsMoveUnderRealTraffic) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(Get(port_, kQueryPath).find("HTTP/1.1 200"),
              std::string::npos);
  }
  std::string metrics = Get(port_, "/metrics");
  // Build identity rides as an info metric.
  EXPECT_NE(metrics.find("s2rdf_build_info{sha=\""), std::string::npos);
  // Worker saturation gauge exists (its value is racy; presence is the
  // contract).
  EXPECT_NE(metrics.find("s2rdf_workers_busy"), std::string::npos);
  // Every admitted connection passed through the bounded queue, so the
  // admission-wait histogram observed at least the requests above plus
  // this /metrics request's own admission.
  size_t pos = metrics.find("s2rdf_admission_wait_seconds_count ");
  ASSERT_NE(pos, std::string::npos);
  long count = std::atol(
      metrics.c_str() + pos + sizeof("s2rdf_admission_wait_seconds_count"));
  EXPECT_GE(count, 4);
  // Task-pool queue instrumentation renders alongside.
  EXPECT_NE(metrics.find("s2rdf_task_pool_queue_depth"), std::string::npos);
  EXPECT_NE(metrics.find("s2rdf_task_pool_queue_wait_seconds_count"),
            std::string::npos);
}

}  // namespace
}  // namespace s2rdf::server
