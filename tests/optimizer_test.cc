#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/compiler.h"
#include "core/cost_model.h"
#include "core/optimizer.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

// Tests for the Optimize stage of the compile pipeline (core/optimizer):
// the cost model, the SF-statistics cardinality estimates surfaced in
// EXPLAIN ANALYZE, and — most importantly — plan equivalence: over the
// whole WatDiv workload the cost-based optimizer must return the exact
// solution bag the paper heuristic returns, on every layout, serial and
// parallel, and on ExtVP-degraded stores where the statistics have
// outlived the tables they describe.

namespace s2rdf::core {
namespace {

constexpr double kScaleFactor = 0.05;

// One WatDiv store shared by every test in this binary (building the
// layouts dominates the suite's runtime).
S2Rdf* SharedDb() {
  static std::unique_ptr<S2Rdf> db = [] {
    watdiv::GeneratorOptions gen;
    gen.scale_factor = kScaleFactor;
    auto created = S2Rdf::Create(watdiv::Generate(gen), S2RdfOptions());
    if (!created.ok()) return std::unique_ptr<S2Rdf>();
    return std::move(*created);
  }();
  return db.get();
}

// Deterministic instantiation of a workload template (same seed per
// name, so paper and cost modes see byte-identical query text).
std::string QueryText(const watdiv::QueryTemplate& tmpl) {
  SplitMix64 rng(17);
  return watdiv::InstantiateQuery(tmpl, kScaleFactor, &rng);
}

StatusOr<QueryResult> RunQuery(S2Rdf* db, const std::string& text,
                          OptimizerMode mode, Layout layout,
                          bool collect_profile = false) {
  QueryRequest request;
  request.query = text;
  request.options.layout = layout;
  request.options.optimizer.mode = mode;
  request.options.collect_profile = collect_profile;
  return db->Execute(request);
}

// Decoded, sorted solution rows — the canonical comparison form.
std::vector<std::vector<std::string>> SortedRows(S2Rdf* db,
                                                 const QueryResult& result) {
  std::vector<std::vector<std::string>> rows = db->DecodeRows(result.table);
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> CorpusNames() {
  std::vector<std::string> names;
  for (const auto& q : watdiv::BasicTestingQueries()) names.push_back(q.name);
  for (const auto& q : watdiv::IncrementalLinearQueries()) {
    names.push_back(q.name);
  }
  return names;
}

// --- Plan equivalence over the WatDiv corpus -----------------------------

class PlanEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PlanEquivalenceTest, CostModeMatchesPaperModeOnEveryLayout) {
  S2Rdf* db = SharedDb();
  ASSERT_NE(db, nullptr);
  const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(GetParam());
  ASSERT_NE(tmpl, nullptr);
  const std::string text = QueryText(*tmpl);

  for (Layout layout : {Layout::kExtVp, Layout::kVp}) {
    SCOPED_TRACE("layout=" + std::to_string(static_cast<int>(layout)));
    auto paper = RunQuery(db, text, OptimizerMode::kPaper, layout);
    auto cost = RunQuery(db, text, OptimizerMode::kCost, layout);
    ASSERT_TRUE(paper.ok()) << paper.status().ToString();
    ASSERT_TRUE(cost.ok()) << cost.status().ToString();
    EXPECT_EQ(paper->optimizer_mode, "paper");
    EXPECT_EQ(cost->optimizer_mode, "cost");
    EXPECT_EQ(SortedRows(db, *paper), SortedRows(db, *cost));
  }
}

INSTANTIATE_TEST_SUITE_P(WatDiv, PlanEquivalenceTest,
                         ::testing::ValuesIn(CorpusNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

// Equivalence must survive partition-parallel execution: the cost-based
// trees are bushy and algo-annotated, so they exercise the parallel
// operators differently than the paper's left-deep hash chains.
TEST(ParallelEquivalenceTest, CostModeMatchesPaperModeInParallel) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = kScaleFactor;
  S2RdfOptions options;
  options.parallel_execution = true;
  auto db = S2Rdf::Create(watdiv::Generate(gen), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  for (const auto& q : watdiv::BasicTestingQueries()) {
    SCOPED_TRACE(q.name);
    const std::string text = QueryText(q);
    auto paper = RunQuery(db->get(), text, OptimizerMode::kPaper, Layout::kExtVp);
    auto cost = RunQuery(db->get(), text, OptimizerMode::kCost, Layout::kExtVp);
    ASSERT_TRUE(paper.ok()) << paper.status().ToString();
    ASSERT_TRUE(cost.ok()) << cost.status().ToString();
    EXPECT_EQ(SortedRows(db->get(), *paper), SortedRows(db->get(), *cost));
  }
}

// --- Degraded catalogs ---------------------------------------------------
//
// SF statistics exist even for tables the store no longer has (Sec. 5.2
// footnote in core/cardinality.h): after every ExtVP table is corrupted
// and quarantined, both optimizers must still agree — with each other
// and with the healthy store.

TEST(DegradedStoreTest, OptimizersAgreeAfterExtVpQuarantine) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = 0.02;
  rdf::Graph graph = watdiv::Generate(gen);

  s2rdf::ScopedTempDir dir;
  std::vector<std::string> texts;
  std::vector<std::vector<std::vector<std::string>>> healthy;
  {
    S2RdfOptions options;
    options.storage_dir = dir.path();
    auto db = S2Rdf::Create(std::move(graph), options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (const auto& q : watdiv::BasicTestingQueries()) {
      SplitMix64 rng(17);
      texts.push_back(watdiv::InstantiateQuery(q, gen.scale_factor, &rng));
      auto result =
          RunQuery(db->get(), texts.back(), OptimizerMode::kPaper, Layout::kExtVp);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      healthy.push_back(SortedRows(db->get(), *result));
    }
  }

  // Flip a bit in the middle of every persisted ExtVP table.
  auto files = s2rdf::ListDir(dir.path());
  ASSERT_TRUE(files.ok());
  int corrupted = 0;
  for (const std::string& file : *files) {
    if (!s2rdf::StartsWith(file, "extvp_") ||
        !s2rdf::EndsWith(file, ".s2tb")) {
      continue;
    }
    std::string blob;
    ASSERT_TRUE(s2rdf::ReadFile(dir.path() + "/" + file, &blob).ok());
    blob[blob.size() / 2] ^= 0x01;
    ASSERT_TRUE(s2rdf::WriteFile(dir.path() + "/" + file, blob).ok());
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);

  auto reopened = S2Rdf::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  for (size_t i = 0; i < texts.size(); ++i) {
    SCOPED_TRACE(texts[i]);
    auto paper =
        RunQuery(reopened->get(), texts[i], OptimizerMode::kPaper, Layout::kExtVp);
    auto cost =
        RunQuery(reopened->get(), texts[i], OptimizerMode::kCost, Layout::kExtVp);
    ASSERT_TRUE(paper.ok()) << paper.status().ToString();
    ASSERT_TRUE(cost.ok()) << cost.status().ToString();
    EXPECT_EQ(SortedRows(reopened->get(), *paper), healthy[i]);
    EXPECT_EQ(SortedRows(reopened->get(), *cost), healthy[i]);
  }
}

// --- Estimated-vs-actual q-error -----------------------------------------

double QError(double estimated, double actual) {
  // +1 smoothing keeps empty operators comparable.
  const double e = estimated + 1.0;
  const double a = actual + 1.0;
  return std::max(e / a, a / e);
}

TEST(QErrorTest, EstimatesAnnotateEveryBgpOperatorWithinBounds) {
  S2Rdf* db = SharedDb();
  ASSERT_NE(db, nullptr);
  // Bounds calibrated empirically on this generator at scale 0.05. The
  // catalog knows scans almost exactly (residual-equality discounts are
  // the only guess); joins compound the independence assumption, so the
  // per-operator ceiling is loose — the point is to catch order-of-
  // magnitude regressions in the estimator, not to pin exact values.
  constexpr double kMaxScanQError = 64.0;
  constexpr double kMaxJoinQError = 1024.0;
  size_t annotated = 0;
  for (const auto& q : watdiv::BasicTestingQueries()) {
    SCOPED_TRACE(q.name);
    auto result = RunQuery(db, QueryText(q), OptimizerMode::kCost, Layout::kExtVp,
                      /*collect_profile=*/true);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_FALSE(result->profile_data.operators.empty());
    for (const auto& op : result->profile_data.operators) {
      const bool is_scan = op.label.rfind("Scan", 0) == 0;
      const bool is_join = op.label.rfind("Join", 0) == 0 ||
                           op.label.rfind("MergeJoin", 0) == 0;
      if (!is_scan && !is_join) continue;
      // The tentpole contract: every BGP-pipeline operator carries the
      // optimizer's estimate into EXPLAIN ANALYZE.
      ASSERT_GE(op.estimated_rows, 0.0) << op.label;
      ++annotated;
      const double q_error =
          QError(op.estimated_rows, static_cast<double>(op.output_rows));
      EXPECT_LE(q_error, is_scan ? kMaxScanQError : kMaxJoinQError)
          << op.label << " est=" << op.estimated_rows
          << " actual=" << op.output_rows;
    }
  }
  EXPECT_GT(annotated, 0u);
}

// --- Optimizer knobs -----------------------------------------------------

TEST(OptimizerKnobsTest, SemiJoinToggleChangesPlanNotResults) {
  S2Rdf* db = SharedDb();
  ASSERT_NE(db, nullptr);
  const watdiv::QueryTemplate* tmpl = watdiv::FindQuery("IL-3-8");
  ASSERT_NE(tmpl, nullptr);
  const std::string text = QueryText(*tmpl);

  QueryRequest with_reducers;
  with_reducers.query = text;
  with_reducers.options.layout = Layout::kVp;
  with_reducers.options.optimizer.mode = OptimizerMode::kCost;
  with_reducers.options.optimizer.semi_join_min_rows = 0;
  QueryRequest without_reducers = with_reducers;
  without_reducers.options.optimizer.enable_semi_join = false;

  auto on = db->Execute(with_reducers);
  auto off = db->Execute(without_reducers);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_NE(on->plan.find("SemiJoinReduce"), std::string::npos) << on->plan;
  EXPECT_EQ(off->plan.find("SemiJoinReduce"), std::string::npos) << off->plan;
  EXPECT_EQ(SortedRows(db, *on), SortedRows(db, *off));
}

TEST(OptimizerKnobsTest, GreedyFallbackMatchesDpResults) {
  S2Rdf* db = SharedDb();
  ASSERT_NE(db, nullptr);
  for (const char* name : {"C2", "F4", "IL-3-10"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    if (tmpl == nullptr) continue;
    SCOPED_TRACE(name);
    const std::string text = QueryText(*tmpl);
    QueryRequest dp;
    dp.query = text;
    dp.options.optimizer.mode = OptimizerMode::kCost;
    QueryRequest greedy = dp;
    greedy.options.optimizer.dp_pattern_cap = 0;
    auto dp_result = db->Execute(dp);
    auto greedy_result = db->Execute(greedy);
    ASSERT_TRUE(dp_result.ok()) << dp_result.status().ToString();
    ASSERT_TRUE(greedy_result.ok()) << greedy_result.status().ToString();
    EXPECT_EQ(SortedRows(db, *dp_result), SortedRows(db, *greedy_result));

    // Determinism: recompiling the same request reproduces the plan.
    auto again = db->Execute(dp);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->plan_fingerprint, dp_result->plan_fingerprint);
    EXPECT_EQ(again->plan, dp_result->plan);
  }
}

TEST(OptimizerKnobsTest, DeprecatedJoinOrderAliasStillHonored) {
  S2Rdf* db = SharedDb();
  ASSERT_NE(db, nullptr);
  const watdiv::QueryTemplate* tmpl = watdiv::FindQuery("F3");
  ASSERT_NE(tmpl, nullptr);
  const std::string text = QueryText(*tmpl);

  CompilerOptions legacy;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // Exercises the deprecated alias on purpose (back-compat coverage).
  legacy.optimize_join_order = false;  // s2rdf-lint: allow(deprecated-api)
#pragma GCC diagnostic pop
  CompilerOptions modern;
  modern.optimizer.reorder_joins = false;

  EXPECT_FALSE(EffectiveOptimizerOptions(legacy).reorder_joins);
  EXPECT_FALSE(EffectiveOptimizerOptions(modern).reorder_joins);

  auto via_legacy = db->ExecuteWithOptions(text, legacy);
  auto via_modern = db->ExecuteWithOptions(text, modern);
  ASSERT_TRUE(via_legacy.ok()) << via_legacy.status().ToString();
  ASSERT_TRUE(via_modern.ok()) << via_modern.status().ToString();
  EXPECT_EQ(via_legacy->plan_fingerprint, via_modern->plan_fingerprint);
  EXPECT_EQ(SortedRows(db, *via_legacy), SortedRows(db, *via_modern));
}

// --- Analysis and estimator primitives -----------------------------------

BgpAnalysis MakeChainAnalysis() {
  // A 3-pattern chain: p0 -(0.01)- p1 -(0.5)- p2, scan sizes 1000/10/100.
  BgpAnalysis analysis;
  analysis.patterns.resize(3);
  analysis.patterns[0].scan_rows = 1000.0;
  analysis.patterns[1].scan_rows = 10.0;
  analysis.patterns[2].scan_rows = 100.0;
  for (auto& p : analysis.patterns) p.scan_cost = p.scan_rows;
  analysis.patterns[0].variables = {"a", "b"};
  analysis.patterns[1].variables = {"b", "c"};
  analysis.patterns[2].variables = {"c", "d"};
  JoinEdge e01;
  e01.a = 0;
  e01.b = 1;
  e01.shared_vars = 1;
  e01.shared_var = "b";
  e01.selectivity = 0.01;
  JoinEdge e12;
  e12.a = 1;
  e12.b = 2;
  e12.shared_vars = 1;
  e12.shared_var = "c";
  e12.selectivity = 0.5;
  analysis.edges = {e01, e12};
  return analysis;
}

TEST(AnalysisTest, FindEdgeIsOrderInsensitive) {
  BgpAnalysis analysis = MakeChainAnalysis();
  ASSERT_NE(FindEdge(analysis, 0, 1), nullptr);
  ASSERT_NE(FindEdge(analysis, 1, 0), nullptr);
  EXPECT_EQ(FindEdge(analysis, 0, 1), FindEdge(analysis, 1, 0));
  EXPECT_EQ(FindEdge(analysis, 0, 2), nullptr);
}

TEST(AnalysisTest, EstimateSubsetRowsAppliesInternalEdges) {
  BgpAnalysis analysis = MakeChainAnalysis();
  EXPECT_DOUBLE_EQ(EstimateSubsetRows(analysis, 0b001), 1000.0);
  EXPECT_DOUBLE_EQ(EstimateSubsetRows(analysis, 0b011),
                   1000.0 * 10.0 * 0.01);
  // The (0,2) pair has no edge: plain cross-product estimate.
  EXPECT_DOUBLE_EQ(EstimateSubsetRows(analysis, 0b101), 1000.0 * 100.0);
  EXPECT_DOUBLE_EQ(EstimateSubsetRows(analysis, 0b111),
                   1000.0 * 10.0 * 100.0 * 0.01 * 0.5);
}

TEST(AnalysisTest, OptimizersAreDeterministicOnHandBuiltAnalysis) {
  BgpAnalysis analysis = MakeChainAnalysis();
  OptimizerOptions options;
  for (OptimizerMode mode : {OptimizerMode::kPaper, OptimizerMode::kCost}) {
    options.mode = mode;
    auto optimizer = Optimizer::Create(options);
    auto first = optimizer->Optimize(analysis);
    auto second = optimizer->Optimize(analysis);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    // Same tree both times: compare leaf order and estimates.
    std::vector<int> leaves_first, leaves_second;
    auto collect = [](const JoinTree* t, std::vector<int>* out,
                      auto&& self) -> void {
      if (t == nullptr) return;
      if (t->is_leaf()) out->push_back(t->pattern);
      self(t->left.get(), out, self);
      self(t->right.get(), out, self);
    };
    collect(first->get(), &leaves_first, collect);
    collect(second->get(), &leaves_second, collect);
    EXPECT_EQ(leaves_first, leaves_second);
    ASSERT_EQ(leaves_first.size(), 3u);
    EXPECT_DOUBLE_EQ((*first)->est_rows, (*second)->est_rows);
  }
}

// --- Cost model ----------------------------------------------------------

TEST(CostModelTest, JoinAlgoChoiceTracksTheCheaperCost) {
  CostModel model;
  EXPECT_GT(model.ScanCost(2000.0), model.ScanCost(1000.0));

  // Small inputs: hash build is cheap, sorting is not.
  EXPECT_EQ(model.ChooseJoinAlgo(1000.0, 1000.0, 100.0),
            JoinAlgoChoice::kHash);
  // Cache-busting build side: the quadratic hash penalty crosses over.
  EXPECT_EQ(model.ChooseJoinAlgo(1e9, 1e9, 100.0),
            JoinAlgoChoice::kSortMerge);

  for (double rows : {100.0, 1e5, 1e8}) {
    const JoinAlgoChoice algo = model.ChooseJoinAlgo(rows, rows, rows);
    const double chosen = model.JoinCost(algo, rows, rows, rows);
    EXPECT_LE(chosen, model.HashJoinCost(rows, rows, rows));
    EXPECT_LE(chosen, model.SortMergeJoinCost(rows, rows, rows));
  }
}

TEST(CostModelTest, CostsAreMonotonicInOutputSize) {
  CostModel model;
  EXPECT_LT(model.HashJoinCost(1000.0, 1000.0, 10.0),
            model.HashJoinCost(1000.0, 1000.0, 1e6));
  EXPECT_LT(model.SortMergeJoinCost(1000.0, 1000.0, 10.0),
            model.SortMergeJoinCost(1000.0, 1000.0, 1e6));
  EXPECT_LT(model.SemiJoinCost(10.0, 10.0), model.SemiJoinCost(1e6, 1e6));
}

}  // namespace
}  // namespace s2rdf::core
