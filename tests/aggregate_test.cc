#include <gtest/gtest.h>

#include "core/s2rdf.h"
#include "engine/aggregate.h"
#include "rdf/graph.h"
#include "sparql/parser.h"

// SPARQL 1.1 aggregation and subqueries — the second half of the paper's
// stated future work ("subqueries and aggregations", Sec. 6.1).

namespace s2rdf {
namespace {

using engine::AggregateSpec;

std::string IntLit(long long v) {
  return "\"" + std::to_string(v) +
         "\"^^<http://www.w3.org/2001/XMLSchema#integer>";
}

// --- Engine operator --------------------------------------------------------

class GroupByOperatorTest : public ::testing::Test {
 protected:
  GroupByOperatorTest() : table_({"g", "v"}) {
    // Groups: g=A -> {1, 2, 2}, g=B -> {5}.
    a_ = dict_.Encode("<A>");
    b_ = dict_.Encode("<B>");
    one_ = dict_.Encode(IntLit(1));
    two_ = dict_.Encode(IntLit(2));
    five_ = dict_.Encode(IntLit(5));
    table_.AppendRow({a_, one_});
    table_.AppendRow({a_, two_});
    table_.AppendRow({a_, two_});
    table_.AppendRow({b_, five_});
  }

  rdf::TermId Find(const std::string& s) { return *dict_.Find(s); }

  rdf::Dictionary dict_;
  engine::Table table_;
  rdf::TermId a_, b_, one_, two_, five_;
};

TEST_F(GroupByOperatorTest, CountSumMinMaxAvgPerGroup) {
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kCountStar, "", "n", false},
      {AggregateSpec::Fn::kSum, "v", "total", false},
      {AggregateSpec::Fn::kMin, "v", "lo", false},
      {AggregateSpec::Fn::kMax, "v", "hi", false},
      {AggregateSpec::Fn::kAvg, "v", "mean", false},
  };
  auto out = engine::GroupByAggregate(table_, {"g"}, specs, &dict_, nullptr);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 2u);
  // Row order is deterministic (key id order: A first).
  EXPECT_EQ(out->At(0, 0), a_);
  EXPECT_EQ(out->At(0, 1), Find(IntLit(3)));          // COUNT(*).
  EXPECT_EQ(out->At(0, 2), Find(IntLit(5)));          // SUM.
  EXPECT_EQ(out->At(0, 3), one_);                     // MIN.
  EXPECT_EQ(out->At(0, 4), two_);                     // MAX.
  EXPECT_EQ(dict_.Decode(out->At(0, 5)),
            "\"1.66666666667\"^^<http://www.w3.org/2001/XMLSchema#double>");
  EXPECT_EQ(out->At(1, 0), b_);
  EXPECT_EQ(out->At(1, 1), Find(IntLit(1)));
  EXPECT_EQ(out->At(1, 2), five_);  // SUM of {5} reuses the int literal.
}

TEST_F(GroupByOperatorTest, CountDistinct) {
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kCount, "v", "n", true},
  };
  auto out = engine::GroupByAggregate(table_, {"g"}, specs, &dict_, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At(0, 1), Find(IntLit(2)));  // {1, 2}.
  EXPECT_EQ(out->At(1, 1), Find(IntLit(1)));
}

TEST_F(GroupByOperatorTest, ImplicitGroupOverEmptyInput) {
  engine::Table empty({"v"});
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kCountStar, "", "n", false},
      {AggregateSpec::Fn::kSum, "v", "total", false},
      {AggregateSpec::Fn::kMin, "v", "lo", false},
  };
  auto out = engine::GroupByAggregate(empty, {}, specs, &dict_, nullptr);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->NumRows(), 1u);
  EXPECT_EQ(out->At(0, 0), Find(IntLit(0)));  // COUNT = 0.
  EXPECT_EQ(out->At(0, 1), Find(IntLit(0)));  // SUM of empty = 0.
  EXPECT_EQ(out->At(0, 2), engine::kNullTermId);  // MIN unbound.
}

TEST_F(GroupByOperatorTest, UnboundBindingsAreSkipped) {
  engine::Table t({"v"});
  t.AppendRow({one_});
  t.AppendRow({engine::kNullTermId});
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kCount, "v", "n", false},
      {AggregateSpec::Fn::kCountStar, "", "all", false},
  };
  auto out = engine::GroupByAggregate(t, {}, specs, &dict_, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At(0, 0), Find(IntLit(1)));  // COUNT(?v) skips unbound.
  EXPECT_EQ(out->At(0, 1), Find(IntLit(2)));  // COUNT(*) counts rows.
}

TEST_F(GroupByOperatorTest, SumOverNonNumericIsUnbound) {
  engine::Table t({"v"});
  t.AppendRow({dict_.Encode("\"abc\"")});
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kSum, "v", "total", false},
  };
  auto out = engine::GroupByAggregate(t, {}, specs, &dict_, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->At(0, 0), engine::kNullTermId);
}

TEST_F(GroupByOperatorTest, ErrorsOnUnknownVariables) {
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kSum, "nope", "total", false},
  };
  EXPECT_FALSE(
      engine::GroupByAggregate(table_, {"g"}, specs, &dict_, nullptr).ok());
  std::vector<AggregateSpec> ok_specs = {
      {AggregateSpec::Fn::kCountStar, "", "n", false},
  };
  EXPECT_FALSE(
      engine::GroupByAggregate(table_, {"nope"}, ok_specs, &dict_, nullptr)
          .ok());
}

// --- Parser ------------------------------------------------------------------

TEST(AggregateParserTest, CountStarAndGroupBy) {
  auto q = sparql::ParseQuery(
      "SELECT ?g (COUNT(*) AS ?n) WHERE { ?g <http://e/p> ?v . } "
      "GROUP BY ?g ORDER BY DESC(?n) LIMIT 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 1u);
  EXPECT_EQ(q->aggregates[0].fn, AggregateSpec::Fn::kCountStar);
  EXPECT_EQ(q->aggregates[0].output_name, "n");
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"g"}));
  EXPECT_EQ(q->projection, (std::vector<std::string>{"g", "n"}));
  EXPECT_EQ(q->limit, 5u);
}

TEST(AggregateParserTest, AllFunctions) {
  auto q = sparql::ParseQuery(
      "SELECT (COUNT(DISTINCT ?v) AS ?a) (SUM(?v) AS ?b) (AVG(?v) AS ?c) "
      "(MIN(?v) AS ?d) (MAX(?v) AS ?e) (SAMPLE(?v) AS ?f) "
      "WHERE { ?s <http://e/p> ?v . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 6u);
  EXPECT_TRUE(q->aggregates[0].distinct);
  EXPECT_EQ(q->aggregates[1].fn, AggregateSpec::Fn::kSum);
  EXPECT_EQ(q->aggregates[5].fn, AggregateSpec::Fn::kSample);
}

TEST(AggregateParserTest, Rejections) {
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT (SUM(*) AS ?x) WHERE { ?s <p> ?v . }")
                   .ok());
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT (COUNT(?v)) WHERE { ?s <p> ?v . }")
                   .ok());  // Missing AS.
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT ?s WHERE { ?s <p> ?v . } GROUP BY")
                   .ok());
  EXPECT_FALSE(sparql::ParseQuery(
                   "SELECT ?s WHERE { ?s <p> ?v . } HAVING (?v > 2)")
                   .ok());
}

TEST(AggregateParserTest, SubqueryParses) {
  auto q = sparql::ParseQuery(
      "SELECT ?s ?n WHERE { ?s <http://e/p> ?o . "
      "{ SELECT ?s (COUNT(*) AS ?n) WHERE { ?s <http://e/q> ?x . } "
      "GROUP BY ?s } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.subqueries.size(), 1u);
  EXPECT_EQ(q->where.subqueries[0]->aggregates.size(), 1u);
  // Subquery projection is visible to the outer query.
  auto vars = q->where.AllVariables();
  EXPECT_NE(std::find(vars.begin(), vars.end(), "n"), vars.end());
}

// --- End to end ----------------------------------------------------------------

class AggregateQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph g;
    g.AddIris("A", "follows", "B");
    g.AddIris("A", "follows", "C");
    g.AddIris("A", "follows", "D");
    g.AddIris("B", "follows", "C");
    g.AddCanonical("<B>", "<score>", IntLit(10));
    g.AddCanonical("<C>", "<score>", IntLit(30));
    g.AddCanonical("<D>", "<score>", IntLit(20));
    auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  std::unique_ptr<core::S2Rdf> db_;
};

TEST_F(AggregateQueryTest, CountPerGroupWithOrdering) {
  auto result = db_->Execute(
      "SELECT ?x (COUNT(*) AS ?n) WHERE { ?x <follows> ?y . } "
      "GROUP BY ?x ORDER BY DESC(?n)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = db_->DecodeRows(result->table);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "<A>");
  EXPECT_EQ(rows[0][1], IntLit(3));
  EXPECT_EQ(rows[1][0], "<B>");
  EXPECT_EQ(rows[1][1], IntLit(1));
}

TEST_F(AggregateQueryTest, GlobalAggregatesOverJoin) {
  auto result = db_->Execute(
      "SELECT (COUNT(*) AS ?n) (SUM(?s) AS ?total) (AVG(?s) AS ?mean) "
      "(MAX(?s) AS ?best) WHERE { <A> <follows> ?y . ?y <score> ?s . }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = db_->DecodeRows(result->table);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], IntLit(3));
  EXPECT_EQ(rows[0][1], IntLit(60));
  EXPECT_EQ(rows[0][2],
            "\"20.0\"^^<http://www.w3.org/2001/XMLSchema#double>");
  EXPECT_EQ(rows[0][3], IntLit(30));
}

TEST_F(AggregateQueryTest, GroupByWithoutAggregatesYieldsDistinctKeys) {
  auto result = db_->Execute(
      "SELECT ?x WHERE { ?x <follows> ?y . } GROUP BY ?x");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 2u);
}

TEST_F(AggregateQueryTest, ProjectionMustBeGroupedOrAggregated) {
  auto result = db_->Execute(
      "SELECT ?y (COUNT(*) AS ?n) WHERE { ?x <follows> ?y . } GROUP BY ?x");
  EXPECT_FALSE(result.ok());
}

TEST_F(AggregateQueryTest, SubqueryJoinsWithOuterPattern) {
  // Scores of users followed by A, where the inner query picks users
  // with at least one incoming follow.
  auto result = db_->Execute(
      "SELECT ?y ?n WHERE { <A> <follows> ?y . "
      "{ SELECT ?y (COUNT(?x) AS ?n) WHERE { ?x <follows> ?y . } "
      "GROUP BY ?y } }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rows = db_->DecodeRows(result->table);
  ASSERT_EQ(rows.size(), 3u);  // B, C, D all followed by A.
  for (const auto& row : rows) {
    if (row[0] == "<C>") {
      EXPECT_EQ(row[1], IntLit(2));  // A and B follow C.
    }
    if (row[0] == "<B>") {
      EXPECT_EQ(row[1], IntLit(1));
    }
  }
}

TEST_F(AggregateQueryTest, SubqueryLimitsAreLocal) {
  auto result = db_->Execute(
      "SELECT ?y WHERE { { SELECT ?y WHERE { ?x <follows> ?y . } "
      "ORDER BY ?y LIMIT 2 } }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 2u);
}

TEST_F(AggregateQueryTest, AggregatesAcrossLayoutsAgree) {
  const char* query =
      "SELECT ?x (COUNT(*) AS ?n) WHERE { ?x <follows> ?y . } GROUP BY ?x";
  auto extvp = db_->Execute(query, core::Layout::kExtVp);
  auto vp = db_->Execute(query, core::Layout::kVp);
  auto tt = db_->Execute(query, core::Layout::kTriplesTable);
  ASSERT_TRUE(extvp.ok());
  ASSERT_TRUE(vp.ok());
  ASSERT_TRUE(tt.ok());
  EXPECT_TRUE(engine::Table::SameBag(extvp->table, vp->table));
  EXPECT_TRUE(engine::Table::SameBag(extvp->table, tt->table));
}

}  // namespace
}  // namespace s2rdf
