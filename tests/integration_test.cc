#include <gtest/gtest.h>

#include <memory>

#include "baselines/centralized_engine.h"
#include "baselines/h2rdf_engine.h"
#include "baselines/mr_sparql_engine.h"
#include "baselines/sempala_engine.h"
#include "common/file_util.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

// Cross-engine equivalence: for every workload query, every layout of
// S2RDF and every baseline engine must produce the same solution bag.
// This is the project's strongest correctness property — seven
// independent execution paths (ExtVP, VP, triples table, property table,
// permutation indexes, SHARD-MR, PigSPARQL-MR) agree on a synthetic
// WatDiv dataset.

namespace s2rdf {
namespace {

constexpr double kScaleFactor = 0.05;

struct Engines {
  rdf::Graph graph;
  std::unique_ptr<core::S2Rdf> s2rdf;
  std::unique_ptr<baselines::SempalaEngine> sempala;
  std::unique_ptr<baselines::PermutationIndexStore> store;
  std::unique_ptr<baselines::CentralizedBgpEngine> centralized;
  std::unique_ptr<ScopedTempDir> mr_dir;
  std::unique_ptr<baselines::MrSparqlEngine> shard;
  std::unique_ptr<baselines::MrSparqlEngine> pigsparql;
};

Engines* g_engines = nullptr;

class CrossEngineTest : public ::testing::TestWithParam<std::string> {
 public:
  static void SetUpTestSuite() {
    if (g_engines != nullptr) return;
    g_engines = new Engines();
    watdiv::GeneratorOptions gen;
    gen.scale_factor = kScaleFactor;
    g_engines->graph = watdiv::Generate(gen);

    // S2RDF needs its own copy of the graph (it owns it).
    rdf::Graph copy;
    for (const rdf::Triple& t : g_engines->graph.triples()) {
      copy.AddCanonical(
          g_engines->graph.dictionary().Decode(t.subject),
          g_engines->graph.dictionary().Decode(t.predicate),
          g_engines->graph.dictionary().Decode(t.object));
    }
    core::S2RdfOptions options;
    options.build_extvp_bitmaps = true;
    auto db = core::S2Rdf::Create(std::move(copy), options);
    ASSERT_TRUE(db.ok());
    g_engines->s2rdf = std::move(*db);

    baselines::SempalaOptions sempala_options;
    auto sempala =
        baselines::SempalaEngine::Create(&g_engines->graph, sempala_options);
    ASSERT_TRUE(sempala.ok());
    g_engines->sempala = std::move(*sempala);

    g_engines->store = std::make_unique<baselines::PermutationIndexStore>(
        g_engines->graph);
    g_engines->centralized =
        std::make_unique<baselines::CentralizedBgpEngine>(
            g_engines->store.get(), &g_engines->graph.dictionary());

    g_engines->mr_dir = std::make_unique<ScopedTempDir>();
    baselines::MrEngineOptions shard_options;
    shard_options.work_dir = g_engines->mr_dir->path();
    shard_options.planner = baselines::MrPlanner::kClauseIteration;
    g_engines->shard = std::make_unique<baselines::MrSparqlEngine>(
        &g_engines->graph, shard_options);
    baselines::MrEngineOptions pig_options = shard_options;
    pig_options.planner = baselines::MrPlanner::kMultiJoin;
    g_engines->pigsparql = std::make_unique<baselines::MrSparqlEngine>(
        &g_engines->graph, pig_options);
  }

 protected:
  // Decodes to strings so tables from different dictionaries compare.
  static std::vector<std::string> Decoded(const engine::Table& table,
                                          const rdf::Dictionary& dict) {
    std::vector<std::string> rows;
    for (size_t r = 0; r < table.NumRows(); ++r) {
      std::string row;
      for (size_t c = 0; c < table.NumColumns(); ++c) {
        rdf::TermId id = table.At(r, c);
        row += (id == engine::kNullTermId ? "NULL" : dict.Decode(id));
        row += '\x1f';
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

TEST_P(CrossEngineTest, AllEnginesAgree) {
  const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(GetParam());
  ASSERT_NE(tmpl, nullptr);
  SplitMix64 rng(123);
  std::string query =
      watdiv::InstantiateQuery(*tmpl, kScaleFactor, &rng);

  // Reference: S2RDF over ExtVP.
  auto reference = g_engines->s2rdf->Execute(query, core::Layout::kExtVp);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  std::vector<std::string> expected =
      Decoded(reference->table, g_engines->s2rdf->graph().dictionary());
  std::vector<std::string> columns = reference->table.column_names();

  // S2RDF over VP, the triples table, and the bit-vector ExtVP.
  for (core::Layout layout :
       {core::Layout::kVp, core::Layout::kTriplesTable,
        core::Layout::kExtVpBitmap}) {
    auto result = g_engines->s2rdf->Execute(query, layout);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->table.column_names(), columns);
    EXPECT_EQ(Decoded(result->table,
                      g_engines->s2rdf->graph().dictionary()),
              expected)
        << "VP/TT layout disagrees on " << GetParam();
  }

  const rdf::Dictionary& dict = g_engines->graph.dictionary();

  auto sempala = g_engines->sempala->Execute(query);
  ASSERT_TRUE(sempala.ok()) << sempala.status().ToString();
  EXPECT_EQ(Decoded(sempala->table, dict), expected)
      << "Sempala disagrees on " << GetParam();

  auto central = g_engines->centralized->Execute(query);
  ASSERT_TRUE(central.ok()) << central.status().ToString();
  EXPECT_EQ(Decoded(central->table, dict), expected)
      << "Centralized disagrees on " << GetParam();

  auto shard = g_engines->shard->Execute(query);
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();
  EXPECT_EQ(Decoded(shard->table, dict), expected)
      << "SHARD disagrees on " << GetParam();

  auto pig = g_engines->pigsparql->Execute(query);
  ASSERT_TRUE(pig.ok()) << pig.status().ToString();
  EXPECT_EQ(Decoded(pig->table, dict), expected)
      << "PigSPARQL disagrees on " << GetParam();
}

std::vector<std::string> AllQueryNames() {
  std::vector<std::string> names;
  for (const auto* workload :
       {&watdiv::BasicTestingQueries(), &watdiv::SelectivityTestingQueries(),
        &watdiv::IncrementalLinearQueries()}) {
    for (const watdiv::QueryTemplate& q : *workload) names.push_back(q.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, CrossEngineTest, ::testing::ValuesIn(AllQueryNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- SF-threshold invariance -------------------------------------------

class ThresholdInvarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdInvarianceTest, ResultsDoNotDependOnThreshold) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = 0.03;
  core::S2RdfOptions no_threshold;
  auto reference = core::S2Rdf::Create(watdiv::Generate(gen), no_threshold);
  ASSERT_TRUE(reference.ok());

  core::S2RdfOptions with_threshold;
  with_threshold.sf_threshold = GetParam();
  auto db = core::S2Rdf::Create(watdiv::Generate(gen), with_threshold);
  ASSERT_TRUE(db.ok());

  SplitMix64 rng(7);
  for (const char* name : {"L2", "S3", "F5", "C3", "ST-1-3", "IL-1-6"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    ASSERT_NE(tmpl, nullptr);
    SplitMix64 query_rng(rng.Next());
    std::string query =
        watdiv::InstantiateQuery(*tmpl, gen.scale_factor, &query_rng);
    auto expected = (*reference)->Execute(query, core::Layout::kExtVp);
    auto actual = (*db)->Execute(query, core::Layout::kExtVp);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_TRUE(engine::Table::SameBag(expected->table, actual->table))
        << name << " differs at threshold " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdInvarianceTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.9));

// --- Lazy vs eager ExtVP on the full workload ------------------------------

TEST(LazyEagerTest, LazyStoreMatchesEagerOnAllWorkloads) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = 0.04;
  auto eager = core::S2Rdf::Create(watdiv::Generate(gen),
                                   core::S2RdfOptions());
  core::S2RdfOptions lazy_options;
  lazy_options.lazy_extvp = true;
  auto lazy = core::S2Rdf::Create(watdiv::Generate(gen), lazy_options);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE(lazy.ok());
  SplitMix64 rng(41);
  for (const auto* workload :
       {&watdiv::BasicTestingQueries(),
        &watdiv::SelectivityTestingQueries()}) {
    for (const watdiv::QueryTemplate& tmpl : *workload) {
      SplitMix64 query_rng(rng.Next());
      std::string query =
          watdiv::InstantiateQuery(tmpl, gen.scale_factor, &query_rng);
      auto a = (*eager)->Execute(query, core::Layout::kExtVp);
      auto b = (*lazy)->Execute(query, core::Layout::kExtVp);
      ASSERT_TRUE(a.ok()) << tmpl.name;
      ASSERT_TRUE(b.ok()) << tmpl.name;
      EXPECT_TRUE(engine::Table::SameBag(a->table, b->table)) << tmpl.name;
      // Once warm, the lazy store reads exactly the eager inputs.
      auto warm = (*lazy)->Execute(query, core::Layout::kExtVp);
      ASSERT_TRUE(warm.ok());
      EXPECT_EQ(warm->metrics.input_tuples, a->metrics.input_tuples)
          << tmpl.name;
    }
  }
  EXPECT_GT((*lazy)->lazy_pairs_computed(), 0u);
}

// --- ExtVP input reduction on real workload ------------------------------

TEST(MetricsShapeTest, ExtVpReadsNoMoreInputThanVp) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = 0.05;
  core::S2RdfOptions options;
  options.build_extvp_bitmaps = true;
  auto db = core::S2Rdf::Create(watdiv::Generate(gen), options);
  ASSERT_TRUE(db.ok());
  SplitMix64 rng(3);
  for (const watdiv::QueryTemplate& tmpl :
       watdiv::SelectivityTestingQueries()) {
    SplitMix64 query_rng(rng.Next());
    std::string query =
        watdiv::InstantiateQuery(tmpl, gen.scale_factor, &query_rng);
    auto extvp = (*db)->Execute(query, core::Layout::kExtVp);
    auto vp = (*db)->Execute(query, core::Layout::kVp);
    auto bitmap = (*db)->Execute(query, core::Layout::kExtVpBitmap);
    ASSERT_TRUE(extvp.ok());
    ASSERT_TRUE(vp.ok());
    ASSERT_TRUE(bitmap.ok());
    EXPECT_LE(extvp->metrics.input_tuples, vp->metrics.input_tuples)
        << tmpl.name;
    // Correlation intersection can only help relative to the single
    // best ExtVP table (the paper's unification-strategy conjecture).
    EXPECT_LE(bitmap->metrics.input_tuples, extvp->metrics.input_tuples)
        << tmpl.name;
    EXPECT_TRUE(engine::Table::SameBag(extvp->table, vp->table)) << tmpl.name;
    EXPECT_TRUE(engine::Table::SameBag(bitmap->table, vp->table))
        << tmpl.name;
  }
}

}  // namespace
}  // namespace s2rdf
