#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/file_util.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/task_pool.h"
#include "common/random.h"
#include "core/s2rdf.h"
#include "engine/profile.h"
#include "server/sparql_endpoint.h"
#include "storage/fault_injection_env.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

// The observability layer end to end (`ctest -L observability`): the
// metrics registry and its Prometheus rendering, the injectable clock,
// EXPLAIN ANALYZE profile correctness against the compiler's table
// choices and the engine's ExecMetrics, Chrome trace export, and the
// endpoint's introspection surfaces (/metrics, /debug/queries,
// slow-query log, failure counters) including their thread safety.

namespace s2rdf {
namespace {

// --- Metrics registry -------------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGaugesRender) {
  MetricsRegistry registry;
  Counter* c = registry.AddCounter("t_total", "things");
  c->Increment();
  c->Increment(2);
  EXPECT_EQ(c->Value(), 3u);
  registry.AddGauge("g", "a gauge", [] { return uint64_t{42}; });

  std::string out = registry.RenderPrometheus();
  EXPECT_NE(out.find("# HELP t_total things\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE t_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("t_total 3\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE g gauge\n"), std::string::npos);
  EXPECT_NE(out.find("g 42\n"), std::string::npos);
}

TEST(MetricsRegistryTest, RegistrationDedupesByName) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("dup_total", "first");
  Counter* b = registry.AddCounter("dup_total", "second");
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, HistogramBucketsAreInclusiveLe) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);    // Exactly on a bound: le="1" is inclusive.
  h.Observe(3.0);    // Between bounds: lands in le="4".
  h.Observe(100.0);  // Above all bounds: +Inf only.
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 104.0);
  EXPECT_EQ(h.CumulativeCounts(), (std::vector<uint64_t>{1, 1, 2, 3}));
}

TEST(MetricsRegistryTest, HistogramRendersPrometheusExposition) {
  MetricsRegistry registry;
  Histogram* h = registry.AddHistogram("lat", "latency", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(2.0);
  std::string out = registry.RenderPrometheus();
  EXPECT_NE(out.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(out.find("lat_bucket{le=\"0.5\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("lat_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("lat_sum 2.25\n"), std::string::npos);
  EXPECT_NE(out.find("lat_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, LogBucketsAreGeometric) {
  EXPECT_EQ(LogBuckets(1.0, 4.0, 3), (std::vector<double>{1.0, 4.0, 16.0}));
  EXPECT_EQ(LatencySecondsBuckets().size(), 21u);
  EXPECT_DOUBLE_EQ(LatencySecondsBuckets().front(), 1e-4);
}

// --- Clock seam -------------------------------------------------------------

// Advances 10 ms on every read; installed via SetClockForTest.
MonotonicTime SteppingClock() {
  static std::atomic<int64_t> ticks{0};
  return MonotonicTime{} +
         std::chrono::milliseconds(10 * ticks.fetch_add(1));
}

TEST(ClockTest, TestClockOverridesAndRestores) {
  SetClockForTest(&SteppingClock);
  MonotonicTime t0 = MonotonicNow();
  MonotonicTime t1 = MonotonicNow();
  EXPECT_EQ((std::chrono::duration<double, std::milli>(t1 - t0).count()),
            10.0);
  SetClockForTest(nullptr);
  // Real clock again: two reads are (sub-)millisecond apart, not 10 ms.
  MonotonicTime r0 = MonotonicNow();
  EXPECT_LT(MillisSince(r0), 10.0);
}

// --- Profile correctness ----------------------------------------------------

bool SameTable(const engine::Table& a, const engine::Table& b) {
  if (a.column_names() != b.column_names() || a.NumRows() != b.NumRows()) {
    return false;
  }
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    if (a.Column(c) != b.Column(c)) return false;
  }
  return true;
}

bool SameMetrics(const engine::ExecMetrics& a, const engine::ExecMetrics& b) {
  return a.input_tuples == b.input_tuples &&
         a.intermediate_tuples == b.intermediate_tuples &&
         a.join_comparisons == b.join_comparisons &&
         a.shuffled_tuples == b.shuffled_tuples &&
         a.output_tuples == b.output_tuples;
}

// The fixed micro-workload: a WatDiv snapshot at scale 0.1 and a star
// query (S3) instantiated with a pinned seed.
rdf::Graph MicroGraph() {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = 0.1;
  return watdiv::Generate(gen);
}

std::string MicroQuery() {
  const watdiv::QueryTemplate* tmpl = watdiv::FindQuery("S3");
  SplitMix64 rng(7);
  return watdiv::InstantiateQuery(*tmpl, 0.1, &rng);
}

// EXPLAIN ANALYZE must describe exactly what ran: the tables the
// compiler chose (with the catalog's SF behind each choice), metric
// deltas that add up to the query's ExecMetrics, and results that are
// byte-identical to an unprofiled run — serially and in parallel.
void CheckProfiledExecution(bool parallel) {
  core::S2RdfOptions options;
  options.parallel_execution = parallel;
  auto db = core::S2Rdf::Create(MicroGraph(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  core::QueryRequest request;
  request.query = MicroQuery();
  auto plain = (*db)->Execute(request);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_TRUE(plain->profile.empty());

  request.options.collect_profile = true;
  auto profiled = (*db)->Execute(request);
  ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();

  // Profiling must not change what the query computes.
  EXPECT_TRUE(SameTable(plain->table, profiled->table));
  EXPECT_TRUE(SameMetrics(plain->metrics, profiled->metrics));

  const engine::QueryProfile& profile = profiled->profile_data;
  ASSERT_FALSE(profile.operators.empty());

  // The profile's totals are the query's ExecMetrics, and the root
  // operator (pre-order, depth 0) saw all the plan-side work as its
  // inclusive delta. output_tuples is stamped by the core layer after
  // the plan returns, so the root reports it as output_rows instead.
  EXPECT_TRUE(SameMetrics(profile.totals, profiled->metrics));
  const engine::OperatorProfile& root = profile.operators.front();
  EXPECT_EQ(root.depth, 0);
  EXPECT_EQ(root.delta.input_tuples, plain->metrics.input_tuples);
  EXPECT_EQ(root.delta.intermediate_tuples,
            plain->metrics.intermediate_tuples);
  EXPECT_EQ(root.delta.join_comparisons, plain->metrics.join_comparisons);
  EXPECT_EQ(root.delta.shuffled_tuples, plain->metrics.shuffled_tuples);
  EXPECT_EQ(root.output_rows, plain->metrics.output_tuples);

  // Stage timings are populated and consistent.
  EXPECT_GT(profile.total_ms, 0.0);
  EXPECT_GE(profile.total_ms,
            profile.parse_ms + profile.compile_ms + profile.exec_ms - 1e-6);

  // Every scan reports the compiler-chosen table, a known layout
  // family, and the catalog's selectivity factor for that table.
  const std::set<std::string> kLayouts = {"ExtVP", "ExtVP-bitmap", "VP",
                                          "TT"};
  size_t scans = 0;
  for (const engine::OperatorProfile& op : profile.operators) {
    if (op.table.empty()) continue;
    ++scans;
    EXPECT_TRUE(kLayouts.contains(op.layout)) << op.layout;
    EXPECT_NE(profiled->sql.find(op.table), std::string::npos)
        << op.table << " not in compiled SQL";
    const storage::TableStats* stats = (*db)->catalog().GetStats(op.table);
    ASSERT_NE(stats, nullptr) << op.table;
    EXPECT_DOUBLE_EQ(op.sf, stats->selectivity) << op.table;
  }
  EXPECT_GT(scans, 0u);

  // The rendered tree mentions the stage header and the scans.
  EXPECT_NE(profiled->profile.find("stages: parse="), std::string::npos);
  EXPECT_NE(profiled->profile.find("Scan("), std::string::npos);
  EXPECT_NE(profiled->profile.find("[layout="), std::string::npos);
  EXPECT_NE(profiled->profile.find("totals: "), std::string::npos);
}

TEST(ProfileCorrectnessTest, SerialProfileMatchesEngineAndCatalog) {
  CheckProfiledExecution(/*parallel=*/false);
}

TEST(ProfileCorrectnessTest, ParallelProfileMatchesEngineAndCatalog) {
  CheckProfiledExecution(/*parallel=*/true);
}

TEST(ProfileCorrectnessTest, ParallelMetricsEqualSerialMetrics) {
  // The paper-metric meters are execution-strategy invariants; the
  // profile totals of a parallel run must equal a serial run's.
  auto serial = core::S2Rdf::Create(MicroGraph(), {});
  ASSERT_TRUE(serial.ok());
  core::S2RdfOptions parallel_options;
  parallel_options.parallel_execution = true;
  auto parallel = core::S2Rdf::Create(MicroGraph(), parallel_options);
  ASSERT_TRUE(parallel.ok());

  core::QueryRequest request;
  request.query = MicroQuery();
  request.options.collect_profile = true;
  auto serial_result = (*serial)->Execute(request);
  auto parallel_result = (*parallel)->Execute(request);
  ASSERT_TRUE(serial_result.ok());
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_TRUE(SameTable(serial_result->table, parallel_result->table));
  EXPECT_TRUE(SameMetrics(serial_result->profile_data.totals,
                          parallel_result->profile_data.totals));
}

// A join far above the parallel thresholds records per-partition task
// spans that land on their own trace lanes.
TEST(ProfileCorrectnessTest, ParallelTasksRecordSpans) {
  rdf::Graph g;
  for (int i = 0; i < 3000; ++i) {
    g.AddIris("N" + std::to_string(i), "p",
              "N" + std::to_string((i + 1) % 3000));
    g.AddIris("N" + std::to_string(i), "p",
              "N" + std::to_string((i + 37) % 3000));
  }
  core::S2RdfOptions options;
  options.parallel_execution = true;
  auto db = core::S2Rdf::Create(std::move(g), options);
  ASSERT_TRUE(db.ok());

  core::QueryRequest request;
  request.query = "SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . }";
  request.options.collect_profile = true;
  auto result = (*db)->Execute(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const engine::QueryProfile& profile = result->profile_data;
  ASSERT_FALSE(profile.tasks.empty());
  for (const engine::TaskSpan& task : profile.tasks) {
    EXPECT_FALSE(task.label.empty());
    EXPECT_GE(task.start_ms, 0.0);
    EXPECT_GE(task.millis, 0.0);
  }
  EXPECT_NE(result->profile.find("parallel tasks: "), std::string::npos);

  // Task lanes appear in the trace as tids above the main lane.
  std::string trace = engine::RenderTraceJson(profile, request.query);
  EXPECT_NE(trace.find("\"tid\":1"), std::string::npos);
}

// --- Trace export -----------------------------------------------------------

// Minimal structural JSON check: braces/brackets balance outside string
// literals and never go negative.
bool JsonStructureBalanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceExportTest, RendersStructurallyValidTraceEventJson) {
  auto db = core::S2Rdf::Create(MicroGraph(), {});
  ASSERT_TRUE(db.ok());
  core::QueryRequest request;
  request.query = MicroQuery();
  request.options.collect_profile = true;
  auto result = (*db)->Execute(request);
  ASSERT_TRUE(result.ok());

  // A hostile display name must be escaped, not break the JSON.
  std::string trace =
      engine::RenderTraceJson(result->profile_data, "q\"\\\nname");
  EXPECT_TRUE(JsonStructureBalanced(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"compile\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("q\\\"\\\\\\nname"), std::string::npos);
}

TEST(TraceExportTest, TraceDirDumpsSequencedFiles) {
  ScopedTempDir dir;
  core::S2RdfOptions options;
  options.trace_dir = dir.path() + "/traces";
  auto db = core::S2Rdf::Create(MicroGraph(), options);
  ASSERT_TRUE(db.ok());

  core::QueryRequest request;
  request.query = MicroQuery();
  auto unprofiled = (*db)->Execute(request);
  ASSERT_TRUE(unprofiled.ok());  // No profile -> no trace file.

  request.options.collect_profile = true;
  ASSERT_TRUE((*db)->Execute(request).ok());
  ASSERT_TRUE((*db)->Execute(request).ok());

  for (const char* name : {"trace-000000.json", "trace-000001.json"}) {
    // Out-of-band check of files the server wrote; no Env in play.
    std::ifstream in(options.trace_dir + "/" + name);  // s2rdf-lint: allow(raw-io)
    ASSERT_TRUE(in.good()) << name;
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_TRUE(JsonStructureBalanced(content)) << name;
    EXPECT_NE(content.find("\"traceEvents\":["), std::string::npos);
  }
  EXPECT_FALSE(  // s2rdf-lint: allow(raw-io)
      std::ifstream(options.trace_dir + "/trace-000002.json").good());
}

// --- Endpoint introspection -------------------------------------------------

class ObservabilityEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Recreate(server::EndpointOptions()); }

  void Recreate(server::EndpointOptions options) {
    rdf::Graph g;
    g.AddIris("A", "follows", "B");
    g.AddIris("B", "follows", "C");
    auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    endpoint_ =
        std::make_unique<server::SparqlEndpoint>(db_.get(), std::move(options));
  }

  server::HttpResponse Get(const std::string& target) {
    server::HttpRequest request;
    request.method = "GET";
    size_t question = target.find('?');
    request.path = target.substr(0, question);
    if (question != std::string::npos) {
      request.query_string = target.substr(question + 1);
    }
    return endpoint_->Handle(request);
  }

  static std::string FollowsQuery() {
    return "query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
           "%3Fo%20%7D";
  }

  std::unique_ptr<core::S2Rdf> db_;
  std::unique_ptr<server::SparqlEndpoint> endpoint_;
};

TEST_F(ObservabilityEndpointTest, ExplainAnalyzeReturnsProfileTree) {
  server::HttpResponse response =
      Get("/sparql?" + FollowsQuery() + "&explain=analyze");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(response.body.find("stages: parse="), std::string::npos);
  EXPECT_NE(response.body.find("Scan("), std::string::npos);
  EXPECT_NE(response.body.find("totals: "), std::string::npos);

  // Only 'analyze' is a valid explain mode.
  EXPECT_EQ(Get("/sparql?" + FollowsQuery() + "&explain=full").status_code,
            400);
}

TEST_F(ObservabilityEndpointTest, TraceParamReturnsTraceEventJson) {
  server::HttpResponse response =
      Get("/sparql?" + FollowsQuery() + "&trace=1");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.content_type.find("application/json"),
            std::string::npos);
  EXPECT_TRUE(JsonStructureBalanced(response.body)) << response.body;
  EXPECT_NE(response.body.find("\"traceEvents\":["), std::string::npos);

  // trace=0 is a normal query; garbage is rejected.
  EXPECT_EQ(Get("/sparql?" + FollowsQuery() + "&trace=0").content_type,
            "application/sparql-results+json");
  EXPECT_EQ(Get("/sparql?" + FollowsQuery() + "&trace=yes").status_code, 400);
}

TEST_F(ObservabilityEndpointTest, MetricsExposeHistogramsAndStageTimings) {
  EXPECT_EQ(Get("/sparql?" + FollowsQuery()).status_code, 200);
  EXPECT_EQ(Get("/sparql?query=NOT%20SPARQL").status_code, 400);

  std::string body = Get("/metrics").body;
  // One success + one failure: latency observed for both, stage
  // histograms only for the success.
  EXPECT_NE(body.find("s2rdf_query_latency_seconds_count 2"),
            std::string::npos);
  EXPECT_NE(body.find("s2rdf_parse_seconds_count 1"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_compile_seconds_count 1"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_exec_seconds_count 1"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_shuffle_bytes_count 1"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_rows_scanned_count 1"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_query_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  // New failure-accounting names alongside the legacy ones.
  EXPECT_NE(body.find("s2rdf_queries_failed_total 1"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_queries_rejected_total 0"), std::string::npos);
  EXPECT_NE(body.find("s2rdf_query_errors_total 1"), std::string::npos);
}

TEST_F(ObservabilityEndpointTest, DebugQueriesListsRecentWork) {
  EXPECT_EQ(Get("/sparql?" + FollowsQuery()).status_code, 200);
  EXPECT_EQ(Get("/sparql?query=NOT%20SPARQL").status_code, 400);

  server::HttpResponse response = Get("/debug/queries");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("in-flight (0):"), std::string::npos);
  EXPECT_NE(response.body.find("recent (2):"), std::string::npos);
  EXPECT_NE(response.body.find("status=200"), std::string::npos);
  EXPECT_NE(response.body.find("status=400"), std::string::npos);
  EXPECT_NE(response.body.find("NOT SPARQL"), std::string::npos);

  // Structured access mirrors the page, newest first with rising ids.
  std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].http_status, 400);
  EXPECT_EQ(recent[1].http_status, 200);
  EXPECT_GT(recent[0].id, recent[1].id);
  EXPECT_FALSE(recent[0].error.empty());
  EXPECT_TRUE(recent[1].error.empty());
  EXPECT_EQ(recent[1].rows, 2u);
}

TEST_F(ObservabilityEndpointTest, SlowQueryLogFiresAboveThreshold) {
  std::vector<std::string> log_lines;
  server::EndpointOptions options;
  options.slow_query_ms = 1;
  options.slow_query_log = [&log_lines](const std::string& line) {
    log_lines.push_back(line);
  };
  Recreate(std::move(options));

  // A stepping clock makes every query "take" tens of milliseconds
  // deterministically, without sleeping.
  SetClockForTest(&SteppingClock);
  server::HttpResponse response = Get("/sparql?" + FollowsQuery());
  SetClockForTest(nullptr);
  EXPECT_EQ(response.status_code, 200);

  ASSERT_EQ(log_lines.size(), 1u);
  EXPECT_NE(log_lines[0].find("slow query"), std::string::npos);
  EXPECT_NE(log_lines[0].find("SELECT"), std::string::npos);

  std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_TRUE(recent[0].slow);
  EXPECT_NE(Get("/metrics").body.find("s2rdf_slow_queries_total 1"),
            std::string::npos);
}

// The tsan regression for the old torn-copy /metrics bug: hammer the
// introspection endpoints from several threads while queries (half of
// them failing) run concurrently, then reconcile the final counters.
TEST_F(ObservabilityEndpointTest, MetricsHammerConcurrentWithQueries) {
  constexpr int kQueryThreads = 4;
  constexpr int kQueriesPerThread = 10;
  constexpr int kReaderThreads = 4;
  constexpr int kReadsPerThread = 25;

  std::atomic<int> ok{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([this, &ok, &failed] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        int status = Get(i % 2 == 0 ? "/sparql?" + FollowsQuery()
                                    : "/sparql?query=NOT%20SPARQL")
                         .status_code;
        (status == 200 ? ok : failed)++;
      }
    });
  }
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < kReadsPerThread; ++i) {
        EXPECT_EQ(Get("/metrics").status_code, 200);
        EXPECT_EQ(Get("/debug/queries").status_code, 200);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(ok.load(), kQueryThreads * kQueriesPerThread / 2);
  EXPECT_EQ(failed.load(), kQueryThreads * kQueriesPerThread / 2);
  std::string body = Get("/metrics").body;
  const int total = kQueryThreads * kQueriesPerThread;
  EXPECT_NE(body.find("s2rdf_queries_total " + std::to_string(total)),
            std::string::npos);
  EXPECT_NE(
      body.find("s2rdf_queries_failed_total " + std::to_string(total / 2)),
      std::string::npos);
  EXPECT_NE(body.find("s2rdf_query_latency_seconds_count " +
                      std::to_string(total)),
            std::string::npos);
}

// --- Fault-injection env metrics -------------------------------------------

TEST(FaultEnvMetricsTest, CountsOpsAndInjectedFaults) {
  ScopedTempDir dir;
  MetricsRegistry registry;
  storage::FaultInjectionEnv env;
  env.AttachMetrics(&registry);

  ASSERT_TRUE(env.WriteFile(dir.path() + "/a", "data").ok());
  std::string data;
  ASSERT_TRUE(env.ReadFile(dir.path() + "/a", &data).ok());
  env.FailNextReads(1);
  EXPECT_FALSE(env.ReadFile(dir.path() + "/a", &data).ok());
  ASSERT_TRUE(env.ReadFile(dir.path() + "/a", &data).ok());

  std::string out = registry.RenderPrometheus();
  EXPECT_NE(out.find("s2rdf_faultenv_reads_total 3"), std::string::npos);
  EXPECT_NE(out.find("s2rdf_faultenv_mutations_total 1"), std::string::npos);
  EXPECT_NE(out.find("s2rdf_faultenv_faults_injected_total 1"),
            std::string::npos);
}

// --- Structured event log ---------------------------------------------------

TEST(StructuredLogTest, RenderLogLineEmitsOneJsonObjectPerEvent) {
  std::string line = RenderLogLine(
      LogLevel::kWarn, "unit \"test\"",
      {{"s", "a\"b\nc"}, {"n", uint64_t{42}}, {"f", 1.5}, {"ok", true}});
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_TRUE(JsonStructureBalanced(line)) << line;
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  // Strings are escaped; the event name is a string like any other.
  EXPECT_NE(line.find("\"event\":\"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"s\":\"a\\\"b\\nc\""), std::string::npos);
  // Numerics render bare so consumers get real numbers, not strings.
  EXPECT_NE(line.find("\"n\":42"), std::string::npos);
  EXPECT_NE(line.find("\"f\":1.5"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
}

TEST(StructuredLogTest, SinkSeamCapturesAndMinLevelFilters) {
  std::vector<std::string> lines;
  SetLogSinkForTest(
      [&lines](const std::string& line) { lines.push_back(line); });
  SetMinLogLevel(LogLevel::kWarn);
  LogEvent(LogLevel::kInfo, "dropped_below_min_level");
  LogEvent(LogLevel::kError, "kept", {{"k", "v"}});
  SetMinLogLevel(LogLevel::kInfo);
  SetLogSinkForTest({});  // restore the stderr default

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\":\"kept\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"k\":\"v\""), std::string::npos);
  EXPECT_EQ(lines[0].find("dropped_below_min_level"), std::string::npos);
}

TEST(StructuredLogTest, RateLimiterSuppressesWithinWindowAndReportsCount) {
  SetClockForTest(&SteppingClock);  // 10 ms per Allow() call
  LogRateLimiter limiter(0.025);
  uint64_t suppressed = 99;
  EXPECT_TRUE(limiter.Allow("k", &suppressed));  // first event always fires
  EXPECT_EQ(suppressed, 0u);
  EXPECT_FALSE(limiter.Allow("k"));  // +10 ms, inside the window
  EXPECT_FALSE(limiter.Allow("k"));  // +20 ms, still inside
  EXPECT_EQ(limiter.SuppressedFor("k"), 2u);
  // +30 ms >= 25 ms: allowed again, carrying the suppressed count so
  // nothing is silently lost, and the window restarts.
  EXPECT_TRUE(limiter.Allow("k", &suppressed));
  EXPECT_EQ(suppressed, 2u);
  EXPECT_EQ(limiter.SuppressedFor("k"), 0u);
  // Keys rate-limit independently.
  EXPECT_TRUE(limiter.Allow("other"));
  SetClockForTest(nullptr);

  // interval <= 0 disables limiting entirely.
  LogRateLimiter open(0.0);
  EXPECT_TRUE(open.Allow("k"));
  EXPECT_TRUE(open.Allow("k"));
}

// --- Task-pool queue instrumentation ----------------------------------------

TEST(TaskPoolMetricsTest, QueueWaitHistogramObservesEveryHelperHandoff) {
  MetricsRegistry registry;
  TaskPool pool(2);
  pool.AttachMetrics(&registry);

  // Force both helpers to actually dequeue their parked task: each of
  // the three bodies (caller + 2 helpers) blocks until all three have
  // entered, so the caller cannot drain the loop alone. The queue-wait
  // observation happens at dequeue, before the body runs, so by the
  // time ParallelFor returns both handoffs are recorded.
  std::atomic<int> entered{0};
  pool.ParallelFor(3, [&entered](size_t) {
    entered.fetch_add(1);
    while (entered.load() < 3) std::this_thread::yield();
  });

  std::string out = registry.RenderPrometheus();
  EXPECT_NE(out.find("s2rdf_task_pool_queue_wait_seconds_count 2"),
            std::string::npos)
      << out;
  // Drained: depth samples back to zero at render time.
  EXPECT_NE(out.find("s2rdf_task_pool_queue_depth 0"), std::string::npos);
}

// --- Trace-id propagation and resource accounting ---------------------------

TEST_F(ObservabilityEndpointTest, TraceIdThreadsFromHeaderToDebugAndProfile) {
  server::HttpResponse response = Get("/sparql?" + FollowsQuery());
  ASSERT_EQ(response.status_code, 200);
  auto header = response.headers.find("X-S2RDF-Trace-Id");
  ASSERT_NE(header, response.headers.end());
  const std::string trace = header->second;
  EXPECT_EQ(trace.size(), 16u);

  // The same id indexes the structured record and the debug page.
  std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].trace_id, trace);
  EXPECT_NE(Get("/debug/queries").body.find("trace=" + trace),
            std::string::npos);

  // EXPLAIN ANALYZE prints its own request's id in the profile header,
  // matching the response header of that request.
  server::HttpResponse analyzed =
      Get("/sparql?" + FollowsQuery() + "&explain=analyze");
  ASSERT_EQ(analyzed.status_code, 200);
  auto analyzed_header = analyzed.headers.find("X-S2RDF-Trace-Id");
  ASSERT_NE(analyzed_header, analyzed.headers.end());
  EXPECT_NE(analyzed.body.find("trace: " + analyzed_header->second),
            std::string::npos)
      << analyzed.body;
  EXPECT_NE(analyzed_header->second, trace);

  // Failing requests stay traceable too.
  server::HttpResponse failed = Get("/sparql?query=NOT%20SPARQL");
  ASSERT_EQ(failed.status_code, 400);
  auto failed_header = failed.headers.find("X-S2RDF-Trace-Id");
  ASSERT_NE(failed_header, failed.headers.end());
  EXPECT_EQ(failed_header->second.size(), 16u);
}

TEST_F(ObservabilityEndpointTest, PeakTableBytesAccountedDeterministically) {
  // Extracts the peak_bytes value from an EXPLAIN ANALYZE totals line.
  auto peak_of = [](const std::string& body) -> long {
    size_t pos = body.find("peak_bytes=");
    if (pos == std::string::npos) return -1;
    return std::atol(body.c_str() + pos + sizeof("peak_bytes=") - 1);
  };

  std::string first = Get("/sparql?" + FollowsQuery() + "&explain=analyze").body;
  std::string second =
      Get("/sparql?" + FollowsQuery() + "&explain=analyze").body;
  const long peak = peak_of(first);
  EXPECT_GT(peak, 0) << first;
  // The high-water mark is a property of the plan, not the run.
  EXPECT_EQ(peak, peak_of(second));

  // Every completed query feeds the per-query peak histogram.
  std::string metrics = Get("/metrics").body;
  EXPECT_NE(metrics.find("s2rdf_query_peak_table_bytes_count 2"),
            std::string::npos);
}

TEST_F(ObservabilityEndpointTest, SlowQueryLogCarriesTraceIdAndRateLimits) {
  std::vector<std::string> log_lines;
  server::EndpointOptions options;
  options.slow_query_ms = 1;
  options.slow_query_log = [&log_lines](const std::string& line) {
    log_lines.push_back(line);
  };
  Recreate(std::move(options));  // default 5000 ms log interval

  SetClockForTest(&SteppingClock);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Get("/sparql?" + FollowsQuery()).status_code, 200);
  }
  SetClockForTest(nullptr);

  // Identical query texts share a rate-limit key: the first slow event
  // logs (with its trace id), the repeats are suppressed but counted.
  ASSERT_EQ(log_lines.size(), 1u);
  std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
  ASSERT_EQ(recent.size(), 3u);
  // recent is newest-first, so the logged (first) query is recent[2].
  EXPECT_NE(log_lines[0].find("trace=" + recent[2].trace_id),
            std::string::npos)
      << log_lines[0];
  std::string metrics = Get("/metrics").body;
  EXPECT_NE(metrics.find("s2rdf_slow_queries_total 3"), std::string::npos);
  EXPECT_NE(metrics.find("s2rdf_slow_query_log_suppressed_total 2"),
            std::string::npos);

  // interval 0 disables suppression: every slow query logs.
  log_lines.clear();
  server::EndpointOptions open;
  open.slow_query_ms = 1;
  open.slow_query_log_interval_ms = 0;
  open.slow_query_log = [&log_lines](const std::string& line) {
    log_lines.push_back(line);
  };
  Recreate(std::move(open));
  SetClockForTest(&SteppingClock);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(Get("/sparql?" + FollowsQuery()).status_code, 200);
  }
  SetClockForTest(nullptr);
  EXPECT_EQ(log_lines.size(), 3u);
}

TEST_F(ObservabilityEndpointTest, SlowQueryFallsBackToStructuredLog) {
  // Without a slow_query_log callback the event goes to the structured
  // log, same schema as every other event.
  server::EndpointOptions options;
  options.slow_query_ms = 1;
  Recreate(std::move(options));

  std::vector<std::string> lines;
  SetLogSinkForTest(
      [&lines](const std::string& line) { lines.push_back(line); });
  SetClockForTest(&SteppingClock);
  EXPECT_EQ(Get("/sparql?" + FollowsQuery()).status_code, 200);
  SetClockForTest(nullptr);
  SetLogSinkForTest({});

  std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
  ASSERT_EQ(recent.size(), 1u);
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("\"event\":\"slow_query\"") == std::string::npos) continue;
    found = true;
    EXPECT_NE(line.find("\"trace_id\":\"" + recent[0].trace_id + "\""),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"query\":"), std::string::npos);
    EXPECT_TRUE(JsonStructureBalanced(line)) << line;
  }
  EXPECT_TRUE(found) << "no slow_query event reached the structured log";
}

TEST_F(ObservabilityEndpointTest, RecentQueryRingStaysBoundedUnderChurn) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 40;  // 160 completions >> the 64-slot ring
  static constexpr size_t kRingCapacity = 64;

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        Get((t + i) % 2 == 0 ? "/sparql?" + FollowsQuery()
                             : "/sparql?query=NOT%20SPARQL");
      }
    });
  }
  // Readers race ring eviction: snapshots must stay bounded and
  // well-formed at every point, never exposing a torn record.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, &done] {
      while (!done.load()) {
        std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
        EXPECT_LE(recent.size(), kRingCapacity);
        for (const server::QueryRecord& r : recent) {
          EXPECT_EQ(r.trace_id.size(), 16u);
          EXPECT_GT(r.id, 0u);
        }
        EXPECT_EQ(Get("/debug/queries").status_code, 200);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  // Steady state: the ring holds exactly its capacity. Completion
  // order under concurrency is arbitrary, but ids never repeat.
  std::vector<server::QueryRecord> recent = endpoint_->RecentQueries();
  ASSERT_EQ(recent.size(), kRingCapacity);
  std::set<uint64_t> ids;
  for (const server::QueryRecord& r : recent) ids.insert(r.id);
  EXPECT_EQ(ids.size(), recent.size());
  EXPECT_NE(Get("/debug/queries").body.find("recent (64):"),
            std::string::npos);
  EXPECT_NE(Get("/metrics").body.find(
                "s2rdf_queries_total " + std::to_string(kWriters * kPerWriter)),
            std::string::npos);
}

}  // namespace
}  // namespace s2rdf
