#include <gtest/gtest.h>

#include <algorithm>

#include "common/file_util.h"
#include "common/random.h"
#include "mapreduce/external_sort.h"
#include "mapreduce/job.h"
#include "mapreduce/record.h"

namespace s2rdf::mapreduce {
namespace {

TEST(RecordTest, SerializeRoundtrip) {
  std::vector<Record> records = {
      {{1, 2}, {3}},
      {{}, {}},
      {{0xffffffff}, {1, 2, 3, 4, 5}},
  };
  std::vector<Record> back;
  ASSERT_TRUE(ParseRecords(SerializeRecords(records), &back).ok());
  EXPECT_EQ(back, records);
}

TEST(RecordTest, ParseRejectsTruncation) {
  std::vector<Record> records = {{{1, 2, 3}, {4, 5, 6}}};
  std::string blob = SerializeRecords(records);
  blob.resize(blob.size() - 2);
  std::vector<Record> back;
  EXPECT_FALSE(ParseRecords(blob, &back).ok());
}

TEST(RecordTest, FileRoundtrip) {
  ScopedTempDir dir;
  std::vector<Record> records;
  for (uint32_t i = 0; i < 1000; ++i) records.push_back({{i % 7}, {i}});
  ASSERT_TRUE(WriteRecordFile(dir.path() + "/r.rec", records).ok());
  auto back = ReadRecordFile(dir.path() + "/r.rec");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, records);
}

TEST(RecordTest, OrderingByKeyThenValue) {
  Record a{{1, 2}, {9}};
  Record b{{1, 3}, {0}};
  Record c{{1, 2}, {10}};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c || c < a);  // Value tie-break is total.
}

class ExternalSortTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExternalSortTest, SortsRegardlessOfMemoryBudget) {
  ScopedTempDir dir;
  SplitMix64 rng(11);
  std::vector<Record> records;
  for (int i = 0; i < 5000; ++i) {
    records.push_back({{static_cast<uint32_t>(rng.Uniform(100))},
                       {static_cast<uint32_t>(i)}});
  }
  std::string in = dir.path() + "/in.rec";
  std::string out = dir.path() + "/out.rec";
  ASSERT_TRUE(WriteRecordFile(in, records).ok());
  auto stats = SortRecordFile(in, out, dir.path(), GetParam());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, records.size());
  if (GetParam() < records.size()) {
    EXPECT_GT(stats->runs, 1u);
    EXPECT_GT(stats->spilled_bytes, 0u);
  } else {
    EXPECT_EQ(stats->runs, 1u);
  }
  auto sorted = ReadRecordFile(out);
  ASSERT_TRUE(sorted.ok());
  ASSERT_EQ(sorted->size(), records.size());
  EXPECT_TRUE(std::is_sorted(sorted->begin(), sorted->end()));
  std::sort(records.begin(), records.end());
  EXPECT_EQ(*sorted, records);
}

INSTANTIATE_TEST_SUITE_P(MemoryBudgets, ExternalSortTest,
                         ::testing::Values(64, 512, 1000000));

TEST(JobTest, GroupCountJob) {
  ScopedTempDir dir;
  // Input: (key, 1) pairs; reduce sums the group.
  std::vector<Record> input;
  for (uint32_t i = 0; i < 300; ++i) input.push_back({{}, {i % 3, 1}});
  std::string in = dir.path() + "/in.rec";
  ASSERT_TRUE(WriteRecordFile(in, input).ok());

  JobConfig config;
  config.work_dir = dir.path();
  config.num_reducers = 3;
  Mapper mapper = [](const Record& r, std::vector<Record>* out) {
    out->push_back({{r.value[0]}, {r.value[1]}});
  };
  Reducer reducer = [](const std::vector<uint32_t>& key,
                       const std::vector<Record>& group,
                       std::vector<Record>* out) {
    uint32_t sum = 0;
    for (const Record& r : group) sum += r.value[0];
    out->push_back({key, {sum}});
  };
  std::string out_path = dir.path() + "/out.rec";
  auto metrics = RunJob(config, {in}, mapper, reducer, out_path);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_input_records, 300u);
  EXPECT_EQ(metrics->map_output_records, 300u);
  EXPECT_EQ(metrics->reduce_output_records, 3u);
  EXPECT_GT(metrics->shuffle_bytes, 0u);

  auto result = ReadRecordFile(out_path);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  for (const Record& r : *result) EXPECT_EQ(r.value[0], 100u);
}

TEST(JobTest, MultipleInputsAreConcatenated) {
  ScopedTempDir dir;
  ASSERT_TRUE(WriteRecordFile(dir.path() + "/a.rec", {{{}, {1}}}).ok());
  ASSERT_TRUE(WriteRecordFile(dir.path() + "/b.rec", {{{}, {2}}}).ok());
  JobConfig config;
  config.work_dir = dir.path();
  config.num_reducers = 2;
  Mapper identity = [](const Record& r, std::vector<Record>* out) {
    out->push_back({{0}, r.value});
  };
  Reducer passthrough = [](const std::vector<uint32_t>&,
                           const std::vector<Record>& group,
                           std::vector<Record>* out) {
    for (const Record& r : group) out->push_back(r);
  };
  auto metrics = RunJob(config, {dir.path() + "/a.rec", dir.path() + "/b.rec"},
                        identity, passthrough, dir.path() + "/out.rec");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->map_input_records, 2u);
  EXPECT_EQ(metrics->reduce_output_records, 2u);
}

TEST(JobTest, RejectsBadConfig) {
  JobConfig config;
  config.work_dir = "/tmp";
  config.num_reducers = 0;
  Mapper m = [](const Record&, std::vector<Record>*) {};
  Reducer r = [](const std::vector<uint32_t>&, const std::vector<Record>&,
                 std::vector<Record>*) {};
  EXPECT_FALSE(RunJob(config, {}, m, r, "/tmp/out.rec").ok());
}

}  // namespace
}  // namespace s2rdf::mapreduce
