// Compile-fail fixture: reads a S2RDF_GUARDED_BY member without holding
// its mutex. Under Clang with -Wthread-safety -Werror=thread-safety
// (the `analyze` preset) this translation unit MUST NOT compile; the
// ctest entry registers it with WILL_FAIL. The companion
// guarded_by_ok.cc proves the correctly-locked twin compiles, so the
// failure here is the analysis firing, not a broken fixture.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  int Get() const {
    return value_;  // BUG: mu_ not held.
  }

 private:
  mutable s2rdf::Mutex mu_;
  int value_ S2RDF_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Get();
}
