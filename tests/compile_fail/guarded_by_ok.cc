// Companion to guarded_by_violation.cc: identical structure with the
// lock correctly held, proving the analyze-preset failure over there is
// the thread-safety analysis firing and not a fixture defect.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  int Get() const {
    s2rdf::MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable s2rdf::Mutex mu_;
  int value_ S2RDF_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.Get();
}
