#include <gtest/gtest.h>

#include "baselines/centralized_engine.h"
#include "baselines/h2rdf_engine.h"
#include "baselines/mr_sparql_engine.h"
#include "baselines/permutation_index.h"
#include "baselines/sempala_engine.h"
#include "common/file_util.h"
#include "rdf/graph.h"

namespace s2rdf::baselines {
namespace {

rdf::Graph MakeG1() {
  rdf::Graph g;
  g.AddIris("A", "follows", "B");
  g.AddIris("B", "follows", "C");
  g.AddIris("B", "follows", "D");
  g.AddIris("C", "follows", "D");
  g.AddIris("A", "likes", "I1");
  g.AddIris("A", "likes", "I2");
  g.AddIris("C", "likes", "I2");
  return g;
}

constexpr char kQ1[] =
    "SELECT ?x ?y ?z ?w WHERE { ?x <likes> ?w . ?x <follows> ?y . "
    "?y <follows> ?z . ?z <likes> ?w }";

void ExpectQ1Result(const engine::Table& table, const rdf::Graph& g) {
  ASSERT_EQ(table.NumRows(), 1u);
  const rdf::Dictionary& dict = g.dictionary();
  auto col = [&](const char* name) {
    int c = table.ColumnIndex(name);
    EXPECT_GE(c, 0) << name;
    return dict.Decode(table.At(0, static_cast<size_t>(c)));
  };
  EXPECT_EQ(col("x"), "<A>");
  EXPECT_EQ(col("y"), "<B>");
  EXPECT_EQ(col("z"), "<C>");
  EXPECT_EQ(col("w"), "<I2>");
}

// --- Permutation indexes -------------------------------------------------

TEST(PermutationIndexTest, ScanByBoundPositions) {
  rdf::Graph g = MakeG1();
  PermutationIndexStore store(g);
  EXPECT_EQ(store.num_triples(), 7u);
  EXPECT_EQ(store.TotalIndexTuples(), 42u);

  const rdf::Dictionary& dict = g.dictionary();
  rdf::TermId follows = *dict.Find("<follows>");
  rdf::TermId b = *dict.Find("<B>");

  IndexPattern by_pred;
  by_pred.predicate = follows;
  EXPECT_EQ(store.Scan(by_pred).size(), 4u);

  IndexPattern by_subj_pred;
  by_subj_pred.subject = b;
  by_subj_pred.predicate = follows;
  EXPECT_EQ(store.Scan(by_subj_pred).size(), 2u);

  IndexPattern by_obj;
  by_obj.object = b;
  EXPECT_EQ(store.Scan(by_obj).size(), 1u);

  IndexPattern all;
  EXPECT_EQ(store.Scan(all).size(), 7u);

  IndexPattern fully_bound;
  fully_bound.subject = *dict.Find("<A>");
  fully_bound.predicate = follows;
  fully_bound.object = b;
  EXPECT_EQ(store.Scan(fully_bound).size(), 1u);
}

TEST(PermutationIndexTest, DeduplicatesInput) {
  rdf::Graph g;
  g.AddIris("A", "p", "B");
  g.AddIris("A", "p", "B");
  PermutationIndexStore store(g);
  EXPECT_EQ(store.num_triples(), 1u);
}

TEST(PermutationIndexTest, ChoosePermutationCoversAllShapes) {
  IndexPattern p;
  EXPECT_EQ(PermutationIndexStore::ChoosePermutation(p), Permutation::kSpo);
  p.predicate = 1;
  EXPECT_EQ(PermutationIndexStore::ChoosePermutation(p), Permutation::kPso);
  p.object = 2;
  EXPECT_EQ(PermutationIndexStore::ChoosePermutation(p), Permutation::kPos);
  p.predicate.reset();
  EXPECT_EQ(PermutationIndexStore::ChoosePermutation(p), Permutation::kOsp);
  p.subject = 3;
  EXPECT_EQ(PermutationIndexStore::ChoosePermutation(p), Permutation::kSop);
}

// --- Centralized engine ---------------------------------------------------

TEST(CentralizedEngineTest, AnswersQ1) {
  rdf::Graph g = MakeG1();
  PermutationIndexStore store(g);
  CentralizedBgpEngine engine(&store, &g.dictionary());
  auto result = engine.Execute(kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectQ1Result(result->table, g);
  EXPECT_GT(result->index_lookups, 0u);
}

TEST(CentralizedEngineTest, BoundConstantMissingFromDataIsEmpty) {
  rdf::Graph g = MakeG1();
  PermutationIndexStore store(g);
  CentralizedBgpEngine engine(&store, &g.dictionary());
  auto result = engine.Execute("SELECT * WHERE { <Nope> <follows> ?x }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 0u);
}

TEST(CentralizedEngineTest, RejectsOptional) {
  rdf::Graph g = MakeG1();
  PermutationIndexStore store(g);
  CentralizedBgpEngine engine(&store, &g.dictionary());
  auto result = engine.Execute(
      "SELECT * WHERE { ?x <follows> ?y . OPTIONAL { ?y <likes> ?z . } }");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

// --- MapReduce engines ------------------------------------------------------

class MrEngineTest : public ::testing::TestWithParam<MrPlanner> {};

TEST_P(MrEngineTest, AnswersQ1ThroughDiskJobs) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  MrEngineOptions options;
  options.work_dir = dir.path();
  options.planner = GetParam();
  MrSparqlEngine engine(&g, options);
  auto result = engine.Execute(kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectQ1Result(result->table, g);
  EXPECT_GE(result->jobs, 1u);
  EXPECT_GT(result->metrics.shuffle_bytes, 0u);
}

TEST_P(MrEngineTest, SingleTriplePattern) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  MrEngineOptions options;
  options.work_dir = dir.path();
  options.planner = GetParam();
  MrSparqlEngine engine(&g, options);
  auto result = engine.Execute("SELECT ?x ?y WHERE { ?x <follows> ?y }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Planners, MrEngineTest,
                         ::testing::Values(MrPlanner::kClauseIteration,
                                           MrPlanner::kMultiJoin));

TEST(MrEngineTest, ShardRunsOneJobPerClause) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  MrEngineOptions options;
  options.work_dir = dir.path();
  options.planner = MrPlanner::kClauseIteration;
  MrSparqlEngine engine(&g, options);
  auto result = engine.Execute(kQ1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs, 4u);
}

TEST(MrEngineTest, MultiJoinUsesFewerJobs) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  // Star query: three patterns on the same subject -> one multi-join job.
  MrEngineOptions options;
  options.work_dir = dir.path();
  options.planner = MrPlanner::kMultiJoin;
  MrSparqlEngine pig(&g, options);
  auto result = pig.Execute(
      "SELECT * WHERE { ?x <follows> ?y . ?x <likes> ?w . ?x <follows> ?z }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs, 1u);
}

// --- H2RDF+ ------------------------------------------------------------------

TEST(H2RdfEngineTest, CentralizedForSelectiveQueries) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  H2RdfOptions options;
  options.centralized_input_limit = 1000;
  options.mr.work_dir = dir.path();
  H2RdfEngine engine(&g, options);
  auto result = engine.Execute(kQ1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->centralized);
  ExpectQ1Result(result->table, g);
}

TEST(H2RdfEngineTest, FallsBackToMapReduceWhenUnselective) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  H2RdfOptions options;
  options.centralized_input_limit = 2;  // Forces the distributed path.
  options.mr.work_dir = dir.path();
  H2RdfEngine engine(&g, options);
  auto result = engine.Execute(kQ1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->centralized);
  EXPECT_GE(result->jobs, 1u);
  ExpectQ1Result(result->table, g);
}

TEST(H2RdfEngineTest, EstimateUsesIndexCardinalities) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  H2RdfOptions options;
  options.mr.work_dir = dir.path();
  H2RdfEngine engine(&g, options);
  auto estimate = engine.EstimateInput(kQ1);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(*estimate, 4u);  // |follows| dominates.
}

// --- Sempala -----------------------------------------------------------------

class SempalaTest
    : public ::testing::TestWithParam<core::PropertyTableStrategy> {};

TEST_P(SempalaTest, AnswersQ1) {
  rdf::Graph g = MakeG1();
  SempalaOptions options;
  options.strategy = GetParam();
  auto engine = SempalaEngine::Create(&g, options);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute(kQ1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectQ1Result(result->table, g);
}

TEST_P(SempalaTest, StarQueryIsOneGroup) {
  rdf::Graph g = MakeG1();
  SempalaOptions options;
  options.strategy = GetParam();
  auto engine = SempalaEngine::Create(&g, options);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute(
      "SELECT * WHERE { ?x <follows> ?y . ?x <likes> ?w }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->star_groups, 1u);
  // A follows B with likes I1/I2 (2 rows) + C follows D likes I2 (1 row).
  EXPECT_EQ(result->table.NumRows(), 3u);
}

TEST_P(SempalaTest, RepeatedPredicateInStar) {
  rdf::Graph g = MakeG1();
  SempalaOptions options;
  options.strategy = GetParam();
  auto engine = SempalaEngine::Create(&g, options);
  ASSERT_TRUE(engine.ok());
  // ?x follows ?y . ?x follows ?z — requires a self-join.
  auto result = (*engine)->Execute(
      "SELECT * WHERE { ?x <follows> ?y . ?x <follows> ?z }");
  ASSERT_TRUE(result.ok());
  // A: 1x1, B: 2x2, C: 1x1 = 6 combinations.
  EXPECT_EQ(result->table.NumRows(), 6u);
}

TEST_P(SempalaTest, BoundSubjectStar) {
  rdf::Graph g = MakeG1();
  SempalaOptions options;
  options.strategy = GetParam();
  auto engine = SempalaEngine::Create(&g, options);
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute(
      "SELECT ?w WHERE { <A> <likes> ?w . <A> <follows> <B> }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, SempalaTest,
    ::testing::Values(core::PropertyTableStrategy::kDuplication,
                      core::PropertyTableStrategy::kAuxiliaryTables));

TEST(SempalaEdgeTest, FiltersAndModifiersApply) {
  rdf::Graph g = MakeG1();
  auto engine = SempalaEngine::Create(&g, SempalaOptions());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute(
      "SELECT DISTINCT ?y WHERE { ?x <follows> ?y . "
      "FILTER (?y != <D>) } LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 1u);
}

TEST(SempalaEdgeTest, PredicateAbsentFromDataIsEmpty) {
  rdf::Graph g = MakeG1();
  auto engine = SempalaEngine::Create(&g, SempalaOptions());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute(
      "SELECT * WHERE { ?x <unknown_pred> ?y }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 0u);
}

TEST(SempalaEdgeTest, RejectsUnboundPredicate) {
  rdf::Graph g = MakeG1();
  auto engine = SempalaEngine::Create(&g, SempalaOptions());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute("SELECT * WHERE { ?x ?p ?y }");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(MrEngineEdgeTest, CrossJoinBetweenDisconnectedPatterns) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  MrEngineOptions options;
  options.work_dir = dir.path();
  MrSparqlEngine engine(&g, options);
  // No shared variable: 3 likes x 4 follows = 12 combinations.
  auto result = engine.Execute(
      "SELECT * WHERE { ?a <likes> ?b . ?c <follows> ?d }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 12u);
}

TEST(MrEngineEdgeTest, BoundConstantAbsentFromDataYieldsEmpty) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  MrEngineOptions options;
  options.work_dir = dir.path();
  MrSparqlEngine engine(&g, options);
  auto result = engine.Execute("SELECT * WHERE { <Zz> <follows> ?x }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 0u);
}

TEST(MrEngineEdgeTest, RepeatedVariableWithinPattern) {
  rdf::Graph g;
  g.AddIris("A", "p", "A");
  g.AddIris("A", "p", "B");
  ScopedTempDir dir;
  MrEngineOptions options;
  options.work_dir = dir.path();
  MrSparqlEngine engine(&g, options);
  auto result = engine.Execute("SELECT * WHERE { ?x <p> ?x }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 1u);  // Only the self-loop.
}

TEST(H2RdfEngineTest, RejectsOptionalQueries) {
  rdf::Graph g = MakeG1();
  ScopedTempDir dir;
  H2RdfOptions options;
  options.mr.work_dir = dir.path();
  H2RdfEngine engine(&g, options);
  auto result = engine.Execute(
      "SELECT * WHERE { ?x <follows> ?y . OPTIONAL { ?y <likes> ?z } }");
  EXPECT_FALSE(result.ok());
}

TEST(CentralizedEngineTest, FiltersAndOrderApply) {
  rdf::Graph g = MakeG1();
  PermutationIndexStore store(g);
  CentralizedBgpEngine engine(&store, &g.dictionary());
  auto result = engine.Execute(
      "SELECT ?y WHERE { <B> <follows> ?y . FILTER (?y != <C>) } "
      "ORDER BY ?y");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->table.NumRows(), 1u);
  EXPECT_EQ(g.dictionary().Decode(result->table.At(0, 0)), "<D>");
}

}  // namespace
}  // namespace s2rdf::baselines
