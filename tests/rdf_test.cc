#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace s2rdf::rdf {
namespace {

TEST(TermTest, IriRoundtrip) {
  Term t = Term::Iri("http://example.org/A");
  EXPECT_TRUE(t.is_iri());
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/A>");
  auto parsed = Term::Parse(t.ToNTriples());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TermTest, PlainLiteralRoundtrip) {
  Term t = Term::Literal("hello world");
  EXPECT_EQ(t.ToNTriples(), "\"hello world\"");
  auto parsed = Term::Parse(t.ToNTriples());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, t);
}

TEST(TermTest, TypedLiteralRoundtrip) {
  Term t = Term::Literal("42", "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(t.ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  auto parsed = Term::Parse(t.ToNTriples());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->datatype(), "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(TermTest, LanguageLiteralRoundtrip) {
  Term t = Term::Literal("bonjour", "", "fr");
  EXPECT_EQ(t.ToNTriples(), "\"bonjour\"@fr");
  auto parsed = Term::Parse(t.ToNTriples());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->language(), "fr");
}

TEST(TermTest, BlankNodeRoundtrip) {
  Term t = Term::Blank("b0");
  EXPECT_EQ(t.ToNTriples(), "_:b0");
  auto parsed = Term::Parse("_:b0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->is_blank());
}

TEST(TermTest, EscapingRoundtrip) {
  Term t = Term::Literal("line1\nline2 \"quoted\" \\slash\t");
  auto parsed = Term::Parse(t.ToNTriples());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->value(), t.value());
}

TEST(TermTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Term::Parse("").ok());
  EXPECT_FALSE(Term::Parse("<unterminated").ok());
  EXPECT_FALSE(Term::Parse("\"unterminated").ok());
  EXPECT_FALSE(Term::Parse("plainword").ok());
}

TEST(DictionaryTest, EncodeAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Encode("<a>"), 0u);
  EXPECT_EQ(dict.Encode("<b>"), 1u);
  EXPECT_EQ(dict.Encode("<a>"), 0u);  // Idempotent.
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Decode(1), "<b>");
}

TEST(DictionaryTest, FindDoesNotInsert) {
  Dictionary dict;
  dict.Encode("<a>");
  EXPECT_FALSE(dict.Find("<b>").has_value());
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.Find("<a>").value(), 0u);
}

TEST(DictionaryTest, SerializeRoundtrip) {
  Dictionary dict;
  for (int i = 0; i < 100; ++i) {
    dict.Encode("<http://x/" + std::to_string(i) + ">");
  }
  auto restored = Dictionary::Deserialize(dict.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 100u);
  EXPECT_EQ(restored->Decode(42), "<http://x/42>");
  EXPECT_EQ(restored->Find("<http://x/99>").value(), 99u);
}

TEST(DictionaryTest, DeserializeRejectsTruncated) {
  Dictionary dict;
  dict.Encode("<a>");
  std::string blob = dict.Serialize();
  blob.resize(blob.size() - 1);
  EXPECT_FALSE(Dictionary::Deserialize(blob).ok());
}

TEST(GraphTest, AddAndDistinctPredicates) {
  Graph g;
  g.AddIris("A", "follows", "B");
  g.AddIris("B", "follows", "C");
  g.AddIris("A", "likes", "I1");
  EXPECT_EQ(g.NumTriples(), 3u);
  EXPECT_EQ(g.DistinctPredicates().size(), 2u);
}

TEST(NTriplesTest, ParseBasic) {
  Graph g;
  std::string data =
      "<http://x/A> <http://x/p> <http://x/B> .\n"
      "# a comment\n"
      "\n"
      "<http://x/A> <http://x/q> \"42\"^^<http://www.w3.org/2001/"
      "XMLSchema#integer> .\n"
      "_:b <http://x/p> \"hi there\"@en .\n";
  ASSERT_TRUE(ParseNTriples(data, &g).ok());
  EXPECT_EQ(g.NumTriples(), 3u);
}

TEST(NTriplesTest, WriteParseRoundtrip) {
  Graph g;
  g.AddIris("A", "p", "B");
  g.Add(Term::Iri("A"), Term::Iri("p"), Term::Literal("x \"y\"\nz"));
  std::string text = WriteNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(text, &g2).ok());
  EXPECT_EQ(g2.NumTriples(), 2u);
  EXPECT_EQ(WriteNTriples(g2), text);
}

TEST(NTriplesTest, ErrorsCarryLineNumbers) {
  Graph g;
  Status s = ParseNTriples("<a> <b> <c> .\nbroken line\n", &g);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RejectsLiteralPredicate) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("<a> \"p\" <c> .\n", &g).ok());
}

TEST(NTriplesTest, RejectsMissingDot) {
  Graph g;
  EXPECT_FALSE(ParseNTriples("<a> <b> <c>\n", &g).ok());
}

}  // namespace
}  // namespace s2rdf::rdf
