#include <gtest/gtest.h>

#include "common/file_util.h"
#include "storage/catalog.h"
#include "storage/encoding.h"
#include "storage/table_file.h"

namespace s2rdf::storage {
namespace {

TEST(EncodingTest, VarintRoundtrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 32, ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(EncodingTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos, &v));
}

TEST(EncodingTest, ZigZag) {
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(0)), 0);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-1)), -1);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(123456789)), 123456789);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-987654321)), -987654321);
}

void RoundtripColumn(const std::vector<uint32_t>& column) {
  std::string block = EncodeColumn(column);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumn(block, &back).ok());
  EXPECT_EQ(back, column);
}

TEST(EncodingTest, ColumnRoundtripEmpty) { RoundtripColumn({}); }

TEST(EncodingTest, ColumnRoundtripPlain) {
  RoundtripColumn({5, 1, 9, 2, 8, 1000000, 3});
}

TEST(EncodingTest, ColumnRlePicksRleAndRoundtrips) {
  std::vector<uint32_t> runs(1000, 7);
  runs.resize(2000, 9);
  std::string block = EncodeColumn(runs);
  EXPECT_EQ(static_cast<ColumnCodec>(block[0]), ColumnCodec::kRle);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumn(block, &back).ok());
  EXPECT_EQ(back, runs);
}

TEST(EncodingTest, ColumnDeltaWinsOnSorted) {
  std::vector<uint32_t> sorted;
  for (uint32_t i = 0; i < 1000; ++i) sorted.push_back(1000000 + i * 3);
  std::string block = EncodeColumn(sorted);
  EXPECT_EQ(static_cast<ColumnCodec>(block[0]), ColumnCodec::kDeltaVarint);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumn(block, &back).ok());
  EXPECT_EQ(back, sorted);
}

TEST(EncodingTest, DecodeRejectsGarbage) {
  std::vector<uint32_t> out;
  EXPECT_FALSE(DecodeColumn("", &out).ok());
  EXPECT_FALSE(DecodeColumn("\x07junk", &out).ok());
}

engine::Table MakeTable() {
  engine::Table t({"s", "o"});
  for (uint32_t i = 0; i < 500; ++i) t.AppendRow({i / 10, i * 7 % 97});
  return t;
}

TEST(TableFileTest, SerializeRoundtrip) {
  engine::Table t = MakeTable();
  auto back = DeserializeTable(SerializeTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(engine::Table::SameBag(t, *back));
}

TEST(TableFileTest, ChecksumDetectsCorruption) {
  std::string blob = SerializeTable(MakeTable());
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_FALSE(DeserializeTable(blob).ok());
}

TEST(TableFileTest, SaveLoadFile) {
  ScopedTempDir dir;
  engine::Table t = MakeTable();
  auto bytes = SaveTable(t, dir.path() + "/t.s2tb");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);
  auto back = LoadTable(dir.path() + "/t.s2tb");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(engine::Table::SameBag(t, *back));
}

TEST(TableFileTest, CompressionBeatsRawForRepetitiveData) {
  engine::Table t({"s", "o"});
  for (uint32_t i = 0; i < 10000; ++i) t.AppendRow({3, i});
  std::string blob = SerializeTable(t);
  EXPECT_LT(blob.size(), 10000u * 2 * 4);  // Smaller than raw u32 columns.
}

TEST(CatalogTest, PutAndGet) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 0.5).ok());
  EXPECT_TRUE(catalog.Has("t1"));
  const TableStats* stats = catalog.GetStats("t1");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows, 500u);
  EXPECT_DOUBLE_EQ(stats->selectivity, 0.5);
  EXPECT_TRUE(stats->materialized);
  EXPECT_GT(stats->bytes, 0u);
  auto table = catalog.GetTable("t1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
}

TEST(CatalogTest, StatsOnlyEntryIsNotLoadable) {
  Catalog catalog("");
  catalog.PutStatsOnly("ghost", 17, 1.0);
  EXPECT_TRUE(catalog.Has("ghost"));
  EXPECT_FALSE(catalog.GetStats("ghost")->materialized);
  EXPECT_FALSE(catalog.GetTable("ghost").ok());
}

TEST(CatalogTest, EvictAndReloadFromDisk) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.EvictFromMemory("t1");
  auto table = catalog.GetTable("t1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
}

TEST(CatalogTest, ManifestRoundtrip) {
  ScopedTempDir dir;
  {
    Catalog catalog(dir.path());
    ASSERT_TRUE(catalog.Put("t1", MakeTable(), 0.25).ok());
    catalog.PutStatsOnly("t2", 99, 0.75);
    ASSERT_TRUE(catalog.SaveManifest().ok());
  }
  Catalog restored(dir.path());
  ASSERT_TRUE(restored.LoadManifest().ok());
  EXPECT_EQ(restored.NumStatsEntries(), 2u);
  EXPECT_DOUBLE_EQ(restored.GetStats("t1")->selectivity, 0.25);
  EXPECT_FALSE(restored.GetStats("t2")->materialized);
  // Materialized table is loadable after restart.
  auto table = restored.GetTable("t1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
}

TEST(CatalogTest, InMemoryCatalogTracksSerializedBytes) {
  Catalog catalog("");
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  EXPECT_GT(catalog.GetStats("t1")->bytes, 0u);
  EXPECT_EQ(catalog.NumMaterializedTables(), 1u);
  EXPECT_EQ(catalog.TotalTuples(), 500u);
}

TEST(CatalogTest, MemoryBudgetEvictsLru) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  ASSERT_TRUE(catalog.Put("t2", MakeTable(), 1.0).ok());
  ASSERT_TRUE(catalog.Put("t3", MakeTable(), 1.0).ok());
  uint64_t per_table = catalog.CachedBytes() / 3;
  // Budget fits two tables; t1 is least recently used.
  catalog.SetMemoryBudget(per_table * 2);
  ASSERT_TRUE(catalog.GetTable("t1").ok());  // Touch t1: now t2 is LRU.
  size_t evicted = catalog.EvictToBudget();
  EXPECT_EQ(evicted, 1u);
  EXPECT_LE(catalog.CachedBytes(), per_table * 2);
  // All tables remain loadable (the victim reloads from disk).
  for (const char* name : {"t1", "t2", "t3"}) {
    auto table = catalog.GetTable(name);
    ASSERT_TRUE(table.ok()) << name;
    EXPECT_EQ((*table)->NumRows(), 500u);
  }
}

TEST(CatalogTest, InMemoryCatalogNeverEvicts) {
  Catalog catalog("");
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.SetMemoryBudget(1);
  EXPECT_EQ(catalog.EvictToBudget(), 0u);
  EXPECT_TRUE(catalog.GetTable("t1").ok());
}

TEST(CatalogTest, CachedBytesTracksEvictions) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  uint64_t before = catalog.CachedBytes();
  EXPECT_GT(before, 0u);
  catalog.EvictFromMemory("t1");
  EXPECT_EQ(catalog.CachedBytes(), 0u);
  ASSERT_TRUE(catalog.GetTable("t1").ok());
  EXPECT_EQ(catalog.CachedBytes(), before);
}

TEST(CatalogTest, ProviderResolvesTables) {
  Catalog catalog("");
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  engine::TableProvider provider = catalog.AsProvider();
  EXPECT_NE(provider("t1"), nullptr);
  EXPECT_EQ(provider("missing"), nullptr);
}

}  // namespace
}  // namespace s2rdf::storage
