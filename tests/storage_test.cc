#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/hash.h"
#include "common/strings.h"
#include "storage/catalog.h"
#include "storage/encoding.h"
#include "storage/fault_injection_env.h"
#include "storage/table_file.h"

namespace s2rdf::storage {
namespace {

TEST(EncodingTest, VarintRoundtrip) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 32, ~0ull};
  for (uint64_t v : values) PutVarint64(&buf, v);
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(EncodingTest, VarintTruncationDetected) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos, &v));
}

TEST(EncodingTest, ZigZag) {
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(0)), 0);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-1)), -1);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(123456789)), 123456789);
  EXPECT_EQ(ZigZagDecode(ZigZagEncode(-987654321)), -987654321);
}

void RoundtripColumn(const std::vector<uint32_t>& column) {
  std::string block = EncodeColumn(column);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumn(block, &back).ok());
  EXPECT_EQ(back, column);
}

TEST(EncodingTest, ColumnRoundtripEmpty) { RoundtripColumn({}); }

TEST(EncodingTest, ColumnRoundtripPlain) {
  RoundtripColumn({5, 1, 9, 2, 8, 1000000, 3});
}

TEST(EncodingTest, ColumnRlePicksRleAndRoundtrips) {
  std::vector<uint32_t> runs(1000, 7);
  runs.resize(2000, 9);
  std::string block = EncodeColumn(runs);
  EXPECT_EQ(static_cast<ColumnCodec>(block[0]), ColumnCodec::kRle);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumn(block, &back).ok());
  EXPECT_EQ(back, runs);
}

TEST(EncodingTest, ColumnDeltaWinsOnSorted) {
  std::vector<uint32_t> sorted;
  for (uint32_t i = 0; i < 1000; ++i) sorted.push_back(1000000 + i * 3);
  std::string block = EncodeColumn(sorted);
  EXPECT_EQ(static_cast<ColumnCodec>(block[0]), ColumnCodec::kDeltaVarint);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumn(block, &back).ok());
  EXPECT_EQ(back, sorted);
}

TEST(EncodingTest, DecodeRejectsGarbage) {
  std::vector<uint32_t> out;
  EXPECT_FALSE(DecodeColumn("", &out).ok());
  EXPECT_FALSE(DecodeColumn("\x07junk", &out).ok());
}

engine::Table MakeTable() {
  engine::Table t({"s", "o"});
  for (uint32_t i = 0; i < 500; ++i) t.AppendRow({i / 10, i * 7 % 97});
  return t;
}

TEST(TableFileTest, SerializeRoundtrip) {
  engine::Table t = MakeTable();
  auto back = DeserializeTable(SerializeTable(t));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(engine::Table::SameBag(t, *back));
}

TEST(TableFileTest, ChecksumDetectsCorruption) {
  std::string blob = SerializeTable(MakeTable());
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_FALSE(DeserializeTable(blob).ok());
}

TEST(TableFileTest, SaveLoadFile) {
  ScopedTempDir dir;
  engine::Table t = MakeTable();
  auto bytes = SaveTable(t, dir.path() + "/t.s2tb");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(*bytes, 0u);
  auto back = LoadTable(dir.path() + "/t.s2tb");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(engine::Table::SameBag(t, *back));
}

TEST(TableFileTest, CompressionBeatsRawForRepetitiveData) {
  engine::Table t({"s", "o"});
  for (uint32_t i = 0; i < 10000; ++i) t.AppendRow({3, i});
  std::string blob = SerializeTable(t);
  EXPECT_LT(blob.size(), 10000u * 2 * 4);  // Smaller than raw u32 columns.
}

TEST(CatalogTest, PutAndGet) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 0.5).ok());
  EXPECT_TRUE(catalog.Has("t1"));
  const TableStats* stats = catalog.GetStats("t1");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows, 500u);
  EXPECT_DOUBLE_EQ(stats->selectivity, 0.5);
  EXPECT_TRUE(stats->materialized);
  EXPECT_GT(stats->bytes, 0u);
  auto table = catalog.GetTable("t1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
}

TEST(CatalogTest, StatsOnlyEntryIsNotLoadable) {
  Catalog catalog("");
  catalog.PutStatsOnly("ghost", 17, 1.0);
  EXPECT_TRUE(catalog.Has("ghost"));
  EXPECT_FALSE(catalog.GetStats("ghost")->materialized);
  EXPECT_FALSE(catalog.GetTable("ghost").ok());
}

TEST(CatalogTest, EvictAndReloadFromDisk) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.EvictFromMemory("t1");
  auto table = catalog.GetTable("t1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
}

TEST(CatalogTest, ManifestRoundtrip) {
  ScopedTempDir dir;
  {
    Catalog catalog(dir.path());
    ASSERT_TRUE(catalog.Put("t1", MakeTable(), 0.25).ok());
    catalog.PutStatsOnly("t2", 99, 0.75);
    ASSERT_TRUE(catalog.SaveManifest().ok());
  }
  Catalog restored(dir.path());
  ASSERT_TRUE(restored.LoadManifest().ok());
  EXPECT_EQ(restored.NumStatsEntries(), 2u);
  EXPECT_DOUBLE_EQ(restored.GetStats("t1")->selectivity, 0.25);
  EXPECT_FALSE(restored.GetStats("t2")->materialized);
  // Materialized table is loadable after restart.
  auto table = restored.GetTable("t1");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
}

TEST(CatalogTest, InMemoryCatalogTracksSerializedBytes) {
  Catalog catalog("");
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  EXPECT_GT(catalog.GetStats("t1")->bytes, 0u);
  EXPECT_EQ(catalog.NumMaterializedTables(), 1u);
  EXPECT_EQ(catalog.TotalTuples(), 500u);
}

TEST(CatalogTest, MemoryBudgetEvictsLru) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  ASSERT_TRUE(catalog.Put("t2", MakeTable(), 1.0).ok());
  ASSERT_TRUE(catalog.Put("t3", MakeTable(), 1.0).ok());
  uint64_t per_table = catalog.CachedBytes() / 3;
  // Budget fits two tables; t1 is least recently used.
  catalog.SetMemoryBudget(per_table * 2);
  ASSERT_TRUE(catalog.GetTable("t1").ok());  // Touch t1: now t2 is LRU.
  size_t evicted = catalog.EvictToBudget();
  EXPECT_EQ(evicted, 1u);
  EXPECT_LE(catalog.CachedBytes(), per_table * 2);
  // All tables remain loadable (the victim reloads from disk).
  for (const char* name : {"t1", "t2", "t3"}) {
    auto table = catalog.GetTable(name);
    ASSERT_TRUE(table.ok()) << name;
    EXPECT_EQ((*table)->NumRows(), 500u);
  }
}

TEST(CatalogTest, InMemoryCatalogNeverEvicts) {
  Catalog catalog("");
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.SetMemoryBudget(1);
  EXPECT_EQ(catalog.EvictToBudget(), 0u);
  EXPECT_TRUE(catalog.GetTable("t1").ok());
}

TEST(CatalogTest, CachedBytesTracksEvictions) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  uint64_t before = catalog.CachedBytes();
  EXPECT_GT(before, 0u);
  catalog.EvictFromMemory("t1");
  EXPECT_EQ(catalog.CachedBytes(), 0u);
  ASSERT_TRUE(catalog.GetTable("t1").ok());
  EXPECT_EQ(catalog.CachedBytes(), before);
}

TEST(CatalogTest, ProviderResolvesTables) {
  Catalog catalog("");
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  engine::TableProvider provider = catalog.AsProvider();
  EXPECT_NE(provider("t1"), nullptr);
  EXPECT_EQ(provider("missing"), nullptr);
}

// --- S2TB robustness -----------------------------------------------------

TEST(TableFileTest, RejectsBlobShorterThanMinimum) {
  std::string blob = SerializeTable(MakeTable());
  for (size_t n : {size_t{0}, size_t{4}, size_t{8}, size_t{17}}) {
    auto result = DeserializeTable(std::string_view(blob).substr(0, n));
    ASSERT_FALSE(result.ok()) << n;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find("too short"), std::string::npos)
        << result.status().ToString();
  }
}

TEST(TableFileTest, TruncatedBlobDetected) {
  std::string blob = SerializeTable(MakeTable());
  auto result =
      DeserializeTable(std::string_view(blob).substr(0, blob.size() - 9));
  EXPECT_FALSE(result.ok());
}

TEST(TableFileTest, ZeroLengthFileRejectedWithClearError) {
  ScopedTempDir dir;
  ASSERT_TRUE(WriteFile(dir.path() + "/zero.s2tb", "").ok());
  auto result = LoadTable(dir.path() + "/zero.s2tb");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("too short"), std::string::npos);
}

TEST(TableFileTest, BitFlipIsLocalizedToOneColumn) {
  std::string blob = SerializeTable(MakeTable());
  blob[blob.size() / 2] ^= 0x01;  // Mid-file lands inside a column chunk.
  auto result = DeserializeTable(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("column '"), std::string::npos)
      << result.status().ToString();
  EXPECT_FALSE(VerifyTableBlob(blob).ok());
}

TEST(TableFileTest, Version1FilesStillReadable) {
  // Hand-build a v1 blob (no per-column chunk checksums) and check the
  // current reader accepts it.
  engine::Table t = MakeTable();
  std::string out;
  out.append("S2TB", 4);
  uint32_t version = 1;
  out.append(reinterpret_cast<const char*>(&version), 4);
  PutVarint64(&out, t.NumColumns());
  PutVarint64(&out, t.NumRows());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const std::string& name = t.column_names()[c];
    PutVarint64(&out, name.size());
    out += name;
    std::string block = EncodeColumn(t.Column(c));
    PutVarint64(&out, block.size());
    out += block;
  }
  uint64_t checksum = Fnv1a64(out);
  out.append(reinterpret_cast<const char*>(&checksum), 8);

  ASSERT_TRUE(VerifyTableBlob(out).ok());
  auto back = DeserializeTable(out);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(engine::Table::SameBag(t, *back));
}

TEST(EncodingTest, ChecksummedColumnRoundtripAndDetection) {
  std::vector<uint32_t> column = {5, 1, 9, 2, 8, 1000000, 3};
  std::string chunk = EncodeColumnChecksummed(column);
  std::vector<uint32_t> back;
  ASSERT_TRUE(DecodeColumnChecksummed(chunk, &back).ok());
  EXPECT_EQ(back, column);
  chunk[chunk.size() / 2] ^= 0x20;
  EXPECT_FALSE(DecodeColumnChecksummed(chunk, &back).ok());
  EXPECT_FALSE(VerifyColumnChecksum("").ok());
}

// --- Crash safety and recovery ------------------------------------------

TEST(CatalogTest, ManifestGenerationsAdvanceAndPrune) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  ASSERT_TRUE(catalog.SaveManifest().ok());
  EXPECT_EQ(catalog.generation(), 1u);
  ASSERT_TRUE(catalog.SaveManifest().ok());
  ASSERT_TRUE(catalog.SaveManifest().ok());
  EXPECT_EQ(catalog.generation(), 3u);
  EXPECT_TRUE(PathExists(dir.path() + "/CURRENT"));
  EXPECT_TRUE(PathExists(dir.path() + "/manifest-3.tsv"));
  // The previous generation is kept as the chain's fallback link; older
  // ones are pruned.
  EXPECT_TRUE(PathExists(dir.path() + "/manifest-2.tsv"));
  EXPECT_FALSE(PathExists(dir.path() + "/manifest-1.tsv"));
}

TEST(CatalogTest, CorruptCurrentGenerationFallsBackToPrevious) {
  ScopedTempDir dir;
  {
    Catalog catalog(dir.path());
    ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
    ASSERT_TRUE(catalog.SaveManifest().ok());
    catalog.PutStatsOnly("t2", 5, 0.5);
    ASSERT_TRUE(catalog.SaveManifest().ok());
  }
  // Damage generation 2; loading must fall back to generation 1 (the
  // state of the previous successful save).
  std::string manifest;
  ASSERT_TRUE(ReadFile(dir.path() + "/manifest-2.tsv", &manifest).ok());
  manifest[manifest.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteFile(dir.path() + "/manifest-2.tsv", manifest).ok());
  Catalog restored(dir.path());
  ASSERT_TRUE(restored.LoadManifest().ok());
  EXPECT_EQ(restored.generation(), 1u);
  EXPECT_TRUE(restored.Has("t1"));
  EXPECT_FALSE(restored.Has("t2"));
}

TEST(CatalogTest, LegacyUnchecksummedManifestStillReadable) {
  ScopedTempDir dir;
  std::string legacy =
      "# name\trows\tselectivity\tbytes\tmaterialized\n"
      "ghost\t42\t0.5\t0\t0\n";
  ASSERT_TRUE(WriteFile(dir.path() + "/manifest.tsv", legacy).ok());
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.LoadManifest().ok());
  ASSERT_NE(catalog.GetStats("ghost"), nullptr);
  EXPECT_EQ(catalog.GetStats("ghost")->rows, 42u);
  EXPECT_EQ(catalog.generation(), 0u);
}

TEST(CatalogTest, StaleTempFilesSweptAtRecovery) {
  ScopedTempDir dir;
  {
    Catalog catalog(dir.path());
    ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
    ASSERT_TRUE(catalog.SaveManifest().ok());
  }
  // A crash mid-WriteFileAtomic leaves a half-written staging file.
  ASSERT_TRUE(WriteFile(dir.path() + "/t9.s2tb.tmp", "partial write").ok());
  Catalog restored(dir.path());
  auto report = restored.Recover();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ(report->temp_files_removed, 1u);
  EXPECT_EQ(report->tables_verified, 1u);
  EXPECT_EQ(report->tables_quarantined, 0u);
  EXPECT_FALSE(PathExists(dir.path() + "/t9.s2tb.tmp"));
}

TEST(CatalogTest, CorruptTableQuarantinedAtRecovery) {
  ScopedTempDir dir;
  {
    Catalog catalog(dir.path());
    ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
    ASSERT_TRUE(catalog.Put("t2", MakeTable(), 1.0).ok());
    ASSERT_TRUE(catalog.SaveManifest().ok());
  }
  std::string blob;
  ASSERT_TRUE(ReadFile(dir.path() + "/t1.s2tb", &blob).ok());
  blob[blob.size() / 2] ^= 0x08;
  ASSERT_TRUE(WriteFile(dir.path() + "/t1.s2tb", blob).ok());

  Catalog restored(dir.path());
  auto report = restored.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tables_quarantined, 1u);
  EXPECT_EQ(report->tables_verified, 1u);
  EXPECT_TRUE(restored.IsQuarantined("t1"));
  EXPECT_FALSE(restored.IsQuarantined("t2"));
  EXPECT_GE(restored.corruptions_detected(), 1u);
  EXPECT_EQ(restored.quarantined_tables(), 1u);
  // A quarantined table refuses to load, with a distinct code.
  auto table = restored.GetTable("t1");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(restored.GetTable("t2").ok());
}

TEST(CatalogTest, ZeroLengthTableQuarantinedAtRecovery) {
  ScopedTempDir dir;
  {
    Catalog catalog(dir.path());
    ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
    ASSERT_TRUE(catalog.SaveManifest().ok());
  }
  ASSERT_TRUE(WriteFile(dir.path() + "/t1.s2tb", "").ok());
  Catalog restored(dir.path());
  auto report = restored.Recover();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->tables_quarantined, 1u);
  EXPECT_TRUE(restored.IsQuarantined("t1"));
}

TEST(CatalogTest, CorruptLoadQuarantinesOnFirstAccess) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.EvictFromMemory("t1");
  std::string blob;
  ASSERT_TRUE(ReadFile(dir.path() + "/t1.s2tb", &blob).ok());
  blob[blob.size() - 1] ^= 0x02;  // Trailer checksum byte.
  ASSERT_TRUE(WriteFile(dir.path() + "/t1.s2tb", blob).ok());

  EXPECT_FALSE(catalog.GetTable("t1").ok());
  EXPECT_TRUE(catalog.IsQuarantined("t1"));
  EXPECT_EQ(catalog.corruptions_detected(), 1u);
  // A fresh Put heals the quarantine.
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  EXPECT_FALSE(catalog.IsQuarantined("t1"));
  EXPECT_TRUE(catalog.GetTable("t1").ok());
}

TEST(CatalogTest, TransientReadErrorsAreRetriedNotQuarantined) {
  ScopedTempDir dir;
  FaultInjectionEnv fenv;
  Catalog catalog(dir.path(), &fenv);
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.EvictFromMemory("t1");
  fenv.FailNextReads(2);  // Fewer than the retry budget.
  auto table = catalog.GetTable("t1");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_FALSE(catalog.IsQuarantined("t1"));
  EXPECT_EQ(catalog.corruptions_detected(), 0u);
}

TEST(CatalogTest, PersistentTransientErrorsSurfaceWithoutQuarantine) {
  ScopedTempDir dir;
  FaultInjectionEnv fenv;
  Catalog catalog(dir.path(), &fenv);
  ASSERT_TRUE(catalog.Put("t1", MakeTable(), 1.0).ok());
  catalog.EvictFromMemory("t1");
  fenv.FailNextReads(100);  // Outlasts any retry budget.
  auto table = catalog.GetTable("t1");
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
  // Transient failures are not corruption: no quarantine.
  EXPECT_FALSE(catalog.IsQuarantined("t1"));
  fenv.ClearFaults();
  EXPECT_TRUE(catalog.GetTable("t1").ok());
}

TEST(CatalogTest, AtomicPutLeavesOldTableOnCrash) {
  ScopedTempDir dir;
  FaultInjectionEnv fenv;
  fenv.set_crash_style(FaultInjectionEnv::CrashStyle::kTorn);
  Catalog catalog(dir.path(), &fenv);
  engine::Table small({"s", "o"});
  small.AppendRow({1, 2});
  ASSERT_TRUE(catalog.Put("t1", std::move(small), 1.0).ok());
  ASSERT_TRUE(catalog.SaveManifest().ok());

  // Crash during the replacement write: the torn prefix only ever hits
  // the staging file, never t1.s2tb itself.
  fenv.CrashAfterMutations(0);
  EXPECT_FALSE(catalog.Put("t1", MakeTable(), 1.0).ok());
  fenv.ClearFaults();

  Catalog reopened(dir.path());
  ASSERT_TRUE(reopened.Recover().ok());
  auto table = reopened.GetTable("t1");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->NumRows(), 1u);  // Old state, intact.
}

TEST(CatalogTest, ProviderDegradesToFallbackTable) {
  ScopedTempDir dir;
  Catalog catalog(dir.path());
  engine::Table reduced({"s", "o"});
  reduced.AppendRow({1, 2});
  ASSERT_TRUE(catalog.Put("extvp_t", std::move(reduced), 0.5).ok());
  ASSERT_TRUE(catalog.Put("vp_t", MakeTable(), 1.0).ok());
  catalog.SetDegradedFallback([](const std::string& name) {
    return name == "extvp_t" ? "vp_t" : std::string();
  });
  catalog.EvictFromMemory("extvp_t");
  std::string blob;
  ASSERT_TRUE(ReadFile(dir.path() + "/extvp_t.s2tb", &blob).ok());
  blob[blob.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFile(dir.path() + "/extvp_t.s2tb", blob).ok());

  engine::TableProvider provider = catalog.AsProvider();
  const engine::Table* table = provider("extvp_t");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->NumRows(), 500u);  // The fallback's (superset) data.
  EXPECT_EQ(catalog.queries_degraded(), 1u);
  EXPECT_TRUE(catalog.IsQuarantined("extvp_t"));
  // Re-resolving within the same query is pinned and counts once.
  EXPECT_NE(provider("extvp_t"), nullptr);
  EXPECT_EQ(catalog.queries_degraded(), 1u);
}

TEST(FaultInjectionEnvTest, CrashPointSemantics) {
  ScopedTempDir dir;
  FaultInjectionEnv env;
  env.CrashAfterMutations(1);
  EXPECT_TRUE(env.WriteFile(dir.path() + "/a", "x").ok());
  EXPECT_FALSE(env.WriteFile(dir.path() + "/b", "y").ok());  // Crash point.
  EXPECT_TRUE(env.crashed());
  EXPECT_FALSE(env.RenameFile(dir.path() + "/a", dir.path() + "/c").ok());
  EXPECT_EQ(env.mutation_count(), 1u);
  env.ClearFaults();
  EXPECT_TRUE(env.WriteFile(dir.path() + "/b", "y").ok());
}

TEST(FaultInjectionEnvTest, TornWritePersistsPrefix) {
  ScopedTempDir dir;
  FaultInjectionEnv env;
  env.set_crash_style(FaultInjectionEnv::CrashStyle::kTorn);
  env.CrashAfterMutations(0);
  EXPECT_FALSE(env.WriteFile(dir.path() + "/torn", "0123456789").ok());
  env.ClearFaults();
  std::string data;
  ASSERT_TRUE(ReadFile(dir.path() + "/torn", &data).ok());
  EXPECT_EQ(data, "01234");
}

TEST(FaultInjectionEnvTest, BitFlipIsSilent) {
  ScopedTempDir dir;
  FaultInjectionEnv env;
  env.FlipBitInNextWrite();
  ASSERT_TRUE(env.WriteFile(dir.path() + "/f", "aaaa").ok());
  std::string data;
  ASSERT_TRUE(ReadFile(dir.path() + "/f", &data).ok());
  EXPECT_NE(data, "aaaa");
  // Only the next write is affected.
  ASSERT_TRUE(env.WriteFile(dir.path() + "/g", "aaaa").ok());
  ASSERT_TRUE(ReadFile(dir.path() + "/g", &data).ok());
  EXPECT_EQ(data, "aaaa");
}

}  // namespace
}  // namespace s2rdf::storage
