#include <chrono>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/operators.h"
#include "engine/parallel.h"
#include "engine/parallel_join.h"
#include "engine/plan.h"
#include "engine/table.h"
#include "engine/value.h"
#include "rdf/dictionary.h"

namespace s2rdf::engine {
namespace {

// Exact (row-order-sensitive) table equality: the parallel operators
// promise byte-identical output, not just the same bag.
void ExpectIdenticalTables(const Table& a, const Table& b) {
  ASSERT_EQ(a.column_names(), b.column_names());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.Column(c), b.Column(c)) << "column " << c;
  }
}

void ExpectIdenticalMetrics(const ExecMetrics& a, const ExecMetrics& b) {
  EXPECT_EQ(a.input_tuples, b.input_tuples);
  EXPECT_EQ(a.intermediate_tuples, b.intermediate_tuples);
  EXPECT_EQ(a.join_comparisons, b.join_comparisons);
  EXPECT_EQ(a.shuffled_tuples, b.shuffled_tuples);
  EXPECT_EQ(a.output_tuples, b.output_tuples);
}

// --- Table --------------------------------------------------------------

TEST(TableTest, AppendAndAccess) {
  Table t({"x", "y"});
  t.AppendRow({1, 2});
  t.AppendRow({3, 4});
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.NumColumns(), 2u);
  EXPECT_EQ(t.At(1, 0), 3u);
  EXPECT_EQ(t.ColumnIndex("y"), 1);
  EXPECT_EQ(t.ColumnIndex("z"), -1);
}

TEST(TableTest, SameBagIgnoresRowOrder) {
  Table a({"x"});
  a.AppendRow({1});
  a.AppendRow({2});
  Table b({"x"});
  b.AppendRow({2});
  b.AppendRow({1});
  EXPECT_TRUE(Table::SameBag(a, b));
  b.AppendRow({1});
  EXPECT_FALSE(Table::SameBag(a, b));
}

TEST(TableTest, SameBagRespectsDuplicates) {
  Table a({"x"});
  a.AppendRow({1});
  a.AppendRow({1});
  Table b({"x"});
  b.AppendRow({1});
  b.AppendRow({2});
  EXPECT_FALSE(Table::SameBag(a, b));
}

// --- Values --------------------------------------------------------------

TEST(ValueTest, ParsesTypedNumerics) {
  Value v = ValueFromCanonicalTerm(
      "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(v.kind, ValueKind::kInt);
  EXPECT_EQ(v.int_value, 42);
  Value d = ValueFromCanonicalTerm(
      "\"2.5\"^^<http://www.w3.org/2001/XMLSchema#double>");
  EXPECT_EQ(d.kind, ValueKind::kDouble);
}

TEST(ValueTest, NumericComparisonCrossesTypes) {
  Value i = ValueFromCanonicalTerm(
      "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  Value d = ValueFromCanonicalTerm(
      "\"3.5\"^^<http://www.w3.org/2001/XMLSchema#double>");
  bool comparable = false;
  EXPECT_LT(CompareValues(i, d, &comparable), 0);
  EXPECT_TRUE(comparable);
}

TEST(ValueTest, StringVsNumberIsTypeError) {
  Value s = ValueFromCanonicalTerm("\"abc\"");
  Value i = ValueFromCanonicalTerm(
      "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  bool comparable = true;
  CompareValues(s, i, &comparable);
  EXPECT_FALSE(comparable);
}

TEST(ValueTest, PlainLiteralIsString) {
  Value v = ValueFromCanonicalTerm("\"42\"");
  EXPECT_EQ(v.kind, ValueKind::kString);
}

// --- Operators ------------------------------------------------------------

class OperatorsTest : public ::testing::Test {
 protected:
  // Tiny two-table setup: follows(s,o) and likes(s,o) over ids.
  OperatorsTest() : follows_({"x", "y"}), likes_({"x", "w"}) {
    // Ids: A=0 B=1 C=2 D=3 I1=4 I2=5.
    follows_.AppendRow({0, 1});
    follows_.AppendRow({1, 2});
    follows_.AppendRow({1, 3});
    follows_.AppendRow({2, 3});
    likes_.AppendRow({0, 4});
    likes_.AppendRow({0, 5});
    likes_.AppendRow({2, 5});
  }

  Table follows_;
  Table likes_;
  ExecContext ctx_;
};

TEST_F(OperatorsTest, ScanSelectProject) {
  ScanSpec spec;
  spec.conditions.emplace_back(0, 0);  // x == A
  spec.projections.emplace_back(1, "y");
  Table out = ScanSelectProject(follows_, spec, &ctx_);
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.At(0, 0), 1u);
  EXPECT_EQ(ctx_.metrics.input_tuples, follows_.NumRows());
}

TEST_F(OperatorsTest, ScanEqualColumns) {
  Table t({"a", "b"});
  t.AppendRow({1, 1});
  t.AppendRow({1, 2});
  ScanSpec spec;
  spec.equal_columns.emplace_back(0, 1);
  spec.projections.emplace_back(0, "a");
  Table out = ScanSelectProject(t, spec, &ctx_);
  EXPECT_EQ(out.NumRows(), 1u);
}

TEST_F(OperatorsTest, HashJoinOnSharedColumn) {
  // follows(x,y) join likes(x,w): subject-subject join.
  Table out = HashJoin(follows_, likes_, &ctx_);
  // A follows B and A likes I1/I2 -> 2 rows; C follows D and C likes I2.
  EXPECT_EQ(out.NumRows(), 3u);
  EXPECT_EQ(out.NumColumns(), 3u);
  EXPECT_EQ(ctx_.metrics.join_comparisons,
            follows_.NumRows() * likes_.NumRows());
}

TEST_F(OperatorsTest, HashJoinNoSharedColumnsIsCross) {
  Table a({"p"});
  a.AppendRow({1});
  a.AppendRow({2});
  Table b({"q"});
  b.AppendRow({7});
  Table out = HashJoin(a, b, &ctx_);
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.NumColumns(), 2u);
}

TEST_F(OperatorsTest, HashJoinNullKeysNeverMatch) {
  Table a({"x"});
  a.AppendRow({kNullTermId});
  Table out = HashJoin(a, likes_, &ctx_);
  EXPECT_EQ(out.NumRows(), 0u);
}

TEST_F(OperatorsTest, SemiJoinReducesLeft) {
  // follows semi-join likes on o = s: keep follows rows whose object is
  // a likes subject ({0, 2}) -> (1,2) and (2, ... no: objects are 1,2,3.
  Table out = SemiJoin(follows_, 1, likes_, 0, &ctx_);
  ASSERT_EQ(out.NumRows(), 1u);  // Only (1, 2): object 2 = C likes.
  EXPECT_EQ(out.At(0, 0), 1u);
  EXPECT_EQ(out.At(0, 1), 2u);
}

TEST_F(OperatorsTest, SemiJoinChargesCrossComparisons) {
  // Semi joins follow the |L|x|R| accounting of every other join
  // (Fig. 8 / Fig. 12), not |L|.
  SemiJoin(follows_, 1, likes_, 0, &ctx_);
  EXPECT_EQ(ctx_.metrics.join_comparisons,
            follows_.NumRows() * likes_.NumRows());
}

TEST_F(OperatorsTest, LeftOuterJoinPadsWithNulls) {
  rdf::Dictionary dict;
  Table out = LeftOuterJoin(follows_, likes_, nullptr, dict, &ctx_);
  // Every follows row survives; B rows (x=1) have no likes match.
  EXPECT_EQ(out.NumRows(), 5u);
  int nulls = 0;
  int w_col = out.ColumnIndex("w");
  ASSERT_GE(w_col, 0);
  for (size_t r = 0; r < out.NumRows(); ++r) {
    if (out.At(r, static_cast<size_t>(w_col)) == kNullTermId) ++nulls;
  }
  EXPECT_EQ(nulls, 2);
}

TEST_F(OperatorsTest, UnionAllAlignsSchemas) {
  Table a({"x", "y"});
  a.AppendRow({1, 2});
  Table b({"y", "z"});
  b.AppendRow({8, 9});
  Table out = UnionAll(a, b, &ctx_);
  EXPECT_EQ(out.NumRows(), 2u);
  EXPECT_EQ(out.NumColumns(), 3u);
  EXPECT_EQ(out.At(1, 0), kNullTermId);  // x unbound in b.
  EXPECT_EQ(out.At(1, 1), 8u);
}

TEST_F(OperatorsTest, DistinctRemovesDuplicates) {
  Table t({"x"});
  t.AppendRow({1});
  t.AppendRow({1});
  t.AppendRow({2});
  Table out = Distinct(t, &ctx_);
  EXPECT_EQ(out.NumRows(), 2u);
}

TEST_F(OperatorsTest, SliceAndProject) {
  Table sliced = Slice(follows_, 1, 2);
  EXPECT_EQ(sliced.NumRows(), 2u);
  EXPECT_EQ(sliced.At(0, 0), 1u);
  Table empty = Slice(follows_, 10, kNoLimit);
  EXPECT_EQ(empty.NumRows(), 0u);
  Table projected = Project(follows_, {"y"});
  EXPECT_EQ(projected.NumColumns(), 1u);
  EXPECT_EQ(projected.At(0, 0), 1u);
}

TEST_F(OperatorsTest, OrderByNumericValues) {
  rdf::Dictionary dict;
  rdf::TermId ten = dict.Encode(
      "\"10\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  rdf::TermId two = dict.Encode(
      "\"2\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  Table t({"n"});
  t.AppendRow({ten});
  t.AppendRow({two});
  Table asc = OrderBy(t, {{"n", true}}, dict);
  EXPECT_EQ(asc.At(0, 0), two);  // Numeric: 2 < 10 despite "10" < "2".
  Table desc = OrderBy(t, {{"n", false}}, dict);
  EXPECT_EQ(desc.At(0, 0), ten);
}

TEST_F(OperatorsTest, FilterWithExpression) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.Encode("<A>");
  rdf::TermId b = dict.Encode("<B>");
  Table t({"x"});
  t.AppendRow({a});
  t.AppendRow({b});
  ExprPtr e = Expr::Compare(CompareOp::kEq, Expr::Var("x"),
                            Expr::Const("<A>"));
  Table out = Filter(t, *e, dict, &ctx_);
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.At(0, 0), a);
}

TEST_F(OperatorsTest, ShuffleAccountingUsesPartitions) {
  ExecContext ctx;
  ctx.num_partitions = 4;
  ctx.AccountShuffle(100);
  EXPECT_EQ(ctx.metrics.shuffled_tuples, 75u);
  ExecContext single;
  single.num_partitions = 1;
  single.AccountShuffle(100);
  EXPECT_EQ(single.metrics.shuffled_tuples, 0u);
}

// --- Sort-merge join ---------------------------------------------------------

class SortMergeJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(SortMergeJoinTest, MatchesHashJoin) {
  s2rdf::SplitMix64 rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  Table left({"x", "y"});
  Table right({"y", "z"});
  size_t rows = 50 + rng.Uniform(500);
  for (size_t i = 0; i < rows; ++i) {
    left.AppendRow({static_cast<TermId>(rng.Uniform(40)),
                    static_cast<TermId>(rng.Uniform(25))});
    right.AppendRow({static_cast<TermId>(rng.Uniform(25)),
                     static_cast<TermId>(rng.Uniform(40))});
  }
  left.AppendRow({kNullTermId, 1});
  right.AppendRow({1, kNullTermId});

  Table hash = HashJoin(left, right, nullptr);
  Table merge = SortMergeJoin(left, right, nullptr);
  EXPECT_TRUE(Table::SameBag(hash, merge));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortMergeJoinTest, ::testing::Range(0, 6));

TEST(SortMergeJoinTest, DuplicateKeysCrossWithinRuns) {
  Table left({"k", "a"});
  left.AppendRow({1, 10});
  left.AppendRow({1, 11});
  left.AppendRow({2, 12});
  Table right({"k", "b"});
  right.AppendRow({1, 20});
  right.AppendRow({1, 21});
  Table out = SortMergeJoin(left, right, nullptr);
  EXPECT_EQ(out.NumRows(), 4u);  // 2x2 for k=1, nothing for k=2.
}

// --- Parallel join -----------------------------------------------------------

class ParallelJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelJoinTest, MatchesSerialJoin) {
  s2rdf::SplitMix64 rng(static_cast<uint64_t>(GetParam()) * 41 + 5);
  size_t rows = 3000 + rng.Uniform(8000);
  Table left({"x", "y"});
  Table right({"y", "z"});
  for (size_t i = 0; i < rows; ++i) {
    left.AppendRow({static_cast<TermId>(rng.Uniform(500)),
                    static_cast<TermId>(rng.Uniform(200))});
    right.AppendRow({static_cast<TermId>(rng.Uniform(200)),
                     static_cast<TermId>(rng.Uniform(500))});
  }
  // A few null keys that must never match.
  left.AppendRow({1, kNullTermId});
  right.AppendRow({kNullTermId, 2});

  ExecContext serial_ctx;
  Table serial = HashJoin(left, right, &serial_ctx);
  ExecContext parallel_ctx;
  parallel_ctx.num_partitions = 7;
  Table parallel = ParallelHashJoin(left, right, &parallel_ctx);
  EXPECT_TRUE(Table::SameBag(serial, parallel));
  EXPECT_EQ(serial_ctx.metrics.join_comparisons,
            parallel_ctx.metrics.join_comparisons);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelJoinTest, ::testing::Range(0, 5));

TEST(ParallelJoinTest, SmallInputsFallBackToSerial) {
  Table left({"x", "y"});
  left.AppendRow({1, 2});
  Table right({"y", "z"});
  right.AppendRow({2, 3});
  ExecContext ctx;
  ctx.num_partitions = 4;
  Table out = ParallelHashJoin(left, right, &ctx);
  ASSERT_EQ(out.NumRows(), 1u);
  EXPECT_EQ(out.At(0, 2), 3u);
}

TEST(ParallelJoinTest, CrossJoinFallsBackToSerial) {
  // No shared columns: must fall back to the serial cross product even
  // above the size threshold.
  Table left({"x"});
  Table right({"z"});
  for (TermId i = 0; i < 5000; ++i) left.AppendRow({i});
  for (TermId i = 0; i < 3; ++i) right.AppendRow({i});
  ExecContext ctx;
  ctx.num_partitions = 4;
  Table out = ParallelHashJoin(left, right, &ctx);
  EXPECT_EQ(out.NumRows(), 15000u);
}

TEST(ParallelJoinTest, CanonicalOrderAndMetricsMatchSerial) {
  // Stronger than SameBag: the gather must reproduce the serial
  // output row for row, and every metric must match exactly.
  s2rdf::SplitMix64 rng(97);
  Table left({"x", "y"});
  Table right({"y", "z"});
  for (size_t i = 0; i < 9000; ++i) {
    left.AppendRow({static_cast<TermId>(rng.Uniform(600) + 1),
                    static_cast<TermId>(rng.Uniform(250) + 1)});
    right.AppendRow({static_cast<TermId>(rng.Uniform(250) + 1),
                     static_cast<TermId>(rng.Uniform(600) + 1)});
  }
  left.AppendRow({1, kNullTermId});
  right.AppendRow({kNullTermId, 2});

  ExecContext serial_ctx;
  Table serial = HashJoin(left, right, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelHashJoin(left, right, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelJoinTest, InterruptedJoinSkipsGatherAndReturnsEmpty) {
  // ~4M-row join output against a 1 ms deadline: the partition tasks
  // must bail out mid-probe, and the interrupted join must return an
  // empty table (no gather of partial partitions) with the reason
  // recorded.
  s2rdf::SplitMix64 rng(23);
  Table left({"x", "y"});
  Table right({"y", "z"});
  for (size_t i = 0; i < 40000; ++i) {
    left.AppendRow({static_cast<TermId>(rng.Uniform(1000) + 1),
                    static_cast<TermId>(rng.Uniform(400) + 1)});
    right.AppendRow({static_cast<TermId>(rng.Uniform(400) + 1),
                     static_cast<TermId>(rng.Uniform(1000) + 1)});
  }
  ExecContext ctx;
  ctx.has_deadline = true;
  ctx.deadline =  // s2rdf-lint: allow(clock)
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  Table out = ParallelHashJoin(left, right, &ctx);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(ctx.interrupt_status.code(), StatusCode::kDeadlineExceeded);
}

// --- Parallel operators ------------------------------------------------------

TEST(ParallelOperatorsTest, ScanSelectProjectMatchesSerial) {
  s2rdf::SplitMix64 rng(7);
  Table base({"s", "o"});
  for (size_t i = 0; i < 20000; ++i) {
    base.AppendRow({static_cast<TermId>(rng.Uniform(5) + 1),
                    static_cast<TermId>(rng.Uniform(1000) + 1)});
  }
  ScanSpec spec;
  spec.conditions.emplace_back(0, 3);
  spec.projections.emplace_back(1, "o");

  ExecContext serial_ctx;
  Table serial = ScanSelectProject(base, spec, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelScanSelectProject(base, spec, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelOperatorsTest, DistinctMatchesSerial) {
  // Low cardinality: heavy duplication, and first-occurrence order must
  // survive the hash-partitioned dedup.
  s2rdf::SplitMix64 rng(9);
  Table t({"a", "b"});
  for (size_t i = 0; i < 20000; ++i) {
    t.AppendRow({static_cast<TermId>(rng.Uniform(40) + 1),
                 static_cast<TermId>(rng.Uniform(40) + 1)});
  }
  ExecContext serial_ctx;
  Table serial = Distinct(t, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelDistinct(t, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelOperatorsTest, OrderByMatchesSerial) {
  // Many duplicate sort keys: the k-way merge's earliest-chunk
  // tie-break must reproduce the serial stable_sort exactly.
  rdf::Dictionary dict;
  std::vector<TermId> terms;
  for (int i = 0; i < 60; ++i) {
    terms.push_back(dict.Encode(
        "\"" + std::to_string(i) +
        "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
  }
  s2rdf::SplitMix64 rng(11);
  Table t({"n", "m"});
  for (size_t i = 0; i < 20000; ++i) {
    t.AppendRow({terms[rng.Uniform(60)], terms[rng.Uniform(60)]});
  }
  std::vector<SortKey> keys = {{"n", true}, {"m", false}};
  ExecContext serial_ctx;
  Table serial = OrderBy(t, keys, dict, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelOrderBy(t, keys, dict, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelOperatorsTest, GroupByAggregateMatchesSerial) {
  // Mixed aggregate set including the states that cannot be merged
  // across workers (FP sums, DISTINCT sets): group-exclusive
  // partitioning must make the output and minted literals identical.
  rdf::Dictionary dict;
  std::vector<TermId> group_keys;
  for (int i = 0; i < 50; ++i) {
    group_keys.push_back(dict.Encode("<K" + std::to_string(i) + ">"));
  }
  std::vector<TermId> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(dict.Encode(
        "\"" + std::to_string(i) + ".25" +
        "\"^^<http://www.w3.org/2001/XMLSchema#double>"));
  }
  s2rdf::SplitMix64 rng(13);
  Table t({"k", "v"});
  for (size_t i = 0; i < 20000; ++i) {
    t.AppendRow({group_keys[rng.Uniform(50)], values[rng.Uniform(200)]});
  }
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kCountStar, "", "n", false},
      {AggregateSpec::Fn::kSum, "v", "total", false},
      {AggregateSpec::Fn::kAvg, "v", "avg", false},
      {AggregateSpec::Fn::kCount, "v", "dv", true},
      {AggregateSpec::Fn::kMin, "v", "mn", false},
  };
  ExecContext serial_ctx;
  auto serial = GroupByAggregate(t, {"k"}, specs, &dict, &serial_ctx);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ExecContext parallel_ctx;
  auto parallel =
      ParallelGroupByAggregate(t, {"k"}, specs, &dict, &parallel_ctx);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdenticalTables(*serial, *parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

// --- Expressions -----------------------------------------------------------

TEST(ExpressionTest, ThreeValuedLogic) {
  rdf::Dictionary dict;
  rdf::TermId n5 =
      dict.Encode("\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  Table t({"x", "y"});
  t.AppendRow({n5, kNullTermId});

  // (?y > 3) is an error (unbound) -> error || true = true.
  ExprPtr err_or_true = Expr::Or(
      Expr::Compare(CompareOp::kGt, Expr::Var("y"),
                    Expr::Const(
                        "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>")),
      Expr::Compare(CompareOp::kGt, Expr::Var("x"),
                    Expr::Const(
                        "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>")));
  ExprEvaluator eval1(*err_or_true, t, dict);
  EXPECT_EQ(eval1.Eval(0), Truth::kTrue);

  // error && true = error -> filtered out.
  ExprPtr err_and_true = Expr::And(
      Expr::Compare(CompareOp::kGt, Expr::Var("y"),
                    Expr::Const(
                        "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>")),
      Expr::Compare(CompareOp::kGt, Expr::Var("x"),
                    Expr::Const(
                        "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>")));
  ExprEvaluator eval2(*err_and_true, t, dict);
  EXPECT_EQ(eval2.Eval(0), Truth::kError);
  EXPECT_FALSE(eval2.Keep(0));
}

TEST(ExpressionTest, BoundAndRegex) {
  rdf::Dictionary dict;
  rdf::TermId hello = dict.Encode("\"Hello World\"");
  Table t({"x", "y"});
  t.AppendRow({hello, kNullTermId});

  ExprPtr bound_x = Expr::Bound("x");
  EXPECT_EQ(ExprEvaluator(*bound_x, t, dict).Eval(0), Truth::kTrue);
  ExprPtr bound_y = Expr::Bound("y");
  EXPECT_EQ(ExprEvaluator(*bound_y, t, dict).Eval(0), Truth::kFalse);

  ExprPtr re = Expr::Regex("x", "world", true);
  EXPECT_EQ(ExprEvaluator(*re, t, dict).Eval(0), Truth::kTrue);
  ExprPtr re_cs = Expr::Regex("x", "world", false);
  EXPECT_EQ(ExprEvaluator(*re_cs, t, dict).Eval(0), Truth::kFalse);
}

// --- Plan execution ---------------------------------------------------------

TEST(PlanTest, ScanJoinProjectExecution) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.Encode("<A>");
  rdf::TermId b = dict.Encode("<B>");
  rdf::TermId c = dict.Encode("<C>");
  Table follows({"s", "o"});
  follows.AppendRow({a, b});
  follows.AppendRow({b, c});
  Table likes({"s", "o"});
  likes.AppendRow({b, a});

  auto provider = [&](const std::string& name) -> const Table* {
    if (name == "follows") return &follows;
    if (name == "likes") return &likes;
    return nullptr;
  };

  // ?x follows ?y . ?y likes ?z
  engine::PlanPtr plan = PlanNode::Join(
      PlanNode::Scan("follows", {}, {{"s", "x"}, {"o", "y"}}),
      PlanNode::Scan("likes", {}, {{"s", "y"}, {"o", "z"}}));
  plan = PlanNode::ProjectNode(std::move(plan), {"x", "y", "z"});

  ExecContext ctx;
  auto result = ExecutePlan(*plan, provider, &dict, &ctx);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->At(0, 0), a);
  EXPECT_EQ(result->At(0, 1), b);
  EXPECT_EQ(result->At(0, 2), a);
  EXPECT_GT(ctx.metrics.input_tuples, 0u);
}

TEST(PlanTest, UnknownTableIsNotFound) {
  rdf::Dictionary dict;
  auto provider = [](const std::string&) -> const Table* { return nullptr; };
  engine::PlanPtr plan = PlanNode::Scan("nope", {}, {{"s", "x"}});
  ExecContext ctx;
  auto result = ExecutePlan(*plan, provider, &dict, &ctx);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(PlanTest, EmptyNodeYieldsEmptySchema) {
  rdf::Dictionary dict;
  auto provider = [](const std::string&) -> const Table* { return nullptr; };
  engine::PlanPtr plan = PlanNode::Empty({"x", "y"});
  ExecContext ctx;
  auto result = ExecutePlan(*plan, provider, &dict, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 0u);
  EXPECT_EQ(result->NumColumns(), 2u);
}

TEST(PlanTest, ToSqlRendersScan) {
  engine::PlanPtr plan =
      PlanNode::Scan("vp_likes_3", {{"s", "<A>"}}, {{"o", "w"}});
  std::string sql = plan->ToSql();
  EXPECT_NE(sql.find("SELECT o AS w"), std::string::npos);
  EXPECT_NE(sql.find("FROM vp_likes_3"), std::string::npos);
  EXPECT_NE(sql.find("WHERE s = '<A>'"), std::string::npos);
}

TEST(PlanTest, ScanConstantMissingFromDictionaryMatchesNothing) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.Encode("<A>");
  Table base({"s", "o"});
  base.AppendRow({a, a});
  auto provider = [&](const std::string&) -> const Table* { return &base; };
  engine::PlanPtr plan =
      PlanNode::Scan("t", {{"s", "<NotInData>"}}, {{"o", "x"}});
  ExecContext ctx;
  auto result = ExecutePlan(*plan, provider, &dict, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRows(), 0u);
}

// --- Serial vs. parallel plan execution -------------------------------------

// Two joinable 6000-row tables of dictionary-encoded IRIs, big enough
// that every operator takes its morsel-parallel path.
struct ParallelPlanFixture {
  ParallelPlanFixture() : follows({"s", "o"}), likes({"s", "o"}) {
    std::vector<TermId> ids;
    for (int i = 0; i < 600; ++i) {
      ids.push_back(dict.Encode("<P" + std::to_string(i) + ">"));
    }
    s2rdf::SplitMix64 rng(31);
    for (size_t i = 0; i < 6000; ++i) {
      follows.AppendRow({ids[rng.Uniform(600)], ids[rng.Uniform(600)]});
      likes.AppendRow({ids[rng.Uniform(600)], ids[rng.Uniform(600)]});
    }
  }

  TableProvider Provider() {
    return [this](const std::string& name) -> const Table* {
      if (name == "follows") return &follows;
      if (name == "likes") return &likes;
      return nullptr;
    };
  }

  rdf::Dictionary dict;
  Table follows;
  Table likes;
};

// ?x follows ?y . ?y likes ?z, deduplicated and sorted.
PlanPtr JoinDistinctOrderPlan() {
  PlanPtr plan = PlanNode::Join(
      PlanNode::Scan("follows", {}, {{"s", "x"}, {"o", "y"}}),
      PlanNode::Scan("likes", {}, {{"s", "y"}, {"o", "z"}}));
  plan = PlanNode::DistinctNode(std::move(plan));
  return PlanNode::OrderByNode(std::move(plan), {{"x", true}, {"z", false}});
}

TEST(PlanTest, ParallelExecutionMatchesSerialExactly) {
  ParallelPlanFixture f;
  ExecContext serial_ctx;
  auto serial = ExecutePlan(*JoinDistinctOrderPlan(), f.Provider(), &f.dict,
                            &serial_ctx);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_GT(serial->NumRows(), 0u);

  ExecContext parallel_ctx;
  parallel_ctx.parallel_execution = true;
  auto parallel = ExecutePlan(*JoinDistinctOrderPlan(), f.Provider(), &f.dict,
                              &parallel_ctx);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdenticalTables(*serial, *parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(PlanTest, ParallelAggregatePlanMatchesSerial) {
  ParallelPlanFixture f;
  PlanPtr plan = PlanNode::AggregateNode(
      PlanNode::Scan("follows", {}, {{"s", "k"}, {"o", "v"}}), {"k"},
      {{AggregateSpec::Fn::kCountStar, "", "n", false},
       {AggregateSpec::Fn::kCount, "v", "dv", true}});
  ExecContext serial_ctx;
  auto serial = ExecutePlan(*plan, f.Provider(), &f.dict, &serial_ctx);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ExecContext parallel_ctx;
  parallel_ctx.parallel_execution = true;
  auto parallel = ExecutePlan(*plan, f.Provider(), &f.dict, &parallel_ctx);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdenticalTables(*serial, *parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(PlanTest, ParallelPlanReportsExpiredDeadline) {
  // ExecutePlan must surface the interrupt as a status, not as a
  // partial table, when the parallel operators bail out.
  ParallelPlanFixture f;
  ExecContext ctx;
  ctx.parallel_execution = true;
  ctx.has_deadline = true;
  ctx.deadline =  // s2rdf-lint: allow(clock)
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto result = ExecutePlan(*JoinDistinctOrderPlan(), f.Provider(), &f.dict,
                            &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace s2rdf::engine
