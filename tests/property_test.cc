#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/centralized_engine.h"
#include "baselines/permutation_index.h"
#include "common/random.h"
#include "core/s2rdf.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "storage/table_file.h"
#include "watdiv/queries.h"

// Randomized property tests: for arbitrary graphs and arbitrary BGP
// queries, every layout and the independent index-based engine agree.
// This catches compiler/selection bugs that the hand-written workloads
// miss (repeated variables, unbound predicates, cross joins, constants
// absent from the data, ...).

namespace s2rdf {
namespace {

rdf::Graph RandomGraph(SplitMix64* rng, int num_entities, int num_predicates,
                       int num_triples) {
  rdf::Graph g;
  for (int i = 0; i < num_triples; ++i) {
    std::string s = "e" + std::to_string(rng->Uniform(num_entities));
    std::string p = "p" + std::to_string(rng->Uniform(num_predicates));
    std::string o = "e" + std::to_string(rng->Uniform(num_entities));
    g.AddIris(s, p, o);
  }
  return g;
}

// A copy of `graph` (Graph is move-only).
rdf::Graph CopyGraph(const rdf::Graph& graph) {
  rdf::Graph copy;
  for (const rdf::Triple& t : graph.triples()) {
    copy.AddCanonical(graph.dictionary().Decode(t.subject),
                      graph.dictionary().Decode(t.predicate),
                      graph.dictionary().Decode(t.object));
  }
  return copy;
}

// Random BGP in SPARQL text form. Variables come from a small pool (so
// patterns connect and repeat); constants are sampled from the graph's
// vocabulary, occasionally from outside it.
std::string RandomBgpQuery(SplitMix64* rng, int num_entities,
                           int num_predicates) {
  int patterns = 1 + static_cast<int>(rng->Uniform(4));
  std::string query = "SELECT * WHERE {\n";
  const char* vars[] = {"?a", "?b", "?c", "?d"};
  auto subject_or_object = [&]() -> std::string {
    uint64_t kind = rng->Uniform(10);
    if (kind < 6) return vars[rng->Uniform(4)];
    if (kind < 9) {
      return "<e" + std::to_string(rng->Uniform(num_entities)) + ">";
    }
    return "<not_in_data>";  // Absent constant.
  };
  auto predicate = [&]() -> std::string {
    uint64_t kind = rng->Uniform(10);
    if (kind < 7) {
      return "<p" + std::to_string(rng->Uniform(num_predicates)) + ">";
    }
    if (kind < 9) return vars[rng->Uniform(4)];  // Unbound predicate.
    return "<p_unused>";
  };
  for (int i = 0; i < patterns; ++i) {
    query += "  " + subject_or_object() + " " + predicate() + " " +
             subject_or_object() + " .\n";
  }
  return query + "}";
}

class RandomBgpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomBgpTest, AllLayoutsAndIndexEngineAgree) {
  SplitMix64 rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  const int num_entities = 25;
  const int num_predicates = 6;
  rdf::Graph graph = RandomGraph(&rng, num_entities, num_predicates, 220);
  rdf::Graph baseline_copy = CopyGraph(graph);

  core::S2RdfOptions options;
  options.build_extvp_bitmaps = true;
  auto db = core::S2Rdf::Create(std::move(graph), options);
  ASSERT_TRUE(db.ok());

  baselines::PermutationIndexStore store(baseline_copy);
  baselines::CentralizedBgpEngine centralized(
      &store, &baseline_copy.dictionary());

  for (int q = 0; q < 25; ++q) {
    std::string query = RandomBgpQuery(&rng, num_entities, num_predicates);
    auto reference = (*db)->Execute(query, core::Layout::kTriplesTable);
    ASSERT_TRUE(reference.ok())
        << query << "\n" << reference.status().ToString();
    for (core::Layout layout :
         {core::Layout::kExtVp, core::Layout::kVp,
          core::Layout::kExtVpBitmap}) {
      auto result = (*db)->Execute(query, layout);
      ASSERT_TRUE(result.ok()) << query;
      EXPECT_TRUE(engine::Table::SameBag(reference->table, result->table))
          << "layout " << static_cast<int>(layout) << " disagrees on\n"
          << query;
    }
    // Independent engine over its own dictionary: compare decoded bags.
    auto central = centralized.Execute(query);
    ASSERT_TRUE(central.ok()) << query;
    ASSERT_EQ(central->table.NumRows(), reference->table.NumRows()) << query;
    auto decode_sorted = [](const engine::Table& t,
                            const rdf::Dictionary& dict) {
      std::vector<std::string> rows;
      for (size_t r = 0; r < t.NumRows(); ++r) {
        std::string row;
        for (size_t c = 0; c < t.NumColumns(); ++c) {
          row += dict.Decode(t.At(r, c)) + "\x1f";
        }
        rows.push_back(std::move(row));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    // Column order may differ between engines; compare projected to the
    // reference's column order.
    engine::Table aligned =
        engine::Project(central->table, reference->table.column_names());
    EXPECT_EQ(decode_sorted(aligned, baseline_copy.dictionary()),
              decode_sorted(reference->table,
                            (*db)->graph().dictionary()))
        << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBgpTest, ::testing::Range(0, 12));

// --- Parser robustness ----------------------------------------------------

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, MutatedQueriesNeverCrash) {
  SplitMix64 rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  // Start from real workload queries and mutate them.
  std::vector<std::string> corpus;
  for (const watdiv::QueryTemplate& tmpl : watdiv::BasicTestingQueries()) {
    SplitMix64 inst(1);
    corpus.push_back(watdiv::InstantiateQuery(tmpl, 1.0, &inst));
  }
  const char kNoise[] = "{}()<>?$.;,\"'\\ |&!=0aZ%\n\t";
  for (int round = 0; round < 60; ++round) {
    std::string text = corpus[rng.Uniform(corpus.size())];
    int mutations = 1 + static_cast<int>(rng.Uniform(8));
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      size_t pos = rng.Uniform(text.size());
      switch (rng.Uniform(3)) {
        case 0:  // Replace.
          text[pos] = kNoise[rng.Uniform(sizeof(kNoise) - 1)];
          break;
        case 1:  // Delete a span.
          text.erase(pos, rng.Uniform(10) + 1);
          break;
        default:  // Insert.
          text.insert(pos, 1, kNoise[rng.Uniform(sizeof(kNoise) - 1)]);
      }
    }
    // Must terminate and return a Status — never crash or hang.
    auto parsed = sparql::ParseQuery(text);
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 8));

// --- Storage robustness -----------------------------------------------------

class StorageFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(StorageFuzzTest, CorruptedTableFilesAreRejectedNotCrashing) {
  SplitMix64 rng(static_cast<uint64_t>(GetParam()) * 31337 + 3);
  engine::Table t({"s", "o"});
  for (uint32_t i = 0; i < 200; ++i) {
    t.AppendRow({static_cast<uint32_t>(rng.Uniform(50)),
                 static_cast<uint32_t>(rng.Uniform(50))});
  }
  std::string blob = storage::SerializeTable(t);
  for (int round = 0; round < 40; ++round) {
    std::string corrupted = blob;
    int flips = 1 + static_cast<int>(rng.Uniform(5));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(corrupted.size());
      corrupted[pos] = static_cast<char>(rng.Next());
    }
    auto result = storage::DeserializeTable(corrupted);
    if (result.ok()) {
      // Only acceptable if the corruption was a no-op (hit bytes equal).
      EXPECT_TRUE(engine::Table::SameBag(t, *result));
    }
  }
  // Truncations of every length must be rejected cleanly.
  for (size_t len = 0; len < blob.size(); len += 97) {
    auto result = storage::DeserializeTable(blob.substr(0, len));
    EXPECT_FALSE(result.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzzTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace s2rdf
