#include <gtest/gtest.h>

#include "common/random.h"
#include "sparql/parser.h"
#include "sparql/shape.h"
#include "watdiv/queries.h"

namespace s2rdf::sparql {
namespace {

ShapeInfo Analyze(const std::string& where_clause) {
  auto q = ParseQuery("PREFIX e: <http://e/>\nSELECT * WHERE {" +
                      where_clause + "}");
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return AnalyzeBgpShape(q->where.triples);
}

TEST(ShapeTest, SinglePattern) {
  ShapeInfo info = Analyze("?x e:p ?y .");
  EXPECT_EQ(info.shape, QueryShape::kSingle);
  EXPECT_EQ(info.diameter, 0);
}

TEST(ShapeTest, StarWithCenter) {
  ShapeInfo info = Analyze(
      "?x e:p ?a . ?x e:q ?b . ?x e:r ?c . ?x e:s ?d .");
  EXPECT_EQ(info.shape, QueryShape::kStar);
  EXPECT_EQ(info.center_variable, "x");
  EXPECT_EQ(info.diameter, 1);  // Paper: "star ... diameter of one".
}

TEST(ShapeTest, LinearChain) {
  ShapeInfo info = Analyze(
      "?a e:p ?b . ?b e:p ?c . ?c e:p ?d . ?d e:p ?e .");
  EXPECT_EQ(info.shape, QueryShape::kLinear);
  EXPECT_EQ(info.diameter, 3);  // 4 patterns = 3 edges.
}

TEST(ShapeTest, TwoPatternsAreLinear) {
  EXPECT_EQ(Analyze("?a e:p ?b . ?b e:q ?c .").shape, QueryShape::kLinear);
  EXPECT_EQ(Analyze("?a e:p ?b . ?a e:q ?c .").shape, QueryShape::kLinear);
}

TEST(ShapeTest, SnowflakeIsStarsJoinedByPath) {
  // Fig. 3's snowflake: two stars joined through ?x—?y.
  ShapeInfo info = Analyze(
      "?x e:likes ?z1 . ?x e:likes2 ?z2 . ?x e:follows ?y . "
      "?y e:likes3 ?z3 . ?y e:likes4 ?z4 .");
  EXPECT_EQ(info.shape, QueryShape::kSnowflake);
}

TEST(ShapeTest, CycleIsComplex) {
  // Q1 of the paper: a 4-cycle x->y->z->w->x.
  ShapeInfo info = Analyze(
      "?x e:likes ?w . ?x e:follows ?y . ?y e:follows ?z . "
      "?z e:likes ?w .");
  EXPECT_EQ(info.shape, QueryShape::kComplex);
  EXPECT_EQ(info.num_patterns, 4);
}

TEST(ShapeTest, ParallelEdgesAreComplex) {
  EXPECT_EQ(Analyze("?x e:p ?y . ?x e:q ?y . ?x e:r ?z .").shape,
            QueryShape::kComplex);
}

TEST(ShapeTest, DisconnectedPatterns) {
  EXPECT_EQ(Analyze("?a e:p ?b . ?c e:q ?d .").shape,
            QueryShape::kDisconnected);
}

// The Basic Testing workload exercises the shapes its category names
// promise. (WatDiv's "C" category is about composition/result size:
// C1/C2 are structurally snowflakes and C3 is a star.)
struct ExpectedShape {
  const char* query;
  QueryShape shape;
};

class WorkloadShapeTest : public ::testing::TestWithParam<ExpectedShape> {};

TEST_P(WorkloadShapeTest, MatchesCategory) {
  const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(GetParam().query);
  ASSERT_NE(tmpl, nullptr);
  SplitMix64 rng(3);
  auto q = ParseQuery(watdiv::InstantiateQuery(*tmpl, 1.0, &rng));
  ASSERT_TRUE(q.ok());
  ShapeInfo info = AnalyzeBgpShape(q->where.triples);
  EXPECT_EQ(info.shape, GetParam().shape)
      << GetParam().query << " classified as "
      << QueryShapeName(info.shape);
}

INSTANTIATE_TEST_SUITE_P(
    BasicTesting, WorkloadShapeTest,
    ::testing::Values(
        ExpectedShape{"L1", QueryShape::kLinear},
        ExpectedShape{"L2", QueryShape::kLinear},
        ExpectedShape{"L3", QueryShape::kLinear},
        ExpectedShape{"L4", QueryShape::kLinear},
        ExpectedShape{"L5", QueryShape::kLinear},
        ExpectedShape{"S1", QueryShape::kStar},
        ExpectedShape{"S2", QueryShape::kStar},
        ExpectedShape{"S3", QueryShape::kStar},
        ExpectedShape{"S5", QueryShape::kStar},
        ExpectedShape{"S6", QueryShape::kStar},
        ExpectedShape{"S7", QueryShape::kStar},
        ExpectedShape{"F1", QueryShape::kSnowflake},
        ExpectedShape{"F2", QueryShape::kSnowflake},
        ExpectedShape{"F3", QueryShape::kSnowflake},
        ExpectedShape{"F5", QueryShape::kSnowflake},
        ExpectedShape{"C3", QueryShape::kStar}),
    [](const ::testing::TestParamInfo<ExpectedShape>& info) {
      return info.param.query;
    });

TEST(WorkloadShapeTest, IlChainsAreLinearWithGrowingDiameter) {
  SplitMix64 rng(3);
  for (int k = 5; k <= 10; ++k) {
    const watdiv::QueryTemplate* tmpl =
        watdiv::FindQuery("IL-3-" + std::to_string(k));
    ASSERT_NE(tmpl, nullptr);
    auto q = ParseQuery(watdiv::InstantiateQuery(*tmpl, 1.0, &rng));
    ASSERT_TRUE(q.ok());
    ShapeInfo info = AnalyzeBgpShape(q->where.triples);
    EXPECT_EQ(info.shape, QueryShape::kLinear) << tmpl->name;
    EXPECT_EQ(info.diameter, k - 1) << tmpl->name;
  }
}

}  // namespace
}  // namespace s2rdf::sparql
