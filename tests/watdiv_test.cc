#include <gtest/gtest.h>

#include <map>

#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"
#include "watdiv/schema.h"

namespace s2rdf::watdiv {
namespace {

TEST(SchemaTest, EntityIrisAreCanonical) {
  EXPECT_EQ(EntityIri(EntityClass::kUser, 42),
            "<http://db.uwaterloo.ca/~galuc/wsdbm/User42>");
  EXPECT_EQ(EntityIri(EntityClass::kProductCategory, 2),
            "<http://db.uwaterloo.ca/~galuc/wsdbm/ProductCategory2>");
}

TEST(SchemaTest, CountsScaleOnlyForScalableClasses) {
  EXPECT_EQ(EntityCount(EntityClass::kUser, 2.0),
            2 * EntityCount(EntityClass::kUser, 1.0));
  EXPECT_EQ(EntityCount(EntityClass::kCountry, 2.0),
            EntityCount(EntityClass::kCountry, 1.0));
  EXPECT_GE(EntityCount(EntityClass::kUser, 0.001), 1u);
}

TEST(GeneratorTest, Deterministic) {
  GeneratorOptions options;
  options.scale_factor = 0.02;
  rdf::Graph a = Generate(options);
  rdf::Graph b = Generate(options);
  EXPECT_EQ(rdf::WriteNTriples(a), rdf::WriteNTriples(b));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions a;
  a.scale_factor = 0.02;
  GeneratorOptions b = a;
  b.seed = 7;
  EXPECT_NE(rdf::WriteNTriples(Generate(a)), rdf::WriteNTriples(Generate(b)));
}

TEST(GeneratorTest, TripleCountScalesRoughlyLinearly) {
  GeneratorOptions small;
  small.scale_factor = 0.1;
  GeneratorOptions large;
  large.scale_factor = 0.2;
  size_t n_small = Generate(small).NumTriples();
  size_t n_large = Generate(large).NumTriples();
  EXPECT_GT(n_small, 5000u);
  double ratio = static_cast<double>(n_large) / static_cast<double>(n_small);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.4);
}

TEST(GeneratorTest, PredicateFractionsMatchPaperShape) {
  GeneratorOptions options;
  options.scale_factor = 0.2;
  rdf::Graph g = Generate(options);
  std::map<std::string, uint64_t> counts;
  for (const rdf::Triple& t : g.triples()) {
    ++counts[g.dictionary().Decode(t.predicate)];
  }
  const double n = static_cast<double>(g.NumTriples());
  double friend_of =
      counts["<http://db.uwaterloo.ca/~galuc/wsdbm/friendOf>"] / n;
  double follows =
      counts["<http://db.uwaterloo.ca/~galuc/wsdbm/follows>"] / n;
  double likes = counts["<http://db.uwaterloo.ca/~galuc/wsdbm/likes>"] / n;
  // Paper: friendOf ~ 0.41|G|, follows ~ 0.30|G|, likes ~ 0.011|G|.
  EXPECT_GT(friend_of, 0.35);
  EXPECT_LT(friend_of, 0.52);
  EXPECT_GT(follows, 0.25);
  EXPECT_LT(follows, 0.40);
  EXPECT_GT(likes, 0.005);
  EXPECT_LT(likes, 0.03);
  // Users never carry sorg:language (ST-8 empty-result structure).
  // sorg:language exists but only on products/websites.
  EXPECT_GT(counts["<http://schema.org/language>"], 0u);
}

TEST(GeneratorTest, IlChainPredicatesAllExist) {
  GeneratorOptions options;
  options.scale_factor = 0.2;
  rdf::Graph g = Generate(options);
  const char* needed[] = {
      "<http://db.uwaterloo.ca/~galuc/wsdbm/makesPurchase>",
      "<http://db.uwaterloo.ca/~galuc/wsdbm/purchaseFor>",
      "<http://purl.org/stuff/rev#hasReview>",
      "<http://purl.org/stuff/rev#reviewer>",
      "<http://schema.org/author>",
      "<http://schema.org/director>",
      "<http://schema.org/editor>",
      "<http://purl.org/goodrelations/offers>",
      "<http://purl.org/goodrelations/includes>",
      "<http://purl.org/dc/terms/Location>",
      "<http://www.geonames.org/ontology#parentCountry>",
      "<http://xmlns.com/foaf/homepage>",
  };
  for (const char* pred : needed) {
    EXPECT_TRUE(g.dictionary().Find(pred).has_value()) << pred;
  }
}

TEST(QueriesTest, WorkloadSizesMatchPaper) {
  EXPECT_EQ(BasicTestingQueries().size(), 20u);      // L1-5 S1-7 F1-5 C1-3.
  EXPECT_EQ(SelectivityTestingQueries().size(), 20u);
  EXPECT_EQ(IncrementalLinearQueries().size(), 18u);  // 3 families x 6.
}

TEST(QueriesTest, FindQueryWorks) {
  ASSERT_NE(FindQuery("L1"), nullptr);
  ASSERT_NE(FindQuery("ST-8-2"), nullptr);
  ASSERT_NE(FindQuery("IL-3-10"), nullptr);
  EXPECT_EQ(FindQuery("nope"), nullptr);
}

class AllQueriesParseTest
    : public ::testing::TestWithParam<const QueryTemplate*> {};

TEST_P(AllQueriesParseTest, InstantiatesAndParses) {
  SplitMix64 rng(5);
  std::string text = InstantiateQuery(*GetParam(), 1.0, &rng);
  EXPECT_EQ(text.find('%'), std::string::npos) << text;
  auto parsed = sparql::ParseQuery(text);
  ASSERT_TRUE(parsed.ok()) << GetParam()->name << ": "
                           << parsed.status().ToString() << "\n"
                           << text;
  EXPECT_FALSE(parsed->where.triples.empty());
}

std::vector<const QueryTemplate*> AllTemplates() {
  std::vector<const QueryTemplate*> all;
  for (const auto* workload :
       {&BasicTestingQueries(), &SelectivityTestingQueries(),
        &IncrementalLinearQueries()}) {
    for (const QueryTemplate& q : *workload) all.push_back(&q);
  }
  return all;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, AllQueriesParseTest, ::testing::ValuesIn(AllTemplates()),
    [](const ::testing::TestParamInfo<const QueryTemplate*>& info) {
      std::string name = info.param->name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(QueriesTest, IlQueryDiametersAreCorrect) {
  for (int k = 5; k <= 10; ++k) {
    const QueryTemplate* q = FindQuery("IL-1-" + std::to_string(k));
    ASSERT_NE(q, nullptr);
    SplitMix64 rng(1);
    auto parsed = sparql::ParseQuery(InstantiateQuery(*q, 1.0, &rng));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->where.triples.size(), static_cast<size_t>(k));
  }
}

TEST(QueriesTest, InstantiationIsDeterministicPerSeed) {
  const QueryTemplate* q = FindQuery("L1");
  SplitMix64 a(9);
  SplitMix64 b(9);
  EXPECT_EQ(InstantiateQuery(*q, 1.0, &a), InstantiateQuery(*q, 1.0, &b));
}

}  // namespace
}  // namespace s2rdf::watdiv
