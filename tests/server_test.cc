#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/task_pool.h"
#include "core/s2rdf.h"
#include "server/http.h"
#include "server/sparql_endpoint.h"
#include "server/worker_pool.h"

namespace s2rdf::server {
namespace {

// --- Worker pool ----------------------------------------------------------

TEST(WorkerPoolTest, RunsSubmittedTasks) {
  WorkerPool pool(4, 16);
  pool.Start();
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    while (!pool.Submit([&ran] { ++ran; })) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  pool.Stop();  // Drains the queue before joining.
  EXPECT_EQ(ran.load(), 32);
}

TEST(WorkerPoolTest, RejectsWhenQueueFull) {
  WorkerPool pool(1, 1);
  pool.Start();
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  bool entered = false;
  // Occupy the only worker.
  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  }));
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  // Fill the one queue slot, then overflow.
  EXPECT_TRUE(pool.Submit([] {}));
  EXPECT_EQ(pool.QueueDepth(), 1u);
  EXPECT_FALSE(pool.Submit([] {}));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Stop();
  EXPECT_FALSE(pool.Submit([] {}));  // Stopped pools reject.
}

// --- HTTP plumbing --------------------------------------------------------

TEST(HttpTest, ParseGetRequest) {
  auto request = ParseHttpRequest(
      "GET /sparql?query=SELECT%20*&x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Accept: application/json\r\n"
      "\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/sparql");
  EXPECT_EQ(request->query_string, "query=SELECT%20*&x=1");
  EXPECT_EQ(request->Header("accept"), "application/json");
  EXPECT_EQ(request->Header("host"), "localhost");
  EXPECT_EQ(request->Header("missing"), "");
}

TEST(HttpTest, ParsePostWithBody) {
  auto request = ParseHttpRequest(
      "POST /sparql HTTP/1.1\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "query=ASK{}");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->body, "query=ASK{}");
}

TEST(HttpTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpRequest("not http").ok());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n\r\n").ok());
}

TEST(HttpTest, PercentDecode) {
  EXPECT_EQ(PercentDecode("a%20b+c%3F"), "a b c?");
  EXPECT_EQ(PercentDecode("100%"), "100%");  // Dangling % passes through.
  EXPECT_EQ(PercentDecode("%zz"), "%zz");    // Bad hex passes through.
}

TEST(HttpTest, ParseQueryString) {
  auto params = ParseQueryString("query=SELECT%20%2A&format=json&flag");
  EXPECT_EQ(params["query"], "SELECT *");
  EXPECT_EQ(params["format"], "json");
  EXPECT_TRUE(params.contains("flag"));
}

TEST(HttpTest, ResponseSerialization) {
  HttpResponse response;
  response.status_code = 404;
  response.body = "nope";
  std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nnope"), std::string::npos);
}

// --- Endpoint request handling ----------------------------------------------

class EndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph g;
    g.AddIris("A", "follows", "B");
    g.AddIris("B", "follows", "C");
    g.AddIris("A", "likes", "I1");
    auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    endpoint_ = std::make_unique<SparqlEndpoint>(db_.get());
  }

  HttpResponse Get(const std::string& target,
                   const std::string& accept = "") {
    HttpRequest request;
    request.method = "GET";
    size_t question = target.find('?');
    request.path = target.substr(0, question);
    if (question != std::string::npos) {
      request.query_string = target.substr(question + 1);
    }
    if (!accept.empty()) request.headers["accept"] = accept;
    return endpoint_->Handle(request);
  }

  std::unique_ptr<core::S2Rdf> db_;
  std::unique_ptr<SparqlEndpoint> endpoint_;
};

TEST_F(EndpointTest, SelectQueryReturnsJson) {
  HttpResponse response = Get(
      "/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
      "%3Fo%20%7D");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.content_type, "application/sparql-results+json");
  EXPECT_NE(response.body.find("\"bindings\""), std::string::npos);
  EXPECT_NE(response.body.find("\"type\": \"uri\""), std::string::npos);
}

TEST_F(EndpointTest, AcceptHeaderSelectsFormat) {
  std::string target =
      "/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
      "%3Fo%20%7D";
  EXPECT_EQ(Get(target, "application/sparql-results+xml").content_type,
            "application/sparql-results+xml");
  EXPECT_EQ(Get(target, "text/csv").content_type,
            "text/csv; charset=utf-8");
  EXPECT_EQ(Get(target, "text/tab-separated-values").content_type,
            "text/tab-separated-values; charset=utf-8");
}

TEST_F(EndpointTest, PostFormAndRawQuery) {
  HttpRequest form;
  form.method = "POST";
  form.path = "/sparql";
  form.headers["content-type"] = "application/x-www-form-urlencoded";
  form.body = "query=ASK%20%7B%20%3CA%3E%20%3Cfollows%3E%20%3CB%3E%20%7D";
  HttpResponse r1 = endpoint_->Handle(form);
  EXPECT_EQ(r1.status_code, 200);
  EXPECT_NE(r1.body.find("true"), std::string::npos);

  HttpRequest raw;
  raw.method = "POST";
  raw.path = "/sparql";
  raw.headers["content-type"] = "application/sparql-query";
  raw.body = "ASK { <A> <follows> <C> }";
  HttpResponse r2 = endpoint_->Handle(raw);
  EXPECT_EQ(r2.status_code, 200);
  EXPECT_NE(r2.body.find("false"), std::string::npos);
}

TEST_F(EndpointTest, ErrorPaths) {
  EXPECT_EQ(Get("/nope").status_code, 404);
  EXPECT_EQ(Get("/sparql").status_code, 400);  // Missing query param.
  EXPECT_EQ(Get("/sparql?query=NOT%20SPARQL").status_code, 400);
  HttpRequest bad_type;
  bad_type.method = "POST";
  bad_type.path = "/sparql";
  bad_type.headers["content-type"] = "application/weird";
  EXPECT_EQ(endpoint_->Handle(bad_type).status_code, 415);
  HttpRequest put;
  put.method = "PUT";
  put.path = "/sparql";
  EXPECT_EQ(endpoint_->Handle(put).status_code, 405);
}

TEST_F(EndpointTest, ConstructReturnsNTriples) {
  HttpRequest raw;
  raw.method = "POST";
  raw.path = "/sparql";
  raw.headers["content-type"] = "application/sparql-query";
  raw.body = "CONSTRUCT { ?y <rev> ?x . } WHERE { ?x <follows> ?y . }";
  HttpResponse response = endpoint_->Handle(raw);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.content_type.find("application/n-triples"),
            std::string::npos);
  EXPECT_NE(response.body.find("<B> <rev> <A> ."), std::string::npos);
}

TEST_F(EndpointTest, StatusPage) {
  HttpResponse response = Get("/");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("S2RDF"), std::string::npos);
}

// --- Live socket round trip -----------------------------------------------

TEST_F(EndpointTest, SocketRoundTrip) {
  auto port = endpoint_->Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request =
      "POST /sparql HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Content-Length: 35\r\n"
      "\r\n"
      "SELECT * WHERE { ?s <likes> ?o . }\n";
  ASSERT_EQ(write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  endpoint_->Stop();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/sparql-results+json"),
            std::string::npos);
  EXPECT_NE(response.find("I1"), std::string::npos);
}

// --- Health, metrics and request parameters -------------------------------

TEST_F(EndpointTest, HealthEndpoint) {
  HttpResponse response = Get("/health");
  EXPECT_EQ(response.status_code, 200);
  // "ok <git-sha>": liveness plus which build is answering.
  EXPECT_EQ(response.body.rfind("ok ", 0), 0u);
  EXPECT_NE(response.body, "ok \n") << "missing build sha";
}

TEST_F(EndpointTest, MetricsEndpoint) {
  // Serve one query so the counters move.
  EXPECT_EQ(Get("/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20"
                "%3Cfollows%3E%20%3Fo%20%7D")
                .status_code,
            200);
  EXPECT_EQ(Get("/sparql?query=NOT%20SPARQL").status_code, 400);
  HttpResponse response = Get("/metrics");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("s2rdf_queries_total 2"), std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_query_errors_total 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_rejected_total 0"), std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_exec_input_tuples_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_catalog_materialized_tables"),
            std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_task_pool_threads"), std::string::npos);
}

TEST_F(EndpointTest, LimitParamTruncatesResults) {
  // The fixture graph has two <follows> rows; limit=1 keeps one.
  std::string target =
      "/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
      "%3Fo%20%7D&limit=1";
  HttpResponse response = Get(target, "text/csv");
  EXPECT_EQ(response.status_code, 200);
  // Header line + one data row.
  EXPECT_EQ(std::count(response.body.begin(), response.body.end(), '\n'), 2);
}

TEST_F(EndpointTest, MalformedParamsReturn400) {
  std::string query =
      "query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20%3Fo%20%7D";
  EXPECT_EQ(Get("/sparql?" + query + "&timeout=soon").status_code, 400);
  EXPECT_EQ(Get("/sparql?" + query + "&timeout=-5").status_code, 400);
  EXPECT_EQ(Get("/sparql?" + query + "&limit=many").status_code, 400);
  EXPECT_EQ(Get("/sparql?" + query + "&optimizer=magic").status_code, 400);
}

TEST_F(EndpointTest, OptimizerParamSelectsOptimizeStage) {
  std::string query =
      "query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20%3Fo%20%7D";
  // explain=plan: compile only, report the Optimize stage and plan.
  HttpResponse paper = Get("/sparql?" + query + "&explain=plan");
  EXPECT_EQ(paper.status_code, 200);
  EXPECT_NE(paper.body.find("optimizer: paper"), std::string::npos)
      << paper.body;
  EXPECT_NE(paper.body.find("fingerprint:"), std::string::npos);

  HttpResponse cost = Get("/sparql?" + query + "&explain=plan&optimizer=cost");
  EXPECT_EQ(cost.status_code, 200);
  EXPECT_NE(cost.body.find("optimizer: cost"), std::string::npos) << cost.body;

  // Both modes answer the actual query identically.
  EXPECT_EQ(Get("/sparql?" + query + "&optimizer=cost", "text/csv").body,
            Get("/sparql?" + query + "&optimizer=paper", "text/csv").body);

  // /debug/queries records the mode and plan fingerprint.
  HttpResponse debug = Get("/debug/queries");
  EXPECT_EQ(debug.status_code, 200);
  EXPECT_NE(debug.body.find("opt=cost"), std::string::npos) << debug.body;
  EXPECT_NE(debug.body.find("plan="), std::string::npos);
}

TEST(EndpointTimeoutTest, TimeoutParamReturns408) {
  // An unconstrained 1200x1200 cross product cannot finish in 1 ms.
  rdf::Graph g;
  for (int i = 0; i < 1200; ++i) {
    g.AddIris("A" + std::to_string(i), "p", "B" + std::to_string(i));
    g.AddIris("C" + std::to_string(i), "q", "D" + std::to_string(i));
  }
  auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
  ASSERT_TRUE(db.ok());
  SparqlEndpoint endpoint(db->get());

  HttpRequest request;
  request.method = "POST";
  request.path = "/sparql";
  request.query_string = "timeout=1";
  request.headers["content-type"] = "application/sparql-query";
  request.body = "SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . }";
  HttpResponse response = endpoint.Handle(request);
  EXPECT_EQ(response.status_code, 408);
  EXPECT_NE(response.body.find("deadline_exceeded"), std::string::npos);
}

TEST(EndpointTimeoutTest, MaxTimeoutCapsUnboundedRequests) {
  rdf::Graph g;
  for (int i = 0; i < 1200; ++i) {
    g.AddIris("A" + std::to_string(i), "p", "B" + std::to_string(i));
    g.AddIris("C" + std::to_string(i), "q", "D" + std::to_string(i));
  }
  auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
  ASSERT_TRUE(db.ok());
  EndpointOptions options;
  options.max_timeout_ms = 1;  // Server-side ceiling.
  SparqlEndpoint endpoint(db->get(), options);

  HttpRequest request;
  request.method = "POST";
  request.path = "/sparql";
  request.headers["content-type"] = "application/sparql-query";
  request.body = "SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . }";
  EXPECT_EQ(endpoint.Handle(request).status_code, 408);
}

// --- Admission control ----------------------------------------------------

namespace {

// Sends `request` and returns the raw response (blocking).
std::string RoundTrip(int port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  (void)!write(fd, request.data(), request.size());
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

}  // namespace

TEST(EndpointSaturationTest, OverloadedServerReturns503) {
  rdf::Graph g;
  g.AddIris("A", "follows", "B");
  auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
  ASSERT_TRUE(db.ok());

  // One worker, one queue slot; the hook parks the worker so we can
  // saturate deterministically.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  int parked = 0;
  EndpointOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1;
  options.worker_hook = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++parked;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  SparqlEndpoint endpoint(db->get(), options);
  auto port = endpoint.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const std::string request =
      "GET /sparql?query=ASK%20%7B%20%3CA%3E%20%3Cfollows%3E%20%3CB%3E%20%7D"
      " HTTP/1.1\r\nHost: localhost\r\n\r\n";

  // Connection 1 occupies the worker (blocked in the hook).
  std::thread first([&] {
    EXPECT_NE(RoundTrip(*port, request).find("HTTP/1.1 200"),
              std::string::npos);
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return parked == 1; }));
  }

  // Connection 2 fills the queue slot.
  std::thread second([&] {
    EXPECT_NE(RoundTrip(*port, request).find("HTTP/1.1 200"),
              std::string::npos);
  });
  for (int i = 0; i < 5000 && endpoint.Stats().queue_depth == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(endpoint.Stats().queue_depth, 1u);

  // Connection 3 exceeds capacity: rejected with 503 while the others
  // are still pending.
  std::string rejected = RoundTrip(*port, request);
  EXPECT_NE(rejected.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(rejected.find("resource_exhausted"), std::string::npos);
  EXPECT_EQ(endpoint.Stats().rejected_total, 1u);

  // Release the worker: both admitted connections complete.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  first.join();
  second.join();
  endpoint.Stop();
  EXPECT_EQ(endpoint.Stats().queries_total, 2u);
}

// Many concurrent clients against a small pool: every connection gets
// either a definitive answer or a clean 503, and the server survives.
TEST(EndpointSaturationTest, ConcurrentClientsAllGetResponses) {
  rdf::Graph g;
  g.AddIris("A", "follows", "B");
  g.AddIris("B", "follows", "C");
  auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
  ASSERT_TRUE(db.ok());
  EndpointOptions options;
  options.num_workers = 2;
  options.queue_capacity = 4;
  SparqlEndpoint endpoint(db->get(), options);
  auto port = endpoint.Start(0);
  ASSERT_TRUE(port.ok());

  const std::string request =
      "GET /sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E"
      "%20%3Fo%20%7D HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&] {
      for (int j = 0; j < 4; ++j) {
        std::string response = RoundTrip(*port, request);
        if (response.find("HTTP/1.1 200") != std::string::npos) {
          ++ok;
        } else if (response.find("HTTP/1.1 503") != std::string::npos) {
          ++rejected;
        } else {
          ++other;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  endpoint.Stop();
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(), 64);
  EXPECT_GT(ok.load(), 0);

  // Counter reconciliation: every connection is accounted exactly once
  // — admitted queries in queries_total (all of which succeeded here),
  // admission rejections in rejected_total — and the two sides match
  // what the clients observed on the wire.
  EndpointStats stats = endpoint.Stats();
  EXPECT_EQ(stats.queries_total, static_cast<uint64_t>(ok.load()));
  EXPECT_EQ(stats.rejected_total, static_cast<uint64_t>(rejected.load()));
  EXPECT_EQ(stats.query_errors_total, 0u);
  EXPECT_EQ(stats.queries_total + stats.rejected_total, 64u);
}

// --- Shared task-pool stress ------------------------------------------------

// Current thread count of this process (Linux).
int CountProcThreads() {
  std::ifstream status("/proc/self/status");  // s2rdf-lint: allow(raw-io)
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

// Many concurrent parallel-execution queries through the endpoint: the
// morsel helpers all come from the one process-wide TaskPool, so the
// storm must finish (no WorkerPool/TaskPool deadlock — the caller of a
// ParallelFor always participates, so completion never depends on a
// free helper) and the process thread count must stay at its pre-storm
// level plus this test's own client/sampler threads.
TEST(EndpointParallelStressTest, SharedPoolServesParallelQueriesBounded) {
  rdf::Graph g;
  for (int i = 0; i < 3000; ++i) {
    g.AddIris("N" + std::to_string(i), "p",
              "N" + std::to_string((i + 1) % 3000));
    g.AddIris("N" + std::to_string(i), "p",
              "N" + std::to_string((i + 37) % 3000));
  }
  core::S2RdfOptions db_options;
  db_options.parallel_execution = true;
  auto db = core::S2Rdf::Create(std::move(g), db_options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  // Force the shared pool into existence before the baseline count.
  const int pool_threads = TaskPool::Shared()->num_threads();
  EndpointOptions options;
  options.num_workers = 6;
  options.queue_capacity = 64;
  SparqlEndpoint endpoint(db->get(), options);
  auto port = endpoint.Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  const int before = CountProcThreads();
  ASSERT_GE(before, 1 + options.num_workers + pool_threads);

  // ?a <p> ?b . ?b <p> ?c — a 6000x6000-row join, well above the
  // parallel thresholds, so every in-flight query submits pool tasks.
  const std::string request =
      "GET /sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fa%20%3Cp%3E%20%3Fb"
      "%20.%20%3Fb%20%3Cp%3E%20%3Fc%20.%20%7D HTTP/1.1\r\n"
      "Host: localhost\r\n\r\n";
  constexpr int kClients = 10;
  constexpr int kRequestsPerClient = 3;

  std::atomic<bool> done{false};
  std::atomic<int> max_threads{0};
  std::thread sampler([&] {
    while (!done.load()) {
      int now = CountProcThreads();
      int prev = max_threads.load();
      while (now > prev && !max_threads.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      for (int j = 0; j < kRequestsPerClient; ++j) {
        std::string response = RoundTrip(*port, request);
        if (response.find("HTTP/1.1 200") != std::string::npos) {
          ++ok;
        } else if (response.find("HTTP/1.1 503") != std::string::npos) {
          ++rejected;
        } else {
          ++other;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  done = true;
  sampler.join();
  endpoint.Stop();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_EQ(ok.load() + rejected.load(), kClients * kRequestsPerClient);
  // Anything beyond the baseline is a client or sampler thread of this
  // test — a saturated server must never spawn per-query threads.
  EXPECT_LE(max_threads.load(), before + kClients + 1);
}

}  // namespace
}  // namespace s2rdf::server
