#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/s2rdf.h"
#include "server/http.h"
#include "server/sparql_endpoint.h"

namespace s2rdf::server {
namespace {

// --- HTTP plumbing --------------------------------------------------------

TEST(HttpTest, ParseGetRequest) {
  auto request = ParseHttpRequest(
      "GET /sparql?query=SELECT%20*&x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Accept: application/json\r\n"
      "\r\n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "GET");
  EXPECT_EQ(request->path, "/sparql");
  EXPECT_EQ(request->query_string, "query=SELECT%20*&x=1");
  EXPECT_EQ(request->Header("accept"), "application/json");
  EXPECT_EQ(request->Header("host"), "localhost");
  EXPECT_EQ(request->Header("missing"), "");
}

TEST(HttpTest, ParsePostWithBody) {
  auto request = ParseHttpRequest(
      "POST /sparql HTTP/1.1\r\n"
      "Content-Type: application/x-www-form-urlencoded\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "query=ASK{}");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->method, "POST");
  EXPECT_EQ(request->body, "query=ASK{}");
}

TEST(HttpTest, RejectsGarbage) {
  EXPECT_FALSE(ParseHttpRequest("not http").ok());
  EXPECT_FALSE(ParseHttpRequest("GET\r\n\r\n").ok());
}

TEST(HttpTest, PercentDecode) {
  EXPECT_EQ(PercentDecode("a%20b+c%3F"), "a b c?");
  EXPECT_EQ(PercentDecode("100%"), "100%");  // Dangling % passes through.
  EXPECT_EQ(PercentDecode("%zz"), "%zz");    // Bad hex passes through.
}

TEST(HttpTest, ParseQueryString) {
  auto params = ParseQueryString("query=SELECT%20%2A&format=json&flag");
  EXPECT_EQ(params["query"], "SELECT *");
  EXPECT_EQ(params["format"], "json");
  EXPECT_TRUE(params.contains("flag"));
}

TEST(HttpTest, ResponseSerialization) {
  HttpResponse response;
  response.status_code = 404;
  response.body = "nope";
  std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nnope"), std::string::npos);
}

// --- Endpoint request handling ----------------------------------------------

class EndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph g;
    g.AddIris("A", "follows", "B");
    g.AddIris("B", "follows", "C");
    g.AddIris("A", "likes", "I1");
    auto db = core::S2Rdf::Create(std::move(g), core::S2RdfOptions());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    endpoint_ = std::make_unique<SparqlEndpoint>(db_.get());
  }

  HttpResponse Get(const std::string& target,
                   const std::string& accept = "") {
    HttpRequest request;
    request.method = "GET";
    size_t question = target.find('?');
    request.path = target.substr(0, question);
    if (question != std::string::npos) {
      request.query_string = target.substr(question + 1);
    }
    if (!accept.empty()) request.headers["accept"] = accept;
    return endpoint_->Handle(request);
  }

  std::unique_ptr<core::S2Rdf> db_;
  std::unique_ptr<SparqlEndpoint> endpoint_;
};

TEST_F(EndpointTest, SelectQueryReturnsJson) {
  HttpResponse response = Get(
      "/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
      "%3Fo%20%7D");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_EQ(response.content_type, "application/sparql-results+json");
  EXPECT_NE(response.body.find("\"bindings\""), std::string::npos);
  EXPECT_NE(response.body.find("\"type\": \"uri\""), std::string::npos);
}

TEST_F(EndpointTest, AcceptHeaderSelectsFormat) {
  std::string target =
      "/sparql?query=SELECT%20%2A%20WHERE%20%7B%20%3Fs%20%3Cfollows%3E%20"
      "%3Fo%20%7D";
  EXPECT_EQ(Get(target, "application/sparql-results+xml").content_type,
            "application/sparql-results+xml");
  EXPECT_EQ(Get(target, "text/csv").content_type,
            "text/csv; charset=utf-8");
  EXPECT_EQ(Get(target, "text/tab-separated-values").content_type,
            "text/tab-separated-values; charset=utf-8");
}

TEST_F(EndpointTest, PostFormAndRawQuery) {
  HttpRequest form;
  form.method = "POST";
  form.path = "/sparql";
  form.headers["content-type"] = "application/x-www-form-urlencoded";
  form.body = "query=ASK%20%7B%20%3CA%3E%20%3Cfollows%3E%20%3CB%3E%20%7D";
  HttpResponse r1 = endpoint_->Handle(form);
  EXPECT_EQ(r1.status_code, 200);
  EXPECT_NE(r1.body.find("true"), std::string::npos);

  HttpRequest raw;
  raw.method = "POST";
  raw.path = "/sparql";
  raw.headers["content-type"] = "application/sparql-query";
  raw.body = "ASK { <A> <follows> <C> }";
  HttpResponse r2 = endpoint_->Handle(raw);
  EXPECT_EQ(r2.status_code, 200);
  EXPECT_NE(r2.body.find("false"), std::string::npos);
}

TEST_F(EndpointTest, ErrorPaths) {
  EXPECT_EQ(Get("/nope").status_code, 404);
  EXPECT_EQ(Get("/sparql").status_code, 400);  // Missing query param.
  EXPECT_EQ(Get("/sparql?query=NOT%20SPARQL").status_code, 400);
  HttpRequest bad_type;
  bad_type.method = "POST";
  bad_type.path = "/sparql";
  bad_type.headers["content-type"] = "application/weird";
  EXPECT_EQ(endpoint_->Handle(bad_type).status_code, 415);
  HttpRequest put;
  put.method = "PUT";
  put.path = "/sparql";
  EXPECT_EQ(endpoint_->Handle(put).status_code, 405);
}

TEST_F(EndpointTest, ConstructReturnsNTriples) {
  HttpRequest raw;
  raw.method = "POST";
  raw.path = "/sparql";
  raw.headers["content-type"] = "application/sparql-query";
  raw.body = "CONSTRUCT { ?y <rev> ?x . } WHERE { ?x <follows> ?y . }";
  HttpResponse response = endpoint_->Handle(raw);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.content_type.find("application/n-triples"),
            std::string::npos);
  EXPECT_NE(response.body.find("<B> <rev> <A> ."), std::string::npos);
}

TEST_F(EndpointTest, StatusPage) {
  HttpResponse response = Get("/");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("S2RDF"), std::string::npos);
}

// --- Live socket round trip -----------------------------------------------

TEST_F(EndpointTest, SocketRoundTrip) {
  auto port = endpoint_->Start(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::string request =
      "POST /sparql HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Content-Length: 35\r\n"
      "\r\n"
      "SELECT * WHERE { ?s <likes> ?o . }\n";
  ASSERT_EQ(write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  endpoint_->Stop();

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/sparql-results+json"),
            std::string::npos);
  EXPECT_NE(response.find("I1"), std::string::npos);
}

}  // namespace
}  // namespace s2rdf::server
