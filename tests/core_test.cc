#include <gtest/gtest.h>

#include "common/file_util.h"
#include "core/compiler.h"
#include "core/layouts.h"
#include "core/s2rdf.h"
#include "core/table_selection.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "storage/catalog.h"

// Tests built around the paper's running example: RDF graph G1 (Fig. 1),
// query Q1 (Fig. 2), the ExtVP tables of Fig. 10 and the table selection
// of Fig. 11.

namespace s2rdf::core {
namespace {

// G1 = { A follows B, B follows C, B follows D, C follows D,
//        A likes I1, A likes I2, C likes I2 }.
rdf::Graph MakeG1() {
  rdf::Graph g;
  g.AddIris("A", "follows", "B");
  g.AddIris("B", "follows", "C");
  g.AddIris("B", "follows", "D");
  g.AddIris("C", "follows", "D");
  g.AddIris("A", "likes", "I1");
  g.AddIris("A", "likes", "I2");
  g.AddIris("C", "likes", "I2");
  return g;
}

// Q1: friends of friends who like the same things (single result
// x=A, y=B, z=C, w=I2).
constexpr char kQ1[] =
    "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y . "
    "?y <follows> ?z . ?z <likes> ?w }";

class ExtVpG1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeG1();
    catalog_ = std::make_unique<storage::Catalog>("");
    ASSERT_TRUE(BuildTriplesTable(graph_, catalog_.get()).ok());
    ASSERT_TRUE(BuildVpLayout(graph_, catalog_.get()).ok());
    auto stats = BuildExtVpLayout(graph_, ExtVpOptions(), catalog_.get());
    ASSERT_TRUE(stats.ok());
    build_stats_ = *stats;
    follows_ = *graph_.dictionary().Find("<follows>");
    likes_ = *graph_.dictionary().Find("<likes>");
  }

  double Sf(Correlation corr, rdf::TermId p1, rdf::TermId p2) {
    const storage::TableStats* stats = catalog_->GetStats(
        ExtVpTableName(graph_.dictionary(), corr, p1, p2));
    return stats == nullptr ? 0.0 : stats->selectivity;
  }

  rdf::Graph graph_;
  std::unique_ptr<storage::Catalog> catalog_;
  ExtVpBuildStats build_stats_;
  rdf::TermId follows_ = 0;
  rdf::TermId likes_ = 0;
};

TEST_F(ExtVpG1Test, VpTablesMatchFig5) {
  const storage::TableStats* vf =
      catalog_->GetStats(VpTableName(graph_.dictionary(), follows_));
  const storage::TableStats* vl =
      catalog_->GetStats(VpTableName(graph_.dictionary(), likes_));
  ASSERT_NE(vf, nullptr);
  ASSERT_NE(vl, nullptr);
  EXPECT_EQ(vf->rows, 4u);
  EXPECT_EQ(vl->rows, 3u);
}

TEST_F(ExtVpG1Test, SelectivitiesMatchFig10) {
  // Left half of Fig. 10 (tables derived from VP_follows).
  EXPECT_DOUBLE_EQ(Sf(Correlation::kOS, follows_, follows_), 0.5);
  EXPECT_DOUBLE_EQ(Sf(Correlation::kOS, follows_, likes_), 0.25);
  EXPECT_DOUBLE_EQ(Sf(Correlation::kSO, follows_, follows_), 0.75);
  EXPECT_DOUBLE_EQ(Sf(Correlation::kSO, follows_, likes_), 0.0);  // Empty.
  EXPECT_DOUBLE_EQ(Sf(Correlation::kSS, follows_, likes_), 0.5);
  // Right half (derived from VP_likes).
  EXPECT_DOUBLE_EQ(Sf(Correlation::kOS, likes_, follows_), 0.0);  // Empty.
  EXPECT_DOUBLE_EQ(Sf(Correlation::kOS, likes_, likes_), 0.0);    // Empty.
  EXPECT_DOUBLE_EQ(Sf(Correlation::kSO, likes_, follows_), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Sf(Correlation::kSO, likes_, likes_), 0.0);  // Empty.
  EXPECT_DOUBLE_EQ(Sf(Correlation::kSS, likes_, follows_), 1.0);  // = VP.
}

TEST_F(ExtVpG1Test, Sf1TablesAreNotMaterialized) {
  const storage::TableStats* stats = catalog_->GetStats(
      ExtVpTableName(graph_.dictionary(), Correlation::kSS, likes_,
                     follows_));
  ASSERT_NE(stats, nullptr);
  EXPECT_FALSE(stats->materialized);
  EXPECT_EQ(build_stats_.tables_equal_vp, 1u);
}

TEST_F(ExtVpG1Test, MaterializedContentsMatchFig10) {
  // ExtVP_OS follows|likes = {(B, C)}.
  auto table = catalog_->GetTable(ExtVpTableName(
      graph_.dictionary(), Correlation::kOS, follows_, likes_));
  ASSERT_TRUE(table.ok());
  ASSERT_EQ((*table)->NumRows(), 1u);
  EXPECT_EQ((*table)->At(0, 0), *graph_.dictionary().Find("<B>"));
  EXPECT_EQ((*table)->At(0, 1), *graph_.dictionary().Find("<C>"));

  // ExtVP_SO likes|follows = {(C, I2)}.
  auto so = catalog_->GetTable(ExtVpTableName(
      graph_.dictionary(), Correlation::kSO, likes_, follows_));
  ASSERT_TRUE(so.ok());
  ASSERT_EQ((*so)->NumRows(), 1u);
  EXPECT_EQ((*so)->At(0, 0), *graph_.dictionary().Find("<C>"));
  EXPECT_EQ((*so)->At(0, 1), *graph_.dictionary().Find("<I2>"));
}

TEST_F(ExtVpG1Test, ExtVpTablesAreSubsetsOfVp) {
  for (const storage::TableStats* stats : catalog_->AllStats()) {
    if (stats->name.rfind("extvp_", 0) != 0 || !stats->materialized) {
      continue;
    }
    EXPECT_GT(stats->rows, 0u);
    EXPECT_LT(stats->selectivity, 1.0);
    EXPECT_GT(stats->selectivity, 0.0);
  }
}

TEST_F(ExtVpG1Test, TableSelectionMatchesFig11) {
  auto parsed = sparql::ParseQuery(kQ1);
  ASSERT_TRUE(parsed.ok());
  const auto& bgp = parsed->where.triples;
  ASSERT_EQ(bgp.size(), 4u);
  const rdf::Dictionary& dict = graph_.dictionary();

  // TP1 (?x likes ?w): all candidates have SF 1 -> VP_likes.
  auto c1 = SelectTable(0, bgp, Layout::kExtVp, true, *catalog_, dict);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1->table_name, VpTableName(dict, likes_));
  EXPECT_DOUBLE_EQ(c1->sf, 1.0);

  // TP3 (?y follows ?z): best candidate ExtVP_OS follows|likes, SF 0.25.
  auto c3 = SelectTable(2, bgp, Layout::kExtVp, true, *catalog_, dict);
  ASSERT_TRUE(c3.ok());
  EXPECT_EQ(c3->table_name,
            ExtVpTableName(dict, Correlation::kOS, follows_, likes_));
  EXPECT_DOUBLE_EQ(c3->sf, 0.25);
  EXPECT_EQ(c3->rows, 1u);

  // TP4 (?z likes ?w): ExtVP_SO likes|follows, SF 1/3.
  auto c4 = SelectTable(3, bgp, Layout::kExtVp, true, *catalog_, dict);
  ASSERT_TRUE(c4.ok());
  EXPECT_EQ(c4->table_name,
            ExtVpTableName(dict, Correlation::kSO, likes_, follows_));

  // Under the VP layout every pattern scans its VP table.
  auto v3 = SelectTable(2, bgp, Layout::kVp, true, *catalog_, dict);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(v3->table_name, VpTableName(dict, follows_));
}

TEST_F(ExtVpG1Test, Q1HasTheSingleExpectedResult) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  for (Layout layout :
       {Layout::kExtVp, Layout::kVp, Layout::kTriplesTable}) {
    auto result = (*db)->Execute(kQ1, layout);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->table.NumRows(), 1u)
        << "layout " << static_cast<int>(layout);
    auto rows = (*db)->DecodeRows(result->table);
    // Columns in appearance order: x, w, y, z.
    EXPECT_EQ(rows[0][0], "<A>");
    EXPECT_EQ(rows[0][1], "<I2>");
    EXPECT_EQ(rows[0][2], "<B>");
    EXPECT_EQ(rows[0][3], "<C>");
  }
}

TEST_F(ExtVpG1Test, ExtVpReducesJoinComparisons) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto extvp = (*db)->Execute(kQ1, Layout::kExtVp);
  auto vp = (*db)->Execute(kQ1, Layout::kVp);
  ASSERT_TRUE(extvp.ok());
  ASSERT_TRUE(vp.ok());
  // Fig. 8 / Fig. 12: ExtVP reduces both input size and comparisons.
  EXPECT_LT(extvp->metrics.input_tuples, vp->metrics.input_tuples);
  EXPECT_LT(extvp->metrics.join_comparisons, vp->metrics.join_comparisons);
}

TEST_F(ExtVpG1Test, EmptyCorrelationShortCircuits) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  // follows -> SO likes|... wait: ?x follows ?y . ?y likes ?z has
  // OS(follows, likes) = 0.25 (non-empty). Use the empty one:
  // ?x likes ?y . ?y likes ?z (OS likes|likes is empty).
  auto result = (*db)->Execute(
      "SELECT * WHERE { ?x <likes> ?y . ?y <likes> ?z }", Layout::kExtVp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 0u);
  // The statistics shortcut answers without reading any table.
  EXPECT_EQ(result->metrics.input_tuples, 0u);

  // VP layout actually runs the query (same — empty — result).
  auto vp = (*db)->Execute(
      "SELECT * WHERE { ?x <likes> ?y . ?y <likes> ?z }", Layout::kVp);
  ASSERT_TRUE(vp.ok());
  EXPECT_EQ(vp->table.NumRows(), 0u);
  EXPECT_GT(vp->metrics.input_tuples, 0u);
}

TEST_F(ExtVpG1Test, ThresholdPrunesButPreservesResults) {
  S2RdfOptions options;
  options.sf_threshold = 0.3;  // Keeps only SF < 0.3 tables.
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  EXPECT_GT((*db)->load_stats().extvp_stats.tables_pruned, 0u);
  auto result = (*db)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 1u);
}

TEST_F(ExtVpG1Test, UnboundPredicateUsesTriplesTable) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result =
      (*db)->Execute("SELECT * WHERE { <A> ?p ?o }", Layout::kExtVp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 3u);  // follows B, likes I1, likes I2.
}

TEST_F(ExtVpG1Test, JoinOrderOptimizationReducesIntermediates) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  CompilerOptions opt;
  opt.layout = Layout::kExtVp;
  // Exercises the deprecated alias on purpose (back-compat coverage).
  opt.optimize_join_order = true;  // s2rdf-lint: allow(deprecated-api)
  CompilerOptions unopt = opt;
  unopt.optimize_join_order = false;  // s2rdf-lint: allow(deprecated-api)
  auto with = (*db)->ExecuteWithOptions(kQ1, opt);
  auto without = (*db)->ExecuteWithOptions(kQ1, unopt);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(engine::Table::SameBag(with->table, without->table));
  // Fig. 12: ordering by table size joins the two smallest tables first.
  EXPECT_LE(with->metrics.join_comparisons,
            without->metrics.join_comparisons);
}

// --- Bit-vector ExtVP (the paper's future work, Sec. 8) -----------------

class ExtVpBitmapG1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    S2RdfOptions options;
    options.build_extvp_bitmaps = true;
    auto db = S2Rdf::Create(MakeG1(), options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    const rdf::Dictionary& dict = db_->graph().dictionary();
    follows_ = *dict.Find("<follows>");
    likes_ = *dict.Find("<likes>");
  }

  std::unique_ptr<S2Rdf> db_;
  rdf::TermId follows_ = 0;
  rdf::TermId likes_ = 0;
};

TEST_F(ExtVpBitmapG1Test, BitmapSfsMatchTableSfs) {
  const ExtVpBitmapStore* store = db_->bitmap_store();
  ASSERT_NE(store, nullptr);
  EXPECT_DOUBLE_EQ(store->Sf(Correlation::kOS, follows_, likes_), 0.25);
  EXPECT_DOUBLE_EQ(store->Sf(Correlation::kOS, follows_, follows_), 0.5);
  EXPECT_DOUBLE_EQ(store->Sf(Correlation::kSO, follows_, follows_), 0.75);
  EXPECT_DOUBLE_EQ(store->Sf(Correlation::kSS, likes_, follows_), 1.0);
  EXPECT_TRUE(store->IsEmpty(Correlation::kSO, follows_, likes_));
  EXPECT_TRUE(store->IsEmpty(Correlation::kOS, likes_, likes_));
  // SF = 1 combinations carry no bitmap (the VP table suffices).
  EXPECT_EQ(store->Get(Correlation::kSS, likes_, follows_), nullptr);
  EXPECT_NE(store->Get(Correlation::kOS, follows_, likes_), nullptr);
}

TEST_F(ExtVpBitmapG1Test, BitmapsAreFarSmallerThanTables) {
  const ExtVpBitmapStore* store = db_->bitmap_store();
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->NumBitmaps(), 0u);
  // Each bitmap costs 8 bytes here (<=64 rows); the table representation
  // stores two uint32 columns per tuple.
  EXPECT_LT(store->TotalBitmapBytes(), 100u);
}

TEST_F(ExtVpBitmapG1Test, Q1MatchesOtherLayouts) {
  auto bitmap = db_->Execute(kQ1, Layout::kExtVpBitmap);
  ASSERT_TRUE(bitmap.ok()) << bitmap.status().ToString();
  auto extvp = db_->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(extvp.ok());
  EXPECT_TRUE(engine::Table::SameBag(bitmap->table, extvp->table));
  // The rendered SQL mentions the bitmap filter.
  EXPECT_NE(bitmap->sql.find("BITMAP("), std::string::npos);
}

TEST_F(ExtVpBitmapG1Test, IntersectionBeatsBestSingleTable) {
  // TP2 in Q1 (?x follows ?y) has SS follows|likes (SF 0.5) and
  // OS follows|follows (SF 0.5); their intersection is {(A,B)} = 0.25.
  auto bitmap = db_->Execute(kQ1, Layout::kExtVpBitmap);
  auto extvp = db_->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(bitmap.ok());
  ASSERT_TRUE(extvp.ok());
  EXPECT_LT(bitmap->metrics.input_tuples, extvp->metrics.input_tuples);
}

TEST_F(ExtVpBitmapG1Test, EmptyIntersectionShortCircuits) {
  // ?x likes ?y . ?y likes ?z: OS likes|likes is empty.
  auto result = db_->Execute(
      "SELECT * WHERE { ?x <likes> ?y . ?y <likes> ?z }",
      Layout::kExtVpBitmap);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 0u);
  EXPECT_EQ(result->metrics.input_tuples, 0u);
}

TEST_F(ExtVpBitmapG1Test, RequiresBitmapBuild) {
  S2RdfOptions options;  // build_extvp_bitmaps defaults to false.
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(kQ1, Layout::kExtVpBitmap);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ExtVpBitmapG1Test, ThresholdDropsBitmapsButKeepsResults) {
  S2RdfOptions options;
  options.build_extvp_bitmaps = true;
  options.sf_threshold = 0.3;  // Drops the SF 0.5/0.75 bitmaps.
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  EXPECT_LT((*db)->bitmap_store()->NumBitmaps(),
            db_->bitmap_store()->NumBitmaps());
  auto result = (*db)->Execute(kQ1, Layout::kExtVpBitmap);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 1u);
}

// --- Filter pushdown, OPTIONAL and UNION execution ------------------------

class SparqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph g = MakeG1();
    // Add ages so FILTER has something numeric to chew on.
    g.AddCanonical("<A>", "<age>",
                   "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
    g.AddCanonical("<B>", "<age>",
                   "\"17\"^^<http://www.w3.org/2001/XMLSchema#integer>");
    g.AddCanonical("<C>", "<age>",
                   "\"30\"^^<http://www.w3.org/2001/XMLSchema#integer>");
    S2RdfOptions options;
    auto db = S2Rdf::Create(std::move(g), options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
  }

  std::unique_ptr<S2Rdf> db_;
};

TEST_F(SparqlFeaturesTest, FilterPushdownPreservesResults) {
  constexpr char kQuery[] =
      "SELECT ?x ?y ?a WHERE { ?x <follows> ?y . ?x <age> ?a . "
      "FILTER (?a >= 30) }";
  CompilerOptions pushed;
  CompilerOptions unpushed;
  unpushed.push_filters = false;
  auto a = db_->ExecuteWithOptions(kQuery, pushed);
  auto b = db_->ExecuteWithOptions(kQuery, unpushed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(engine::Table::SameBag(a->table, b->table));
  EXPECT_EQ(a->table.NumRows(), 2u);  // A follows B; C follows D.
  // With pushdown the filter sits below the final join.
  EXPECT_LE(a->metrics.intermediate_tuples, b->metrics.intermediate_tuples);
  EXPECT_NE(a->plan, b->plan);
}

TEST_F(SparqlFeaturesTest, FilterReferencingOptionalVarStaysAtGroupLevel) {
  // !BOUND over an OPTIONAL variable must not be pushed into the BGP.
  constexpr char kQuery[] =
      "SELECT ?x ?w WHERE { ?x <follows> ?y . "
      "OPTIONAL { ?x <likes> ?w . } FILTER (!bound(?w)) }";
  auto result = db_->Execute(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Only B follows with no likes.
  ASSERT_EQ(result->table.NumRows(), 2u);  // B->C, B->D rows collapse on x,w.
  auto rows = db_->DecodeRows(result->table);
  EXPECT_EQ(rows[0][0], "<B>");
  EXPECT_EQ(rows[0][1], "");
}

TEST_F(SparqlFeaturesTest, OptionalWithInnerFilter) {
  // OPTIONAL { ... FILTER } keeps left rows whose match fails the filter.
  constexpr char kQuery[] =
      "SELECT ?x ?a WHERE { ?x <follows> ?y . "
      "OPTIONAL { ?x <age> ?a . FILTER (?a > 35) } }";
  auto result = db_->Execute(kQuery);
  ASSERT_TRUE(result.ok());
  auto rows = db_->DecodeRows(engine::Distinct(result->table, nullptr));
  // A keeps age 42; B and C follow but their ages fail the filter.
  int bound_ages = 0;
  for (const auto& row : rows) {
    if (!row[1].empty()) ++bound_ages;
  }
  EXPECT_EQ(bound_ages, 1);
}

TEST_F(SparqlFeaturesTest, UnionCombinesBranches) {
  constexpr char kQuery[] =
      "SELECT ?x ?t WHERE { { ?x <likes> ?t . } UNION "
      "{ ?x <age> ?t . } }";
  auto result = db_->Execute(kQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 6u);  // 3 likes + 3 ages.
}

TEST_F(SparqlFeaturesTest, UnionJoinedWithBgp) {
  constexpr char kQuery[] =
      "SELECT ?x ?y ?t WHERE { ?x <follows> ?y . "
      "{ ?x <likes> ?t . } UNION { ?x <age> ?t . } }";
  auto extvp = db_->Execute(kQuery, Layout::kExtVp);
  auto tt = db_->Execute(kQuery, Layout::kTriplesTable);
  ASSERT_TRUE(extvp.ok());
  ASSERT_TRUE(tt.ok());
  EXPECT_TRUE(engine::Table::SameBag(extvp->table, tt->table));
  EXPECT_GT(extvp->table.NumRows(), 0u);
}

TEST_F(SparqlFeaturesTest, OrderByLimitOffset) {
  constexpr char kQuery[] =
      "SELECT ?x ?a WHERE { ?x <age> ?a . } ORDER BY DESC(?a) "
      "LIMIT 2 OFFSET 1";
  auto result = db_->Execute(kQuery);
  ASSERT_TRUE(result.ok());
  auto rows = db_->DecodeRows(result->table);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "<C>");  // 42 skipped by OFFSET; then 30, 17.
  EXPECT_EQ(rows[1][0], "<B>");
}

TEST(PropertyTableTest, DuplicationMatchesTable1) {
  rdf::Graph g = MakeG1();
  storage::Catalog catalog("");
  auto stats =
      BuildPropertyTable(g, PropertyTableStrategy::kDuplication, &catalog);
  ASSERT_TRUE(stats.ok());
  // Table 1 of the paper has 5 rows: A×2, B×2, C×1.
  EXPECT_EQ(stats->pt_rows, 5u);
  EXPECT_EQ(stats->aux_tables, 0u);
}

TEST(PropertyTableTest, AuxiliaryStrategyBoundsSize) {
  rdf::Graph g = MakeG1();
  storage::Catalog catalog("");
  auto stats = BuildPropertyTable(
      g, PropertyTableStrategy::kAuxiliaryTables, &catalog);
  ASSERT_TRUE(stats.ok());
  // follows and likes are both multi-valued in G1 -> both auxiliary, and
  // the PT itself retains no subjects.
  EXPECT_EQ(stats->aux_tables, 2u);
  EXPECT_EQ(stats->aux_tuples, 7u);
}

// --- Lazy ("pay as you go") ExtVP (paper Sec. 7) --------------------------

TEST(LazyExtVpTest, MaterializesOnFirstUseAndCaches) {
  S2RdfOptions options;
  options.lazy_extvp = true;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  // No load-time ExtVP work.
  EXPECT_EQ((*db)->load_stats().extvp_stats.tables_materialized, 0u);
  EXPECT_EQ((*db)->lazy_pairs_computed(), 0u);

  auto first = (*db)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->table.NumRows(), 1u);
  uint64_t computed = (*db)->lazy_pairs_computed();
  EXPECT_GT(computed, 0u);
  // The warm query selects ExtVP tables (not plain VP).
  EXPECT_NE(first->sql.find("extvp_"), std::string::npos);

  // Re-running the same query computes nothing new.
  auto second = (*db)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*db)->lazy_pairs_computed(), computed);
  EXPECT_TRUE(engine::Table::SameBag(first->table, second->table));
}

TEST(LazyExtVpTest, MatchesEagerResultsAndSelectivities) {
  S2RdfOptions lazy_options;
  lazy_options.lazy_extvp = true;
  auto lazy = S2Rdf::Create(MakeG1(), lazy_options);
  auto eager = S2Rdf::Create(MakeG1(), S2RdfOptions());
  ASSERT_TRUE(lazy.ok());
  ASSERT_TRUE(eager.ok());
  auto a = (*lazy)->Execute(kQ1, Layout::kExtVp);
  auto b = (*eager)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(engine::Table::SameBag(a->table, b->table));
  // The lazily-computed tables carry the same SF values as Fig. 10.
  const rdf::Dictionary& dict = (*lazy)->graph().dictionary();
  rdf::TermId follows = *dict.Find("<follows>");
  rdf::TermId likes = *dict.Find("<likes>");
  const storage::TableStats* stats = (*lazy)->catalog().GetStats(
      ExtVpTableName(dict, Correlation::kOS, follows, likes));
  ASSERT_NE(stats, nullptr);
  EXPECT_DOUBLE_EQ(stats->selectivity, 0.25);
}

TEST(LazyExtVpTest, EmptyCorrelationShortCircuitsAfterMaterialization) {
  S2RdfOptions options;
  options.lazy_extvp = true;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  // OS likes|likes is empty; the lazy pass records this and the
  // compiler answers from statistics.
  auto result = (*db)->Execute(
      "SELECT * WHERE { ?x <likes> ?y . ?y <likes> ?z }", Layout::kExtVp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 0u);
  EXPECT_EQ(result->metrics.input_tuples, 0u);
}

TEST(LazyExtVpTest, RespectsSfThreshold) {
  S2RdfOptions options;
  options.lazy_extvp = true;
  options.sf_threshold = 0.3;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 1u);
  // SF 0.5 tables (e.g. SS follows|likes) were pruned: stats only.
  const rdf::Dictionary& dict = (*db)->graph().dictionary();
  rdf::TermId follows = *dict.Find("<follows>");
  rdf::TermId likes = *dict.Find("<likes>");
  const storage::TableStats* stats = (*db)->catalog().GetStats(
      ExtVpTableName(dict, Correlation::kSS, follows, likes));
  ASSERT_NE(stats, nullptr);
  EXPECT_FALSE(stats->materialized);
}

TEST(CompilerEdgeTest, CrossJoinBetweenDisconnectedPatterns) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(
      "SELECT * WHERE { ?a <likes> ?b . ?c <follows> ?d }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 12u);
}

TEST(CompilerEdgeTest, RepeatedVariableWithinPattern) {
  rdf::Graph g;
  g.AddIris("A", "p", "A");
  g.AddIris("A", "p", "B");
  S2RdfOptions options;
  auto db = S2Rdf::Create(std::move(g), options);
  ASSERT_TRUE(db.ok());
  for (Layout layout : {Layout::kExtVp, Layout::kVp,
                        Layout::kTriplesTable}) {
    auto result = (*db)->Execute("SELECT * WHERE { ?x <p> ?x }", layout);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.NumRows(), 1u);
  }
}

TEST(CompilerEdgeTest, ProjectionOfUnboundVariableIsNullColumn) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(
      "SELECT ?x ?nope WHERE { ?x <likes> ?w }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumColumns(), 2u);
  auto rows = (*db)->DecodeRows(result->table);
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0][1], "");  // Unbound decodes to empty.
}

TEST(CompilerEdgeTest, FullyBoundPatternActsAsExistenceCheck) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto hit = (*db)->Execute(
      "SELECT * WHERE { <A> <follows> <B> . <A> <likes> ?w }");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->table.NumRows(), 2u);
  auto miss = (*db)->Execute(
      "SELECT * WHERE { <A> <follows> <D> . <A> <likes> ?w }");
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->table.NumRows(), 0u);
}

TEST(CompilerEdgeTest, DuplicateTriplesInInputAreDeduplicated) {
  rdf::Graph g;
  g.AddIris("A", "p", "B");
  g.AddIris("A", "p", "B");
  g.AddIris("A", "p", "B");
  S2RdfOptions options;
  auto db = S2Rdf::Create(std::move(g), options);
  ASSERT_TRUE(db.ok());
  for (Layout layout : {Layout::kExtVp, Layout::kVp,
                        Layout::kTriplesTable}) {
    auto result = (*db)->Execute("SELECT * WHERE { ?x <p> ?y }", layout);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.NumRows(), 1u);
  }
}

TEST(LayoutNamesTest, FragmentsAreSanitized) {
  EXPECT_EQ(PredicateFragment("<http://ex/ns#hasGenre>"), "hasgenre");
  EXPECT_EQ(PredicateFragment("<http://ex/a/b/c>"), "c");
  EXPECT_EQ(PredicateFragment("<>"), "p");
}

TEST(S2RdfTest, PersistentStorageRoundtrip) {
  s2rdf::ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  // The manifest is a generation chain: CURRENT points at the newest
  // self-checksummed generation file.
  EXPECT_TRUE(s2rdf::PathExists(dir.path() + "/CURRENT"));
  EXPECT_TRUE(s2rdf::PathExists(dir.path() + "/manifest-1.tsv"));
  EXPECT_GT((*db)->catalog().TotalBytes(), 0u);
  auto result = (*db)->Execute(kQ1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.NumRows(), 1u);
}

TEST(S2RdfTest, OpenReloadsPersistedStore) {
  s2rdf::ScopedTempDir dir;
  {
    S2RdfOptions options;
    options.storage_dir = dir.path();
    auto db = S2Rdf::Create(MakeG1(), options);
    ASSERT_TRUE(db.ok());
  }
  // Reopen cold: no graph, only the persisted catalog + dictionary.
  auto reopened = S2Rdf::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto result = (*reopened)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->table.NumRows(), 1u);
  auto rows = (*reopened)->DecodeRows(result->table);
  EXPECT_EQ(rows[0][0], "<A>");
  // The bit-vector store is not persisted.
  auto bitmap = (*reopened)->Execute(kQ1, Layout::kExtVpBitmap);
  EXPECT_FALSE(bitmap.ok());
}

TEST(S2RdfTest, OpenFailsWithoutPersistedStore) {
  s2rdf::ScopedTempDir dir;
  EXPECT_FALSE(S2Rdf::Open(dir.path()).ok());
  EXPECT_FALSE(S2Rdf::Open("").ok());
}

TEST(S2RdfTest, AskQueries) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto yes = (*db)->Execute("ASK { <A> <follows> ?x . }");
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->is_ask);
  EXPECT_TRUE(yes->ask_result);
  auto no = (*db)->Execute("ASK { <D> <follows> ?x . }");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->is_ask);
  EXPECT_FALSE(no->ask_result);
  // The statistics shortcut answers ASK on empty correlations for free.
  auto empty = (*db)->Execute(
      "ASK { ?x <likes> ?y . ?y <likes> ?z . }", Layout::kExtVp);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->ask_result);
  EXPECT_EQ(empty->metrics.input_tuples, 0u);
}

TEST(S2RdfTest, ValuesJoinsWithBgp) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(
      "SELECT ?x ?y WHERE { ?x <follows> ?y . VALUES ?x { <A> <C> } }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.NumRows(), 2u);  // A->B, C->D.

  // Standalone VALUES (constants need not exist in the data).
  auto standalone = (*db)->Execute(
      "SELECT ?x WHERE { VALUES ?x { <NotInData> <A> } }");
  ASSERT_TRUE(standalone.ok()) << standalone.status().ToString();
  EXPECT_EQ(standalone->table.NumRows(), 2u);

  // Multi-variable rows restrict combinations, not just columns.
  auto multi = (*db)->Execute(
      "SELECT ?x ?y WHERE { ?x <follows> ?y . "
      "VALUES (?x ?y) { (<A> <B>) (<A> <D>) } }");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(multi->table.NumRows(), 1u);  // Only A->B exists.
}

TEST(S2RdfTest, ConstructBuildsGraph) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(
      "CONSTRUCT { ?y <followedBy> ?x . ?x <type> <User> . } "
      "WHERE { ?x <follows> ?y }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->is_graph);
  // 4 reversed edges + 3 distinct follower subjects typed.
  EXPECT_EQ(result->metrics.output_tuples, 7u);
  EXPECT_NE(result->graph_ntriples.find("<B> <followedBy> <A> ."),
            std::string::npos);
  EXPECT_NE(result->graph_ntriples.find("<A> <type> <User> ."),
            std::string::npos);
  // The output is valid N-Triples.
  rdf::Graph parsed;
  EXPECT_TRUE(rdf::ParseNTriples(result->graph_ntriples, &parsed).ok());
  EXPECT_EQ(parsed.NumTriples(), 7u);
}

TEST(S2RdfTest, ConstructSkipsIllFormedAndUnboundTriples) {
  rdf::Graph g = MakeG1();
  g.AddCanonical("<A>", "<age>",
                 "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  S2RdfOptions options;
  auto db = S2Rdf::Create(std::move(g), options);
  ASSERT_TRUE(db.ok());
  // ?a is a literal: using it as subject is ill-formed and skipped; the
  // OPTIONAL leaves ?w unbound for B, skipping that instantiation.
  auto result = (*db)->Execute(
      "CONSTRUCT { ?a <of> ?x . ?x <liked> ?w . } WHERE { "
      "?x <age> ?a . OPTIONAL { ?x <likes> ?w . } }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // A has age + 2 likes -> 2 '<A> <liked> ...' triples; the literal
  // subject triple is dropped.
  EXPECT_EQ(result->metrics.output_tuples, 2u);
  EXPECT_EQ(result->graph_ntriples.find("\"42\""), std::string::npos);
}

TEST(S2RdfTest, DescribeConstantAndVariable) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto constant = (*db)->Execute("DESCRIBE <A>");
  ASSERT_TRUE(constant.ok()) << constant.status().ToString();
  EXPECT_EQ(constant->metrics.output_tuples, 3u);  // follows B, likes I1/I2.

  auto variable = (*db)->Execute(
      "DESCRIBE ?x WHERE { ?x <likes> <I2> }");
  ASSERT_TRUE(variable.ok());
  // A (3 statements) and C (2 statements).
  EXPECT_EQ(variable->metrics.output_tuples, 5u);

  auto unbound = (*db)->Execute("DESCRIBE ?x");
  EXPECT_FALSE(unbound.ok());
}

TEST(S2RdfTest, MemoryBudgetedStoreStillAnswersQueries) {
  s2rdf::ScopedTempDir dir;
  S2RdfOptions options;
  options.storage_dir = dir.path();
  options.memory_budget_bytes = 64;  // Absurdly small: evict everything.
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 3; ++i) {
    auto result = (*db)->Execute(kQ1, Layout::kExtVp);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->table.NumRows(), 1u);
    EXPECT_LE((*db)->catalog().CachedBytes(), 64u);
  }
}

TEST(S2RdfTest, ExplainAnalyzeProfile) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  CompilerOptions exec;
  exec.collect_profile = true;
  auto result = (*db)->ExecuteWithOptions(kQ1, exec);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->profile.find("Scan("), std::string::npos);
  EXPECT_NE(result->profile.find("Join"), std::string::npos);
  EXPECT_NE(result->profile.find("rows=1"), std::string::npos);
  EXPECT_NE(result->profile.find("ms"), std::string::npos);
  // Without the flag, no profile is rendered.
  auto plain = (*db)->Execute(kQ1);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->profile.empty());
}

TEST(S2RdfTest, SqlRenderingMentionsSelectedTables) {
  S2RdfOptions options;
  auto db = S2Rdf::Create(MakeG1(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->Execute(kQ1, Layout::kExtVp);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->sql.find("extvp_os_follows"), std::string::npos);
  EXPECT_NE(result->sql.find("vp_likes"), std::string::npos);
}

}  // namespace
}  // namespace s2rdf::core
