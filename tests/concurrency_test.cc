#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_util.h"
#include "core/s2rdf.h"
#include "engine/aggregate.h"
#include "engine/operators.h"
#include "engine/table.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"

// Concurrency tests for the S2Rdf facade: many threads sharing one
// instance (with lazy ExtVP and a tiny memory budget to force eviction
// races) must produce exactly the results a serial run produces, and
// the per-query QueryOptions (timeout, cancellation, row limits) must
// be honored. Run these under -DS2RDF_SANITIZE=thread to validate the
// locking story.

namespace s2rdf::core {
namespace {

// A small social graph with enough distinct predicates and join shapes
// to make the lazy-ExtVP pass materialize several reductions.
rdf::Graph MakeSocialGraph(int n) {
  rdf::Graph g;
  for (int i = 0; i < n; ++i) {
    std::string person = "P" + std::to_string(i);
    g.AddIris(person, "follows", "P" + std::to_string((i + 1) % n));
    g.AddIris(person, "follows", "P" + std::to_string((i + 7) % n));
    g.AddIris(person, "likes", "I" + std::to_string(i % 10));
    if (i % 3 == 0) {
      g.AddIris(person, "knows", "P" + std::to_string((i + 2) % n));
    }
  }
  return g;
}

// A mixed workload: scans, chain joins, star joins, UNION, OPTIONAL,
// aggregation (which encodes new literals mid-query) and DISTINCT with
// ORDER BY.
const char* const kMixedQueries[] = {
    "SELECT ?x ?y WHERE { ?x <follows> ?y . }",
    "SELECT ?x ?z WHERE { ?x <follows> ?y . ?y <follows> ?z . }",
    "SELECT ?x ?i WHERE { ?x <follows> ?y . ?x <likes> ?i . }",
    "SELECT ?x WHERE { { ?x <follows> <P1> . } UNION "
    "{ ?x <likes> <I1> . } }",
    "SELECT ?y ?i WHERE { ?x <follows> ?y . OPTIONAL "
    "{ ?y <likes> ?i . } }",
    "SELECT ?i (COUNT(?x) AS ?n) WHERE { ?x <likes> ?i . } GROUP BY ?i",
    "SELECT DISTINCT ?y WHERE { ?x <knows> ?y . } ORDER BY ?y",
};
constexpr size_t kNumMixedQueries =
    sizeof(kMixedQueries) / sizeof(kMixedQueries[0]);

std::vector<std::vector<std::string>> SortedRows(const S2Rdf& db,
                                                 const engine::Table& table) {
  std::vector<std::vector<std::string>> rows = db.DecodeRows(table);
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ConcurrencyStressTest, ParallelMixedQueriesMatchSerial) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  static_assert(kThreads * kRounds * kNumMixedQueries >= 100);

  // Lazy ExtVP + a deliberately tiny memory budget: queries race on
  // first-use materialization and on cache eviction/reload.
  ScopedTempDir serial_dir;
  S2RdfOptions options;
  options.storage_dir = serial_dir.path();
  options.lazy_extvp = true;
  options.memory_budget_bytes = 4096;
  auto serial = S2Rdf::Create(MakeSocialGraph(40), options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  std::vector<std::vector<std::vector<std::string>>> expected;
  for (const char* query : kMixedQueries) {
    auto result = (*serial)->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(SortedRows(**serial, result->table));
  }

  ScopedTempDir shared_dir;
  options.storage_dir = shared_dir.path();
  auto shared = S2Rdf::Create(MakeSocialGraph(40), options);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();

  // gtest assertions are not thread-safe; workers only bump counters.
  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        // Stagger the starting query per thread so different queries
        // overlap in time.
        for (size_t q = 0; q < kNumMixedQueries; ++q) {
          size_t index = (q + static_cast<size_t>(t)) % kNumMixedQueries;
          QueryRequest request;
          request.query = kMixedQueries[index];
          auto result = (*shared)->Execute(request);
          if (!result.ok()) {
            ++failures;
            continue;
          }
          if (SortedRows(**shared, result->table) != expected[index]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  // The once-per-pair guard must have prevented duplicate lazy builds:
  // the concurrent instance computes exactly the pairs the serial one
  // does.
  EXPECT_EQ((*shared)->lazy_pairs_computed(),
            (*serial)->lazy_pairs_computed());
}

// The same mixed workload with intra-query morsel parallelism: every
// query draws helper tasks from the one shared TaskPool, and results
// must still match the serial instance exactly. The graph is sized so
// scans and joins clear kParallelRowThreshold and actually go parallel.
TEST(ConcurrencyStressTest, ParallelExecutionMixedQueriesMatchSerial) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 2;

  auto serial = S2Rdf::Create(MakeSocialGraph(2500), S2RdfOptions());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  std::vector<std::vector<std::vector<std::string>>> expected;
  for (const char* query : kMixedQueries) {
    auto result = (*serial)->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected.push_back(SortedRows(**serial, result->table));
  }

  S2RdfOptions options;
  options.parallel_execution = true;
  auto shared = S2Rdf::Create(MakeSocialGraph(2500), options);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();

  std::atomic<int> failures{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < kNumMixedQueries; ++q) {
          size_t index = (q + static_cast<size_t>(t)) % kNumMixedQueries;
          QueryRequest request;
          request.query = kMixedQueries[index];
          auto result = (*shared)->Execute(request);
          if (!result.ok()) {
            ++failures;
            continue;
          }
          if (SortedRows(**shared, result->table) != expected[index]) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// --- QueryOptions behavior -------------------------------------------------

// ~1200x1200 unconstrained cross product: long enough that a 1 ms
// deadline always expires mid-execution.
std::unique_ptr<S2Rdf> MakeCrossJoinDb() {
  rdf::Graph g;
  for (int i = 0; i < 1200; ++i) {
    g.AddIris("A" + std::to_string(i), "p", "B" + std::to_string(i));
    g.AddIris("C" + std::to_string(i), "q", "D" + std::to_string(i));
  }
  auto db = S2Rdf::Create(std::move(g), S2RdfOptions());
  EXPECT_TRUE(db.ok());
  return std::move(*db);
}

TEST(QueryOptionsTest, TimeoutReturnsDeadlineExceeded) {
  std::unique_ptr<S2Rdf> db = MakeCrossJoinDb();
  QueryRequest request;
  request.query = "SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . }";
  request.options.timeout_ms = 1;
  auto result = db->Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  // The same query completes without a deadline.
  request.options.timeout_ms = 0;
  auto full = db->Execute(request);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->table.NumRows(), 1200u * 1200u);
}

TEST(QueryOptionsTest, CancelFlagReturnsCancelled) {
  auto db = S2Rdf::Create(MakeSocialGraph(10), S2RdfOptions());
  ASSERT_TRUE(db.ok());
  std::atomic<bool> cancel{true};
  QueryRequest request;
  request.query = "SELECT ?x ?y WHERE { ?x <follows> ?y . }";
  request.options.cancel = &cancel;
  auto result = (*db)->Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);

  // Unset flag: the query runs normally.
  cancel = false;
  auto ok = (*db)->Execute(request);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_GT(ok->table.NumRows(), 0u);
}

TEST(QueryOptionsTest, MaxResultRowsTruncates) {
  auto db = S2Rdf::Create(MakeSocialGraph(20), S2RdfOptions());
  ASSERT_TRUE(db.ok());
  QueryRequest request;
  request.query = "SELECT ?x ?y WHERE { ?x <follows> ?y . }";

  auto full = (*db)->Execute(request);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  ASSERT_GT(full->table.NumRows(), 5u);

  request.options.max_result_rows = 5;
  auto limited = (*db)->Execute(request);
  ASSERT_TRUE(limited.ok());
  EXPECT_TRUE(limited->truncated);
  EXPECT_EQ(limited->table.NumRows(), 5u);

  // A limit at or above the result size truncates nothing.
  request.options.max_result_rows = full->table.NumRows();
  auto exact = (*db)->Execute(request);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact->truncated);
  EXPECT_EQ(exact->table.NumRows(), full->table.NumRows());
}

TEST(QueryOptionsTest, LayoutOverrideSelectsLayout) {
  auto db = S2Rdf::Create(MakeSocialGraph(20), S2RdfOptions());
  ASSERT_TRUE(db.ok());
  QueryRequest request;
  // <knows> covers only a third of the subjects, so the <likes> side's
  // OS reduction is selective enough to be materialized (SF < 1).
  request.query = "SELECT ?x ?i WHERE { ?x <knows> ?y . ?y <likes> ?i . }";
  request.options.layout = Layout::kExtVp;
  auto extvp = (*db)->Execute(request);
  ASSERT_TRUE(extvp.ok());
  EXPECT_NE(extvp->sql.find("extvp_"), std::string::npos);

  request.options.layout = Layout::kVp;
  auto vp = (*db)->Execute(request);
  ASSERT_TRUE(vp.ok());
  EXPECT_EQ(vp->sql.find("extvp_"), std::string::npos);
  EXPECT_TRUE(engine::Table::SameBag(extvp->table, vp->table));
}

TEST(QueryOptionsTest, TimeoutAppliesToGraphForms) {
  std::unique_ptr<S2Rdf> db = MakeCrossJoinDb();
  QueryRequest request;
  request.query =
      "CONSTRUCT { ?a <pair> ?c . } WHERE { ?a <p> ?b . ?c <q> ?d . }";
  request.options.timeout_ms = 1;
  auto result = db->Execute(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// Concurrent queries with per-query deadlines: slow cross joins time
// out while quick scans sharing the same instance still succeed.
TEST(ConcurrencyStressTest, MixedDeadlinesDoNotInterfere) {
  std::unique_ptr<S2Rdf> db = MakeCrossJoinDb();
  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 5; ++i) {
        QueryRequest request;
        if (t % 2 == 0) {
          request.query = "SELECT * WHERE { ?a <p> ?b . ?c <q> ?d . }";
          request.options.timeout_ms = 1;
          auto result = db->Execute(request);
          if (result.ok() ||
              result.status().code() != StatusCode::kDeadlineExceeded) {
            ++unexpected;
          }
        } else {
          request.query = "SELECT ?a ?b WHERE { ?a <p> ?b . }";
          auto result = db->Execute(request);
          if (!result.ok() || result->table.NumRows() != 1200u) {
            ++unexpected;
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(unexpected.load(), 0);
}

// --- Operator interrupt coverage -------------------------------------------
//
// Engine-level regression tests: every operator's row loops consult the
// interrupt state at least every kInterruptCheckRows rows. With an
// already-expired deadline the very first check fires, so each operator
// must abandon its work (empty or partial output), record the reason in
// interrupt_status, and still complete normally with a fresh context.

engine::ExecContext ExpiredDeadline() {
  engine::ExecContext ctx;
  ctx.has_deadline = true;
  // ExecContext deadlines are steady_clock time_points by contract;
  // deriving one from the real clock is the seam's own currency.
  ctx.deadline =  // s2rdf-lint: allow(clock)
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  return ctx;
}

// n rows of (i+1, i+1): two such tables join 1:1 on a shared column.
engine::Table SeqPairs(const char* c0, const char* c1, size_t n) {
  engine::Table t({c0, c1});
  for (size_t i = 0; i < n; ++i) {
    t.AppendRow({static_cast<rdf::TermId>(i + 1),
                 static_cast<rdf::TermId>(i + 1)});
  }
  return t;
}

TEST(OperatorInterruptTest, SortMergeJoinHonorsDeadline) {
  engine::Table left = SeqPairs("x", "y", 6000);
  engine::Table right = SeqPairs("y", "z", 6000);
  engine::ExecContext expired = ExpiredDeadline();
  engine::Table out = engine::SortMergeJoin(left, right, &expired);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  engine::Table full = engine::SortMergeJoin(left, right, &fresh);
  EXPECT_TRUE(fresh.interrupt_status.ok());
  EXPECT_EQ(full.NumRows(), 6000u);
}

TEST(OperatorInterruptTest, SemiJoinHonorsDeadline) {
  engine::Table left = SeqPairs("x", "y", 6000);
  engine::Table right = SeqPairs("y", "z", 6000);
  engine::ExecContext expired = ExpiredDeadline();
  engine::Table out = engine::SemiJoin(left, 1, right, 0, &expired);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  engine::Table full = engine::SemiJoin(left, 1, right, 0, &fresh);
  EXPECT_TRUE(fresh.interrupt_status.ok());
  EXPECT_EQ(full.NumRows(), 6000u);
}

TEST(OperatorInterruptTest, LeftOuterJoinHonorsDeadline) {
  engine::Table left = SeqPairs("x", "y", 6000);
  engine::Table right = SeqPairs("y", "z", 6000);
  rdf::Dictionary dict;
  engine::ExecContext expired = ExpiredDeadline();
  engine::Table out =
      engine::LeftOuterJoin(left, right, nullptr, dict, &expired);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  engine::Table full =
      engine::LeftOuterJoin(left, right, nullptr, dict, &fresh);
  EXPECT_TRUE(fresh.interrupt_status.ok());
  EXPECT_EQ(full.NumRows(), 6000u);
}

TEST(OperatorInterruptTest, UnionAllHonorsDeadline) {
  engine::Table a = SeqPairs("x", "y", 6000);
  engine::Table b = SeqPairs("y", "z", 6000);
  engine::ExecContext expired = ExpiredDeadline();
  engine::Table out = engine::UnionAll(a, b, &expired);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  engine::Table full = engine::UnionAll(a, b, &fresh);
  EXPECT_TRUE(fresh.interrupt_status.ok());
  EXPECT_EQ(full.NumRows(), 12000u);
}

TEST(OperatorInterruptTest, DistinctHonorsDeadline) {
  engine::Table t({"a", "b"});
  for (size_t i = 0; i < 6000; ++i) {
    t.AppendRow({static_cast<rdf::TermId>(i % 100 + 1),
                 static_cast<rdf::TermId>(i % 100 + 1)});
  }
  engine::ExecContext expired = ExpiredDeadline();
  engine::Table out = engine::Distinct(t, &expired);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  engine::Table full = engine::Distinct(t, &fresh);
  EXPECT_TRUE(fresh.interrupt_status.ok());
  EXPECT_EQ(full.NumRows(), 100u);
}

TEST(OperatorInterruptTest, OrderByHonorsDeadline) {
  rdf::Dictionary dict;
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < 100; ++i) {
    terms.push_back(dict.Encode(
        "\"" + std::to_string(i) +
        "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
  }
  engine::Table t({"n"});
  for (size_t i = 0; i < 6000; ++i) {
    t.AppendRow({terms[(i * 37) % terms.size()]});
  }
  engine::ExecContext expired = ExpiredDeadline();
  engine::Table out = engine::OrderBy(t, {{"n", true}}, dict, &expired);
  EXPECT_EQ(out.NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  engine::Table full = engine::OrderBy(t, {{"n", true}}, dict, &fresh);
  EXPECT_TRUE(fresh.interrupt_status.ok());
  ASSERT_EQ(full.NumRows(), 6000u);
  EXPECT_EQ(full.At(0, 0), terms[0]);
}

TEST(OperatorInterruptTest, GroupByAggregateHonorsDeadline) {
  engine::Table t({"k", "v"});
  for (size_t i = 0; i < 6000; ++i) {
    t.AppendRow({static_cast<rdf::TermId>(i % 50 + 1),
                 static_cast<rdf::TermId>(i + 1)});
  }
  rdf::Dictionary dict;
  std::vector<engine::AggregateSpec> specs = {
      {engine::AggregateSpec::Fn::kCountStar, "", "n", false}};

  engine::ExecContext expired = ExpiredDeadline();
  auto out = engine::GroupByAggregate(t, {"k"}, specs, &dict, &expired);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 0u);
  EXPECT_EQ(expired.interrupt_status.code(), StatusCode::kDeadlineExceeded);

  engine::ExecContext fresh;
  auto full = engine::GroupByAggregate(t, {"k"}, specs, &dict, &fresh);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(fresh.interrupt_status.ok());
  EXPECT_EQ(full->NumRows(), 50u);
}

}  // namespace
}  // namespace s2rdf::core
