#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/file_util.h"
#include "common/strings.h"
#include "core/s2rdf.h"
#include "server/sparql_endpoint.h"
#include "storage/catalog.h"
#include "storage/fault_injection_env.h"

// Fault-injection tests for the durability protocol end to end: the
// crash-point matrix (crash after every k-th mutating I/O op during a
// full store build, then "reboot" and assert the recovered state is
// always consistent), and graceful degradation (corrupt tables are
// quarantined and queries answer identically from superset tables,
// ExtVP -> VP -> triples table).

namespace s2rdf::core {
namespace {

using storage::Catalog;
using storage::FaultInjectionEnv;

// The paper's running example graph G1 (Fig. 1).
rdf::Graph MakeG1() {
  rdf::Graph g;
  g.AddIris("A", "follows", "B");
  g.AddIris("B", "follows", "C");
  g.AddIris("B", "follows", "D");
  g.AddIris("C", "follows", "D");
  g.AddIris("A", "likes", "I1");
  g.AddIris("A", "likes", "I2");
  g.AddIris("C", "likes", "I2");
  return g;
}

// Q1 (Fig. 2): friends of friends who like the same things. Exercises
// ExtVP table selection on every pattern.
constexpr char kQ1[] =
    "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y . "
    "?y <follows> ?z . ?z <likes> ?w }";

// Decoded, sorted solution rows — the canonical form the degradation
// tests compare byte-for-byte against the healthy store.
std::vector<std::vector<std::string>> SortedRows(S2Rdf* db,
                                                 const std::string& query) {
  auto result = db->Execute(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  std::vector<std::vector<std::string>> rows =
      db->DecodeRows(result->table);
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Flips one bit in the middle of every file in `dir` whose name starts
// with `prefix` and ends in ".s2tb"; returns how many were damaged.
int CorruptTables(const std::string& dir, const std::string& prefix) {
  auto files = s2rdf::ListDir(dir);
  EXPECT_TRUE(files.ok());
  int corrupted = 0;
  for (const std::string& file : *files) {
    if (!s2rdf::StartsWith(file, prefix) || !s2rdf::EndsWith(file, ".s2tb")) {
      continue;
    }
    std::string blob;
    EXPECT_TRUE(s2rdf::ReadFile(dir + "/" + file, &blob).ok());
    blob[blob.size() / 2] ^= 0x01;
    EXPECT_TRUE(s2rdf::WriteFile(dir + "/" + file, blob).ok());
    ++corrupted;
  }
  return corrupted;
}

StatusOr<std::unique_ptr<S2Rdf>> CreatePersisted(const std::string& dir,
                                                 storage::Env* env = nullptr) {
  S2RdfOptions options;
  options.storage_dir = dir;
  options.env = env;
  return S2Rdf::Create(MakeG1(), options);
}

// --- Crash-point matrix --------------------------------------------------

TEST(CrashMatrixTest, EveryCrashPointRecoversToConsistentState) {
  // Pass 1: run the full build once through the fault-injection env to
  // count its mutating I/O ops. The workload is deterministic, so run k
  // of pass 2 sees the identical op sequence.
  uint64_t total_mutations = 0;
  {
    s2rdf::ScopedTempDir dir;
    FaultInjectionEnv env;
    auto db = CreatePersisted(dir.path(), &env);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    total_mutations = env.mutation_count();
    ASSERT_GT(total_mutations, 10u);  // Tables + manifest + dictionary.
  }

  // Pass 2: crash at every point, in both styles, and reboot.
  for (FaultInjectionEnv::CrashStyle style :
       {FaultInjectionEnv::CrashStyle::kClean,
        FaultInjectionEnv::CrashStyle::kTorn}) {
    for (uint64_t k = 0; k < total_mutations; ++k) {
      SCOPED_TRACE("style=" + std::to_string(static_cast<int>(style)) +
                   " crash_after=" + std::to_string(k));
      s2rdf::ScopedTempDir dir;
      FaultInjectionEnv env;
      env.set_crash_style(style);
      env.CrashAfterMutations(k);
      auto db = CreatePersisted(dir.path(), &env);
      // k < total: the build cannot have finished.
      EXPECT_FALSE(db.ok());

      // "Reboot": recover with a healthy environment.
      Catalog catalog(dir.path());
      auto report = catalog.Recover();
      if (report.ok()) {
        // The recovered state must be fully consistent: the atomic
        // write protocol confines torn data to staging files, so no
        // manifest-listed table may fail verification...
        EXPECT_EQ(report->tables_quarantined, 0u);
        // ...the only manifest generation Create saves is 1...
        EXPECT_EQ(report->generation, 1u);
        // ...every materialized table actually loads...
        for (const storage::TableStats* stats : catalog.AllStats()) {
          if (!stats->materialized) continue;
          EXPECT_TRUE(catalog.GetTable(stats->name).ok()) << stats->name;
        }
        // ...and no staging debris survives the sweep.
        auto files = s2rdf::ListDir(dir.path());
        ASSERT_TRUE(files.ok());
        for (const std::string& file : *files) {
          EXPECT_FALSE(s2rdf::EndsWith(file, ".tmp")) << file;
        }
      } else {
        // Acceptable only when the crash predates the first durable
        // manifest generation: the store then never existed.
        EXPECT_EQ(report.status().code(), StatusCode::kNotFound)
            << report.status().ToString();
      }
    }
  }
}

TEST(CrashMatrixTest, CompletedBuildReopensAndAnswersQ1) {
  s2rdf::ScopedTempDir dir;
  FaultInjectionEnv env;
  std::vector<std::vector<std::string>> healthy;
  {
    auto db = CreatePersisted(dir.path(), &env);
    ASSERT_TRUE(db.ok());
    healthy = SortedRows(db->get(), kQ1);
    ASSERT_EQ(healthy.size(), 1u);  // Q1 on G1: x=A, y=B, z=C, w=I2.
  }
  auto reopened = S2Rdf::Open(dir.path());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery_report().tables_quarantined, 0u);
  EXPECT_GT((*reopened)->recovery_report().tables_verified, 0u);
  EXPECT_EQ(SortedRows(reopened->get(), kQ1), healthy);
}

// --- Graceful degradation ------------------------------------------------

TEST(DegradationTest, CorruptExtVpDegradesToVpWithIdenticalResults) {
  s2rdf::ScopedTempDir dir;
  std::vector<std::vector<std::string>> healthy;
  {
    auto db = CreatePersisted(dir.path());
    ASSERT_TRUE(db.ok());
    healthy = SortedRows(db->get(), kQ1);
    ASSERT_FALSE(healthy.empty());
  }
  ASSERT_GT(CorruptTables(dir.path(), "extvp_"), 0);

  auto db = S2Rdf::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Startup recovery quarantined the damaged reductions.
  EXPECT_GT((*db)->recovery_report().tables_quarantined, 0u);
  EXPECT_GT((*db)->catalog().corruptions_detected(), 0u);
  // The query silently falls back to the base VP tables — identical
  // solutions (VP ⊇ ExtVP; the extra rows cannot satisfy the joins).
  EXPECT_EQ(SortedRows(db->get(), kQ1), healthy);
  EXPECT_GE((*db)->catalog().queries_degraded(), 1u);
}

TEST(DegradationTest, CorruptVpDegradesToTriplesTable) {
  s2rdf::ScopedTempDir dir;
  const std::string query = "SELECT * WHERE { ?s <likes> ?o }";
  std::vector<std::vector<std::string>> healthy;
  {
    auto db = CreatePersisted(dir.path());
    ASSERT_TRUE(db.ok());
    healthy = SortedRows(db->get(), query);
    ASSERT_EQ(healthy.size(), 3u);
  }
  // Damage every VP table: single-pattern queries then have nothing
  // between VP and the last-resort triples-table layout.
  ASSERT_GT(CorruptTables(dir.path(), "vp_"), 0);

  auto db = S2Rdf::Open(dir.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_GT((*db)->recovery_report().tables_quarantined, 0u);
  uint64_t degraded_before = (*db)->catalog().queries_degraded();
  // TT ⊇ VP and the scan re-applies the predicate selection: identical
  // solutions out of the triples table.
  EXPECT_EQ(SortedRows(db->get(), query), healthy);
  EXPECT_GT((*db)->catalog().queries_degraded(), degraded_before);
}

TEST(DegradationTest, MidQueryChecksumFailureFallsBackToVp) {
  s2rdf::ScopedTempDir dir;
  std::vector<std::vector<std::string>> healthy;
  {
    auto db = CreatePersisted(dir.path());
    ASSERT_TRUE(db.ok());
    healthy = SortedRows(db->get(), kQ1);
  }
  // Reopen while the store is healthy (recovery quarantines nothing),
  // then corrupt the reductions behind the running server's back —
  // detected only at load time, mid-query.
  auto db = S2Rdf::Open(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_EQ((*db)->recovery_report().tables_quarantined, 0u);
  ASSERT_GT(CorruptTables(dir.path(), "extvp_"), 0);

  EXPECT_EQ(SortedRows(db->get(), kQ1), healthy);
  EXPECT_GE((*db)->catalog().queries_degraded(), 1u);
  EXPECT_GT((*db)->catalog().corruptions_detected(), 0u);
  // The corruption is remembered: later queries degrade at compile time.
  EXPECT_EQ(SortedRows(db->get(), kQ1), healthy);
}

TEST(DegradationTest, TransientReadErrorsInvisibleToQueries) {
  s2rdf::ScopedTempDir dir;
  std::vector<std::vector<std::string>> healthy;
  {
    auto db = CreatePersisted(dir.path());
    ASSERT_TRUE(db.ok());
    healthy = SortedRows(db->get(), kQ1);
  }
  FaultInjectionEnv env;
  auto db = S2Rdf::Open(dir.path(), 9, &env);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  env.FailNextReads(2);  // EINTR/EIO-style hiccup under the first scan.
  EXPECT_EQ(SortedRows(db->get(), kQ1), healthy);
  EXPECT_EQ((*db)->catalog().corruptions_detected(), 0u);
  EXPECT_EQ((*db)->catalog().queries_degraded(), 0u);
}

TEST(DegradationTest, CountersExposedThroughMetricsRoute) {
  s2rdf::ScopedTempDir dir;
  {
    auto created = CreatePersisted(dir.path());
    ASSERT_TRUE(created.ok());
  }
  ASSERT_GT(CorruptTables(dir.path(), "extvp_"), 0);
  auto db = S2Rdf::Open(dir.path());
  ASSERT_TRUE(db.ok());
  ASSERT_FALSE(SortedRows(db->get(), kQ1).empty());

  server::SparqlEndpoint endpoint(db->get());
  server::HttpRequest request;
  request.method = "GET";
  request.path = "/metrics";
  server::HttpResponse response = endpoint.Handle(request);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find("s2rdf_storage_corruptions_detected"),
            std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_recovery_quarantined_tables"),
            std::string::npos);
  // At least one degraded query has been counted by now.
  EXPECT_EQ(response.body.find("s2rdf_queries_degraded 0\n"),
            std::string::npos);
  EXPECT_NE(response.body.find("s2rdf_queries_degraded"), std::string::npos);
}

}  // namespace
}  // namespace s2rdf::core
