// Regression suite for the morsel-parallel engine (`ctest -L parallel`):
// the byte-identical serial/parallel contract for the paths added with
// the radix-partitioned join and vectorized morsels — ParallelFilter's
// memoized single-column path, build-side selection in the join, the
// morsel-size override — plus the accounting and interrupt parity
// satellites and the multi-core speedup floor.
//
// The speedup test is a gate, not a benchmark: on hosts with >= 4
// hardware cores the data-parallel operators must beat their serial
// twins by S2RDF_BENCH_SPEEDUP_FLOOR (default 1.5x). On smaller
// machines it GTEST_SKIPs — visibly, via the SKIP_REGULAR_EXPRESSION
// property tests/CMakeLists.txt attaches — never silently passes.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/operators.h"
#include "engine/parallel.h"
#include "engine/parallel_join.h"
#include "engine/table.h"
#include "rdf/dictionary.h"

namespace s2rdf::engine {
namespace {

// Exact (row-order-sensitive) table equality: the parallel operators
// promise byte-identical output, not just the same bag.
void ExpectIdenticalTables(const Table& a, const Table& b) {
  ASSERT_EQ(a.column_names(), b.column_names());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    EXPECT_EQ(a.Column(c), b.Column(c)) << "column " << c;
  }
}

void ExpectIdenticalMetrics(const ExecMetrics& a, const ExecMetrics& b) {
  EXPECT_EQ(a.input_tuples, b.input_tuples);
  EXPECT_EQ(a.intermediate_tuples, b.intermediate_tuples);
  EXPECT_EQ(a.join_comparisons, b.join_comparisons);
  EXPECT_EQ(a.shuffled_tuples, b.shuffled_tuples);
  EXPECT_EQ(a.output_tuples, b.output_tuples);
}

// --- ParallelFilter ----------------------------------------------------------

// A table whose "o" column holds numeric literals, IRIs and nulls: the
// value-typed comparison must produce true, false and error verdicts.
Table MixedLiteralTable(rdf::Dictionary* dict, size_t rows) {
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < 64; ++i) {
    terms.push_back(dict->Encode(
        "\"" + std::to_string(i * 25) +
        "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
  }
  for (int i = 0; i < 8; ++i) {
    terms.push_back(dict->Encode("<http://example.org/e" +
                                 std::to_string(i) + ">"));
  }
  std::vector<rdf::TermId> subjects;
  for (int i = 0; i < 500; ++i) {
    subjects.push_back(dict->Encode("<http://example.org/s" +
                                    std::to_string(i) + ">"));
  }
  SplitMix64 rng(31);
  Table t({"s", "o"});
  t.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    rdf::TermId o = rng.Uniform(100) == 0
                        ? kNullTermId
                        : terms[rng.Uniform(terms.size())];
    t.AppendRow({subjects[rng.Uniform(subjects.size())], o});
  }
  return t;
}

TEST(ParallelFilterTest, SingleColumnComparisonMatchesSerial) {
  // ?o < 500 over integers, IRIs (incomparable -> error -> dropped) and
  // nulls: exercises the memoized single-column path end to end.
  rdf::Dictionary dict;
  Table t = MixedLiteralTable(&dict, 20000);
  ExprPtr e = Expr::Compare(
      CompareOp::kLt, Expr::Var("o"),
      Expr::Const("\"500\"^^<http://www.w3.org/2001/XMLSchema#integer>"));

  ExecContext serial_ctx;
  Table serial = Filter(t, *e, dict, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelFilter(t, *e, dict, &parallel_ctx);
  EXPECT_GT(serial.NumRows(), 0u);
  EXPECT_LT(serial.NumRows(), t.NumRows());
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelFilterTest, MultiColumnExpressionMatchesSerial) {
  // (?s = ?o) || !BOUND(?o) references two columns, so the memo does
  // not apply and the generic per-row path must stay identical too.
  rdf::Dictionary dict;
  Table t = MixedLiteralTable(&dict, 12000);
  ExprPtr e = Expr::Or(
      Expr::Compare(CompareOp::kEq, Expr::Var("s"), Expr::Var("o")),
      Expr::Not(Expr::Bound("o")));

  ExecContext serial_ctx;
  Table serial = Filter(t, *e, dict, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelFilter(t, *e, dict, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelFilterTest, MorselOverrideProducesIdenticalOutput) {
  rdf::Dictionary dict;
  Table t = MixedLiteralTable(&dict, 10000);
  ExprPtr e = Expr::Compare(
      CompareOp::kGe, Expr::Var("o"),
      Expr::Const("\"800\"^^<http://www.w3.org/2001/XMLSchema#integer>"));

  ExecContext auto_ctx;
  Table auto_tuned = ParallelFilter(t, *e, dict, &auto_ctx);
  ExecContext pinned_ctx;
  pinned_ctx.morsel_rows = 97;  // Deliberately odd: ragged last morsels.
  Table pinned = ParallelFilter(t, *e, dict, &pinned_ctx);
  ExpectIdenticalTables(auto_tuned, pinned);
  ExpectIdenticalMetrics(auto_ctx.metrics, pinned_ctx.metrics);
}

TEST(ParallelFilterTest, ThresholdOverrideForcesParallelPath) {
  // A 300-row input is below the default 4096 threshold; lowering the
  // threshold through the context must still produce identical output.
  rdf::Dictionary dict;
  Table t = MixedLiteralTable(&dict, 300);
  ExprPtr e = Expr::Compare(
      CompareOp::kLt, Expr::Var("o"),
      Expr::Const("\"1000\"^^<http://www.w3.org/2001/XMLSchema#integer>"));

  ExecContext serial_ctx;
  Table serial = Filter(t, *e, dict, &serial_ctx);
  ExecContext parallel_ctx;
  parallel_ctx.parallel_threshold_rows = 16;
  Table parallel = ParallelFilter(t, *e, dict, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelFilterTest, CancelReportsCancelledLikeSerial) {
  rdf::Dictionary dict;
  Table t = MixedLiteralTable(&dict, 20000);
  ExprPtr e = Expr::Compare(
      CompareOp::kLt, Expr::Var("o"),
      Expr::Const("\"500\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
  std::atomic<bool> cancel{true};

  ExecContext serial_ctx;
  serial_ctx.cancel_flag = &cancel;
  (void)Filter(t, *e, dict, &serial_ctx);
  ExecContext parallel_ctx;
  parallel_ctx.cancel_flag = &cancel;
  (void)ParallelFilter(t, *e, dict, &parallel_ctx);
  EXPECT_EQ(serial_ctx.interrupt_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(parallel_ctx.interrupt_status.code(),
            serial_ctx.interrupt_status.code());
}

// --- ParallelHashJoin --------------------------------------------------------

// Random (x, y) |><| (y, z) inputs with some null keys mixed in.
std::pair<Table, Table> JoinInputs(uint64_t seed, size_t left_rows,
                                   size_t right_rows) {
  SplitMix64 rng(seed);
  Table left({"x", "y"});
  Table right({"y", "z"});
  for (size_t i = 0; i < left_rows; ++i) {
    left.AppendRow({static_cast<rdf::TermId>(rng.Uniform(700) + 1),
                    static_cast<rdf::TermId>(rng.Uniform(300) + 1)});
  }
  for (size_t i = 0; i < right_rows; ++i) {
    right.AppendRow({static_cast<rdf::TermId>(rng.Uniform(300) + 1),
                     static_cast<rdf::TermId>(rng.Uniform(700) + 1)});
  }
  left.AppendRow({1, kNullTermId});
  right.AppendRow({kNullTermId, 2});
  return {std::move(left), std::move(right)};
}

TEST(ParallelJoinBuildSideTest, SmallerLeftBuildsLeft) {
  // left < right: the join builds on the left and must sort its packed
  // pairs back into probe order — byte-identical output either way.
  auto [left, right] = JoinInputs(101, 6000, 18000);
  ExecContext serial_ctx;
  Table serial = HashJoin(left, right, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelHashJoin(left, right, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelJoinBuildSideTest, SmallerRightBuildsRight) {
  auto [left, right] = JoinInputs(103, 18000, 6000);
  ExecContext serial_ctx;
  Table serial = HashJoin(left, right, &serial_ctx);
  ExecContext parallel_ctx;
  Table parallel = ParallelHashJoin(left, right, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

class JoinComparisonsTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinComparisonsTest, ParallelChargesSameComparisons) {
  // The parallel join must account join_comparisons exactly like the
  // serial operator — the cost model and EXPLAIN ANALYZE read them
  // interchangeably (regression: the radix join charges per partition).
  SplitMix64 rng(static_cast<uint64_t>(GetParam()) * 67 + 11);
  auto [left, right] =
      JoinInputs(rng.Next(), 4500 + rng.Uniform(6000),
                 4500 + rng.Uniform(6000));
  ExecContext serial_ctx;
  (void)HashJoin(left, right, &serial_ctx);
  ExecContext parallel_ctx;
  (void)ParallelHashJoin(left, right, &parallel_ctx);
  EXPECT_EQ(serial_ctx.metrics.join_comparisons,
            parallel_ctx.metrics.join_comparisons);
  EXPECT_EQ(serial_ctx.metrics.shuffled_tuples,
            parallel_ctx.metrics.shuffled_tuples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinComparisonsTest, ::testing::Range(0, 4));

TEST(ParallelJoinInterruptTest, CancelReportsCancelledLikeSerial) {
  // Satellite: an interrupted parallel join must surface the same
  // Status as the serial operator would — kCancelled from the cancel
  // flag, with the partial output abandoned.
  auto [left, right] = JoinInputs(107, 20000, 20000);
  std::atomic<bool> cancel{true};

  ExecContext serial_ctx;
  serial_ctx.cancel_flag = &cancel;
  (void)HashJoin(left, right, &serial_ctx);
  ExecContext parallel_ctx;
  parallel_ctx.cancel_flag = &cancel;
  Table parallel = ParallelHashJoin(left, right, &parallel_ctx);
  EXPECT_EQ(serial_ctx.interrupt_status.code(), StatusCode::kCancelled);
  EXPECT_EQ(parallel_ctx.interrupt_status.code(),
            serial_ctx.interrupt_status.code());
  EXPECT_EQ(parallel.NumRows(), 0u);
}

// --- Cost-gated merge-heavy operators ----------------------------------------
//
// DISTINCT / ORDER BY / GROUP BY are the operators the planner's cost
// gate can keep serial at narrow pool widths (their measured width-4
// speedups sit near 1x). The byte-identity contract must hold anyway
// whenever the parallel twin does run, including under unbound values
// and ragged morsel overrides the engine_test cases do not cover.

TEST(ParallelDistinctTest, UnboundValuesAndMorselOverrideMatchSerial) {
  // Heavy duplication with nulls mixed into both columns: unbound cells
  // must dedup like any other value, and first-occurrence order must
  // survive ragged morsel boundaries.
  SplitMix64 rng(17);
  Table t({"a", "b"});
  for (size_t i = 0; i < 15000; ++i) {
    rdf::TermId a = rng.Uniform(8) == 0
                        ? kNullTermId
                        : static_cast<rdf::TermId>(rng.Uniform(30) + 1);
    rdf::TermId b = rng.Uniform(8) == 0
                        ? kNullTermId
                        : static_cast<rdf::TermId>(rng.Uniform(30) + 1);
    t.AppendRow({a, b});
  }
  ExecContext serial_ctx;
  Table serial = Distinct(t, &serial_ctx);
  ExecContext parallel_ctx;
  parallel_ctx.morsel_rows = 97;  // Deliberately odd: ragged last morsels.
  Table parallel = ParallelDistinct(t, &parallel_ctx);
  EXPECT_GT(serial.NumRows(), 0u);
  EXPECT_LT(serial.NumRows(), t.NumRows());
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelOrderByTest, NullsAndMixedTypesMatchSerial) {
  // Sort keys mixing numeric literals, IRIs and unbound cells under an
  // asc/desc key pair: the k-way merge's earliest-chunk tie-break must
  // reproduce the serial stable_sort across every value class.
  rdf::Dictionary dict;
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < 25; ++i) {
    terms.push_back(dict.Encode(
        "\"" + std::to_string(i * 7 % 50) +
        "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    terms.push_back(dict.Encode("<I" + std::to_string(i) + ">"));
  }
  terms.push_back(kNullTermId);
  SplitMix64 rng(19);
  Table t({"n", "m"});
  for (size_t i = 0; i < 15000; ++i) {
    t.AppendRow({terms[rng.Uniform(terms.size())],
                 terms[rng.Uniform(terms.size())]});
  }
  std::vector<SortKey> keys = {{"n", true}, {"m", false}};
  ExecContext serial_ctx;
  Table serial = OrderBy(t, keys, dict, &serial_ctx);
  ExecContext parallel_ctx;
  parallel_ctx.morsel_rows = 193;
  Table parallel = ParallelOrderBy(t, keys, dict, &parallel_ctx);
  ExpectIdenticalTables(serial, parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

TEST(ParallelGroupByAggregateTest, UnboundInputsAndDistinctCountsMatchSerial) {
  // Unbound aggregate inputs (skipped by COUNT/SUM/MIN), an unbound
  // group key (its own group), and a DISTINCT count whose state cannot
  // be merged across workers: group-exclusive partitioning must still
  // be byte-identical, minted literals included.
  rdf::Dictionary dict;
  std::vector<rdf::TermId> group_keys;
  for (int i = 0; i < 30; ++i) {
    group_keys.push_back(dict.Encode("<G" + std::to_string(i) + ">"));
  }
  group_keys.push_back(kNullTermId);
  std::vector<rdf::TermId> values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(dict.Encode(
        "\"" + std::to_string(i) + ".5" +
        "\"^^<http://www.w3.org/2001/XMLSchema#double>"));
  }
  values.push_back(kNullTermId);
  SplitMix64 rng(23);
  Table t({"k", "v"});
  for (size_t i = 0; i < 15000; ++i) {
    t.AppendRow({group_keys[rng.Uniform(group_keys.size())],
                 values[rng.Uniform(values.size())]});
  }
  std::vector<AggregateSpec> specs = {
      {AggregateSpec::Fn::kCountStar, "", "n", false},
      {AggregateSpec::Fn::kCount, "v", "dv", true},
      {AggregateSpec::Fn::kSum, "v", "total", false},
      {AggregateSpec::Fn::kMax, "v", "mx", false},
  };
  ExecContext serial_ctx;
  auto serial = GroupByAggregate(t, {"k"}, specs, &dict, &serial_ctx);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ExecContext parallel_ctx;
  auto parallel =
      ParallelGroupByAggregate(t, {"k"}, specs, &dict, &parallel_ctx);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdenticalTables(*serial, *parallel);
  ExpectIdenticalMetrics(serial_ctx.metrics, parallel_ctx.metrics);
}

// --- Morsel auto-tune --------------------------------------------------------

TEST(MorselAutoTuneTest, HonorsContextOverride) {
  ExecContext ctx;
  ctx.morsel_rows = 12345;
  EXPECT_EQ(MorselRowsFor(1000000, 3, &ctx), 12345u);
}

TEST(MorselAutoTuneTest, StaysWithinBounds) {
  // Any width/row combination lands inside [kMinMorselRows,
  // kMaxMorselRows]; wider tables get morsels no larger than narrow
  // ones (the target is bytes per morsel, not rows).
  for (size_t cols : {1u, 2u, 4u, 16u, 64u}) {
    for (size_t rows : {5000u, 100000u, 10000000u}) {
      size_t m = MorselRowsFor(rows, cols, nullptr);
      EXPECT_GE(m, kMinMorselRows) << cols << "x" << rows;
      EXPECT_LE(m, kMaxMorselRows) << cols << "x" << rows;
    }
  }
  EXPECT_GE(MorselRowsFor(10000000, 1, nullptr),
            MorselRowsFor(10000000, 64, nullptr));
}

// --- Speedup floor -----------------------------------------------------------

double FloorFromEnv() {
  if (const char* env = std::getenv("S2RDF_BENCH_SPEEDUP_FLOOR")) {
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end != env && v > 0.0) return v;
  }
  return 1.5;
}

// Best-of-N wall time of `fn` in milliseconds.
template <typename Fn>
double BestMs(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    MonotonicTime t0 = MonotonicNow();
    fn();
    double ms = std::chrono::duration<double, std::milli>(
                    MonotonicNow() - t0)
                    .count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

TEST(ParallelSpeedupTest, ScanAndJoinMeetFloorOnMultiCoreHosts) {
  // The regression gate for the parallel-slower-than-serial bug: on a
  // real multi-core host the gated operators must beat serial by the
  // same floor BENCH_parallel.json records. Skipped — visibly, never
  // silently passed — below 4 hardware cores, where the contract is
  // only byte-identity, not speed.
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < 4) {
    GTEST_SKIP() << "needs >= 4 hardware cores, have " << cores;
  }
  const double floor = FloorFromEnv();
  const int reps = 3;

  {
    SplitMix64 rng(7);
    Table base({"s", "o"});
    base.Reserve(2000000);
    for (size_t i = 0; i < 2000000; ++i) {
      base.AppendRow({static_cast<rdf::TermId>(rng.Uniform(5) + 1),
                      static_cast<rdf::TermId>(rng.Uniform(100000) + 1)});
    }
    ScanSpec spec;
    spec.conditions.emplace_back(0, 3);
    spec.projections.emplace_back(1, "o");
    double serial = BestMs(reps, [&] {
      ExecContext ctx;
      (void)ScanSelectProject(base, spec, &ctx);
    });
    double parallel = BestMs(reps, [&] {
      ExecContext ctx;
      (void)ParallelScanSelectProject(base, spec, &ctx);
    });
    EXPECT_GE(serial / parallel, floor)
        << "scan: serial " << serial << " ms, parallel " << parallel << " ms";
  }

  {
    auto [left, right] = JoinInputs(13, 150000, 150000);
    double serial = BestMs(reps, [&] {
      ExecContext ctx;
      (void)HashJoin(left, right, &ctx);
    });
    double parallel = BestMs(reps, [&] {
      ExecContext ctx;
      (void)ParallelHashJoin(left, right, &ctx);
    });
    EXPECT_GE(serial / parallel, floor)
        << "join: serial " << serial << " ms, parallel " << parallel << " ms";
  }
}

}  // namespace
}  // namespace s2rdf::engine
