#include <gtest/gtest.h>

#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace s2rdf::sparql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT ?x WHERE { ?x <http://p> \"v\" . }");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[1].text, "x");
  // 2: WHERE, 3: '{', 4: ?x.
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kIriRef);
  EXPECT_EQ((*tokens)[5].text, "http://p");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kString);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEof);
}

TEST(LexerTest, IriVsLessThan) {
  auto tokens = Tokenize("FILTER (?x < 5) ?y <http://iri>");
  ASSERT_TRUE(tokens.ok());
  bool saw_lt = false;
  bool saw_iri = false;
  for (const Token& t : *tokens) {
    if (t.kind == TokenKind::kOperator && t.text == "<") saw_lt = true;
    if (t.kind == TokenKind::kIriRef) saw_iri = true;
  }
  EXPECT_TRUE(saw_lt);
  EXPECT_TRUE(saw_iri);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("# comment line\nSELECT");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[0].line, 2);
}

TEST(LexerTest, TypedLiteralToken) {
  auto tokens = Tokenize("\"5\"^^xsd:int \"x\"@en");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "\"5\"^^xsd:int");
  EXPECT_EQ((*tokens)[1].text, "\"x\"@en");
}

TEST(ParserTest, SimpleSelect) {
  auto q = ParseQuery(
      "SELECT ?x ?y WHERE { ?x <http://ex/p> ?y . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->projection, (std::vector<std::string>{"x", "y"}));
  ASSERT_EQ(q->where.triples.size(), 1u);
  EXPECT_EQ(q->where.triples[0].predicate.value, "<http://ex/p>");
}

TEST(ParserTest, PrefixExpansion) {
  auto q = ParseQuery(
      "PREFIX ex: <http://ex/>\n"
      "SELECT * WHERE { ?x ex:p ex:A . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_all);
  EXPECT_EQ(q->where.triples[0].predicate.value, "<http://ex/p>");
  EXPECT_EQ(q->where.triples[0].object.value, "<http://ex/A>");
}

TEST(ParserTest, UndeclaredPrefixFails) {
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { ?x ex:p ?y . }").ok());
}

TEST(ParserTest, RdfTypeKeywordA) {
  auto q = ParseQuery("SELECT * WHERE { ?x a <http://ex/C> . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.triples[0].predicate.value,
            "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>");
}

TEST(ParserTest, PredicateObjectLists) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\n"
      "SELECT * WHERE { ?x e:p ?y ; e:q ?z , ?w . }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.triples.size(), 3u);
  EXPECT_EQ(q->where.triples[1].predicate.value, "<http://e/q>");
  EXPECT_EQ(q->where.triples[2].object.value, "w");
  EXPECT_TRUE(q->where.triples[2].object.is_variable());
  // Shared subject across the ';' list.
  EXPECT_EQ(q->where.triples[2].subject.value, "x");
}

TEST(ParserTest, NumericLiteralsCanonicalized) {
  auto q = ParseQuery("SELECT * WHERE { ?x <http://e/p> 42 . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.triples[0].object.value,
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  auto q2 = ParseQuery("SELECT * WHERE { ?x <http://e/p> 4.5 . }");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->where.triples[0].object.value,
            "\"4.5\"^^<http://www.w3.org/2001/XMLSchema#double>");
}

TEST(ParserTest, FilterComparison) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <http://e/p> ?y . FILTER (?y >= 10 && ?y < 20) }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.filters.size(), 1u);
  EXPECT_EQ(q->where.filters[0]->kind(), engine::Expr::Kind::kAnd);
}

TEST(ParserTest, FilterRegexAndBound) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?x <http://e/p> ?y . "
      "FILTER regex(?y, \"abc\", \"i\") FILTER bound(?x) }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.filters.size(), 2u);
  EXPECT_EQ(q->where.filters[0]->kind(), engine::Expr::Kind::kRegex);
  EXPECT_EQ(q->where.filters[1]->kind(), engine::Expr::Kind::kBound);
}

TEST(ParserTest, OptionalAndUnion) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\n"
      "SELECT * WHERE {\n"
      "  ?x e:p ?y .\n"
      "  OPTIONAL { ?x e:q ?z . }\n"
      "  { ?x e:r ?w . } UNION { ?x e:s ?w . }\n"
      "}");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.triples.size(), 1u);
  ASSERT_EQ(q->where.optionals.size(), 1u);
  EXPECT_EQ(q->where.optionals[0].triples.size(), 1u);
  ASSERT_EQ(q->where.unions.size(), 1u);
  EXPECT_EQ(q->where.unions[0].size(), 2u);
}

TEST(ParserTest, LoneNestedGroupMerges) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\n"
      "SELECT * WHERE { { ?x e:p ?y . } ?y e:q ?z . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.triples.size(), 2u);
  EXPECT_TRUE(q->where.unions.empty());
}

TEST(ParserTest, SolutionModifiers) {
  auto q = ParseQuery(
      "SELECT DISTINCT ?x WHERE { ?x <http://e/p> ?y . } "
      "ORDER BY DESC(?y) ?x LIMIT 10 OFFSET 5");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->distinct);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_EQ(q->order_by[0].column, "y");
  EXPECT_TRUE(q->order_by[1].ascending);
  EXPECT_EQ(q->limit, 10u);
  EXPECT_EQ(q->offset, 5u);
}

TEST(ParserTest, MalformedQueriesRejected) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT WHERE { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { ?x }").ok());
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { ?x <p> ?y . ").ok());
  EXPECT_FALSE(ParseQuery("SELECT * WHERE { ?x <p> ?y . } garbage").ok());
}

TEST(ParserTest, AskQuery) {
  auto q = ParseQuery("ASK { ?x <http://e/p> ?y . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->is_ask);
  EXPECT_EQ(q->where.triples.size(), 1u);
  auto q2 = ParseQuery("ASK WHERE { ?x <http://e/p> ?y . FILTER (?y > 3) }");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->is_ask);
  EXPECT_EQ(q2->where.filters.size(), 1u);
}

TEST(ParserTest, ValuesBlocks) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\n"
      "SELECT * WHERE { ?x e:p ?y . VALUES ?x { e:A e:B } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.values.size(), 1u);
  EXPECT_EQ(q->where.values[0].variables,
            (std::vector<std::string>{"x"}));
  ASSERT_EQ(q->where.values[0].rows.size(), 2u);
  EXPECT_EQ(q->where.values[0].rows[0][0], "<http://e/A>");

  auto multi = ParseQuery(
      "SELECT * WHERE { VALUES (?a ?b) { (<x> 1) (<y> 2) } }");
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi->where.values[0].rows.size(), 2u);
  EXPECT_EQ(multi->where.values[0].rows[1][1],
            "\"2\"^^<http://www.w3.org/2001/XMLSchema#integer>");

  EXPECT_FALSE(ParseQuery("SELECT * WHERE { VALUES ?x { UNDEF } }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT * WHERE { VALUES (?a ?b) { (<x>) } }").ok());
}

TEST(ParserTest, ConstructQuery) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\n"
      "CONSTRUCT { ?y e:rev ?x . ?x a e:Node . } WHERE { ?x e:p ?y . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, QueryForm::kConstruct);
  ASSERT_EQ(q->construct_template.size(), 2u);
  EXPECT_EQ(q->construct_template[0].predicate.value, "<http://e/rev>");
  EXPECT_EQ(q->where.triples.size(), 1u);
  EXPECT_FALSE(ParseQuery("CONSTRUCT { } WHERE { ?x <p> ?y . }").ok());
}

TEST(ParserTest, DescribeQuery) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\nDESCRIBE e:A ?x WHERE { ?x e:p e:A . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, QueryForm::kDescribe);
  ASSERT_EQ(q->describe_targets.size(), 2u);
  EXPECT_EQ(q->describe_targets[0].value, "<http://e/A>");
  EXPECT_TRUE(q->describe_targets[1].is_variable());

  auto bare = ParseQuery("DESCRIBE <http://e/B>");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->where.triples.empty());
  EXPECT_FALSE(ParseQuery("DESCRIBE WHERE { ?x <p> ?y . }").ok());
}

TEST(ParserTest, WatDivStyleQueryParses) {
  // Template-instantiated WatDiv L2 query shape.
  auto q = ParseQuery(
      "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>\n"
      "PREFIX sorg: <http://schema.org/>\n"
      "PREFIX gn: <http://www.geonames.org/ontology#>\n"
      "SELECT ?v1 ?v2 WHERE {\n"
      "  wsdbm:City102 gn:parentCountry ?v1 .\n"
      "  ?v2 wsdbm:likes wsdbm:Product0 .\n"
      "  ?v2 sorg:nationality ?v1 .\n"
      "}");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.triples.size(), 3u);
  EXPECT_EQ(q->where.triples[0].subject.value,
            "<http://db.uwaterloo.ca/~galuc/wsdbm/City102>");
}

}  // namespace
}  // namespace s2rdf::sparql
