// SPARQL Protocol endpoint over an S2RDF store.
//
//   ./sparql_server [--port N] [--workers N] [--timeout MS]
//                   [--watdiv SF | --open <dir> | data.nt]
//
// Then:
//   curl 'http://127.0.0.1:8890/sparql?query=SELECT...'   (URL-encoded)
//   curl -X POST http://127.0.0.1:8890/sparql
//        --data-urlencode 'query=SELECT * WHERE { ?s ?p ?o } LIMIT 3'
//   curl -H 'Accept: text/csv' ...
//   curl 'http://127.0.0.1:8890/sparql?query=...&timeout=500&limit=100'
//   curl http://127.0.0.1:8890/health
//   curl http://127.0.0.1:8890/metrics

#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/strings.h"
#include "core/s2rdf.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "server/sparql_endpoint.h"
#include "watdiv/generator.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  int port = 8890;
  s2rdf::server::EndpointOptions endpoint_options;
  double watdiv_sf = -1.0;
  std::string open_dir;
  std::string data_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      endpoint_options.num_workers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      endpoint_options.default_timeout_ms =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--watdiv") == 0 && i + 1 < argc) {
      watdiv_sf = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--open") == 0 && i + 1 < argc) {
      open_dir = argv[++i];
    } else {
      data_path = argv[i];
    }
  }

  s2rdf::StatusOr<std::unique_ptr<s2rdf::core::S2Rdf>> db =
      s2rdf::InvalidArgumentError("uninitialized");
  if (!open_dir.empty()) {
    db = s2rdf::core::S2Rdf::Open(open_dir);
  } else {
    s2rdf::rdf::Graph graph;
    if (watdiv_sf > 0) {
      s2rdf::watdiv::GeneratorOptions gen;
      gen.scale_factor = watdiv_sf;
      graph = s2rdf::watdiv::Generate(gen);
    } else if (!data_path.empty()) {
      s2rdf::Status load =
          s2rdf::EndsWith(data_path, ".ttl")
              ? s2rdf::rdf::LoadTurtleFile(data_path, &graph)
              : s2rdf::rdf::LoadNTriplesFile(data_path, &graph);
      if (!load.ok()) {
        std::fprintf(stderr, "%s\n", load.ToString().c_str());
        return 1;
      }
    } else {
      std::printf("no input given; serving WatDiv-like SF 0.1 dataset\n");
      s2rdf::watdiv::GeneratorOptions gen;
      gen.scale_factor = 0.1;
      graph = s2rdf::watdiv::Generate(gen);
    }
    std::printf("loaded %zu triples; building layouts...\n",
                graph.NumTriples());
    db = s2rdf::core::S2Rdf::Create(std::move(graph), {});
  }
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  s2rdf::server::SparqlEndpoint endpoint(db->get(), endpoint_options);
  auto bound = endpoint.Start(port);
  if (!bound.ok()) {
    std::fprintf(stderr, "%s\n", bound.status().ToString().c_str());
    return 1;
  }
  std::printf("SPARQL endpoint at http://127.0.0.1:%d/sparql (Ctrl-C to "
              "stop)\n",
              *bound);
  // Make the banner visible immediately even when stdout is redirected
  // (scripts wait for it before issuing requests).
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) pause();
  std::printf("\nshutting down\n");
  endpoint.Stop();
  return 0;
}
