// E-commerce analytics over a WatDiv-style dataset: the workload the
// paper's introduction motivates (retailers, offers, products, reviews,
// purchases). Demonstrates the public API on realistic queries using
// FILTER, OPTIONAL, DISTINCT, ORDER BY and LIMIT, and compares ExtVP
// against VP on each.
//
//   ./ecommerce_analytics [scale_factor]   (default 0.5)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace {

struct NamedQuery {
  const char* title;
  std::string text;
};

std::vector<NamedQuery> AnalyticsQueries() {
  const std::string& prefixes = s2rdf::watdiv::PrefixHeader();
  return {
      {"Retailer 0's offers above 500 with their products",
       prefixes + R"(
SELECT ?offer ?product ?price WHERE {
  wsdbm:Retailer0 gr:offers ?offer .
  ?offer gr:includes ?product .
  ?offer gr:price ?price .
  FILTER (?price > 500)
}
ORDER BY DESC(?price)
LIMIT 10)"},
      {"Products with reviews, optionally with the review rating",
       prefixes + R"(
SELECT ?product ?review ?rating WHERE {
  ?product rev:hasReview ?review .
  OPTIONAL { ?review rev:rating ?rating . }
}
LIMIT 15)"},
      {"Countries of users who bought a product that also has a review",
       prefixes + R"(
SELECT DISTINCT ?country WHERE {
  ?user wsdbm:makesPurchase ?purchase .
  ?purchase wsdbm:purchaseFor ?product .
  ?product rev:hasReview ?review .
  ?user sorg:nationality ?country .
})"},
      {"Friends-of-friends who like a reviewed product (social x commerce)",
       prefixes + R"(
SELECT ?user ?fof ?product WHERE {
  ?user wsdbm:friendOf ?friend .
  ?friend wsdbm:friendOf ?fof .
  ?fof wsdbm:likes ?product .
  ?product rev:hasReview ?review .
}
LIMIT 20)"},
      {"Offer eligibility per country, retailers joined in (UNION demo)",
       prefixes + R"(
SELECT ?offer ?place WHERE {
  { ?offer sorg:eligibleRegion ?place . }
  UNION
  { ?offer gr:validFrom ?place . }
}
LIMIT 10)"},
      {"Top product categories by review count (GROUP BY / COUNT)",
       prefixes + R"(
SELECT ?category (COUNT(*) AS ?reviews) WHERE {
  ?product rdf:type ?category .
  ?product rev:hasReview ?review .
}
GROUP BY ?category
ORDER BY DESC(?reviews)
LIMIT 5)"},
      {"Average and peak offer price per retailer (multi-aggregate)",
       prefixes + R"(
SELECT ?retailer (COUNT(*) AS ?offers) (AVG(?price) AS ?avg)
       (MAX(?price) AS ?max) WHERE {
  ?retailer gr:offers ?offer .
  ?offer gr:price ?price .
}
GROUP BY ?retailer
ORDER BY DESC(?offers)
LIMIT 5)"},
      {"Users who like more than their followers do (subquery demo)",
       prefixes + R"(
SELECT ?user ?liked WHERE {
  ?user wsdbm:follows ?friend .
  { SELECT ?user (COUNT(?p) AS ?liked) WHERE {
      ?user wsdbm:likes ?p .
    } GROUP BY ?user }
}
ORDER BY DESC(?liked)
LIMIT 5)"},
  };
}

}  // namespace

int main(int argc, char** argv) {
  double scale_factor = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::printf("generating WatDiv-like dataset, scale factor %.2f...\n",
              scale_factor);
  s2rdf::watdiv::GeneratorOptions gen;
  gen.scale_factor = scale_factor;
  s2rdf::rdf::Graph graph = s2rdf::watdiv::Generate(gen);
  std::printf("%zu triples\n", graph.NumTriples());

  s2rdf::core::S2RdfOptions options;
  options.sf_threshold = 0.25;  // The paper's recommended threshold.
  auto db = s2rdf::core::S2Rdf::Create(std::move(graph), options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "built layouts in %.2fs (VP) + %.2fs (ExtVP, SF threshold 0.25, "
      "%llu tables)\n",
      (*db)->load_stats().vp_seconds, (*db)->load_stats().extvp_seconds,
      static_cast<unsigned long long>(
          (*db)->load_stats().extvp_stats.tables_materialized));

  for (const NamedQuery& query : AnalyticsQueries()) {
    std::printf("\n=== %s ===\n", query.title);
    auto extvp = (*db)->Execute(query.text, s2rdf::core::Layout::kExtVp);
    if (!extvp.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   extvp.status().ToString().c_str());
      continue;
    }
    auto vp = (*db)->Execute(query.text, s2rdf::core::Layout::kVp);
    std::printf("  ExtVP: %zu rows in %.2f ms (input %llu tuples)",
                extvp->table.NumRows(), extvp->millis,
                static_cast<unsigned long long>(
                    extvp->metrics.input_tuples));
    if (vp.ok()) {
      std::printf("; VP: %.2f ms (input %llu tuples)", vp->millis,
                  static_cast<unsigned long long>(vp->metrics.input_tuples));
    }
    std::printf("\n");
    auto rows = (*db)->DecodeRows(extvp->table);
    size_t shown = std::min<size_t>(rows.size(), 5);
    for (size_t i = 0; i < shown; ++i) {
      std::printf("   ");
      for (const std::string& cell : rows[i]) {
        std::printf(" %s", cell.empty() ? "(unbound)" : cell.c_str());
      }
      std::printf("\n");
    }
    if (rows.size() > shown) {
      std::printf("    ... (%zu more rows)\n", rows.size() - shown);
    }
  }
  return 0;
}
