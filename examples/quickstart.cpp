// Quickstart: load a small RDF graph, build the S2RDF layouts (VP +
// ExtVP), and run SPARQL queries over them.
//
//   ./quickstart [path/to/data.nt]
//
// Without an argument it uses a built-in dataset.

#include <cstdio>
#include <string>

#include "core/s2rdf.h"
#include "rdf/ntriples.h"

namespace {

constexpr char kBuiltinData[] = R"(
<http://example.org/alice> <http://example.org/knows> <http://example.org/bob> .
<http://example.org/alice> <http://example.org/age> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/bob>   <http://example.org/knows> <http://example.org/carol> .
<http://example.org/bob>   <http://example.org/age> "35"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://example.org/carol> <http://example.org/likes> <http://example.org/pizza> .
<http://example.org/alice> <http://example.org/likes> <http://example.org/pizza> .
)";

constexpr char kQuery[] = R"(
PREFIX ex: <http://example.org/>
SELECT ?person ?friend ?food WHERE {
  ?person ex:knows ?friend .
  ?friend ex:likes ?food .
}
)";

}  // namespace

int main(int argc, char** argv) {
  // 1. Load an RDF graph (N-Triples).
  s2rdf::rdf::Graph graph;
  s2rdf::Status load = argc > 1
                           ? s2rdf::rdf::LoadNTriplesFile(argv[1], &graph)
                           : s2rdf::rdf::ParseNTriples(kBuiltinData, &graph);
  if (!load.ok()) {
    std::fprintf(stderr, "load failed: %s\n", load.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu triples\n", graph.NumTriples());

  // 2. Build the relational layouts. Default options build the triples
  //    table, VP, and the full ExtVP schema (no SF threshold).
  s2rdf::core::S2RdfOptions options;
  auto db = s2rdf::core::S2Rdf::Create(std::move(graph), options);
  if (!db.ok()) {
    std::fprintf(stderr, "layout build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog: %zu materialized tables, %llu tuples\n\n",
              (*db)->catalog().NumMaterializedTables(),
              static_cast<unsigned long long>((*db)->catalog().TotalTuples()));

  // 3. Run a SPARQL query over ExtVP. QueryRequest carries per-query
  //    controls (deadline, row limit, layout); plain
  //    Execute("SELECT ...") works too.
  s2rdf::core::QueryRequest request;
  request.query = kQuery;
  request.options.timeout_ms = 5000;
  auto result = (*db)->Execute(request);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("compiled SQL:\n%s\n\n", result->sql.c_str());
  std::printf("results (%zu rows, %.3f ms, %s):\n",
              result->table.NumRows(), result->millis,
              result->metrics.ToString().c_str());
  for (const auto& row : (*db)->DecodeRows(result->table)) {
    for (const std::string& cell : row) std::printf("  %s", cell.c_str());
    std::printf("\n");
  }
  return 0;
}
