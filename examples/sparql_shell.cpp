// Interactive SPARQL shell over S2RDF.
//
//   ./sparql_shell data.nt          # load an N-Triples file
//   ./sparql_shell --watdiv 0.5     # or generate a WatDiv-like dataset
//   ./sparql_shell --open store/    # reopen a persisted store
//
// Enter a SPARQL query terminated by an empty line, or a command:
//   \layout extvp|vp|tt   switch execution layout
//   \format table|json|xml|csv|tsv   result output format
//   \sql                  toggle printing of the compiled SQL
//   \plan                 toggle printing of the physical plan
//   \profile              toggle EXPLAIN ANALYZE (per-operator timings)
//   \tables [prefix]      list catalog tables (optionally filtered)
//   \stats                dataset and catalog statistics
//   \help                 this text
//   \quit                 exit
//
// Files ending in .ttl are parsed as Turtle, everything else as
// N-Triples.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/strings.h"
#include "core/s2rdf.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "sparql/results_io.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace {

void PrintHelp() {
  std::printf(
      "Enter a SPARQL query (finish with an empty line) or a command:\n"
      "  \\layout extvp|vp|tt   switch execution layout\n"
      "  \\format table|json|xml|csv|tsv   result output format\n"
      "  \\sql                  toggle printing of the compiled SQL\n"
      "  \\plan                 toggle printing of the physical plan\n"
      "  \\profile              toggle EXPLAIN ANALYZE output\n"
      "  \\tables [prefix]      list catalog tables\n"
      "  \\stats                dataset and catalog statistics\n"
      "  \\help                 this text\n"
      "  \\quit                 exit\n"
      "PREFIXes wsdbm:, sorg:, gr:, rev:, mo:, gn:, dc:, foaf:, og:, rdf:\n"
      "are added automatically when the query has no prologue.\n");
}

}  // namespace

int main(int argc, char** argv) {
  s2rdf::StatusOr<std::unique_ptr<s2rdf::core::S2Rdf>> db =
      s2rdf::InvalidArgumentError("uninitialized");
  if (argc >= 3 && std::strcmp(argv[1], "--open") == 0) {
    std::printf("reopening persisted store %s...\n", argv[2]);
    db = s2rdf::core::S2Rdf::Open(argv[2]);
  } else {
    s2rdf::rdf::Graph graph;
    if (argc >= 3 && std::strcmp(argv[1], "--watdiv") == 0) {
      s2rdf::watdiv::GeneratorOptions gen;
      gen.scale_factor = std::atof(argv[2]);
      graph = s2rdf::watdiv::Generate(gen);
    } else if (argc >= 2) {
      s2rdf::Status load =
          s2rdf::EndsWith(argv[1], ".ttl")
              ? s2rdf::rdf::LoadTurtleFile(argv[1], &graph)
              : s2rdf::rdf::LoadNTriplesFile(argv[1], &graph);
      if (!load.ok()) {
        std::fprintf(stderr, "%s\n", load.ToString().c_str());
        return 1;
      }
    } else {
      std::printf("no input given; generating WatDiv-like SF 0.1 dataset\n");
      s2rdf::watdiv::GeneratorOptions gen;
      gen.scale_factor = 0.1;
      graph = s2rdf::watdiv::Generate(gen);
    }
    std::printf("loaded %zu triples; building layouts...\n",
                graph.NumTriples());
    s2rdf::core::S2RdfOptions options;
    db = s2rdf::core::S2Rdf::Create(std::move(graph), options);
  }
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("ready (%zu tables). \\help for commands.\n",
              (*db)->catalog().NumMaterializedTables());

  s2rdf::core::Layout layout = s2rdf::core::Layout::kExtVp;
  bool show_sql = false;
  bool show_plan = false;
  std::string format = "table";
  bool show_profile = false;

  std::string line;
  std::string query;
  while (true) {
    std::printf(query.empty() ? "s2rdf> " : "   ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (query.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\help") {
        PrintHelp();
      } else if (line == "\\sql") {
        show_sql = !show_sql;
        std::printf("SQL printing %s\n", show_sql ? "on" : "off");
      } else if (line == "\\plan") {
        show_plan = !show_plan;
        std::printf("plan printing %s\n", show_plan ? "on" : "off");
      } else if (line == "\\profile") {
        show_profile = !show_profile;
        std::printf("profiling %s\n", show_profile ? "on" : "off");
      } else if (line.rfind("\\format", 0) == 0) {
        for (const char* f : {"table", "json", "xml", "csv", "tsv"}) {
          if (line.find(f) != std::string::npos) format = f;
        }
        std::printf("format set to %s\n", format.c_str());
      } else if (line.rfind("\\layout", 0) == 0) {
        if (line.find("extvp") != std::string::npos) {
          layout = s2rdf::core::Layout::kExtVp;
        } else if (line.find("vp") != std::string::npos) {
          layout = s2rdf::core::Layout::kVp;
        } else if (line.find("tt") != std::string::npos) {
          layout = s2rdf::core::Layout::kTriplesTable;
        }
        std::printf("layout set\n");
      } else if (line.rfind("\\tables", 0) == 0) {
        std::string prefix =
            line.size() > 8 ? line.substr(8) : std::string();
        int shown = 0;
        for (const s2rdf::storage::TableStats* stats :
             (*db)->catalog().AllStats()) {
          if (!prefix.empty() && stats->name.rfind(prefix, 0) != 0) {
            continue;
          }
          if (!stats->materialized) continue;
          std::printf("  %-40s rows=%llu SF=%.3f\n", stats->name.c_str(),
                      static_cast<unsigned long long>(stats->rows),
                      stats->selectivity);
          if (++shown >= 40) {
            std::printf("  ... (more; filter with \\tables <prefix>)\n");
            break;
          }
        }
      } else if (line == "\\stats") {
        std::printf(
            "triples: %zu, dictionary: %zu terms, tables: %zu, "
            "tuples: %llu\n",
            (*db)->graph().NumTriples(),
            (*db)->graph().dictionary().size(),
            (*db)->catalog().NumMaterializedTables(),
            static_cast<unsigned long long>(
                (*db)->catalog().TotalTuples()));
      } else {
        std::printf("unknown command; \\help for help\n");
      }
      continue;
    }

    if (!line.empty()) {
      query += line + "\n";
      continue;
    }
    if (query.empty()) continue;

    // Auto-prepend the WatDiv prefixes when the query has none.
    std::string text = query;
    query.clear();
    if (text.find("PREFIX") == std::string::npos) {
      text = s2rdf::watdiv::PrefixHeader() + text;
    }
    s2rdf::core::CompilerOptions exec_options;
    exec_options.layout = layout;
    exec_options.collect_profile = show_profile;
    auto result = (*db)->ExecuteWithOptions(text, exec_options);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (show_sql) std::printf("%s\n", result->sql.c_str());
    if (show_plan) std::printf("%s", result->plan.c_str());
    if (show_profile) std::printf("%s", result->profile.c_str());
    if (result->is_graph) {
      std::printf("%s%llu triples in %.2f ms\n",
                  result->graph_ntriples.c_str(),
                  static_cast<unsigned long long>(
                      result->metrics.output_tuples),
                  result->millis);
      continue;
    }
    if (result->is_ask) {
      if (format == "json") {
        std::printf("%s", s2rdf::sparql::AskToJson(result->ask_result)
                              .c_str());
      } else if (format == "xml") {
        std::printf("%s",
                    s2rdf::sparql::AskToXml(result->ask_result).c_str());
      } else {
        std::printf("ASK -> %s (%.2f ms)\n",
                    result->ask_result ? "true" : "false", result->millis);
      }
      continue;
    }
    if (format != "table") {
      const s2rdf::rdf::Dictionary& dict = (*db)->graph().dictionary();
      std::string rendered;
      if (format == "json") {
        rendered = s2rdf::sparql::ResultsToJson(result->table, dict);
      } else if (format == "xml") {
        rendered = s2rdf::sparql::ResultsToXml(result->table, dict);
      } else if (format == "csv") {
        rendered = s2rdf::sparql::ResultsToCsv(result->table, dict);
      } else {
        rendered = s2rdf::sparql::ResultsToTsv(result->table, dict);
      }
      std::printf("%s%zu rows in %.2f ms\n", rendered.c_str(),
                  result->table.NumRows(), result->millis);
      continue;
    }
    auto rows = (*db)->DecodeRows(result->table);
    for (size_t i = 0; i < result->table.column_names().size(); ++i) {
      std::printf("%s?%s", i > 0 ? " | " : "",
                  result->table.column_names()[i].c_str());
    }
    std::printf("\n");
    size_t shown = std::min<size_t>(rows.size(), 50);
    for (size_t i = 0; i < shown; ++i) {
      for (size_t c = 0; c < rows[i].size(); ++c) {
        std::printf("%s%s", c > 0 ? " | " : "",
                    rows[i][c].empty() ? "(unbound)" : rows[i][c].c_str());
      }
      std::printf("\n");
    }
    if (rows.size() > shown) {
      std::printf("... (%zu more rows)\n", rows.size() - shown);
    }
    std::printf("%zu rows in %.2f ms [%s]\n", rows.size(), result->millis,
                result->metrics.ToString().c_str());
  }
  return 0;
}
