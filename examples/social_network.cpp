// The paper's running example, end to end: RDF graph G1 (Fig. 1), the
// ExtVP schema it induces (Fig. 10), table selection for query Q1
// (Fig. 11), the effect of join-order optimization (Fig. 12) and the
// join-comparison reduction of ExtVP vs VP (Fig. 8).

#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "core/s2rdf.h"
#include "rdf/graph.h"

namespace {

s2rdf::rdf::Graph MakeG1() {
  s2rdf::rdf::Graph g;
  g.AddIris("A", "follows", "B");
  g.AddIris("B", "follows", "C");
  g.AddIris("B", "follows", "D");
  g.AddIris("C", "follows", "D");
  g.AddIris("A", "likes", "I1");
  g.AddIris("A", "likes", "I2");
  g.AddIris("C", "likes", "I2");
  return g;
}

// Q1: "for all users, the friends of their friends who like the same
// things" (paper Sec. 2.1).
constexpr char kQ1[] =
    "SELECT * WHERE { ?x <likes> ?w . ?x <follows> ?y . "
    "?y <follows> ?z . ?z <likes> ?w }";

}  // namespace

int main() {
  std::printf("== S2RDF running example: graph G1, query Q1 ==\n\n");
  s2rdf::core::S2RdfOptions options;
  auto db = s2rdf::core::S2Rdf::Create(MakeG1(), options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }

  // --- Fig. 10: the ExtVP schema of G1 ---------------------------------
  std::printf("ExtVP schema (Fig. 10) — stored tables and statistics:\n");
  for (const s2rdf::storage::TableStats* stats :
       (*db)->catalog().AllStats()) {
    if (stats->name.rfind("extvp_", 0) != 0 &&
        stats->name.rfind("vp_", 0) != 0) {
      continue;
    }
    std::printf("  %-34s rows=%llu  SF=%.2f  %s\n", stats->name.c_str(),
                static_cast<unsigned long long>(stats->rows),
                stats->selectivity,
                stats->materialized ? "stored" : "not stored");
  }

  // --- Fig. 11: table selection + generated SQL -------------------------
  auto optimized = (*db)->Execute(kQ1, s2rdf::core::Layout::kExtVp);
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("\nQ1 over ExtVP (Fig. 11) — generated SQL:\n%s\n",
              optimized->sql.c_str());
  std::printf("\nphysical plan:\n%s", optimized->plan.c_str());

  std::printf("\nresult (expected: x=A, w=I2, y=B, z=C):\n");
  for (const auto& row : (*db)->DecodeRows(optimized->table)) {
    for (const std::string& cell : row) std::printf("  %s", cell.c_str());
    std::printf("\n");
  }

  // --- Fig. 12: join-order optimization ---------------------------------
  s2rdf::core::CompilerOptions unopt;
  unopt.optimize_join_order = false;
  auto unoptimized = (*db)->ExecuteWithOptions(kQ1, unopt);
  if (unoptimized.ok()) {
    std::printf(
        "\njoin-order optimization (Fig. 12):\n"
        "  optimized   (Alg. 4): %llu join comparisons\n"
        "  pattern-order (Alg. 3): %llu join comparisons\n",
        static_cast<unsigned long long>(
            optimized->metrics.join_comparisons),
        static_cast<unsigned long long>(
            unoptimized->metrics.join_comparisons));
  }

  // --- Fig. 8: ExtVP vs VP ----------------------------------------------
  auto vp = (*db)->Execute(kQ1, s2rdf::core::Layout::kVp);
  if (vp.ok()) {
    std::printf(
        "\nExtVP vs VP on Q1 (Fig. 8 mechanism):\n"
        "  ExtVP: input=%llu tuples, comparisons=%llu\n"
        "  VP:    input=%llu tuples, comparisons=%llu\n",
        static_cast<unsigned long long>(optimized->metrics.input_tuples),
        static_cast<unsigned long long>(
            optimized->metrics.join_comparisons),
        static_cast<unsigned long long>(vp->metrics.input_tuples),
        static_cast<unsigned long long>(vp->metrics.join_comparisons));
  }
  return 0;
}
