// WatDiv-style dataset generator CLI: writes N-Triples, optionally
// builds a persistent S2RDF store alongside (reopen it with
// `sparql_shell --open <dir>`), and can emit the instantiated workload
// queries.
//
//   ./watdiv_gen <scale_factor> <out.nt> [--seed N] [--store <dir>]
//                [--queries <dir>]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/file_util.h"
#include "core/s2rdf.h"
#include "rdf/ntriples.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <scale_factor> <out.nt> [--seed N] "
                 "[--store <dir>] [--queries <dir>]\n",
                 argv[0]);
    return 2;
  }
  s2rdf::watdiv::GeneratorOptions gen;
  gen.scale_factor = std::atof(argv[1]);
  std::string out_path = argv[2];
  std::string store_dir;
  std::string queries_dir;
  for (int i = 3; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--seed") == 0) {
      gen.seed = static_cast<uint64_t>(std::atoll(argv[i + 1]));
    } else if (std::strcmp(argv[i], "--store") == 0) {
      store_dir = argv[i + 1];
    } else if (std::strcmp(argv[i], "--queries") == 0) {
      queries_dir = argv[i + 1];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("generating SF %.2f (seed %llu)...\n", gen.scale_factor,
              static_cast<unsigned long long>(gen.seed));
  s2rdf::rdf::Graph graph = s2rdf::watdiv::Generate(gen);
  std::printf("%zu triples, %zu distinct terms\n", graph.NumTriples(),
              graph.dictionary().size());

  s2rdf::Status write =
      s2rdf::WriteFile(out_path, s2rdf::rdf::WriteNTriples(graph));
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%llu bytes)\n", out_path.c_str(),
              static_cast<unsigned long long>(
                  s2rdf::FileSizeBytes(out_path)));

  if (!queries_dir.empty()) {
    s2rdf::Status mk = s2rdf::MakeDirs(queries_dir);
    if (!mk.ok()) {
      std::fprintf(stderr, "%s\n", mk.ToString().c_str());
      return 1;
    }
    s2rdf::SplitMix64 rng(gen.seed);
    int written = 0;
    for (const auto* workload :
         {&s2rdf::watdiv::BasicTestingQueries(),
          &s2rdf::watdiv::SelectivityTestingQueries(),
          &s2rdf::watdiv::IncrementalLinearQueries()}) {
      for (const s2rdf::watdiv::QueryTemplate& tmpl : *workload) {
        std::string text = s2rdf::watdiv::InstantiateQuery(
            tmpl, gen.scale_factor, &rng);
        s2rdf::Status s = s2rdf::WriteFile(
            queries_dir + "/" + tmpl.name + ".sparql", text);
        if (!s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          return 1;
        }
        ++written;
      }
    }
    std::printf("wrote %d workload queries to %s\n", written,
                queries_dir.c_str());
  }

  if (!store_dir.empty()) {
    std::printf("building persistent store in %s...\n", store_dir.c_str());
    s2rdf::core::S2RdfOptions options;
    options.storage_dir = store_dir;
    options.sf_threshold = 0.25;
    auto db = s2rdf::core::S2Rdf::Create(std::move(graph), options);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "store ready: %zu tables, %llu tuples, %s on disk; reopen with "
        "sparql_shell --open %s\n",
        (*db)->catalog().NumMaterializedTables(),
        static_cast<unsigned long long>((*db)->catalog().TotalTuples()),
        std::to_string((*db)->catalog().TotalBytes()).c_str(),
        store_dir.c_str());
  }
  return 0;
}
