#include "bench/engine_suite.h"

#include <chrono>

namespace s2rdf::bench {

namespace {

// Duplicates a graph (Graph is move-only; the suite needs two owners:
// S2RDF owns one copy, the baseline engines reference the other).
rdf::Graph CopyGraph(const rdf::Graph& graph) {
  rdf::Graph copy;
  const rdf::Dictionary& dict = graph.dictionary();
  for (const rdf::Triple& t : graph.triples()) {
    copy.AddCanonical(dict.Decode(t.subject), dict.Decode(t.predicate),
                      dict.Decode(t.object));
  }
  return copy;
}

}  // namespace

const std::vector<std::string>& EngineSuite::EngineNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "S2RDF-ExtVP", "S2RDF-VP", "Sempala-PT",
      "H2RDF-Index", "PigSPARQL-MR", "SHARD-MR",
  };
  return *names;
}

StatusOr<std::unique_ptr<EngineSuite>> EngineSuite::Create(
    rdf::Graph graph, double mr_job_overhead_ms) {
  auto suite = std::unique_ptr<EngineSuite>(new EngineSuite());
  suite->mr_job_overhead_ms_ = mr_job_overhead_ms;
  suite->graph_ = std::move(graph);

  core::S2RdfOptions s2rdf_options;
  S2RDF_ASSIGN_OR_RETURN(
      suite->s2rdf_,
      core::S2Rdf::Create(CopyGraph(suite->graph_), s2rdf_options));

  baselines::SempalaOptions sempala_options;
  S2RDF_ASSIGN_OR_RETURN(
      suite->sempala_,
      baselines::SempalaEngine::Create(&suite->graph_, sempala_options));

  baselines::H2RdfOptions h2rdf_options;
  // Adaptive bound: queries whose largest pattern exceeds 5% of the
  // dataset take the distributed path (H2RDF+'s cost-model behaviour).
  h2rdf_options.centralized_input_limit =
      std::max<uint64_t>(1000, suite->graph_.NumTriples() / 20);
  h2rdf_options.mr.work_dir = suite->mr_dir_->path();
  h2rdf_options.mr.planner = baselines::MrPlanner::kMultiJoin;
  suite->h2rdf_ = std::make_unique<baselines::H2RdfEngine>(&suite->graph_,
                                                           h2rdf_options);

  baselines::MrEngineOptions shard_options;
  shard_options.work_dir = suite->mr_dir_->path();
  shard_options.planner = baselines::MrPlanner::kClauseIteration;
  suite->shard_ = std::make_unique<baselines::MrSparqlEngine>(
      &suite->graph_, shard_options);

  baselines::MrEngineOptions pig_options = shard_options;
  pig_options.planner = baselines::MrPlanner::kMultiJoin;
  suite->pigsparql_ = std::make_unique<baselines::MrSparqlEngine>(
      &suite->graph_, pig_options);
  return suite;
}

StatusOr<RunOutcome> EngineSuite::Run(const std::string& name,
                                      const std::string& query) {
  RunOutcome outcome;
  if (name == "S2RDF-ExtVP" || name == "S2RDF-VP") {
    core::QueryRequest request;
    request.query = query;
    request.options.layout =
        name == "S2RDF-ExtVP" ? core::Layout::kExtVp : core::Layout::kVp;
    S2RDF_ASSIGN_OR_RETURN(core::QueryResult result,
                           s2rdf_->Execute(request));
    outcome.measured_ms = result.millis;
    outcome.modeled_ms = result.millis;
    outcome.rows = result.table.NumRows();
    return outcome;
  }
  if (name == "Sempala-PT") {
    auto result = sempala_->Execute(query);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kUnimplemented) {
        outcome.supported = false;
        return outcome;
      }
      return result.status();
    }
    outcome.measured_ms = result->wall_ms;
    outcome.modeled_ms = result->wall_ms;
    outcome.rows = result->table.NumRows();
    return outcome;
  }
  if (name == "H2RDF-Index") {
    auto result = h2rdf_->Execute(query);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kUnimplemented) {
        outcome.supported = false;
        return outcome;
      }
      return result.status();
    }
    outcome.measured_ms = result->wall_ms;
    outcome.mr_jobs = result->jobs;
    outcome.modeled_ms = result->wall_ms +
                         static_cast<double>(result->jobs) *
                             mr_job_overhead_ms_;
    outcome.rows = result->table.NumRows();
    return outcome;
  }
  if (name == "PigSPARQL-MR" || name == "SHARD-MR") {
    baselines::MrSparqlEngine* engine =
        name == "SHARD-MR" ? shard_.get() : pigsparql_.get();
    auto result = engine->Execute(query);
    if (!result.ok()) {
      if (result.status().code() == StatusCode::kUnimplemented) {
        outcome.supported = false;
        return outcome;
      }
      return result.status();
    }
    outcome.measured_ms = result->wall_ms;
    outcome.mr_jobs = result->jobs;
    outcome.modeled_ms = result->wall_ms +
                         static_cast<double>(result->jobs) *
                             mr_job_overhead_ms_;
    outcome.rows = result->table.NumRows();
    return outcome;
  }
  return InvalidArgumentError("unknown engine: " + name);
}

}  // namespace s2rdf::bench
