// Serial vs. morsel-parallel execution: wall-clock and metered work for
// the operators that take the shared-TaskPool path (scan, hash join,
// distinct, order-by, group-by) plus the predicate-parallel ExtVP build.
//
// The reproduction claim (DESIGN.md §8): parallelism changes wall-clock
// only — every parallel entry must report the same ExecMetrics and the
// same output as its serial twin, and on a multi-core host the large
// join and the ExtVP build speed up.
//
// Output: a human-readable table on stderr and machine-readable JSON on
// stdout (scripts/bench_json.sh captures it as BENCH_parallel.json).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/file_util.h"
#include "common/random.h"
#include "common/task_pool.h"
#include "core/layouts.h"
#include "engine/aggregate.h"
#include "engine/operators.h"
#include "engine/parallel.h"
#include "engine/parallel_join.h"
#include "engine/table.h"
#include "rdf/dictionary.h"
#include "storage/catalog.h"
#include "watdiv/generator.h"

namespace s2rdf::bench {
namespace {

using engine::ExecContext;
using engine::ExecMetrics;
using engine::Table;
using rdf::TermId;

struct Entry {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool metrics_identical = false;
  bool output_identical = false;

  double Speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

bool SameMetrics(const ExecMetrics& a, const ExecMetrics& b) {
  return a.input_tuples == b.input_tuples &&
         a.intermediate_tuples == b.intermediate_tuples &&
         a.join_comparisons == b.join_comparisons &&
         a.shuffled_tuples == b.shuffled_tuples &&
         a.output_tuples == b.output_tuples;
}

bool SameTable(const Table& a, const Table& b) {
  if (a.column_names() != b.column_names() || a.NumRows() != b.NumRows()) {
    return false;
  }
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    if (a.Column(c) != b.Column(c)) return false;
  }
  return true;
}

// Times one serial/parallel operator pair. Each variant runs `reps`
// times; the last run's output and metrics feed the identity checks.
Entry MeasureOperator(const std::string& name, int reps,
                      const std::function<Table(ExecContext*)>& serial,
                      const std::function<Table(ExecContext*)>& parallel) {
  Entry entry;
  entry.name = name;
  ExecMetrics serial_metrics;
  Table serial_out;
  entry.serial_ms = MeanMs(reps, [&] {
    ExecContext ctx;
    serial_out = serial(&ctx);
    serial_metrics = ctx.metrics;
  });
  ExecMetrics parallel_metrics;
  Table parallel_out;
  entry.parallel_ms = MeanMs(reps, [&] {
    ExecContext ctx;
    parallel_out = parallel(&ctx);
    parallel_metrics = ctx.metrics;
  });
  entry.metrics_identical = SameMetrics(serial_metrics, parallel_metrics);
  entry.output_identical = SameTable(serial_out, parallel_out);
  return entry;
}

Table RandomPairs(uint64_t seed, size_t rows, uint64_t card0, uint64_t card1,
                  const char* c0, const char* c1) {
  SplitMix64 rng(seed);
  Table t({c0, c1});
  t.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({static_cast<TermId>(rng.Uniform(card0) + 1),
                 static_cast<TermId>(rng.Uniform(card1) + 1)});
  }
  return t;
}

// Stage split (parse / compile / execute) of full end-to-end queries,
// serial vs parallel execution mode, averaged over `reps` rounds.
struct StageEntry {
  std::string name;
  std::string mode;  // "serial" | "parallel"
  double parse_ms = 0.0;
  double compile_ms = 0.0;
  double exec_ms = 0.0;
  double total_ms = 0.0;
  bool output_identical = true;  // Parallel row vs its serial twin.
};

std::vector<StageEntry> MeasureQueryStages(int reps) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);

  core::S2RdfOptions serial_options;
  auto serial_db = core::S2Rdf::Create(watdiv::Generate(gen), serial_options);
  core::S2RdfOptions parallel_options;
  parallel_options.parallel_execution = true;
  auto parallel_db =
      core::S2Rdf::Create(watdiv::Generate(gen), parallel_options);
  std::vector<StageEntry> out;
  if (!serial_db.ok() || !parallel_db.ok()) return out;

  for (const char* name : {"L2", "S3", "F3", "C3"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    if (tmpl == nullptr) continue;
    const std::string text = InstantiateFor(*tmpl, gen.scale_factor, 0);
    core::QueryRequest request;
    request.query = text;
    uint64_t serial_rows = 0;
    uint64_t parallel_rows = 0;
    for (auto* mode : {&serial_db, &parallel_db}) {
      StageEntry e;
      e.name = name;
      e.mode = mode == &serial_db ? "serial" : "parallel";
      bool ok = true;
      for (int r = 0; r < reps; ++r) {
        auto result = (**mode)->Execute(request);
        if (!result.ok()) {
          ok = false;
          break;
        }
        e.parse_ms += result->parse_ms / reps;
        e.compile_ms += result->compile_ms / reps;
        e.exec_ms += result->exec_ms / reps;
        e.total_ms += result->millis / reps;
        (mode == &serial_db ? serial_rows : parallel_rows) =
            result->metrics.output_tuples;
      }
      if (!ok) continue;
      out.push_back(std::move(e));
    }
    if (!out.empty() && out.back().mode == "parallel") {
      out.back().output_identical = serial_rows == parallel_rows;
    }
  }
  return out;
}

Entry MeasureExtVpBuild(int reps) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);
  rdf::Graph graph = watdiv::Generate(gen);

  Entry entry;
  entry.name = "extvp_build";
  core::ExtVpBuildStats serial_stats;
  core::ExtVpBuildStats parallel_stats;
  auto build = [&](bool parallel_build, core::ExtVpBuildStats* stats) {
    ScopedTempDir dir;
    storage::Catalog catalog(dir.path());
    (void)core::BuildVpLayout(graph, &catalog);
    core::ExtVpOptions options;
    options.parallel_build = parallel_build;
    auto result = core::BuildExtVpLayout(graph, options, &catalog);
    if (result.ok()) *stats = *result;
  };
  entry.serial_ms = MeanMs(reps, [&] { build(false, &serial_stats); });
  entry.parallel_ms = MeanMs(reps, [&] { build(true, &parallel_stats); });
  entry.output_identical =
      serial_stats.tables_considered == parallel_stats.tables_considered &&
      serial_stats.tables_materialized == parallel_stats.tables_materialized &&
      serial_stats.tables_empty == parallel_stats.tables_empty &&
      serial_stats.tables_equal_vp == parallel_stats.tables_equal_vp &&
      serial_stats.tables_pruned == parallel_stats.tables_pruned &&
      serial_stats.tuples_materialized == parallel_stats.tuples_materialized;
  entry.metrics_identical = entry.output_identical;  // Build has no ctx.
  return entry;
}

int Run() {
  const int reps = EnvInt("S2RDF_BENCH_ROUNDS", 3);
  std::vector<Entry> entries;

  {
    Table base = RandomPairs(7, 2000000, 5, 100000, "s", "o");
    engine::ScanSpec spec;
    spec.conditions.emplace_back(0, 3);
    spec.projections.emplace_back(1, "o");
    entries.push_back(MeasureOperator(
        "scan_select_project", reps,
        [&](ExecContext* ctx) {
          return engine::ScanSelectProject(base, spec, ctx);
        },
        [&](ExecContext* ctx) {
          return engine::ParallelScanSelectProject(base, spec, ctx);
        }));
  }

  {
    Table left = RandomPairs(11, 150000, 50000, 15000, "x", "y");
    Table right = RandomPairs(13, 150000, 15000, 50000, "y", "z");
    entries.push_back(MeasureOperator(
        "hash_join", reps,
        [&](ExecContext* ctx) { return engine::HashJoin(left, right, ctx); },
        [&](ExecContext* ctx) {
          return engine::ParallelHashJoin(left, right, ctx);
        }));
  }

  {
    Table t = RandomPairs(17, 500000, 200, 200, "a", "b");
    entries.push_back(MeasureOperator(
        "distinct", reps,
        [&](ExecContext* ctx) { return engine::Distinct(t, ctx); },
        [&](ExecContext* ctx) { return engine::ParallelDistinct(t, ctx); }));
  }

  {
    rdf::Dictionary dict;
    std::vector<TermId> terms;
    for (int i = 0; i < 512; ++i) {
      terms.push_back(dict.Encode(
          "\"" + std::to_string(i) +
          "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }
    SplitMix64 rng(19);
    Table t({"n", "m"});
    t.Reserve(300000);
    for (size_t i = 0; i < 300000; ++i) {
      t.AppendRow({terms[rng.Uniform(terms.size())],
                   terms[rng.Uniform(terms.size())]});
    }
    std::vector<engine::SortKey> keys = {{"n", true}, {"m", false}};
    entries.push_back(MeasureOperator(
        "order_by", reps,
        [&](ExecContext* ctx) { return engine::OrderBy(t, keys, dict, ctx); },
        [&](ExecContext* ctx) {
          return engine::ParallelOrderBy(t, keys, dict, ctx);
        }));
  }

  {
    rdf::Dictionary dict;
    std::vector<TermId> values;
    for (int i = 0; i < 1000; ++i) {
      values.push_back(dict.Encode(
          "\"" + std::to_string(i) +
          "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }
    SplitMix64 rng(23);
    Table t({"k", "v"});
    t.Reserve(500000);
    for (size_t i = 0; i < 500000; ++i) {
      t.AppendRow({static_cast<TermId>(rng.Uniform(100) + 1),
                   values[rng.Uniform(values.size())]});
    }
    std::vector<std::string> keys = {"k"};
    std::vector<engine::AggregateSpec> specs = {
        {engine::AggregateSpec::Fn::kCountStar, "", "n", false},
        {engine::AggregateSpec::Fn::kSum, "v", "total", false},
        {engine::AggregateSpec::Fn::kCount, "v", "dv", true},
    };
    entries.push_back(MeasureOperator(
        "group_by_aggregate", reps,
        [&](ExecContext* ctx) {
          auto result = engine::GroupByAggregate(t, keys, specs, &dict, ctx);
          return result.ok() ? std::move(*result) : Table();
        },
        [&](ExecContext* ctx) {
          auto result =
              engine::ParallelGroupByAggregate(t, keys, specs, &dict, ctx);
          return result.ok() ? std::move(*result) : Table();
        }));
  }

  entries.push_back(MeasureExtVpBuild(reps));
  std::vector<StageEntry> stages = MeasureQueryStages(reps);

  TablePrinter printer(
      {"benchmark", "serial", "parallel", "speedup", "identical"});
  for (const Entry& e : entries) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", e.Speedup());
    printer.AddRow({e.name, FormatMs(e.serial_ms), FormatMs(e.parallel_ms),
                    speedup,
                    e.metrics_identical && e.output_identical ? "yes" : "NO"});
  }
  std::fprintf(stderr, "Parallel execution (task pool width %zu):\n",
               TaskPool::Shared()->ParallelismWidth());
  printer.Print(stderr);

  TablePrinter stage_printer(
      {"query", "mode", "parse", "compile", "exec", "total"});
  for (const StageEntry& e : stages) {
    stage_printer.AddRow({e.name, e.mode, FormatMs(e.parse_ms),
                          FormatMs(e.compile_ms), FormatMs(e.exec_ms),
                          FormatMs(e.total_ms)});
  }
  std::fprintf(stderr, "\nEnd-to-end query stage split:\n");
  stage_printer.Print(stderr);

  // Machine-readable twin on stdout.
  std::printf("{\n");
  std::printf("  \"task_pool_parallelism\": %zu,\n",
              TaskPool::Shared()->ParallelismWidth());
  std::printf("  \"rounds\": %d,\n", reps);
  std::printf("  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"name\": \"%s\", \"serial_ms\": %.3f, "
                "\"parallel_ms\": %.3f, \"speedup\": %.3f, "
                "\"metrics_identical\": %s, \"output_identical\": %s}%s\n",
                e.name.c_str(), e.serial_ms, e.parallel_ms, e.Speedup(),
                e.metrics_identical ? "true" : "false",
                e.output_identical ? "true" : "false",
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"query_stages\": [\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageEntry& e = stages[i];
    std::printf("    {\"name\": \"%s\", \"mode\": \"%s\", "
                "\"parse_ms\": %.3f, \"compile_ms\": %.3f, "
                "\"exec_ms\": %.3f, \"total_ms\": %.3f, "
                "\"output_identical\": %s}%s\n",
                e.name.c_str(), e.mode.c_str(), e.parse_ms, e.compile_ms,
                e.exec_ms, e.total_ms, e.output_identical ? "true" : "false",
                i + 1 < stages.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  // Identity failures are bugs, not slow results: fail the harness.
  for (const Entry& e : entries) {
    if (!e.metrics_identical || !e.output_identical) return 1;
  }
  for (const StageEntry& e : stages) {
    if (!e.output_identical) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Run(); }
