// Serial vs. morsel-parallel execution: wall-clock and metered work for
// the operators that take the shared-TaskPool path (scan, filter, hash
// join, distinct, order-by, group-by) plus the predicate-parallel ExtVP
// build.
//
// The reproduction claim (DESIGN.md §8): parallelism changes wall-clock
// only — every parallel entry must report the same ExecMetrics and the
// same output as its serial twin — and the data-parallel operators
// (scan, filter, hash join) beat their serial twins on the big WatDiv
// inputs. The scan, filter and join inputs are derived from a WatDiv
// graph (S2RDF_BENCH_OP_SF scale units, default 4.0 ~ 300 K triples) so
// the gated speedups are measured on the paper's workload shape, not on
// synthetic uniform data.
//
// Output: a human-readable table on stderr and machine-readable JSON on
// stdout (scripts/bench_json.sh captures it as BENCH_parallel.json).
//
// Exit codes (scripts/check.sh depends on these):
//   0  all gates passed
//   1  identity failure: a parallel entry's output or metrics diverged
//      from its serial twin (a correctness bug, not a slow result)
//   2  the shared TaskPool reports parallelism 1: the run measured
//      nothing (set S2RDF_TASK_POOL_THREADS to pin a real width)
//   3  a gated entry (scan/filter/join) missed the speedup floor
//      (S2RDF_BENCH_SPEEDUP_FLOOR, default 1.5; enforced only when the
//      pool width is >= 4)

#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/file_util.h"
#include "common/random.h"
#include "common/task_pool.h"
#include "core/layouts.h"
#include "engine/aggregate.h"
#include "engine/expression.h"
#include "engine/operators.h"
#include "engine/parallel.h"
#include "engine/parallel_join.h"
#include "engine/table.h"
#include "rdf/dictionary.h"
#include "storage/catalog.h"
#include "watdiv/generator.h"

namespace s2rdf::bench {
namespace {

using engine::ExecContext;
using engine::ExecMetrics;
using engine::Table;
using rdf::TermId;

constexpr char kFriendOf[] = "<http://db.uwaterloo.ca/~galuc/wsdbm/friendOf>";
constexpr char kFollows[] = "<http://db.uwaterloo.ca/~galuc/wsdbm/follows>";

struct Entry {
  std::string name;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool metrics_identical = false;
  bool output_identical = false;
  // Gated entries must meet the speedup floor (scan/filter/join — the
  // operators the paper's parallel-execution claim is about).
  bool gated = false;

  double Speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
};

bool SameMetrics(const ExecMetrics& a, const ExecMetrics& b) {
  return a.input_tuples == b.input_tuples &&
         a.intermediate_tuples == b.intermediate_tuples &&
         a.join_comparisons == b.join_comparisons &&
         a.shuffled_tuples == b.shuffled_tuples &&
         a.output_tuples == b.output_tuples;
}

bool SameTable(const Table& a, const Table& b) {
  if (a.column_names() != b.column_names() || a.NumRows() != b.NumRows()) {
    return false;
  }
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    if (a.Column(c) != b.Column(c)) return false;
  }
  return true;
}

// Times one serial/parallel operator pair. Each variant runs `reps`
// times; the last run's output and metrics feed the identity checks.
Entry MeasureOperator(const std::string& name, int reps, bool gated,
                      const std::function<Table(ExecContext*)>& serial,
                      const std::function<Table(ExecContext*)>& parallel) {
  Entry entry;
  entry.name = name;
  entry.gated = gated;
  ExecMetrics serial_metrics;
  Table serial_out;
  entry.serial_ms = MeanMs(reps, [&] {
    ExecContext ctx;
    serial_out = serial(&ctx);
    serial_metrics = ctx.metrics;
  });
  ExecMetrics parallel_metrics;
  Table parallel_out;
  entry.parallel_ms = MeanMs(reps, [&] {
    ExecContext ctx;
    parallel_out = parallel(&ctx);
    parallel_metrics = ctx.metrics;
  });
  entry.metrics_identical = SameMetrics(serial_metrics, parallel_metrics);
  entry.output_identical = SameTable(serial_out, parallel_out);
  return entry;
}

Table RandomPairs(uint64_t seed, size_t rows, uint64_t card0, uint64_t card1,
                  const char* c0, const char* c1) {
  SplitMix64 rng(seed);
  Table t({c0, c1});
  t.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({static_cast<TermId>(rng.Uniform(card0) + 1),
                 static_cast<TermId>(rng.Uniform(card1) + 1)});
  }
  return t;
}

// The gated operator inputs, carved out of one WatDiv graph: the full
// dictionary-encoded triple table (scan + filter input) and the two
// giant social predicates as VP-style (s, o) tables (join input).
struct WatDivInputs {
  rdf::Graph graph;  // Owns the dictionary the filter expression needs.
  Table triples;     // (s, p, o), every triple.
  Table friend_of;   // (x, y): wsdbm:friendOf pairs.
  Table follows;     // (y, z): wsdbm:follows pairs.
  TermId friend_of_id = 0;
};

WatDivInputs BuildWatDivInputs() {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_OP_SF", 4.0);
  WatDivInputs in;
  in.graph = watdiv::Generate(gen);
  const rdf::Dictionary& dict = in.graph.dictionary();
  in.friend_of_id = dict.Find(kFriendOf).value_or(0);
  const TermId follows_id = dict.Find(kFollows).value_or(0);

  in.triples = Table({"s", "p", "o"});
  in.triples.Reserve(in.graph.NumTriples());
  in.friend_of = Table({"x", "y"});
  in.follows = Table({"y", "z"});
  for (const rdf::Triple& t : in.graph.triples()) {
    in.triples.AppendRow({t.subject, t.predicate, t.object});
    if (t.predicate == in.friend_of_id) {
      in.friend_of.AppendRow({t.subject, t.object});
    } else if (t.predicate == follows_id) {
      in.follows.AppendRow({t.subject, t.object});
    }
  }
  return in;
}

// Stage split (parse / compile / execute) of full end-to-end queries,
// serial vs parallel execution mode, averaged over `reps` rounds.
struct StageEntry {
  std::string name;
  std::string mode;  // "serial" | "parallel"
  double parse_ms = 0.0;
  double compile_ms = 0.0;
  double exec_ms = 0.0;
  double total_ms = 0.0;
  bool output_identical = true;  // Parallel row vs its serial twin.
};

std::vector<StageEntry> MeasureQueryStages(int reps) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);

  core::S2RdfOptions serial_options;
  auto serial_db = core::S2Rdf::Create(watdiv::Generate(gen), serial_options);
  core::S2RdfOptions parallel_options;
  parallel_options.parallel_execution = true;
  auto parallel_db =
      core::S2Rdf::Create(watdiv::Generate(gen), parallel_options);
  std::vector<StageEntry> out;
  if (!serial_db.ok() || !parallel_db.ok()) return out;

  for (const char* name : {"L2", "S3", "F3", "C3"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    if (tmpl == nullptr) continue;
    const std::string text = InstantiateFor(*tmpl, gen.scale_factor, 0);
    core::QueryRequest request;
    request.query = text;
    uint64_t serial_rows = 0;
    uint64_t parallel_rows = 0;
    for (auto* mode : {&serial_db, &parallel_db}) {
      StageEntry e;
      e.name = name;
      e.mode = mode == &serial_db ? "serial" : "parallel";
      bool ok = true;
      for (int r = 0; r < reps; ++r) {
        auto result = (**mode)->Execute(request);
        if (!result.ok()) {
          ok = false;
          break;
        }
        e.parse_ms += result->parse_ms / reps;
        e.compile_ms += result->compile_ms / reps;
        e.exec_ms += result->exec_ms / reps;
        e.total_ms += result->millis / reps;
        (mode == &serial_db ? serial_rows : parallel_rows) =
            result->metrics.output_tuples;
      }
      if (!ok) continue;
      out.push_back(std::move(e));
    }
    if (!out.empty() && out.back().mode == "parallel") {
      out.back().output_identical = serial_rows == parallel_rows;
    }
  }
  return out;
}

Entry MeasureExtVpBuild(int reps) {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);
  rdf::Graph graph = watdiv::Generate(gen);

  Entry entry;
  entry.name = "extvp_build";
  core::ExtVpBuildStats serial_stats;
  core::ExtVpBuildStats parallel_stats;
  auto build = [&](bool parallel_build, core::ExtVpBuildStats* stats) {
    ScopedTempDir dir;
    storage::Catalog catalog(dir.path());
    (void)core::BuildVpLayout(graph, &catalog);
    core::ExtVpOptions options;
    options.parallel_build = parallel_build;
    auto result = core::BuildExtVpLayout(graph, options, &catalog);
    if (result.ok()) *stats = *result;
  };
  entry.serial_ms = MeanMs(reps, [&] { build(false, &serial_stats); });
  entry.parallel_ms = MeanMs(reps, [&] { build(true, &parallel_stats); });
  entry.output_identical =
      serial_stats.tables_considered == parallel_stats.tables_considered &&
      serial_stats.tables_materialized == parallel_stats.tables_materialized &&
      serial_stats.tables_empty == parallel_stats.tables_empty &&
      serial_stats.tables_equal_vp == parallel_stats.tables_equal_vp &&
      serial_stats.tables_pruned == parallel_stats.tables_pruned &&
      serial_stats.tuples_materialized == parallel_stats.tuples_materialized;
  entry.metrics_identical = entry.output_identical;  // Build has no ctx.
  return entry;
}

int Run() {
  const int reps = EnvInt("S2RDF_BENCH_ROUNDS", 3);
  const size_t width = TaskPool::Shared()->ParallelismWidth();
  const double floor = EnvDouble("S2RDF_BENCH_SPEEDUP_FLOOR", 1.5);
  const bool enforce_floor = width >= 4;
  std::vector<Entry> entries;

  WatDivInputs watdiv_in = BuildWatDivInputs();
  std::fprintf(stderr,
               "WatDiv operator inputs: %zu triples, friendOf %zu, "
               "follows %zu\n",
               watdiv_in.triples.NumRows(), watdiv_in.friend_of.NumRows(),
               watdiv_in.follows.NumRows());

  {
    engine::ScanSpec spec;
    spec.conditions.emplace_back(1, watdiv_in.friend_of_id);
    spec.projections.emplace_back(0, "s");
    spec.projections.emplace_back(2, "o");
    entries.push_back(MeasureOperator(
        "scan_select_project", reps, /*gated=*/true,
        [&](ExecContext* ctx) {
          return engine::ScanSelectProject(watdiv_in.triples, spec, ctx);
        },
        [&](ExecContext* ctx) {
          return engine::ParallelScanSelectProject(watdiv_in.triples, spec,
                                                  ctx);
        }));
  }

  {
    engine::ExprPtr expr = engine::Expr::Compare(engine::CompareOp::kEq,
                                                 engine::Expr::Var("p"),
                                                 engine::Expr::Const(kFriendOf));
    const rdf::Dictionary& dict = watdiv_in.graph.dictionary();
    entries.push_back(MeasureOperator(
        "filter", reps, /*gated=*/true,
        [&](ExecContext* ctx) {
          return engine::Filter(watdiv_in.triples, *expr, dict, ctx);
        },
        [&](ExecContext* ctx) {
          return engine::ParallelFilter(watdiv_in.triples, *expr, dict, ctx);
        }));
  }

  {
    entries.push_back(MeasureOperator(
        "hash_join", reps, /*gated=*/true,
        [&](ExecContext* ctx) {
          return engine::HashJoin(watdiv_in.friend_of, watdiv_in.follows, ctx);
        },
        [&](ExecContext* ctx) {
          return engine::ParallelHashJoin(watdiv_in.friend_of,
                                          watdiv_in.follows, ctx);
        }));
  }

  {
    Table t = RandomPairs(17, 500000, 200, 200, "a", "b");
    entries.push_back(MeasureOperator(
        "distinct", reps, /*gated=*/false,
        [&](ExecContext* ctx) { return engine::Distinct(t, ctx); },
        [&](ExecContext* ctx) { return engine::ParallelDistinct(t, ctx); }));
  }

  {
    rdf::Dictionary dict;
    std::vector<TermId> terms;
    for (int i = 0; i < 512; ++i) {
      terms.push_back(dict.Encode(
          "\"" + std::to_string(i) +
          "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }
    SplitMix64 rng(19);
    Table t({"n", "m"});
    t.Reserve(300000);
    for (size_t i = 0; i < 300000; ++i) {
      t.AppendRow({terms[rng.Uniform(terms.size())],
                   terms[rng.Uniform(terms.size())]});
    }
    std::vector<engine::SortKey> keys = {{"n", true}, {"m", false}};
    entries.push_back(MeasureOperator(
        "order_by", reps, /*gated=*/false,
        [&](ExecContext* ctx) { return engine::OrderBy(t, keys, dict, ctx); },
        [&](ExecContext* ctx) {
          return engine::ParallelOrderBy(t, keys, dict, ctx);
        }));
  }

  {
    rdf::Dictionary dict;
    std::vector<TermId> values;
    for (int i = 0; i < 1000; ++i) {
      values.push_back(dict.Encode(
          "\"" + std::to_string(i) +
          "\"^^<http://www.w3.org/2001/XMLSchema#integer>"));
    }
    SplitMix64 rng(23);
    Table t({"k", "v"});
    t.Reserve(500000);
    for (size_t i = 0; i < 500000; ++i) {
      t.AppendRow({static_cast<TermId>(rng.Uniform(100) + 1),
                   values[rng.Uniform(values.size())]});
    }
    std::vector<std::string> keys = {"k"};
    std::vector<engine::AggregateSpec> specs = {
        {engine::AggregateSpec::Fn::kCountStar, "", "n", false},
        {engine::AggregateSpec::Fn::kSum, "v", "total", false},
        {engine::AggregateSpec::Fn::kCount, "v", "dv", true},
    };
    entries.push_back(MeasureOperator(
        "group_by_aggregate", reps, /*gated=*/false,
        [&](ExecContext* ctx) {
          auto result = engine::GroupByAggregate(t, keys, specs, &dict, ctx);
          return result.ok() ? std::move(*result) : Table();
        },
        [&](ExecContext* ctx) {
          auto result =
              engine::ParallelGroupByAggregate(t, keys, specs, &dict, ctx);
          return result.ok() ? std::move(*result) : Table();
        }));
  }

  entries.push_back(MeasureExtVpBuild(reps));
  std::vector<StageEntry> stages = MeasureQueryStages(reps);

  TablePrinter printer(
      {"benchmark", "serial", "parallel", "speedup", "identical"});
  for (const Entry& e : entries) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx%s", e.Speedup(),
                  e.gated ? " *" : "");
    printer.AddRow({e.name, FormatMs(e.serial_ms), FormatMs(e.parallel_ms),
                    speedup,
                    e.metrics_identical && e.output_identical ? "yes" : "NO"});
  }
  std::fprintf(stderr,
               "Parallel execution (task pool width %zu, hardware "
               "concurrency %u; * = gated at %.2fx%s):\n",
               width, std::thread::hardware_concurrency(), floor,
               enforce_floor ? "" : ", not enforced below width 4");
  printer.Print(stderr);

  TablePrinter stage_printer(
      {"query", "mode", "parse", "compile", "exec", "total"});
  for (const StageEntry& e : stages) {
    stage_printer.AddRow({e.name, e.mode, FormatMs(e.parse_ms),
                          FormatMs(e.compile_ms), FormatMs(e.exec_ms),
                          FormatMs(e.total_ms)});
  }
  std::fprintf(stderr, "\nEnd-to-end query stage split:\n");
  stage_printer.Print(stderr);

  // Machine-readable twin on stdout.
  std::printf("{\n");
  std::printf("  \"task_pool_parallelism\": %zu,\n", width);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"rounds\": %d,\n", reps);
  std::printf("  \"speedup_floor\": %.2f,\n", floor);
  std::printf("  \"floor_enforced\": %s,\n", enforce_floor ? "true" : "false");
  std::printf("  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"name\": \"%s\", \"serial_ms\": %.3f, "
                "\"parallel_ms\": %.3f, \"speedup\": %.3f, \"gated\": %s, "
                "\"metrics_identical\": %s, \"output_identical\": %s}%s\n",
                e.name.c_str(), e.serial_ms, e.parallel_ms, e.Speedup(),
                e.gated ? "true" : "false",
                e.metrics_identical ? "true" : "false",
                e.output_identical ? "true" : "false",
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"query_stages\": [\n");
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageEntry& e = stages[i];
    std::printf("    {\"name\": \"%s\", \"mode\": \"%s\", "
                "\"parse_ms\": %.3f, \"compile_ms\": %.3f, "
                "\"exec_ms\": %.3f, \"total_ms\": %.3f, "
                "\"output_identical\": %s}%s\n",
                e.name.c_str(), e.mode.c_str(), e.parse_ms, e.compile_ms,
                e.exec_ms, e.total_ms, e.output_identical ? "true" : "false",
                i + 1 < stages.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  // Identity failures are bugs, not slow results: fail the harness.
  for (const Entry& e : entries) {
    if (!e.metrics_identical || !e.output_identical) return 1;
  }
  for (const StageEntry& e : stages) {
    if (!e.output_identical) return 1;
  }

  // A width-1 run measured nothing: every parallel operator falls back
  // to (or degenerates into) its single-threaded path, so the timings
  // say nothing about the paper's parallel-execution claim. Fail loudly
  // instead of producing a plausible-looking JSON.
  if (width <= 1) {
    std::fprintf(stderr,
                 "\nerror: task pool parallelism is 1 — this run measured "
                 "no parallelism.\nSet S2RDF_TASK_POOL_THREADS=<width> (or "
                 "run on a multi-core host) and rerun.\n");
    return 2;
  }

  if (enforce_floor) {
    bool missed = false;
    for (const Entry& e : entries) {
      if (e.gated && e.Speedup() < floor) {
        std::fprintf(stderr,
                     "\nerror: %s speedup %.2fx is below the %.2fx floor\n",
                     e.name.c_str(), e.Speedup(), floor);
        missed = true;
      }
    }
    if (missed) return 3;
  }
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Run(); }
