// Open-loop serving benchmark: drives the real HTTP endpoint (socket
// accept loop, admission control, worker pool — the full serving path)
// at fixed arrival rates and reports the latency distribution a client
// would see, queueing delay included.
//
// Open loop means arrivals are scheduled on a fixed clock, independent
// of completions: request i of a rate-R run is sent at t0 + i/R whether
// or not earlier requests finished. Unlike closed-loop (back-to-back)
// drivers this exposes coordinated omission — a slow request delays
// nothing behind it, so its queueing effect lands in the tail where an
// operator would see it.
//
// Latency is measured from the *scheduled* arrival time to the last
// response byte, so dispatch jitter also counts against the server the
// way it does for a real client. The workload is a fixed round-robin
// mix over the WatDiv L/S/F/C families.
//
// Gates (exit 1 on violation):
//   - every response must carry the X-S2RDF-Trace-Id header
//     (observability contract of the serving path);
//   - the error rate (connect failures, non-200s, 503 rejections) must
//     stay within kMaxErrorRate;
//   - when a recorded baseline exists (BENCH_serving.json in the cwd,
//     or $S2RDF_SERVING_BASELINE), the measured p999 per rate must stay
//     under the baseline's recorded p999_floor_ms and the error rate
//     under its error_rate + 0.5% — the regression gate check.sh runs
//     against the committed file.
//
// Output: human table on stderr, JSON on stdout
// (scripts/bench_json.sh captures it as BENCH_serving.json). The JSON
// records p999_floor_ms = measured p999 x 2.5 + 10 ms, the headroom
// future runs are held to.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench/bench_util.h"
#include "common/task_pool.h"
#include "core/s2rdf.h"
#include "server/sparql_endpoint.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

// Arrival rates driven per run (requests/second). Fixed so the JSON
// schema — and the committed baseline — stays comparable across runs.
constexpr int kRates[] = {25, 50};

// Error budget intrinsic to the harness (no baseline needed): at these
// rates the endpoint must not reject or fail anything beyond noise.
constexpr double kMaxErrorRate = 0.01;

// Headroom recorded into p999_floor_ms: future runs fail the gate
// only past 2.5x the recorded tail plus an absolute 10 ms of slack.
// The multiplier catches real serving regressions; the absolute term
// absorbs single scheduler stalls, which dominate a p999 estimated
// from a few hundred samples (one 10 ms preemption of an oversubscribed
// worker IS the p999 at that sample count).
constexpr double kFloorHeadroom = 2.5;
constexpr double kFloorSlackMs = 10.0;

// Extra error rate a run may show over the recorded baseline.
constexpr double kErrorRateSlack = 0.005;

std::string UrlEncode(const std::string& in) {
  std::string out;
  out.reserve(in.size() * 3);
  for (unsigned char c : in) {
    if ((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
        (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
        c == '~') {
      out += static_cast<char>(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

// One blocking HTTP GET against 127.0.0.1:port. Returns false on any
// transport failure; *status_code / *has_trace reflect the response.
bool HttpGet(int port, const std::string& path_and_query, int* status_code,
             bool* has_trace) {
  *status_code = 0;
  *has_trace = false;
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  std::string request = "GET " + path_and_query +
                        " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  size_t written = 0;
  while (written < request.size()) {
    ssize_t n = write(fd, request.data() + written, request.size() - written);
    if (n <= 0) {
      close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  if (response.compare(0, 9, "HTTP/1.1 ") != 0 || response.size() < 12) {
    return false;
  }
  *status_code = std::atoi(response.c_str() + 9);
  *has_trace = response.find("X-S2RDF-Trace-Id:") != std::string::npos;
  return true;
}

struct RateResult {
  int rps = 0;
  size_t requests = 0;
  size_t errors = 0;
  size_t missing_trace = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  bool within_floor = true;

  double ErrorRate() const {
    return requests > 0 ? static_cast<double>(errors) /
                              static_cast<double>(requests)
                        : 0.0;
  }
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

// Recorded baseline for one rate, parsed from a previous run's JSON.
struct BaselineEntry {
  double p999_floor_ms = 0.0;
  double error_rate = 0.0;
  bool found = false;
};

// Minimal extraction from our own output format: finds the entry block
// for `rps` and pulls its p999_floor_ms / error_rate numbers.
BaselineEntry FindBaseline(const std::string& json, int rps) {
  BaselineEntry entry;
  std::string key = "\"rps\": " + std::to_string(rps) + ",";
  size_t pos = json.find(key);
  if (pos == std::string::npos) return entry;
  size_t end = json.find('}', pos);
  if (end == std::string::npos) return entry;
  std::string block = json.substr(pos, end - pos);
  auto number_after = [&block](const std::string& field, double* out) {
    size_t p = block.find(field);
    if (p == std::string::npos) return false;
    *out = std::atof(block.c_str() + p + field.size());
    return true;
  };
  bool have_floor = number_after("\"p999_floor_ms\": ", &entry.p999_floor_ms);
  bool have_err = number_after("\"error_rate\": ", &entry.error_rate);
  entry.found = have_floor && have_err;
  return entry;
}

RateResult DriveRate(int port, int rps, double seconds,
                     const std::vector<std::string>& paths) {
  const size_t total = static_cast<size_t>(rps * seconds);
  RateResult result;
  result.rps = rps;
  result.requests = total;

  std::vector<double> latencies(total, 0.0);
  std::vector<char> failed(total, 0);
  std::vector<char> traced(total, 0);
  std::atomic<size_t> next{0};

  const auto t0 = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(50);
  const auto period =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(1.0 / rps));

  // Enough client threads that a slow response almost never delays the
  // next scheduled send (which would quietly re-close the loop).
  const size_t num_clients = std::min<size_t>(32, total);
  std::vector<std::thread> clients;
  clients.reserve(num_clients);
  for (size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, port] {
      while (true) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) return;
        const auto scheduled = t0 + period * static_cast<int64_t>(i);
        std::this_thread::sleep_until(scheduled);
        int status = 0;
        bool has_trace = false;
        bool ok = HttpGet(port, paths[i % paths.size()], &status, &has_trace);
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - scheduled;
        latencies[i] = elapsed.count();
        failed[i] = (!ok || status != 200) ? 1 : 0;
        traced[i] = has_trace ? 1 : 0;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::vector<double> ok_latencies;
  ok_latencies.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    if (failed[i]) {
      ++result.errors;
      continue;
    }
    if (!traced[i]) ++result.missing_trace;
    ok_latencies.push_back(latencies[i]);
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  result.p50_ms = Percentile(ok_latencies, 0.50);
  result.p99_ms = Percentile(ok_latencies, 0.99);
  result.p999_ms = Percentile(ok_latencies, 0.999);
  result.max_ms = ok_latencies.empty() ? 0.0 : ok_latencies.back();
  return result;
}

int Run() {
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);
  const double seconds = EnvDouble("S2RDF_BENCH_SERVING_SECONDS", 4.0);

  auto db = core::S2Rdf::Create(watdiv::Generate(gen), {});
  if (!db.ok()) {
    std::fprintf(stderr, "store build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  server::EndpointOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  server::SparqlEndpoint endpoint(db->get(), options);
  auto port = endpoint.Start(0);
  if (!port.ok()) {
    std::fprintf(stderr, "endpoint start failed: %s\n",
                 port.status().ToString().c_str());
    return 1;
  }

  // The request mix: one query per WatDiv family, pre-instantiated and
  // pre-encoded so client threads do no per-request work but the send.
  std::vector<std::string> paths;
  for (const char* name : {"L2", "S3", "F3", "C3"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    if (tmpl == nullptr) continue;
    paths.push_back(
        "/sparql?query=" +
        UrlEncode(InstantiateFor(*tmpl, gen.scale_factor, 0)));
  }
  if (paths.empty()) {
    std::fprintf(stderr, "no workload queries found\n");
    return 1;
  }

  // Recorded baseline, if any: the committed BENCH_serving.json.
  std::string baseline_json;
  {
    const char* env = std::getenv("S2RDF_SERVING_BASELINE");
    // The committed baseline is harness bookkeeping, not store data:
    // it never goes through the fault-injected Env.
    std::ifstream in(env != nullptr ? env : "BENCH_serving.json",  // s2rdf-lint: allow(raw-io)
                     std::ios::binary);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      baseline_json = buffer.str();
    }
  }

  std::vector<RateResult> results;
  bool all_ok = true;
  size_t missing_trace_total = 0;
  for (int rps : kRates) {
    RateResult r = DriveRate(*port, rps, seconds, paths);
    missing_trace_total += r.missing_trace;
    r.within_floor = r.ErrorRate() <= kMaxErrorRate;
    if (!baseline_json.empty()) {
      BaselineEntry baseline = FindBaseline(baseline_json, rps);
      if (baseline.found) {
        if (r.p999_ms > baseline.p999_floor_ms) r.within_floor = false;
        if (r.ErrorRate() > baseline.error_rate + kErrorRateSlack) {
          r.within_floor = false;
        }
      }
    }
    all_ok = all_ok && r.within_floor;
    results.push_back(r);
  }
  endpoint.Stop();
  if (missing_trace_total > 0) {
    std::fprintf(stderr,
                 "error: %zu responses lacked X-S2RDF-Trace-Id\n",
                 missing_trace_total);
    all_ok = false;
  }

  TablePrinter printer({"rate", "requests", "errors", "p50", "p99", "p999",
                        "max", "within floor"});
  for (const RateResult& r : results) {
    printer.AddRow({std::to_string(r.rps) + "/s", std::to_string(r.requests),
                    std::to_string(r.errors), FormatMs(r.p50_ms),
                    FormatMs(r.p99_ms), FormatMs(r.p999_ms),
                    FormatMs(r.max_ms), r.within_floor ? "yes" : "NO"});
  }
  std::fprintf(stderr,
               "Open-loop serving latency (%.0fs per rate, %zu-query mix, "
               "queueing delay included):\n",
               seconds, paths.size());
  printer.Print(stderr);

  std::printf("{\n");
  std::printf("  \"task_pool_parallelism\": %zu,\n",
              TaskPool::Shared()->ParallelismWidth());
  std::printf("  \"seconds_per_rate\": %.1f,\n", seconds);
  std::printf("  \"workload\": [\"L2\", \"S3\", \"F3\", \"C3\"],\n");
  std::printf("  \"floor_headroom\": %.1f,\n", kFloorHeadroom);
  std::printf("  \"floor_slack_ms\": %.1f,\n", kFloorSlackMs);
  std::printf("  \"entries\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    std::printf("    {\"rps\": %d, \"requests\": %zu, \"errors\": %zu, "
                "\"error_rate\": %.4f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"p999_ms\": %.3f, \"max_ms\": %.3f, "
                "\"p999_floor_ms\": %.3f, \"within_floor\": %s}%s\n",
                r.rps, r.requests, r.errors, r.ErrorRate(), r.p50_ms,
                r.p99_ms, r.p999_ms, r.max_ms,
                r.p999_ms * kFloorHeadroom + kFloorSlackMs,
                r.within_floor ? "true" : "false",
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_within_floor\": %s\n}\n", all_ok ? "true" : "false");

  return all_ok && !results.empty() ? 0 : 1;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Run(); }
