// Paper heuristic vs cost-based optimizer, end to end over WatDiv.
//
// Two suites:
//
//   basic       Basic Testing (L/S/F/C) on the ExtVP layout — the
//               workload the paper's Algorithm 4 was designed for. The
//               cost-based optimizer must never regress the suite total
//               by more than 5%.
//   il-unbound  The Incremental Linear IL-3 chains (unbound subject,
//               Appendix C) on the VP layout: every scan is a full,
//               unreduced VP table, so join order and semi-join
//               reduction — not the precomputed ExtVP inputs — decide
//               the runtime. Cost plans must run the suite at least
//               1.5x faster than paper plans (EXPERIMENTS.md §IL-3).
//
// Both modes must return identical result sets on every query; a
// divergence is a correctness bug and fails the harness regardless of
// the timings.
//
// Output: a human-readable table on stderr and machine-readable JSON on
// stdout (scripts/bench_json.sh captures it as BENCH_optimizer.json).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/task_pool.h"
#include "core/optimizer.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

// Gate thresholds.
constexpr double kMaxBasicRegression = 1.05;  // cost <= paper * 1.05
constexpr double kMinUnboundSpeedup = 1.5;    // paper / cost >= 1.5

struct QueryEntry {
  std::string name;
  std::string suite;  // "basic" | "il-unbound"
  double paper_ms = 0.0;
  double cost_ms = 0.0;
  uint64_t rows = 0;
  bool results_identical = false;
  bool plan_changed = false;  // Fingerprints differ between modes.

  double Speedup() const { return cost_ms > 0.0 ? paper_ms / cost_ms : 0.0; }
};

std::vector<std::vector<std::string>> SortedRows(const core::S2Rdf& db,
                                                 const engine::Table& table) {
  std::vector<std::vector<std::string>> rows = db.DecodeRows(table);
  std::sort(rows.begin(), rows.end());
  return rows;
}

// With S2RDF_BENCH_EXPLAIN=1, dumps both physical plans to stderr for
// every query — the fastest way to see *why* a speedup gate moved.
// S2RDF_BENCH_EXPLAIN=2 additionally executes with EXPLAIN ANALYZE and
// dumps per-operator actual rows and timings.
void MaybeExplain(core::S2Rdf* db, const std::string& name,
                  const std::string& text, core::Layout layout) {
  const int level = EnvInt("S2RDF_BENCH_EXPLAIN", 0);
  if (level == 0) return;
  for (int m = 0; m < 2; ++m) {
    core::QueryRequest request;
    request.query = text;
    request.options.layout = layout;
    request.options.explain_plan = level < 2;
    request.options.collect_profile = level >= 2;
    request.options.optimizer.mode =
        m == 0 ? core::OptimizerMode::kPaper : core::OptimizerMode::kCost;
    auto result = db->Execute(request);
    if (!result.ok()) continue;
    std::fprintf(stderr, "-- %s (%s) --\n%s", name.c_str(),
                 result->optimizer_mode.c_str(),
                 level < 2 ? result->plan.c_str() : result->profile.c_str());
  }
}

// Runs `text` in both optimizer modes, `reps` times each (min wall
// clock), and checks the decoded result sets match.
QueryEntry MeasureQuery(core::S2Rdf* db, const std::string& name,
                        const std::string& suite, const std::string& text,
                        core::Layout layout, int reps) {
  QueryEntry entry;
  entry.name = name;
  entry.suite = suite;
  MaybeExplain(db, name, text, layout);

  std::vector<std::vector<std::string>> rows[2];
  uint64_t fingerprints[2] = {0, 0};
  bool ok = true;
  for (int m = 0; m < 2; ++m) {
    core::QueryRequest request;
    request.query = text;
    request.options.layout = layout;
    request.options.optimizer.mode =
        m == 0 ? core::OptimizerMode::kPaper : core::OptimizerMode::kCost;
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      auto result = db->Execute(request);
      if (!result.ok()) {
        std::fprintf(stderr, "%s (%s) failed: %s\n", name.c_str(),
                     m == 0 ? "paper" : "cost",
                     result.status().ToString().c_str());
        ok = false;
        break;
      }
      if (r == 0 || result->millis < best) best = result->millis;
      if (r == 0) {
        rows[m] = SortedRows(*db, result->table);
        fingerprints[m] = result->plan_fingerprint;
        if (m == 0) entry.rows = result->table.NumRows();
      }
    }
    if (!ok) break;
    (m == 0 ? entry.paper_ms : entry.cost_ms) = best;
  }
  entry.results_identical = ok && rows[0] == rows[1];
  entry.plan_changed = ok && fingerprints[0] != fingerprints[1];
  return entry;
}

int Run() {
  const int reps = EnvInt("S2RDF_BENCH_ROUNDS", 3);
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);

  core::S2RdfOptions options;  // ExtVP + VP + TT, serial execution.
  auto db = core::S2Rdf::Create(watdiv::Generate(gen), options);
  if (!db.ok()) {
    std::fprintf(stderr, "store build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  std::vector<QueryEntry> entries;
  for (const watdiv::QueryTemplate& tmpl : watdiv::BasicTestingQueries()) {
    entries.push_back(MeasureQuery(
        db->get(), tmpl.name, "basic",
        InstantiateFor(tmpl, gen.scale_factor, 0), core::Layout::kExtVp,
        reps));
  }
  for (const watdiv::QueryTemplate& tmpl :
       watdiv::IncrementalLinearQueries()) {
    if (tmpl.category != "IL-3") continue;  // The unbound-subject chains.
    entries.push_back(MeasureQuery(
        db->get(), tmpl.name, "il-unbound",
        InstantiateFor(tmpl, gen.scale_factor, 0), core::Layout::kVp, reps));
  }

  double paper_total = 0.0;
  double cost_total = 0.0;
  double unbound_paper = 0.0;
  double unbound_cost = 0.0;
  bool all_identical = true;
  for (const QueryEntry& e : entries) {
    paper_total += e.paper_ms;
    cost_total += e.cost_ms;
    if (e.suite == "il-unbound") {
      unbound_paper += e.paper_ms;
      unbound_cost += e.cost_ms;
    }
    all_identical = all_identical && e.results_identical;
  }
  const bool within_regression =
      cost_total <= paper_total * kMaxBasicRegression;
  const double unbound_speedup =
      unbound_cost > 0.0 ? unbound_paper / unbound_cost : 0.0;
  const bool unbound_fast_enough = unbound_speedup >= kMinUnboundSpeedup;

  TablePrinter printer(
      {"query", "suite", "paper", "cost", "speedup", "plan", "identical"});
  for (const QueryEntry& e : entries) {
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", e.Speedup());
    printer.AddRow({e.name, e.suite, FormatMs(e.paper_ms),
                    FormatMs(e.cost_ms), speedup,
                    e.plan_changed ? "changed" : "same",
                    e.results_identical ? "yes" : "NO"});
  }
  std::fprintf(stderr, "Paper vs cost-based optimizer (min of %d rounds):\n",
               reps);
  printer.Print(stderr);
  std::fprintf(stderr,
               "totals: paper=%.1f ms cost=%.1f ms | IL-3 unbound "
               "speedup=%.2fx (gate >= %.1fx)\n",
               paper_total, cost_total, unbound_speedup, kMinUnboundSpeedup);

  std::printf("{\n");
  std::printf("  \"task_pool_parallelism\": %zu,\n",
              TaskPool::Shared()->ParallelismWidth());
  std::printf("  \"rounds\": %d,\n", reps);
  std::printf("  \"scale_factor\": %.3f,\n", gen.scale_factor);
  std::printf("  \"queries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const QueryEntry& e = entries[i];
    std::printf("    {\"name\": \"%s\", \"suite\": \"%s\", "
                "\"paper_ms\": %.3f, \"cost_ms\": %.3f, \"speedup\": %.3f, "
                "\"rows\": %llu, \"plan_changed\": %s, "
                "\"results_identical\": %s}%s\n",
                e.name.c_str(), e.suite.c_str(), e.paper_ms, e.cost_ms,
                e.Speedup(), static_cast<unsigned long long>(e.rows),
                e.plan_changed ? "true" : "false",
                e.results_identical ? "true" : "false",
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"paper_total_ms\": %.3f,\n", paper_total);
  std::printf("  \"cost_total_ms\": %.3f,\n", cost_total);
  std::printf("  \"unbound_paper_ms\": %.3f,\n", unbound_paper);
  std::printf("  \"unbound_cost_ms\": %.3f,\n", unbound_cost);
  std::printf("  \"unbound_speedup\": %.3f,\n", unbound_speedup);
  std::printf("  \"gates\": {\"results_identical\": %s, "
              "\"total_within_regression_budget\": %s, "
              "\"unbound_speedup_at_least_1_5\": %s}\n",
              all_identical ? "true" : "false",
              within_regression ? "true" : "false",
              unbound_fast_enough ? "true" : "false");
  std::printf("}\n");

  if (entries.empty() || !all_identical) return 1;
  if (!within_regression || !unbound_fast_enough) return 1;
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Run(); }
