// Reproduces Fig. 15 / Table 5 of the paper: the Incremental Linear
// Testing (IL) use case — linear chains of diameter 5..10, bound by a
// user (IL-1), a retailer (IL-2) or unbound (IL-3) — across all six
// systems, with arithmetic means per query family and per chain length.
//
// The reproduction targets: S2RDF's runtime rises only mildly with the
// diameter (ExtVP prunes each step), the MR systems pay one more job per
// added pattern, and the unbound IL-3 family stresses everyone.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/engine_suite.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

int Main() {
  std::printf(
      "== Table 5 / Fig. 15: WatDiv Incremental Linear Testing ==\n\n");
  double sf = EnvDouble("S2RDF_BENCH_SF", 1.0);
  double mr_overhead = EnvDouble("S2RDF_BENCH_MR_OVERHEAD_MS", 2000.0);
  int rounds = EnvInt("S2RDF_BENCH_ROUNDS", 2);

  watdiv::GeneratorOptions gen;
  gen.scale_factor = sf;
  auto suite = EngineSuite::Create(watdiv::Generate(gen), mr_overhead);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "dataset: WatDiv-like SF %.2f, %llu triples; %d template rounds;\n"
      "MR job overhead modeled at %.0f ms/job\n\n",
      sf, static_cast<unsigned long long>((*suite)->graph().NumTriples()),
      rounds, mr_overhead);

  std::vector<std::string> headers = {"query", "rows"};
  for (const std::string& name : EngineSuite::EngineNames()) {
    headers.push_back(name);
  }
  TablePrinter table(headers);
  // AM per family (IL-1/2/3) and per diameter (AM-5..AM-10).
  std::map<std::string, CategoryMeans> by_family;
  std::map<std::string, CategoryMeans> by_length;

  for (const watdiv::QueryTemplate& tmpl :
       watdiv::IncrementalLinearQueries()) {
    std::map<std::string, double> totals;
    uint64_t rows = 0;
    for (int round = 0; round < rounds; ++round) {
      std::string query = InstantiateFor(tmpl, sf, round);
      for (const std::string& name : EngineSuite::EngineNames()) {
        auto outcome = (*suite)->Run(name, query);
        if (!outcome.ok()) {
          std::fprintf(stderr, "%s on %s: %s\n", name.c_str(),
                       tmpl.name.c_str(),
                       outcome.status().ToString().c_str());
          continue;
        }
        totals[name] += outcome->modeled_ms;
        if (name == "S2RDF-ExtVP") rows = outcome->rows;
      }
    }
    std::string length = tmpl.name.substr(tmpl.name.rfind('-') + 1);
    std::vector<std::string> cells = {tmpl.name, FormatCount(rows)};
    for (const std::string& name : EngineSuite::EngineNames()) {
      double am = totals[name] / rounds;
      by_family[name].Add(tmpl.category, am);
      by_length[name].Add("AM-" + length, am);
      cells.push_back(FormatMs(am));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();

  std::printf("\nArithmetic means per query family:\n");
  TablePrinter family_table({"engine", "AM-IL-1", "AM-IL-2", "AM-IL-3"});
  for (const std::string& name : EngineSuite::EngineNames()) {
    std::map<std::string, double> am;
    for (const auto& [key, value] : by_family[name].Means()) am[key] = value;
    family_table.AddRow({name, FormatMs(am["IL-1"]), FormatMs(am["IL-2"]),
                         FormatMs(am["IL-3"])});
  }
  family_table.Print();

  std::printf("\nArithmetic means per chain length:\n");
  std::vector<std::string> len_headers = {"engine"};
  for (int k = 5; k <= 10; ++k) {
    len_headers.push_back("AM-" + std::to_string(k));
  }
  TablePrinter length_table(len_headers);
  for (const std::string& name : EngineSuite::EngineNames()) {
    std::map<std::string, double> am;
    for (const auto& [key, value] : by_length[name].Means()) am[key] = value;
    std::vector<std::string> cells = {name};
    for (int k = 5; k <= 10; ++k) {
      cells.push_back(FormatMs(am["AM-" + std::to_string(k)]));
    }
    length_table.AddRow(std::move(cells));
  }
  length_table.Print();

  // Fig. 15 rendering: growth with the diameter for the two extremes.
  for (const char* engine : {"S2RDF-ExtVP", "SHARD-MR"}) {
    std::map<std::string, double> am;
    for (const auto& [key, value] : by_length[engine].Means()) {
      am[key] = value;
    }
    std::vector<std::pair<std::string, double>> series;
    for (int k = 5; k <= 10; ++k) {
      std::string key = "AM-" + std::to_string(k);
      series.emplace_back("diameter " + std::to_string(k), am[key]);
    }
    PrintBarChart(
        std::string("Fig. 15 (") + engine + " vs chain diameter):", series,
        "ms", /*log_scale=*/false);
  }

  std::printf(
      "\nPaper reference (SF10000): S2RDF answers IL-1/IL-2 in 12-41 s\n"
      "while SHARD needs 13-28 min and grows linearly with the diameter;\n"
      "only S2RDF, Sempala and PigSPARQL finish all unbound IL-3 queries.\n"
      "Expected shape: per added pattern, MR systems pay ~one more job;\n"
      "S2RDF's growth stays sub-linear thanks to ExtVP input pruning.\n");
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Main(); }
