// Incremental-ingest throughput: delta maintenance vs full rebuild.
//
// The point of the ingest subsystem is that appending a batch and
// delta-maintaining the dependent ExtVP reductions and SF statistics is
// much cheaper than rebuilding every layout from scratch — while
// producing an IDENTICAL store. This harness splits a WatDiv dataset
// into a base and a small append batch (2% by default — same
// distribution as the base, the IL incremental-load shape), then
// measures
//
//   delta_ms   — Ingest(batch) into a store built over the base
//   rebuild_ms — Create over base + batch from scratch
//
// and gates on both properties:
//   1. identity: the delta-maintained store's statistics (entry set,
//      rows, SF, materialization decisions) match the rebuild exactly;
//   2. speedup: rebuild_ms / delta_ms >= 3 (min over rounds).
//
// Output: human-readable table on stderr, JSON on stdout
// (scripts/bench_json.sh captures it as BENCH_ingest.json).

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/task_pool.h"
#include "core/ingest.h"
#include "core/s2rdf.h"
#include "storage/ingest.h"
#include "watdiv/generator.h"

namespace s2rdf::bench {
namespace {

constexpr double kMinSpeedup = 3.0;

// Decodes a slice of `graph`'s triples back to canonical term strings.
std::vector<storage::IngestTriple> DecodeSlice(const rdf::Graph& graph,
                                               size_t begin, size_t end) {
  std::vector<storage::IngestTriple> out;
  out.reserve(end - begin);
  const rdf::Dictionary& dict = graph.dictionary();
  for (size_t i = begin; i < end; ++i) {
    const rdf::Triple& t = graph.triples()[i];
    out.push_back({dict.Decode(t.subject), dict.Decode(t.predicate),
                   dict.Decode(t.object)});
  }
  return out;
}

// Statistics-level identity: same entry set with same rows, SF and
// materialization decision. Table contents are covered by the unit
// suite (tests/ingest_test.cc); stats identity is the cheap whole-store
// fingerprint appropriate for a benchmark gate.
bool StatsIdentical(core::S2Rdf* a, core::S2Rdf* b) {
  std::map<std::string, const storage::TableStats*> as, bs;
  for (const storage::TableStats* s : a->catalog().AllStats()) as[s->name] = s;
  for (const storage::TableStats* s : b->catalog().AllStats()) bs[s->name] = s;
  if (as.size() != bs.size()) return false;
  for (const auto& [name, sa] : as) {
    auto it = bs.find(name);
    if (it == bs.end()) return false;
    const storage::TableStats* sb = it->second;
    if (sa->rows != sb->rows || sa->selectivity != sb->selectivity ||
        sa->materialized != sb->materialized) {
      return false;
    }
  }
  return true;
}

int Run() {
  const int reps = EnvInt("S2RDF_BENCH_ROUNDS", 3);
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);
  rdf::Graph full = watdiv::Generate(gen);

  // Batch size: 2% of the store by default (S2RDF_BENCH_DELTA_FRAC to
  // override). An incremental batch is small relative to the store by
  // definition — the delta path's advantage shrinks as the batch's
  // predicate footprint approaches the whole schema, because every
  // affected ExtVP pair must re-filter its full old VP source.
  const double frac = EnvDouble("S2RDF_BENCH_DELTA_FRAC", 0.02);
  const size_t total = full.NumTriples();
  const size_t base_count =
      total - std::max<size_t>(1, static_cast<size_t>(total * frac));
  std::vector<storage::IngestTriple> base_terms =
      DecodeSlice(full, 0, base_count);
  std::vector<storage::IngestTriple> delta_terms =
      DecodeSlice(full, base_count, total);

  auto build_graph = [](const std::vector<storage::IngestTriple>& terms) {
    rdf::Graph g;
    for (const storage::IngestTriple& t : terms) {
      g.AddCanonical(t.subject, t.predicate, t.object);
    }
    return g;
  };
  storage::IngestBatch batch;
  batch.triples = delta_terms;

  double delta_ms = 0.0;
  double rebuild_ms = 0.0;
  bool identical = true;
  for (int r = 0; r < reps; ++r) {
    // Fresh base store per round: re-ingesting the same batch would
    // dedup to a no-op.
    auto base_db = core::S2Rdf::Create(build_graph(base_terms), {});
    if (!base_db.ok()) {
      std::fprintf(stderr, "base store build failed: %s\n",
                   base_db.status().ToString().c_str());
      return 1;
    }
    double d = TimeMs([&] {
      auto result = (*base_db)->Ingest(batch);
      if (!result.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     result.status().ToString().c_str());
        identical = false;
      }
    });

    // Rebuild the store over the concatenated stream, timed (graph
    // construction excluded — the fair comparison is layout building).
    std::unique_ptr<core::S2Rdf> rebuilt;
    rdf::Graph concat = build_graph(base_terms);
    for (const storage::IngestTriple& t : delta_terms) {
      concat.AddCanonical(t.subject, t.predicate, t.object);
    }
    double f = TimeMs([&] {
      auto db = core::S2Rdf::Create(std::move(concat), {});
      if (!db.ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n",
                     db.status().ToString().c_str());
        identical = false;
        return;
      }
      rebuilt = std::move(db).value();
    });

    if (rebuilt == nullptr || !StatsIdentical(base_db->get(), rebuilt.get())) {
      identical = false;
    }
    delta_ms = r == 0 ? d : std::min(delta_ms, d);
    rebuild_ms = r == 0 ? f : std::min(rebuild_ms, f);
  }

  const double speedup = delta_ms > 0.0 ? rebuild_ms / delta_ms : 0.0;
  const bool fast_enough = speedup >= kMinSpeedup;

  TablePrinter printer({"metric", "value"});
  printer.AddRow({"base triples", FormatCount(base_count)});
  printer.AddRow({"delta triples", FormatCount(total - base_count)});
  printer.AddRow({"delta ingest (min ms)", FormatMs(delta_ms)});
  printer.AddRow({"full rebuild (min ms)", FormatMs(rebuild_ms)});
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fx", speedup);
  printer.AddRow({"speedup", buf});
  printer.AddRow({"stores identical", identical ? "yes" : "NO"});
  std::fprintf(stderr, "Incremental ingest vs rebuild (min of %d rounds):\n",
               reps);
  printer.Print(stderr);

  std::printf("{\n");
  std::printf("  \"task_pool_parallelism\": %zu,\n",
              TaskPool::Shared()->ParallelismWidth());
  std::printf("  \"rounds\": %d,\n", reps);
  std::printf("  \"base_triples\": %zu,\n", base_count);
  std::printf("  \"delta_triples\": %zu,\n", total - base_count);
  std::printf("  \"delta_ingest_ms\": %.3f,\n", delta_ms);
  std::printf("  \"full_rebuild_ms\": %.3f,\n", rebuild_ms);
  std::printf("  \"speedup\": %.2f,\n", speedup);
  std::printf("  \"min_speedup_gate\": %.1f,\n", kMinSpeedup);
  std::printf("  \"stores_identical\": %s,\n", identical ? "true" : "false");
  std::printf("  \"gate_passed\": %s\n}\n",
              identical && fast_enough ? "true" : "false");

  if (!identical) {
    std::fprintf(stderr, "FAIL: delta-maintained store != rebuild\n");
    return 1;
  }
  if (!fast_enough) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.1fx gate\n",
                 speedup, kMinSpeedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Run(); }
