#ifndef S2RDF_BENCH_BENCH_UTIL_H_
#define S2RDF_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

// Shared plumbing for the table/figure reproduction harnesses in bench/.
// Each harness regenerates one table or figure of the paper's Sec. 7;
// EXPERIMENTS.md records paper-vs-measured values side by side.

namespace s2rdf::bench {

// Reads a double from environment variable `name`, else `fallback`
// (e.g. S2RDF_BENCH_SF to scale benchmarks up or down).
double EnvDouble(const char* name, double fallback);
int EnvInt(const char* name, int fallback);

// Milliseconds of wall clock consumed by `fn`.
double TimeMs(const std::function<void()>& fn);

// Runs `fn` `repetitions` times and returns the arithmetic mean in ms
// (AM, the statistic the paper reports).
double MeanMs(int repetitions, const std::function<void()>& fn);

// Instantiates a workload query with a deterministic per-(query, round)
// seed so every engine sees the same text.
std::string InstantiateFor(const watdiv::QueryTemplate& tmpl,
                           double scale_factor, uint64_t round);

// Fixed-width table printer for bench output. Harnesses whose stdout
// is machine-readable JSON print their tables to stderr.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print(FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatMs(double ms);
std::string FormatCount(uint64_t n);
std::string FormatBytes(uint64_t bytes);

// Renders an ASCII horizontal bar chart — the terminal rendering of the
// paper's figures. `log_scale` matches the log-axis of Figs. 14/15.
void PrintBarChart(const std::string& title,
                   const std::vector<std::pair<std::string, double>>& series,
                   const std::string& unit, bool log_scale);

// Arithmetic mean helper keyed by category (paper's AM-L, AM-S, ...).
class CategoryMeans {
 public:
  void Add(const std::string& category, double value);
  std::vector<std::pair<std::string, double>> Means() const;

 private:
  std::map<std::string, std::pair<double, int>> sums_;
};

}  // namespace s2rdf::bench

#endif  // S2RDF_BENCH_BENCH_UTIL_H_
