// Micro-benchmarks (google-benchmark) for the engine and storage
// primitives that every measured query path is built from: scans, hash
// joins, semi joins (the ExtVP build primitive), distinct, columnar
// encodings and the external sort of the MapReduce runtime.

#include <benchmark/benchmark.h>

#include "common/file_util.h"
#include "common/random.h"
#include "engine/operators.h"
#include "engine/parallel_join.h"
#include "engine/table.h"
#include "mapreduce/external_sort.h"
#include "storage/encoding.h"
#include "storage/table_file.h"

namespace s2rdf {
namespace {

engine::Table MakeTwoColumnTable(size_t rows, uint64_t seed,
                                 uint32_t key_space) {
  SplitMix64 rng(seed);
  engine::Table t({"s", "o"});
  t.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    t.AppendRow({static_cast<uint32_t>(rng.Uniform(key_space)),
                 static_cast<uint32_t>(rng.Uniform(key_space))});
  }
  return t;
}

void BM_ScanSelectProject(benchmark::State& state) {
  engine::Table t = MakeTwoColumnTable(
      static_cast<size_t>(state.range(0)), 1, 1000);
  engine::ScanSpec spec;
  spec.conditions.emplace_back(0, 7);
  spec.projections.emplace_back(1, "o");
  for (auto _ : state) {
    engine::ExecContext ctx;
    benchmark::DoNotOptimize(engine::ScanSelectProject(t, spec, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanSelectProject)->Range(1 << 10, 1 << 18);

void BM_HashJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  engine::Table left =
      MakeTwoColumnTable(rows, 1, static_cast<uint32_t>(rows));
  engine::Table right =
      MakeTwoColumnTable(rows, 2, static_cast<uint32_t>(rows))
          .WithColumnNames({"o", "x"});
  for (auto _ : state) {
    engine::ExecContext ctx;
    benchmark::DoNotOptimize(engine::HashJoin(left, right, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_HashJoin)->Range(1 << 10, 1 << 16);

void BM_ParallelHashJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  engine::Table left =
      MakeTwoColumnTable(rows, 1, static_cast<uint32_t>(rows));
  engine::Table right =
      MakeTwoColumnTable(rows, 2, static_cast<uint32_t>(rows))
          .WithColumnNames({"o", "x"});
  for (auto _ : state) {
    engine::ExecContext ctx;
    ctx.num_partitions = 8;
    benchmark::DoNotOptimize(engine::ParallelHashJoin(left, right, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_ParallelHashJoin)->Range(1 << 12, 1 << 16);

void BM_SemiJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  engine::Table left =
      MakeTwoColumnTable(rows, 1, static_cast<uint32_t>(rows));
  engine::Table right =
      MakeTwoColumnTable(rows / 4 + 1, 2, static_cast<uint32_t>(rows));
  for (auto _ : state) {
    engine::ExecContext ctx;
    benchmark::DoNotOptimize(engine::SemiJoin(left, 1, right, 0, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SemiJoin)->Range(1 << 10, 1 << 18);

void BM_SortMergeJoin(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  engine::Table left =
      MakeTwoColumnTable(rows, 1, static_cast<uint32_t>(rows));
  engine::Table right =
      MakeTwoColumnTable(rows, 2, static_cast<uint32_t>(rows))
          .WithColumnNames({"o", "x"});
  for (auto _ : state) {
    engine::ExecContext ctx;
    benchmark::DoNotOptimize(engine::SortMergeJoin(left, right, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_SortMergeJoin)->Range(1 << 10, 1 << 16);

void BM_Distinct(benchmark::State& state) {
  engine::Table t = MakeTwoColumnTable(
      static_cast<size_t>(state.range(0)), 3, 256);
  for (auto _ : state) {
    engine::ExecContext ctx;
    benchmark::DoNotOptimize(engine::Distinct(t, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Distinct)->Range(1 << 10, 1 << 16);

void BM_EncodeColumnSorted(benchmark::State& state) {
  std::vector<uint32_t> column;
  for (uint32_t i = 0; i < state.range(0); ++i) column.push_back(i * 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::EncodeColumn(column));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeColumnSorted)->Range(1 << 10, 1 << 18);

void BM_DecodeColumn(benchmark::State& state) {
  SplitMix64 rng(4);
  std::vector<uint32_t> column;
  for (int64_t i = 0; i < state.range(0); ++i) {
    column.push_back(static_cast<uint32_t>(rng.Uniform(100000)));
  }
  std::string block = storage::EncodeColumn(column);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::DecodeColumn(block, &out));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeColumn)->Range(1 << 10, 1 << 18);

void BM_TableSerialize(benchmark::State& state) {
  engine::Table t = MakeTwoColumnTable(
      static_cast<size_t>(state.range(0)), 5, 10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::SerializeTable(t));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableSerialize)->Range(1 << 10, 1 << 16);

void BM_ExternalSort(benchmark::State& state) {
  ScopedTempDir dir;
  SplitMix64 rng(6);
  std::vector<mapreduce::Record> records;
  for (int64_t i = 0; i < state.range(0); ++i) {
    records.push_back({{static_cast<uint32_t>(rng.Uniform(1000))},
                       {static_cast<uint32_t>(i)}});
  }
  std::string in = dir.path() + "/in.rec";
  (void)mapreduce::WriteRecordFile(in, records);
  std::string out = dir.path() + "/out.rec";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mapreduce::SortRecordFile(in, out, dir.path(), 4096));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExternalSort)->Range(1 << 10, 1 << 15);

}  // namespace
}  // namespace s2rdf

BENCHMARK_MAIN();
