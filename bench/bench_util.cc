#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/strings.h"

namespace s2rdf::bench {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  double parsed = 0.0;
  if (!ParseDouble(value, &parsed)) return fallback;
  return parsed;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  long long parsed = 0;
  if (!ParseInt64(value, &parsed)) return fallback;
  return static_cast<int>(parsed);
}

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double MeanMs(int repetitions, const std::function<void()>& fn) {
  double total = 0.0;
  for (int i = 0; i < repetitions; ++i) total += TimeMs(fn);
  return total / repetitions;
}

std::string InstantiateFor(const watdiv::QueryTemplate& tmpl,
                           double scale_factor, uint64_t round) {
  SplitMix64 rng(HashCombine(Fnv1a64(tmpl.name), round));
  return watdiv::InstantiateQuery(tmpl, scale_factor, &rng);
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::fprintf(out, "%-*s ", static_cast<int>(widths[i] + 1), cell.c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = headers_.size() + 1;
  for (size_t w : widths) total += w + 1;
  std::fprintf(out, "%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FormatMs(double ms) {
  char buf[64];
  if (ms >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", ms);
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
  }
  return buf;
}

std::string FormatCount(uint64_t n) {
  if (n >= 10000000) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
    return buf;
  }
  if (n >= 10000) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
    return buf;
  }
  return std::to_string(n);
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2fMB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / (1ull << 10));
  }
  return buf;
}

void PrintBarChart(const std::string& title,
                   const std::vector<std::pair<std::string, double>>& series,
                   const std::string& unit, bool log_scale) {
  if (series.empty()) return;
  std::printf("\n%s\n", title.c_str());
  double max_value = 0.0;
  size_t label_width = 0;
  for (const auto& [label, value] : series) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  if (max_value <= 0.0) max_value = 1.0;
  constexpr int kWidth = 50;
  for (const auto& [label, value] : series) {
    double fraction;
    if (log_scale) {
      // Map [1, max] to [0, 1] logarithmically; values below 1 clamp.
      double v = value < 1.0 ? 1.0 : value;
      double m = max_value < 1.0 ? 1.0 : max_value;
      fraction = m <= 1.0 ? 0.0 : std::log(v) / std::log(m);
    } else {
      fraction = value / max_value;
    }
    int bars = static_cast<int>(fraction * kWidth + 0.5);
    std::printf("  %-*s |%-*s %s %s\n", static_cast<int>(label_width),
                label.c_str(), kWidth,
                std::string(static_cast<size_t>(bars), '#').c_str(),
                FormatMs(value).c_str(), unit.c_str());
  }
}

void CategoryMeans::Add(const std::string& category, double value) {
  auto& [sum, count] = sums_[category];
  sum += value;
  ++count;
}

std::vector<std::pair<std::string, double>> CategoryMeans::Means() const {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [category, sum_count] : sums_) {
    out.emplace_back(category, sum_count.first / sum_count.second);
  }
  return out;
}

}  // namespace s2rdf::bench
