// Reproduces Table 6 / Fig. 16 of the paper: the effect of the ExtVP
// selectivity-factor threshold on store size (tables, tuples, bytes) and
// on query runtimes per Basic Testing category, relative to the
// VP-only baseline (threshold 0) and the unthresholded ExtVP
// (threshold 1).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

struct ThresholdReport {
  double threshold = 0.0;
  uint64_t tables = 0;
  uint64_t tuples = 0;
  uint64_t bytes = 0;
  // Mean modeled runtime per category (L/S/F/C) and total.
  std::map<std::string, double> runtime_ms;
};

int Main() {
  std::printf(
      "== Table 6 / Fig. 16: ExtVP selectivity-factor threshold ==\n\n");
  double sf = EnvDouble("S2RDF_BENCH_SF", 1.0);
  int rounds = EnvInt("S2RDF_BENCH_ROUNDS", 2);
  watdiv::GeneratorOptions gen;
  gen.scale_factor = sf;

  const double thresholds[] = {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0};
  std::vector<ThresholdReport> reports;

  for (double threshold : thresholds) {
    ThresholdReport report;
    report.threshold = threshold;
    core::S2RdfOptions options;
    options.sf_threshold = threshold;
    options.build_extvp = threshold > 0.0;
    auto db = core::S2Rdf::Create(watdiv::Generate(gen), options);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    report.tables = (*db)->catalog().NumMaterializedTables();
    report.tuples = (*db)->catalog().TotalTuples();
    report.bytes = (*db)->catalog().TotalBytes();

    CategoryMeans means;
    for (const watdiv::QueryTemplate& tmpl :
         watdiv::BasicTestingQueries()) {
      for (int round = 0; round < rounds; ++round) {
        std::string query = InstantiateFor(tmpl, sf, round);
        auto result = (*db)->Execute(query, core::Layout::kExtVp);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: %s\n", tmpl.name.c_str(),
                       result.status().ToString().c_str());
          continue;
        }
        means.Add(tmpl.category, result->millis);
        means.Add("Total", result->millis);
      }
    }
    for (const auto& [category, value] : means.Means()) {
      report.runtime_ms[category] = value;
    }
    reports.push_back(std::move(report));
  }

  std::printf("dataset: WatDiv-like SF %.2f\n\n", sf);
  TablePrinter sizes({"SF TH", "# tables", "# tuples", "store size",
                      "size % of TH=1"});
  const double full_bytes = static_cast<double>(reports.back().bytes);
  for (const ThresholdReport& r : reports) {
    char th[16];
    std::snprintf(th, sizeof(th), "%.2f", r.threshold);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  100.0 * static_cast<double>(r.bytes) / full_bytes);
    sizes.AddRow({th, std::to_string(r.tables), FormatCount(r.tuples),
                  FormatBytes(r.bytes), pct});
  }
  sizes.Print();

  std::printf("\nMean runtimes per category (ms), by threshold:\n");
  TablePrinter runtimes({"SF TH", "L", "S", "F", "C", "Total",
                         "runtime % of TH=0"});
  const double base_total = reports.front().runtime_ms["Total"];
  for (ThresholdReport& r : reports) {
    char th[16];
    std::snprintf(th, sizeof(th), "%.2f", r.threshold);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  100.0 * r.runtime_ms["Total"] / base_total);
    runtimes.AddRow({th, FormatMs(r.runtime_ms["L"]),
                     FormatMs(r.runtime_ms["S"]),
                     FormatMs(r.runtime_ms["F"]),
                     FormatMs(r.runtime_ms["C"]),
                     FormatMs(r.runtime_ms["Total"]), pct});
  }
  runtimes.Print();

  // Fig. 16 rendering: relative size and runtime per threshold.
  std::vector<std::pair<std::string, double>> size_series;
  std::vector<std::pair<std::string, double>> runtime_series;
  for (ThresholdReport& r : reports) {
    char th[16];
    std::snprintf(th, sizeof(th), "TH=%.2f", r.threshold);
    size_series.emplace_back(th,
                             100.0 * static_cast<double>(r.bytes) /
                                 full_bytes);
    runtime_series.emplace_back(th,
                                100.0 * r.runtime_ms["Total"] / base_total);
  }
  PrintBarChart("Fig. 16a (store size, % of TH=1):", size_series, "%",
                /*log_scale=*/false);
  PrintBarChart("Fig. 16b (runtime, % of TH=0):", runtime_series, "%",
                /*log_scale=*/false);

  std::printf(
      "\nPaper reference (SF10000): threshold 0.25 keeps ~25%% of the\n"
      "tuples/storage of unthresholded ExtVP while delivering ~95%% of\n"
      "its runtime improvement; categories L/S/C plateau at TH=0.25,\n"
      "only F profits noticeably from larger thresholds (F3, F5).\n");
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Main(); }
