// Profiling overhead: the EXPLAIN ANALYZE machinery (operator spans,
// scan provenance, metric deltas, task spans) must be effectively free.
// Each workload query runs with collect_profile off and on; the min
// over the rounds (the least-noisy statistic for an overhead bound)
// must satisfy
//
//   profiled_min <= unprofiled_min * 1.05 + 2.0 ms
//
// i.e. at most 5% relative overhead with a 2 ms absolute allowance for
// sub-millisecond queries where 5% is below timer noise. A violation
// fails the harness (exit 1) — the budget is part of the gate, not an
// informational number.
//
// Output: human-readable table on stderr, JSON on stdout
// (scripts/bench_json.sh captures it as BENCH_profile.json).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/task_pool.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

struct Entry {
  std::string name;
  double unprofiled_ms = 0.0;  // min over rounds
  double profiled_ms = 0.0;    // min over rounds
  bool within_budget = false;

  double OverheadPct() const {
    return unprofiled_ms > 0.0
               ? (profiled_ms - unprofiled_ms) / unprofiled_ms * 100.0
               : 0.0;
  }
};

constexpr double kRelativeBudget = 1.05;  // <5% overhead ...
constexpr double kAbsoluteSlackMs = 2.0;  // ... plus timer-noise floor.

int Run() {
  const int reps = EnvInt("S2RDF_BENCH_ROUNDS", 5);
  watdiv::GeneratorOptions gen;
  gen.scale_factor = EnvDouble("S2RDF_BENCH_SF", 1.0);

  auto db = core::S2Rdf::Create(watdiv::Generate(gen), {});
  if (!db.ok()) {
    std::fprintf(stderr, "store build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  std::vector<Entry> entries;
  for (const char* name : {"L2", "S3", "F3", "C3", "ST-1-1"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    if (tmpl == nullptr) continue;
    core::QueryRequest request;
    request.query = InstantiateFor(*tmpl, gen.scale_factor, 0);

    Entry entry;
    entry.name = name;
    bool ok = true;
    for (bool profile : {false, true}) {
      request.options.collect_profile = profile;
      double best = 0.0;
      for (int r = 0; r < reps && ok; ++r) {
        double ms = 0.0;
        auto result = (*db)->Execute(request);
        if (!result.ok()) {
          ok = false;
          break;
        }
        ms = result->millis;
        best = r == 0 ? ms : std::min(best, ms);
      }
      (profile ? entry.profiled_ms : entry.unprofiled_ms) = best;
    }
    if (!ok) continue;
    entry.within_budget =
        entry.profiled_ms <=
        entry.unprofiled_ms * kRelativeBudget + kAbsoluteSlackMs;
    entries.push_back(std::move(entry));
  }

  TablePrinter printer(
      {"query", "unprofiled", "profiled", "overhead", "within budget"});
  bool all_within = true;
  for (const Entry& e : entries) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%+.1f%%", e.OverheadPct());
    printer.AddRow({e.name, FormatMs(e.unprofiled_ms),
                    FormatMs(e.profiled_ms), pct,
                    e.within_budget ? "yes" : "NO"});
    all_within = all_within && e.within_budget;
  }
  std::fprintf(stderr, "Profiling overhead (min of %d rounds):\n", reps);
  printer.Print(stderr);

  std::printf("{\n");
  std::printf("  \"task_pool_parallelism\": %zu,\n",
              TaskPool::Shared()->ParallelismWidth());
  std::printf("  \"rounds\": %d,\n", reps);
  std::printf("  \"budget\": \"profiled <= unprofiled * %.2f + %.1f ms\",\n",
              kRelativeBudget, kAbsoluteSlackMs);
  std::printf("  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::printf("    {\"name\": \"%s\", \"unprofiled_ms\": %.3f, "
                "\"profiled_ms\": %.3f, \"overhead_pct\": %.2f, "
                "\"within_budget\": %s}%s\n",
                e.name.c_str(), e.unprofiled_ms, e.profiled_ms,
                e.OverheadPct(), e.within_budget ? "true" : "false",
                i + 1 < entries.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"all_within_budget\": %s\n}\n",
              all_within ? "true" : "false");

  return all_within && !entries.empty() ? 0 : 1;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Run(); }
