// Reproduces Fig. 13 / Table 3 of the paper: the WatDiv Selectivity
// Testing (ST) workload comparing S2RDF over ExtVP against S2RDF over
// plain VP, plus the ExtVP selectivity factors the workload was designed
// around (paper Appendix B) side by side with their measured values.

#include <cstdio>
#include <optional>
#include <string>

#include "bench/bench_util.h"
#include "core/layout_names.h"
#include "core/s2rdf.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"
#include "watdiv/schema.h"

namespace s2rdf::bench {
namespace {

std::string FullIri(const std::string& prefixed) {
  size_t colon = prefixed.find(':');
  std::string prefix = prefixed.substr(0, colon);
  std::string local = prefixed.substr(colon + 1);
  std::string ns;
  if (prefix == "wsdbm") {
    ns = watdiv::kWsdbm;
  } else if (prefix == "sorg") {
    ns = watdiv::kSorg;
  } else if (prefix == "rev") {
    ns = watdiv::kRev;
  } else if (prefix == "foaf") {
    ns = watdiv::kFoaf;
  } else if (prefix == "mo") {
    ns = watdiv::kMo;
  }
  return "<" + ns + local + ">";
}

int Main() {
  std::printf(
      "== Table 3 / Fig. 13: WatDiv Selectivity Testing, ExtVP vs VP ==\n\n");
  double sf = EnvDouble("S2RDF_BENCH_SF", 1.0);
  int repetitions = EnvInt("S2RDF_BENCH_REPS", 3);

  watdiv::GeneratorOptions gen;
  gen.scale_factor = sf;
  core::S2RdfOptions options;
  auto db = core::S2Rdf::Create(watdiv::Generate(gen), options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: WatDiv-like SF %.2f, %llu triples\n\n", sf,
              static_cast<unsigned long long>((*db)->graph().NumTriples()));

  // --- Measured vs designed ExtVP selectivities -------------------------
  struct SfCheck {
    const char* correlation;
    const char* p1;
    const char* p2;
    double paper_sf;
  };
  const SfCheck checks[] = {
      {"OS", "wsdbm:friendOf", "sorg:email", 0.90},
      {"OS", "wsdbm:friendOf", "foaf:age", 0.50},
      {"OS", "wsdbm:friendOf", "sorg:jobTitle", 0.05},
      {"SO", "sorg:email", "wsdbm:friendOf", 1.00},
      {"SO", "wsdbm:friendOf", "wsdbm:follows", 0.90},
      {"OS", "wsdbm:follows", "wsdbm:friendOf", 0.40},
      {"SO", "wsdbm:friendOf", "rev:reviewer", 0.31},
      {"SO", "wsdbm:friendOf", "sorg:author", 0.04},
      {"OS", "wsdbm:follows", "wsdbm:likes", 0.24},
      {"SO", "wsdbm:likes", "wsdbm:follows", 0.90},
      {"SS", "wsdbm:friendOf", "sorg:email", 0.90},
      {"SS", "wsdbm:friendOf", "wsdbm:follows", 0.77},
      {"SS", "wsdbm:follows", "wsdbm:friendOf", 0.40},
      {"OS", "wsdbm:friendOf", "sorg:language", 0.00},
      {"OS", "wsdbm:follows", "sorg:language", 0.00},
  };
  TablePrinter sf_table(
      {"correlation", "p1", "p2", "paper SF", "measured SF"});
  const rdf::Dictionary& dict = (*db)->graph().dictionary();
  for (const SfCheck& check : checks) {
    std::string measured = "0 (empty)";
    std::optional<rdf::TermId> p1 = dict.Find(FullIri(check.p1));
    std::optional<rdf::TermId> p2 = dict.Find(FullIri(check.p2));
    if (p1.has_value() && p2.has_value()) {
      core::Correlation corr = std::string(check.correlation) == "OS"
                                   ? core::Correlation::kOS
                               : std::string(check.correlation) == "SO"
                                   ? core::Correlation::kSO
                                   : core::Correlation::kSS;
      const storage::TableStats* stats = (*db)->catalog().GetStats(
          core::ExtVpTableName(dict, corr, *p1, *p2));
      if (stats != nullptr) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", stats->selectivity);
        measured = buf;
      }
    }
    char paper[32];
    std::snprintf(paper, sizeof(paper), "%.2f", check.paper_sf);
    sf_table.AddRow(
        {check.correlation, check.p1, check.p2, paper, measured});
  }
  sf_table.Print();

  // --- ST query runtimes: ExtVP vs VP -----------------------------------
  std::printf("\n");
  TablePrinter runtime_table({"query", "ExtVP ms", "VP ms", "speedup",
                              "ExtVP input", "VP input", "rows"});
  std::vector<std::pair<std::string, double>> speedups;
  for (const watdiv::QueryTemplate& tmpl :
       watdiv::SelectivityTestingQueries()) {
    std::string query = InstantiateFor(tmpl, sf, 0);
    double extvp_ms = 0;
    double vp_ms = 0;
    uint64_t extvp_input = 0;
    uint64_t vp_input = 0;
    uint64_t rows = 0;
    extvp_ms = MeanMs(repetitions, [&] {
      auto result = (*db)->Execute(query, core::Layout::kExtVp);
      if (result.ok()) {
        extvp_input = result->metrics.input_tuples;
        rows = result->table.NumRows();
      }
    });
    vp_ms = MeanMs(repetitions, [&] {
      auto result = (*db)->Execute(query, core::Layout::kVp);
      if (result.ok()) vp_input = result->metrics.input_tuples;
    });
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  extvp_ms > 0 ? vp_ms / extvp_ms : 0.0);
    speedups.emplace_back(tmpl.name, extvp_ms > 0 ? vp_ms / extvp_ms : 0.0);
    runtime_table.AddRow({tmpl.name, FormatMs(extvp_ms), FormatMs(vp_ms),
                          speedup, FormatCount(extvp_input),
                          FormatCount(vp_input), FormatCount(rows)});
  }
  runtime_table.Print();
  PrintBarChart("Fig. 13 (VP/ExtVP speedup per ST query):", speedups, "x",
                /*log_scale=*/false);

  std::printf(
      "\nPaper reference (SF10000): ExtVP beats VP by ~14x (ST-1-3), ~18x\n"
      "(ST-3-3), ~4x on small-input variants; ST-8-x answer in 0 ms from\n"
      "statistics alone while VP computes large dangling intermediate\n"
      "results. The expected shape: speedup grows as the designed SF\n"
      "shrinks, and ExtVP never reads more input than VP.\n");
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Main(); }
