#ifndef S2RDF_BENCH_ENGINE_SUITE_H_
#define S2RDF_BENCH_ENGINE_SUITE_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/h2rdf_engine.h"
#include "baselines/mr_sparql_engine.h"
#include "baselines/sempala_engine.h"
#include "common/file_util.h"
#include "common/status.h"
#include "core/s2rdf.h"
#include "rdf/graph.h"

// The six systems compared in the paper's Figs. 14/15 (Tables 4/5),
// instantiated over one dataset:
//
//   S2RDF-ExtVP   — the paper's system
//   S2RDF-VP      — same engine, plain vertical partitioning
//   Sempala-PT    — property-table engine (Impala analogue)
//   H2RDF-Index   — adaptive permutation-index engine (HBase analogue)
//   PigSPARQL-MR  — multi-join MapReduce
//   SHARD-MR      — clause-iteration MapReduce
//
// MapReduce cluster job-launch latency has no laptop equivalent, so MR
// runtimes are reported as measured wall-clock plus `jobs x
// mr_job_overhead_ms` (default 2000 ms per job, configurable through
// S2RDF_BENCH_MR_OVERHEAD_MS; the paper's cluster showed 20-60 s per
// job). Centralized engines report raw wall-clock.

namespace s2rdf::bench {

struct RunOutcome {
  double modeled_ms = 0.0;   // Wall + modeled job overhead.
  double measured_ms = 0.0;  // Raw wall-clock.
  uint64_t rows = 0;
  uint64_t mr_jobs = 0;
  bool supported = true;  // False when an engine cannot run the query.
};

class EngineSuite {
 public:
  // Builds all six engines over `graph` (moved in).
  static StatusOr<std::unique_ptr<EngineSuite>> Create(
      rdf::Graph graph, double mr_job_overhead_ms);

  static const std::vector<std::string>& EngineNames();

  // Runs `query` on engine `name`.
  StatusOr<RunOutcome> Run(const std::string& name, const std::string& query);

  core::S2Rdf& s2rdf() { return *s2rdf_; }
  const rdf::Graph& graph() const { return graph_; }

 private:
  EngineSuite() : mr_dir_(std::make_unique<ScopedTempDir>()) {}

  rdf::Graph graph_;
  double mr_job_overhead_ms_ = 2000.0;
  std::unique_ptr<core::S2Rdf> s2rdf_;
  std::unique_ptr<baselines::SempalaEngine> sempala_;
  std::unique_ptr<baselines::H2RdfEngine> h2rdf_;
  std::unique_ptr<ScopedTempDir> mr_dir_;
  std::unique_ptr<baselines::MrSparqlEngine> shard_;
  std::unique_ptr<baselines::MrSparqlEngine> pigsparql_;
};

}  // namespace s2rdf::bench

#endif  // S2RDF_BENCH_ENGINE_SUITE_H_
