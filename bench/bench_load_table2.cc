// Reproduces Table 2 of the paper: load times, tuple counts, store sizes
// and table counts for VP/ExtVP and the competitor layouts, across a
// sweep of WatDiv scale factors.
//
// Scale note: the paper ran WatDiv SF10..SF10000 (1M..1.1B triples) on a
// 10-node cluster. This harness defaults to SF {0.1, 0.3, 1} of our
// generator (~7.5K..75K triples); set S2RDF_BENCH_SF_MAX to raise the
// sweep. The *ratios* (ExtVP/VP tuple blow-up, table counts, relative
// sizes) are the reproduction target.

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/permutation_index.h"
#include "baselines/sempala_engine.h"
#include "bench/bench_util.h"
#include "common/file_util.h"
#include "core/layouts.h"
#include "rdf/ntriples.h"
#include "storage/catalog.h"
#include "watdiv/generator.h"

namespace s2rdf::bench {
namespace {

struct SfReport {
  double sf;
  uint64_t original_tuples = 0;
  uint64_t vp_tuples = 0;
  uint64_t extvp_tuples = 0;
  uint64_t original_bytes = 0;
  uint64_t vp_bytes = 0;
  uint64_t extvp_bytes = 0;
  uint64_t h2rdf_tuples = 0;
  uint64_t sempala_pt_rows = 0;
  double vp_load_s = 0;
  double extvp_load_s = 0;
  double h2rdf_load_s = 0;
  double sempala_load_s = 0;
  uint64_t vp_tables = 0;
  uint64_t extvp_tables = 0;
  uint64_t extvp_empty = 0;
  uint64_t extvp_sf1 = 0;
};

SfReport MeasureScaleFactor(double sf) {
  SfReport report;
  report.sf = sf;
  watdiv::GeneratorOptions gen;
  gen.scale_factor = sf;
  rdf::Graph graph = watdiv::Generate(gen);
  report.original_tuples = graph.NumTriples();
  report.original_bytes = rdf::WriteNTriples(graph).size();

  ScopedTempDir dir;
  storage::Catalog catalog(dir.path());
  report.vp_load_s =
      TimeMs([&] { (void)core::BuildVpLayout(graph, &catalog); }) / 1000.0;
  report.vp_tables = catalog.NumMaterializedTables();
  report.vp_tuples = catalog.TotalTuples();
  report.vp_bytes = catalog.TotalBytes();

  core::ExtVpOptions extvp_options;  // No SF threshold.
  auto extvp_stats = core::BuildExtVpLayout(graph, extvp_options, &catalog);
  if (!extvp_stats.ok()) {
    std::fprintf(stderr, "ExtVP build failed: %s\n",
                 extvp_stats.status().ToString().c_str());
    return report;
  }
  report.extvp_load_s = extvp_stats->build_seconds;
  report.extvp_tables = extvp_stats->tables_materialized;
  report.extvp_empty = extvp_stats->tables_empty;
  report.extvp_sf1 = extvp_stats->tables_equal_vp;
  report.extvp_tuples = report.vp_tuples + extvp_stats->tuples_materialized;
  report.extvp_bytes = catalog.TotalBytes();

  report.h2rdf_load_s = TimeMs([&] {
                          baselines::PermutationIndexStore store(graph);
                          report.h2rdf_tuples = store.TotalIndexTuples();
                        }) /
                        1000.0;

  report.sempala_load_s =
      TimeMs([&] {
        baselines::SempalaOptions options;
        auto engine = baselines::SempalaEngine::Create(&graph, options);
        if (engine.ok()) {
          report.sempala_pt_rows = (*engine)->build_stats().pt_rows;
        }
      }) /
      1000.0;
  return report;
}

int Main() {
  std::printf(
      "== Table 2: WatDiv load times and store sizes "
      "(paper Sec. 7, Table 2) ==\n\n");
  double max_sf = EnvDouble("S2RDF_BENCH_SF_MAX", 1.0);
  std::vector<double> sweep;
  for (double sf : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    if (sf <= max_sf) sweep.push_back(sf);
  }

  std::vector<SfReport> reports;
  for (double sf : sweep) reports.push_back(MeasureScaleFactor(sf));

  std::vector<std::string> headers = {"metric"};
  for (const SfReport& r : reports) {
    headers.push_back("SF" + std::to_string(r.sf).substr(0, 4));
  }
  TablePrinter table(headers);
  auto row = [&](const std::string& name,
                 const std::function<std::string(const SfReport&)>& cell) {
    std::vector<std::string> cells = {name};
    for (const SfReport& r : reports) cells.push_back(cell(r));
    table.AddRow(std::move(cells));
  };

  row("tuples original",
      [](const SfReport& r) { return FormatCount(r.original_tuples); });
  row("tuples VP",
      [](const SfReport& r) { return FormatCount(r.vp_tuples); });
  row("tuples ExtVP",
      [](const SfReport& r) { return FormatCount(r.extvp_tuples); });
  row("ExtVP/VP tuple ratio", [](const SfReport& r) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx",
                  static_cast<double>(r.extvp_tuples) /
                      static_cast<double>(r.vp_tuples));
    return std::string(buf);
  });
  row("size original (N-Triples)",
      [](const SfReport& r) { return FormatBytes(r.original_bytes); });
  row("size VP", [](const SfReport& r) { return FormatBytes(r.vp_bytes); });
  row("size VP+ExtVP",
      [](const SfReport& r) { return FormatBytes(r.extvp_bytes); });
  row("tuples H2RDF (6 indexes)",
      [](const SfReport& r) { return FormatCount(r.h2rdf_tuples); });
  row("rows Sempala PT",
      [](const SfReport& r) { return FormatCount(r.sempala_pt_rows); });
  row("load VP (s)", [](const SfReport& r) {
    return FormatMs(r.vp_load_s * 1000.0) + "ms";
  });
  row("load ExtVP (s)", [](const SfReport& r) {
    return FormatMs(r.extvp_load_s * 1000.0) + "ms";
  });
  row("load H2RDF (s)", [](const SfReport& r) {
    return FormatMs(r.h2rdf_load_s * 1000.0) + "ms";
  });
  row("load Sempala (s)", [](const SfReport& r) {
    return FormatMs(r.sempala_load_s * 1000.0) + "ms";
  });
  row("tables VP",
      [](const SfReport& r) { return std::to_string(r.vp_tables); });
  row("tables ExtVP (0<SF<1)",
      [](const SfReport& r) { return std::to_string(r.extvp_tables); });
  row("tables ExtVP empty (SF=0)",
      [](const SfReport& r) { return std::to_string(r.extvp_empty); });
  row("tables ExtVP equal VP (SF=1)",
      [](const SfReport& r) { return std::to_string(r.extvp_sf1); });
  table.Print();

  std::printf(
      "\nPaper reference (SF10000): ExtVP = ~11x VP tuples; >90%% of\n"
      "potential ExtVP tables empty or equal to VP and hence not stored;\n"
      "ExtVP load dominated by semi-join precomputation (56x VP load).\n");
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Main(); }
