// Reproduces Fig. 14 / Table 4 of the paper: the WatDiv Basic Testing
// use case (L1-L5, S1-S7, F1-F5, C1-C3) across all six systems, with
// arithmetic-mean runtimes per query and per category.
//
// Scale note: the paper's headline numbers are at SF10000 (1.1B triples,
// 10-node cluster); this harness defaults to our generator's SF 0.3
// (~22K triples). The reproduction target is the *ordering*: S2RDF-ExtVP
// fastest in every category, S2RDF-VP close behind, Sempala and
// centralized H2RDF competitive on selective/star queries, and the
// MapReduce systems orders of magnitude slower once per-job latency is
// accounted.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/engine_suite.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

int Main() {
  std::printf(
      "== Table 4 / Fig. 14: WatDiv Basic Testing across systems ==\n\n");
  double sf = EnvDouble("S2RDF_BENCH_SF", 1.0);
  double mr_overhead = EnvDouble("S2RDF_BENCH_MR_OVERHEAD_MS", 2000.0);
  int rounds = EnvInt("S2RDF_BENCH_ROUNDS", 3);

  watdiv::GeneratorOptions gen;
  gen.scale_factor = sf;
  auto suite = EngineSuite::Create(watdiv::Generate(gen), mr_overhead);
  if (!suite.ok()) {
    std::fprintf(stderr, "%s\n", suite.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "dataset: WatDiv-like SF %.2f, %llu triples; %d template rounds;\n"
      "MR job overhead modeled at %.0f ms/job\n\n",
      sf, static_cast<unsigned long long>((*suite)->graph().NumTriples()),
      rounds, mr_overhead);

  std::vector<std::string> headers = {"query", "rows"};
  for (const std::string& name : EngineSuite::EngineNames()) {
    headers.push_back(name);
  }
  TablePrinter table(headers);
  std::map<std::string, CategoryMeans> by_category;
  uint64_t extvp_input_total = 0;
  uint64_t vp_input_total = 0;

  for (const watdiv::QueryTemplate& tmpl : watdiv::BasicTestingQueries()) {
    std::map<std::string, double> totals;
    uint64_t rows = 0;
    for (int round = 0; round < rounds; ++round) {
      std::string query = InstantiateFor(tmpl, sf, round);
      for (const std::string& name : EngineSuite::EngineNames()) {
        auto outcome = (*suite)->Run(name, query);
        if (!outcome.ok()) {
          std::fprintf(stderr, "%s on %s: %s\n", name.c_str(),
                       tmpl.name.c_str(),
                       outcome.status().ToString().c_str());
          continue;
        }
        totals[name] += outcome->modeled_ms;
        if (name == "S2RDF-ExtVP") rows = outcome->rows;
      }
      // Meter the paper's input-size mechanism on the S2RDF layouts.
      auto extvp = (*suite)->s2rdf().Execute(query, core::Layout::kExtVp);
      auto vp = (*suite)->s2rdf().Execute(query, core::Layout::kVp);
      if (extvp.ok()) extvp_input_total += extvp->metrics.input_tuples;
      if (vp.ok()) vp_input_total += vp->metrics.input_tuples;
    }
    std::vector<std::string> cells = {tmpl.name, FormatCount(rows)};
    for (const std::string& name : EngineSuite::EngineNames()) {
      double am = totals[name] / rounds;
      by_category[name].Add(tmpl.category, am);
      by_category[name].Add("Total", am);
      cells.push_back(FormatMs(am));
    }
    table.AddRow(std::move(cells));
  }
  table.Print();

  std::printf("\nArithmetic means per category (paper's AM-L/S/F/C/T):\n");
  TablePrinter means({"engine", "AM-L", "AM-S", "AM-F", "AM-C", "AM-Total"});
  for (const std::string& name : EngineSuite::EngineNames()) {
    std::map<std::string, double> am;
    for (const auto& [category, value] : by_category[name].Means()) {
      am[category] = value;
    }
    means.AddRow({name, FormatMs(am["L"]), FormatMs(am["S"]),
                  FormatMs(am["F"]), FormatMs(am["C"]),
                  FormatMs(am["Total"])});
  }
  means.Print();

  // Fig. 14 rendering: AM-Total per system on a log axis.
  std::vector<std::pair<std::string, double>> series;
  for (const std::string& name : EngineSuite::EngineNames()) {
    std::map<std::string, double> am;
    for (const auto& [category, value] : by_category[name].Means()) {
      am[category] = value;
    }
    series.emplace_back(name, am["Total"]);
  }
  PrintBarChart("Fig. 14 (AM-Total per system, log scale):", series, "ms",
                /*log_scale=*/true);

  std::printf(
      "\nInput-size mechanism (the quantity ExtVP optimizes): total base\n"
      "tuples read across the workload: ExtVP %s vs VP %s (%.0f%%).\n",
      FormatCount(extvp_input_total).c_str(),
      FormatCount(vp_input_total).c_str(),
      100.0 * static_cast<double>(extvp_input_total) /
          static_cast<double>(vp_input_total == 0 ? 1 : vp_input_total));

  std::printf(
      "\nPaper reference (SF10000 AM-Total, ms): S2RDF-ExtVP 1766,\n"
      "S2RDF-VP 5882, Sempala 10422, H2RDF+ 37866, PigSPARQL 109850,\n"
      "SHARD 783782. Expected shape: same ordering, ExtVP < VP in every\n"
      "category, MR systems dominated by per-job latency.\n");
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Main(); }
