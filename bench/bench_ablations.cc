// Ablations of S2RDF's design choices (DESIGN.md Sec. 5):
//
//   1. Join-order optimization: Algorithm 4 (statistics-driven) vs
//      Algorithm 3 (pattern order) — the paper's Fig. 12.
//   2. Statistics-only empty-result shortcut on/off — paper's ST-8-x.
//   3. Table-selection policy: best-SF ExtVP table vs always-VP — the
//      input-size reduction at the heart of the paper.
//   4. The decision NOT to precompute OO correlations (Sec. 5.2): what
//      materializing them would cost in tuples vs how often the three
//      workloads could even use them.
//   5. The paper's future work, implemented: bit-vector ExtVP with
//      correlation intersection — storage vs the table representation
//      and the extra input reduction the intersection buys.
//   6. The "pay as you go" lazy ExtVP mode Sec. 7 sketches: zero load
//      time, warm-up cost on first use, eager-equivalent steady state.

#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_util.h"
#include "core/s2rdf.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace s2rdf::bench {
namespace {

// Tuples that ExtVP^OO would add if materialized (all ordered predicate
// pairs, excluding SF = 1 tables, mirroring the builder's rules).
uint64_t HypotheticalOoTuples(const rdf::Graph& graph) {
  using rdf::TermId;
  // object -> predicates having it as object.
  std::unordered_map<TermId, std::vector<TermId>> object_preds;
  std::unordered_map<TermId, std::unordered_set<TermId>> seen;
  for (const rdf::Triple& t : graph.triples()) {
    if (seen[t.object].insert(t.predicate).second) {
      object_preds[t.object].push_back(t.predicate);
    }
  }
  std::unordered_map<uint64_t, uint64_t> counts;
  std::unordered_map<TermId, uint64_t> vp_sizes;
  for (const rdf::Triple& t : graph.triples()) {
    ++vp_sizes[t.predicate];
    for (TermId p2 : object_preds[t.object]) {
      if (p2 == t.predicate) continue;  // Self OO would be the VP table.
      ++counts[(static_cast<uint64_t>(t.predicate) << 32) | p2];
    }
  }
  uint64_t total = 0;
  for (const auto& [key, count] : counts) {
    TermId p1 = static_cast<TermId>(key >> 32);
    if (count < vp_sizes[p1]) total += count;  // Skip SF = 1.
  }
  return total;
}

// Number of OO-correlated pattern pairs across all workload queries.
int CountOoCorrelationsInWorkloads(double sf) {
  int count = 0;
  for (const auto* workload :
       {&watdiv::BasicTestingQueries(), &watdiv::SelectivityTestingQueries(),
        &watdiv::IncrementalLinearQueries()}) {
    for (const watdiv::QueryTemplate& tmpl : *workload) {
      SplitMix64 rng(1);
      auto parsed =
          sparql::ParseQuery(watdiv::InstantiateQuery(tmpl, sf, &rng));
      if (!parsed.ok()) continue;
      const auto& bgp = parsed->where.triples;
      for (size_t i = 0; i < bgp.size(); ++i) {
        for (size_t j = i + 1; j < bgp.size(); ++j) {
          if (bgp[i].object.is_variable() && bgp[j].object.is_variable() &&
              bgp[i].object.value == bgp[j].object.value) {
            ++count;
          }
        }
      }
    }
  }
  return count;
}

int Main() {
  std::printf("== Ablations: S2RDF design choices ==\n\n");
  double sf = EnvDouble("S2RDF_BENCH_SF", 1.0);
  int rounds = EnvInt("S2RDF_BENCH_ROUNDS", 2);

  watdiv::GeneratorOptions gen;
  gen.scale_factor = sf;
  core::S2RdfOptions options;
  options.build_extvp_bitmaps = true;
  auto db = core::S2Rdf::Create(watdiv::Generate(gen), options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: WatDiv-like SF %.2f, %llu triples\n\n", sf,
              static_cast<unsigned long long>((*db)->graph().NumTriples()));

  // --- 1. Join-order optimization (Fig. 12) ------------------------------
  std::printf("--- 1. Join order: Algorithm 4 vs Algorithm 3 ---\n");
  TablePrinter join_table({"query", "opt ms", "unopt ms",
                           "opt intermediates", "unopt intermediates",
                           "opt comparisons", "unopt comparisons"});
  for (const watdiv::QueryTemplate& tmpl : watdiv::BasicTestingQueries()) {
    std::string query = InstantiateFor(tmpl, sf, 0);
    core::CompilerOptions opt;
    core::CompilerOptions unopt;
    unopt.optimizer.reorder_joins = false;
    double opt_ms = 0;
    double unopt_ms = 0;
    engine::ExecMetrics opt_metrics;
    engine::ExecMetrics unopt_metrics;
    for (int r = 0; r < rounds; ++r) {
      auto a = (*db)->ExecuteWithOptions(query, opt);
      auto b = (*db)->ExecuteWithOptions(query, unopt);
      if (!a.ok() || !b.ok()) continue;
      opt_ms += a->millis;
      unopt_ms += b->millis;
      opt_metrics = a->metrics;
      unopt_metrics = b->metrics;
    }
    join_table.AddRow({tmpl.name, FormatMs(opt_ms / rounds),
                       FormatMs(unopt_ms / rounds),
                       FormatCount(opt_metrics.intermediate_tuples),
                       FormatCount(unopt_metrics.intermediate_tuples),
                       FormatCount(opt_metrics.join_comparisons),
                       FormatCount(unopt_metrics.join_comparisons)});
  }
  join_table.Print();

  // --- 2. Statistics-only empty-result shortcut --------------------------
  std::printf(
      "\n--- 2. Empty-result shortcut (ST-8-x, paper Sec. 7.1) ---\n");
  TablePrinter empty_table(
      {"query", "shortcut ms", "no-shortcut ms", "no-shortcut input"});
  for (const char* name : {"ST-8-1", "ST-8-2"}) {
    const watdiv::QueryTemplate* tmpl = watdiv::FindQuery(name);
    std::string query = InstantiateFor(*tmpl, sf, 0);
    core::CompilerOptions with;
    core::CompilerOptions without;
    without.use_statistics_shortcut = false;
    auto a = (*db)->ExecuteWithOptions(query, with);
    auto b = (*db)->ExecuteWithOptions(query, without);
    if (!a.ok() || !b.ok()) continue;
    empty_table.AddRow({name, FormatMs(a->millis), FormatMs(b->millis),
                        FormatCount(b->metrics.input_tuples)});
  }
  empty_table.Print();

  // --- 3. Table selection: best-SF vs VP ---------------------------------
  std::printf("\n--- 3. Table selection: input tuples, ExtVP vs VP ---\n");
  uint64_t extvp_input = 0;
  uint64_t vp_input = 0;
  for (const watdiv::QueryTemplate& tmpl : watdiv::BasicTestingQueries()) {
    std::string query = InstantiateFor(tmpl, sf, 0);
    auto a = (*db)->Execute(query, core::Layout::kExtVp);
    auto b = (*db)->Execute(query, core::Layout::kVp);
    if (a.ok()) extvp_input += a->metrics.input_tuples;
    if (b.ok()) vp_input += b->metrics.input_tuples;
  }
  std::printf(
      "Basic Testing total input tuples: ExtVP %s vs VP %s (%.1f%% of "
      "VP)\n",
      FormatCount(extvp_input).c_str(), FormatCount(vp_input).c_str(),
      100.0 * static_cast<double>(extvp_input) /
          static_cast<double>(vp_input));

  // --- 4. OO correlation omission -----------------------------------------
  std::printf("\n--- 4. Omitting OO correlations (Sec. 5.2) ---\n");
  uint64_t oo_tuples = HypotheticalOoTuples((*db)->graph());
  uint64_t extvp_tuples = (*db)->load_stats().extvp_stats.tuples_materialized;
  int oo_uses = CountOoCorrelationsInWorkloads(sf);
  std::printf(
      "Materializing ExtVP^OO would add %s tuples on top of the %s\n"
      "ExtVP tuples (+%.0f%%), while only %d pattern pairs in all three\n"
      "workloads are OO-correlated (and those typically self-join the\n"
      "same predicate, where OO reduces nothing) — the paper's\n"
      "cost-benefit argument for skipping OO.\n",
      FormatCount(oo_tuples).c_str(), FormatCount(extvp_tuples).c_str(),
      100.0 * static_cast<double>(oo_tuples) /
          static_cast<double>(extvp_tuples == 0 ? 1 : extvp_tuples),
      oo_uses);

  // --- 5. Bit-vector ExtVP (Sec. 8 future work, implemented) --------------
  std::printf("\n--- 5. Bit-vector ExtVP + correlation intersection ---\n");
  const core::ExtVpBitmapStore* store = (*db)->bitmap_store();
  uint64_t extvp_bytes = 0;
  for (const storage::TableStats* stats : (*db)->catalog().AllStats()) {
    if (stats->name.rfind("extvp_", 0) == 0) extvp_bytes += stats->bytes;
  }
  std::printf(
      "storage: bitmaps %s across %zu bitmaps vs ExtVP tables %s "
      "(%.1f%% of the table bytes)\n",
      FormatBytes(store->TotalBitmapBytes()).c_str(), store->NumBitmaps(),
      FormatBytes(extvp_bytes).c_str(),
      100.0 * static_cast<double>(store->TotalBitmapBytes()) /
          static_cast<double>(extvp_bytes == 0 ? 1 : extvp_bytes));

  uint64_t table_input = 0;
  uint64_t bitmap_input = 0;
  double table_ms = 0;
  double bitmap_ms = 0;
  for (const auto* workload :
       {&watdiv::BasicTestingQueries(),
        &watdiv::SelectivityTestingQueries()}) {
    for (const watdiv::QueryTemplate& tmpl : *workload) {
      std::string query = InstantiateFor(tmpl, sf, 0);
      auto a = (*db)->Execute(query, core::Layout::kExtVp);
      auto b = (*db)->Execute(query, core::Layout::kExtVpBitmap);
      if (a.ok() && b.ok()) {
        table_input += a->metrics.input_tuples;
        bitmap_input += b->metrics.input_tuples;
        table_ms += a->millis;
        bitmap_ms += b->millis;
      }
    }
  }
  std::printf(
      "input over Basic+ST workloads: intersection %s vs best-single-table "
      "%s (%.1f%%); total runtime %.1f ms vs %.1f ms\n",
      FormatCount(bitmap_input).c_str(), FormatCount(table_input).c_str(),
      100.0 * static_cast<double>(bitmap_input) /
          static_cast<double>(table_input == 0 ? 1 : table_input),
      bitmap_ms, table_ms);

  // --- 6. Lazy ("pay as you go") ExtVP ------------------------------------
  std::printf("\n--- 6. Lazy ExtVP (Sec. 7's pay-as-you-go suggestion) ---\n");
  core::S2RdfOptions lazy_options;
  lazy_options.lazy_extvp = true;
  auto lazy_db = core::S2Rdf::Create(watdiv::Generate(gen), lazy_options);
  if (!lazy_db.ok()) {
    std::fprintf(stderr, "%s\n", lazy_db.status().ToString().c_str());
    return 1;
  }
  auto run_workload = [&](core::S2Rdf& target) {
    double total = 0.0;
    for (const watdiv::QueryTemplate& tmpl :
         watdiv::BasicTestingQueries()) {
      std::string query = InstantiateFor(tmpl, sf, 0);
      auto result = target.Execute(query, core::Layout::kExtVp);
      if (result.ok()) total += result->millis;
    }
    return total;
  };
  double cold_ms = run_workload(**lazy_db);
  uint64_t pairs_after_cold = (*lazy_db)->lazy_pairs_computed();
  double warm_ms = run_workload(**lazy_db);
  double eager_ms = run_workload(**db);
  std::printf(
      "load: eager precomputation %.0f ms vs lazy 0 ms.\n"
      "Basic workload: cold pass %.1f ms (materialized %llu reductions "
      "on the fly), warm pass %.1f ms, eager store %.1f ms.\n"
      "The warm lazy store matches the eager store, as Sec. 7 predicts.\n",
      (*db)->load_stats().extvp_seconds * 1000.0, cold_ms,
      static_cast<unsigned long long>(pairs_after_cold), warm_ms, eager_ms);
  return 0;
}

}  // namespace
}  // namespace s2rdf::bench

int main() { return s2rdf::bench::Main(); }
