# Empty dependencies file for s2rdf_sparql.
# This may be replaced when dependencies are built.
