file(REMOVE_RECURSE
  "libs2rdf_sparql.a"
)
