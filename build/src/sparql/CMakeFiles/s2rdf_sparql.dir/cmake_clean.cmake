file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_sparql.dir/ast.cc.o"
  "CMakeFiles/s2rdf_sparql.dir/ast.cc.o.d"
  "CMakeFiles/s2rdf_sparql.dir/lexer.cc.o"
  "CMakeFiles/s2rdf_sparql.dir/lexer.cc.o.d"
  "CMakeFiles/s2rdf_sparql.dir/parser.cc.o"
  "CMakeFiles/s2rdf_sparql.dir/parser.cc.o.d"
  "CMakeFiles/s2rdf_sparql.dir/results_io.cc.o"
  "CMakeFiles/s2rdf_sparql.dir/results_io.cc.o.d"
  "CMakeFiles/s2rdf_sparql.dir/shape.cc.o"
  "CMakeFiles/s2rdf_sparql.dir/shape.cc.o.d"
  "libs2rdf_sparql.a"
  "libs2rdf_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
