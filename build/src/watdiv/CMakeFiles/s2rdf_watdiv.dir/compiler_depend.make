# Empty compiler generated dependencies file for s2rdf_watdiv.
# This may be replaced when dependencies are built.
