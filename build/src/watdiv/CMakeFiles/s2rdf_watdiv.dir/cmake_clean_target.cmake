file(REMOVE_RECURSE
  "libs2rdf_watdiv.a"
)
