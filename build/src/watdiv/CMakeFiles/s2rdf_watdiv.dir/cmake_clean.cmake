file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_watdiv.dir/generator.cc.o"
  "CMakeFiles/s2rdf_watdiv.dir/generator.cc.o.d"
  "CMakeFiles/s2rdf_watdiv.dir/queries.cc.o"
  "CMakeFiles/s2rdf_watdiv.dir/queries.cc.o.d"
  "CMakeFiles/s2rdf_watdiv.dir/schema.cc.o"
  "CMakeFiles/s2rdf_watdiv.dir/schema.cc.o.d"
  "libs2rdf_watdiv.a"
  "libs2rdf_watdiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_watdiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
