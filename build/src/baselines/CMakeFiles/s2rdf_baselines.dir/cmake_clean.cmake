file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_baselines.dir/centralized_engine.cc.o"
  "CMakeFiles/s2rdf_baselines.dir/centralized_engine.cc.o.d"
  "CMakeFiles/s2rdf_baselines.dir/h2rdf_engine.cc.o"
  "CMakeFiles/s2rdf_baselines.dir/h2rdf_engine.cc.o.d"
  "CMakeFiles/s2rdf_baselines.dir/mr_sparql_engine.cc.o"
  "CMakeFiles/s2rdf_baselines.dir/mr_sparql_engine.cc.o.d"
  "CMakeFiles/s2rdf_baselines.dir/permutation_index.cc.o"
  "CMakeFiles/s2rdf_baselines.dir/permutation_index.cc.o.d"
  "CMakeFiles/s2rdf_baselines.dir/sempala_engine.cc.o"
  "CMakeFiles/s2rdf_baselines.dir/sempala_engine.cc.o.d"
  "libs2rdf_baselines.a"
  "libs2rdf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
