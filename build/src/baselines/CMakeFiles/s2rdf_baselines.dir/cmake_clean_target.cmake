file(REMOVE_RECURSE
  "libs2rdf_baselines.a"
)
