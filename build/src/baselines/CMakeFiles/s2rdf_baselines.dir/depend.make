# Empty dependencies file for s2rdf_baselines.
# This may be replaced when dependencies are built.
