
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/s2rdf_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/s2rdf_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/encoding.cc" "src/storage/CMakeFiles/s2rdf_storage.dir/encoding.cc.o" "gcc" "src/storage/CMakeFiles/s2rdf_storage.dir/encoding.cc.o.d"
  "/root/repo/src/storage/table_file.cc" "src/storage/CMakeFiles/s2rdf_storage.dir/table_file.cc.o" "gcc" "src/storage/CMakeFiles/s2rdf_storage.dir/table_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2rdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/s2rdf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/s2rdf_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
