file(REMOVE_RECURSE
  "libs2rdf_storage.a"
)
