# Empty dependencies file for s2rdf_storage.
# This may be replaced when dependencies are built.
