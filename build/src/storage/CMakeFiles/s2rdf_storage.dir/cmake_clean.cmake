file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_storage.dir/catalog.cc.o"
  "CMakeFiles/s2rdf_storage.dir/catalog.cc.o.d"
  "CMakeFiles/s2rdf_storage.dir/encoding.cc.o"
  "CMakeFiles/s2rdf_storage.dir/encoding.cc.o.d"
  "CMakeFiles/s2rdf_storage.dir/table_file.cc.o"
  "CMakeFiles/s2rdf_storage.dir/table_file.cc.o.d"
  "libs2rdf_storage.a"
  "libs2rdf_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
