file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_rdf.dir/dictionary.cc.o"
  "CMakeFiles/s2rdf_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/s2rdf_rdf.dir/graph.cc.o"
  "CMakeFiles/s2rdf_rdf.dir/graph.cc.o.d"
  "CMakeFiles/s2rdf_rdf.dir/ntriples.cc.o"
  "CMakeFiles/s2rdf_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/s2rdf_rdf.dir/term.cc.o"
  "CMakeFiles/s2rdf_rdf.dir/term.cc.o.d"
  "CMakeFiles/s2rdf_rdf.dir/turtle.cc.o"
  "CMakeFiles/s2rdf_rdf.dir/turtle.cc.o.d"
  "libs2rdf_rdf.a"
  "libs2rdf_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
