# Empty compiler generated dependencies file for s2rdf_rdf.
# This may be replaced when dependencies are built.
