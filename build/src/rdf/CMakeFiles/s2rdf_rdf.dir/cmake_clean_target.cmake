file(REMOVE_RECURSE
  "libs2rdf_rdf.a"
)
