file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_mapreduce.dir/external_sort.cc.o"
  "CMakeFiles/s2rdf_mapreduce.dir/external_sort.cc.o.d"
  "CMakeFiles/s2rdf_mapreduce.dir/job.cc.o"
  "CMakeFiles/s2rdf_mapreduce.dir/job.cc.o.d"
  "CMakeFiles/s2rdf_mapreduce.dir/record.cc.o"
  "CMakeFiles/s2rdf_mapreduce.dir/record.cc.o.d"
  "libs2rdf_mapreduce.a"
  "libs2rdf_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
