
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/external_sort.cc" "src/mapreduce/CMakeFiles/s2rdf_mapreduce.dir/external_sort.cc.o" "gcc" "src/mapreduce/CMakeFiles/s2rdf_mapreduce.dir/external_sort.cc.o.d"
  "/root/repo/src/mapreduce/job.cc" "src/mapreduce/CMakeFiles/s2rdf_mapreduce.dir/job.cc.o" "gcc" "src/mapreduce/CMakeFiles/s2rdf_mapreduce.dir/job.cc.o.d"
  "/root/repo/src/mapreduce/record.cc" "src/mapreduce/CMakeFiles/s2rdf_mapreduce.dir/record.cc.o" "gcc" "src/mapreduce/CMakeFiles/s2rdf_mapreduce.dir/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2rdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2rdf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/s2rdf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/s2rdf_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
