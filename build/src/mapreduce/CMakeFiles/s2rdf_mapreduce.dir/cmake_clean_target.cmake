file(REMOVE_RECURSE
  "libs2rdf_mapreduce.a"
)
