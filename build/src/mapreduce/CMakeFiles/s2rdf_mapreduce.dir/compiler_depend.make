# Empty compiler generated dependencies file for s2rdf_mapreduce.
# This may be replaced when dependencies are built.
