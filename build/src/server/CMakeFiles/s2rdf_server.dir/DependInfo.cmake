
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/http.cc" "src/server/CMakeFiles/s2rdf_server.dir/http.cc.o" "gcc" "src/server/CMakeFiles/s2rdf_server.dir/http.cc.o.d"
  "/root/repo/src/server/sparql_endpoint.cc" "src/server/CMakeFiles/s2rdf_server.dir/sparql_endpoint.cc.o" "gcc" "src/server/CMakeFiles/s2rdf_server.dir/sparql_endpoint.cc.o.d"
  "/root/repo/src/server/worker_pool.cc" "src/server/CMakeFiles/s2rdf_server.dir/worker_pool.cc.o" "gcc" "src/server/CMakeFiles/s2rdf_server.dir/worker_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2rdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/s2rdf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/s2rdf_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2rdf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/s2rdf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/s2rdf_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
