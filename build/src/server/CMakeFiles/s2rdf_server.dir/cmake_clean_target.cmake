file(REMOVE_RECURSE
  "libs2rdf_server.a"
)
