# Empty compiler generated dependencies file for s2rdf_server.
# This may be replaced when dependencies are built.
