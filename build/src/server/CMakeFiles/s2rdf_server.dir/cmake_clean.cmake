file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_server.dir/http.cc.o"
  "CMakeFiles/s2rdf_server.dir/http.cc.o.d"
  "CMakeFiles/s2rdf_server.dir/sparql_endpoint.cc.o"
  "CMakeFiles/s2rdf_server.dir/sparql_endpoint.cc.o.d"
  "CMakeFiles/s2rdf_server.dir/worker_pool.cc.o"
  "CMakeFiles/s2rdf_server.dir/worker_pool.cc.o.d"
  "libs2rdf_server.a"
  "libs2rdf_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
