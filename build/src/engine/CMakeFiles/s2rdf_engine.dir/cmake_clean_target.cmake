file(REMOVE_RECURSE
  "libs2rdf_engine.a"
)
