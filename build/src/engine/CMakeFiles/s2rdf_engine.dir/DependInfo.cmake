
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/aggregate.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/aggregate.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/aggregate.cc.o.d"
  "/root/repo/src/engine/expression.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/expression.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/expression.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/parallel_join.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/parallel_join.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/parallel_join.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/plan.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/plan.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/table.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/engine/CMakeFiles/s2rdf_engine.dir/value.cc.o" "gcc" "src/engine/CMakeFiles/s2rdf_engine.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2rdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/s2rdf_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
