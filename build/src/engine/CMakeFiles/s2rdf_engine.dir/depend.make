# Empty dependencies file for s2rdf_engine.
# This may be replaced when dependencies are built.
