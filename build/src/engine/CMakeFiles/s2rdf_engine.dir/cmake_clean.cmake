file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_engine.dir/aggregate.cc.o"
  "CMakeFiles/s2rdf_engine.dir/aggregate.cc.o.d"
  "CMakeFiles/s2rdf_engine.dir/expression.cc.o"
  "CMakeFiles/s2rdf_engine.dir/expression.cc.o.d"
  "CMakeFiles/s2rdf_engine.dir/operators.cc.o"
  "CMakeFiles/s2rdf_engine.dir/operators.cc.o.d"
  "CMakeFiles/s2rdf_engine.dir/parallel_join.cc.o"
  "CMakeFiles/s2rdf_engine.dir/parallel_join.cc.o.d"
  "CMakeFiles/s2rdf_engine.dir/plan.cc.o"
  "CMakeFiles/s2rdf_engine.dir/plan.cc.o.d"
  "CMakeFiles/s2rdf_engine.dir/table.cc.o"
  "CMakeFiles/s2rdf_engine.dir/table.cc.o.d"
  "CMakeFiles/s2rdf_engine.dir/value.cc.o"
  "CMakeFiles/s2rdf_engine.dir/value.cc.o.d"
  "libs2rdf_engine.a"
  "libs2rdf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
