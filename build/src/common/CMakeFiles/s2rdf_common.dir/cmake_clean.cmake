file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_common.dir/bitmap.cc.o"
  "CMakeFiles/s2rdf_common.dir/bitmap.cc.o.d"
  "CMakeFiles/s2rdf_common.dir/file_util.cc.o"
  "CMakeFiles/s2rdf_common.dir/file_util.cc.o.d"
  "CMakeFiles/s2rdf_common.dir/random.cc.o"
  "CMakeFiles/s2rdf_common.dir/random.cc.o.d"
  "CMakeFiles/s2rdf_common.dir/status.cc.o"
  "CMakeFiles/s2rdf_common.dir/status.cc.o.d"
  "CMakeFiles/s2rdf_common.dir/strings.cc.o"
  "CMakeFiles/s2rdf_common.dir/strings.cc.o.d"
  "libs2rdf_common.a"
  "libs2rdf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
