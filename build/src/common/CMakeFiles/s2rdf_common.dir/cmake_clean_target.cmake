file(REMOVE_RECURSE
  "libs2rdf_common.a"
)
