# Empty dependencies file for s2rdf_common.
# This may be replaced when dependencies are built.
