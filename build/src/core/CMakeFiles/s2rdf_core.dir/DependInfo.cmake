
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compiler.cc" "src/core/CMakeFiles/s2rdf_core.dir/compiler.cc.o" "gcc" "src/core/CMakeFiles/s2rdf_core.dir/compiler.cc.o.d"
  "/root/repo/src/core/extvp_bitmap.cc" "src/core/CMakeFiles/s2rdf_core.dir/extvp_bitmap.cc.o" "gcc" "src/core/CMakeFiles/s2rdf_core.dir/extvp_bitmap.cc.o.d"
  "/root/repo/src/core/layout_names.cc" "src/core/CMakeFiles/s2rdf_core.dir/layout_names.cc.o" "gcc" "src/core/CMakeFiles/s2rdf_core.dir/layout_names.cc.o.d"
  "/root/repo/src/core/layouts.cc" "src/core/CMakeFiles/s2rdf_core.dir/layouts.cc.o" "gcc" "src/core/CMakeFiles/s2rdf_core.dir/layouts.cc.o.d"
  "/root/repo/src/core/s2rdf.cc" "src/core/CMakeFiles/s2rdf_core.dir/s2rdf.cc.o" "gcc" "src/core/CMakeFiles/s2rdf_core.dir/s2rdf.cc.o.d"
  "/root/repo/src/core/table_selection.cc" "src/core/CMakeFiles/s2rdf_core.dir/table_selection.cc.o" "gcc" "src/core/CMakeFiles/s2rdf_core.dir/table_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/s2rdf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/s2rdf_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/s2rdf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/s2rdf_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/s2rdf_sparql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
