file(REMOVE_RECURSE
  "libs2rdf_core.a"
)
