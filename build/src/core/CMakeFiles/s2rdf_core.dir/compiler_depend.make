# Empty compiler generated dependencies file for s2rdf_core.
# This may be replaced when dependencies are built.
