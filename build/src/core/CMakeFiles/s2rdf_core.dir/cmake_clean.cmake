file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_core.dir/compiler.cc.o"
  "CMakeFiles/s2rdf_core.dir/compiler.cc.o.d"
  "CMakeFiles/s2rdf_core.dir/extvp_bitmap.cc.o"
  "CMakeFiles/s2rdf_core.dir/extvp_bitmap.cc.o.d"
  "CMakeFiles/s2rdf_core.dir/layout_names.cc.o"
  "CMakeFiles/s2rdf_core.dir/layout_names.cc.o.d"
  "CMakeFiles/s2rdf_core.dir/layouts.cc.o"
  "CMakeFiles/s2rdf_core.dir/layouts.cc.o.d"
  "CMakeFiles/s2rdf_core.dir/s2rdf.cc.o"
  "CMakeFiles/s2rdf_core.dir/s2rdf.cc.o.d"
  "CMakeFiles/s2rdf_core.dir/table_selection.cc.o"
  "CMakeFiles/s2rdf_core.dir/table_selection.cc.o.d"
  "libs2rdf_core.a"
  "libs2rdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
