# Empty compiler generated dependencies file for sparql_server.
# This may be replaced when dependencies are built.
