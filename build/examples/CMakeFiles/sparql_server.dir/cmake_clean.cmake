file(REMOVE_RECURSE
  "CMakeFiles/sparql_server.dir/sparql_server.cpp.o"
  "CMakeFiles/sparql_server.dir/sparql_server.cpp.o.d"
  "sparql_server"
  "sparql_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
