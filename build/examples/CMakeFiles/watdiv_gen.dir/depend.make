# Empty dependencies file for watdiv_gen.
# This may be replaced when dependencies are built.
