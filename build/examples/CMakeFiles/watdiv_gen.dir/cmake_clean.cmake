file(REMOVE_RECURSE
  "CMakeFiles/watdiv_gen.dir/watdiv_gen.cpp.o"
  "CMakeFiles/watdiv_gen.dir/watdiv_gen.cpp.o.d"
  "watdiv_gen"
  "watdiv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watdiv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
