file(REMOVE_RECURSE
  "../bench/bench_basic_table4"
  "../bench/bench_basic_table4.pdb"
  "CMakeFiles/bench_basic_table4.dir/bench_basic_table4.cc.o"
  "CMakeFiles/bench_basic_table4.dir/bench_basic_table4.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_basic_table4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
