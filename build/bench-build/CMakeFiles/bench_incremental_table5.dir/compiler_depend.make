# Empty compiler generated dependencies file for bench_incremental_table5.
# This may be replaced when dependencies are built.
