file(REMOVE_RECURSE
  "CMakeFiles/s2rdf_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/s2rdf_bench_util.dir/bench_util.cc.o.d"
  "CMakeFiles/s2rdf_bench_util.dir/engine_suite.cc.o"
  "CMakeFiles/s2rdf_bench_util.dir/engine_suite.cc.o.d"
  "libs2rdf_bench_util.a"
  "libs2rdf_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2rdf_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
