file(REMOVE_RECURSE
  "libs2rdf_bench_util.a"
)
