# Empty dependencies file for s2rdf_bench_util.
# This may be replaced when dependencies are built.
