file(REMOVE_RECURSE
  "../bench/bench_sf_threshold_table6"
  "../bench/bench_sf_threshold_table6.pdb"
  "CMakeFiles/bench_sf_threshold_table6.dir/bench_sf_threshold_table6.cc.o"
  "CMakeFiles/bench_sf_threshold_table6.dir/bench_sf_threshold_table6.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sf_threshold_table6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
