# Empty dependencies file for bench_sf_threshold_table6.
# This may be replaced when dependencies are built.
