# Empty dependencies file for bench_selectivity_table3.
# This may be replaced when dependencies are built.
