# Empty compiler generated dependencies file for watdiv_test.
# This may be replaced when dependencies are built.
