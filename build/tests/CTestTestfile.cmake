# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mapreduce_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/watdiv_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/turtle_test[1]_include.cmake")
include("/root/repo/build/tests/results_io_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/concurrency_test[1]_include.cmake")
