#!/usr/bin/env bash
# Local CI gate: runs the full verification matrix described in
# DESIGN.md §7. Usage:
#
#   scripts/check.sh          # everything (release, lint, analyze, sanitizers)
#   scripts/check.sh quick    # release build + full ctest + lint only
#
# Each leg is independent; the script fails fast on the first broken
# one. The `analyze` leg needs clang++ (thread-safety analysis) and is
# skipped with a notice when it is not installed.

set -euo pipefail
cd "$(dirname "$0")/.."

note() { printf '\n== %s ==\n' "$*"; }

note "release build + full test suite"
cmake --preset default >/dev/null
cmake --build --preset default -j"$(nproc)"
ctest --preset default

note "repo linter (ctest -L lint)"
ctest --preset lint

note "whole-program analysis (layering, lock-order, interrupt-coverage, status-discipline)"
./build/tools/lint/s2rdf_lint --root=. --baseline=tools/lint/lint_baseline.txt \
  src tests bench tools

note "recorded benchmark consistency (committed BENCH_*.json)"
# Every BENCH_*.json the bench leg below maintains must be present in
# the repo root: a missing file means a harness's recorded baseline was
# never committed (or was deleted), and downstream comparisons silently
# have nothing to compare against.
for bench_json in BENCH_parallel.json BENCH_profile.json \
                  BENCH_optimizer.json BENCH_ingest.json \
                  BENCH_serving.json; do
  if [[ ! -f "${bench_json}" ]]; then
    echo "error: ${bench_json} is missing from the repo root; record it" >&2
    echo "  with scripts/bench_json.sh and commit it" >&2
    exit 1
  fi
done
# The committed parallel baseline must come from a real multi-way pool
# (width >= 4) and must have met its speedup floor when recorded — a
# width-1 or floor-failing JSON would make the paper's parallel claim
# unreproducible from the repo.
width="$(sed -n 's/.*"task_pool_parallelism": *\([0-9]*\).*/\1/p' BENCH_parallel.json | head -n1)"
if [[ "${width:-0}" -lt 4 ]]; then
  echo "error: BENCH_parallel.json was recorded at task_pool_parallelism=${width:-unknown}" >&2
  echo "  (need >= 4); rerun scripts/bench_json.sh with S2RDF_TASK_POOL_THREADS=4" >&2
  exit 1
fi
if grep -q '"gated": true' BENCH_parallel.json; then
  floor="$(sed -n 's/.*"speedup_floor": *\([0-9.]*\).*/\1/p' BENCH_parallel.json | head -n1)"
  bad="$(awk -v floor="${floor:-1.5}" '
    /"gated": true/ {
      if (match($0, /"speedup": *[0-9.]+/)) {
        s = substr($0, RSTART + 11, RLENGTH - 11)
        if (s + 0 < floor + 0) bad = 1
      }
    }
    END { exit bad ? 0 : 1 }' BENCH_parallel.json && echo yes || true)"
  if [[ "${bad}" == "yes" ]]; then
    echo "error: BENCH_parallel.json has a gated entry below its recorded" >&2
    echo "  speedup floor (${floor:-1.5}x); re-record with scripts/bench_json.sh" >&2
    exit 1
  fi
fi

# The committed serving baseline must itself have passed its gates when
# recorded — a floor-violating or error-ridden JSON would gate future
# runs against a known-bad tail.
if grep -q '"within_floor": false' BENCH_serving.json ||
   grep -q '"all_within_floor": false' BENCH_serving.json; then
  echo "error: BENCH_serving.json was recorded with a floor/error-rate" >&2
  echo "  violation; re-record with scripts/bench_json.sh and commit" >&2
  exit 1
fi

note "benchmark gates (BENCH_parallel.json, BENCH_profile.json, BENCH_optimizer.json, BENCH_ingest.json, BENCH_serving.json)"
scripts/bench_json.sh build

if [[ "${1:-}" == "quick" ]]; then
  note "quick mode: skipping analyze + sanitizer legs"
  exit 0
fi

note "clang-tidy (bugprone / performance / concurrency; config in .clang-tidy)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Needs a compile database; the default preset exports one.
  if [[ -f build/compile_commands.json ]]; then
    find src tools/lint -name '*.cc' -not -path '*/testdata/*' -print0 |
      xargs -0 -P "$(nproc)" -n 4 clang-tidy -p build --quiet
  else
    echo "build/compile_commands.json missing: configure the default preset"
    echo "with CMAKE_EXPORT_COMPILE_COMMANDS=ON to enable the tidy leg."
  fi
else
  echo "clang-tidy not found: skipping (s2rdf_lint still covers the"
  echo "repo-invariant and cross-file checks; see .clang-tidy for the delta)."
fi

note "static analysis preset (clang thread-safety + nodiscard as errors)"
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset analyze >/dev/null
  cmake --build --preset analyze -j"$(nproc)"
  # The compile-fail proof and its clean twin register under this label.
  ctest --test-dir build-analyze -L analyze --output-on-failure
else
  echo "clang++ not found: skipping the analyze preset (annotations are"
  echo "no-ops under GCC, so there is nothing to check without Clang)."
fi

for san in asan tsan ubsan; do
  note "${san} build + full test suite (including -L faults)"
  cmake --preset "${san}" >/dev/null
  cmake --build --preset "${san}" -j"$(nproc)"
  ctest --preset "${san}"
  ctest --preset "${san}-faults"
done

# The crash-point-matrix ingest suite, explicitly, under the two
# sanitizers that catch its failure modes (use-after-free of pinned
# tables under asan, commit/read races under tsan).
for san in asan tsan; do
  note "${san} ingest crash-matrix suite (-L ingest)"
  ctest --preset "${san}-ingest"
done

note "all checks passed"
