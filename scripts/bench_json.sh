#!/usr/bin/env bash
# Runs the machine-readable benchmark harnesses and captures their JSON
# in the repo root:
#
#   scripts/bench_json.sh [--force] [build-dir]
#
#   BENCH_parallel.json  — serial vs parallel operators + end-to-end
#                          query stage split (parse/compile/exec)
#   BENCH_profile.json   — EXPLAIN ANALYZE overhead vs the <5% budget
#   BENCH_optimizer.json — paper vs cost-based optimizer on the WatDiv
#                          suite + the IL unbound-query set
#   BENCH_ingest.json    — incremental ingest (ExtVP delta maintenance)
#                          vs full rebuild; gates on store identity and
#                          a >= 3x speedup
#   BENCH_serving.json   — open-loop HTTP serving tail latency
#                          (p50/p99/p999 + error rate per arrival rate);
#                          gates on error rate, trace-header presence
#                          and the committed baseline's p999 floor
#
# Each harness prints its human-readable table on stderr (passed
# through) and JSON on stdout (captured), and exits non-zero when its
# gate fails — identity divergence for bench_parallel/bench_optimizer, a
# blown overhead budget for bench_profile, a cost-mode regression for
# bench_optimizer — which fails this script. The timing numbers
# themselves are informational (they depend on the host).
#
# Every harness records "task_pool_parallelism" in its JSON. A run on a
# single-core host (parallelism 1) produces timings that are not
# comparable to a checked-in multi-core baseline, so this script refuses
# to overwrite an existing BENCH_*.json with a parallelism-1 run unless
# --force is given.

set -euo pipefail
cd "$(dirname "$0")/.."

force=0
if [[ "${1:-}" == "--force" ]]; then
  force=1
  shift
fi
build_dir="${1:-build}"

run() {
  local bench="${build_dir}/bench/$1" out="$2"
  if [[ ! -x "${bench}" ]]; then
    echo "error: ${bench} not found; build the default preset first:" >&2
    echo "  cmake --preset default && cmake --build --preset default" >&2
    exit 1
  fi
  local tmp
  tmp="$(mktemp "${out}.XXXXXX")"
  "${bench}" > "${tmp}" || { rm -f "${tmp}"; exit 1; }
  local width
  width="$(sed -n 's/.*"task_pool_parallelism": *\([0-9]*\).*/\1/p' "${tmp}" | head -n1)"
  if [[ -e "${out}" && "${width:-0}" -le 1 && "${force}" -ne 1 ]]; then
    rm -f "${tmp}"
    echo "error: refusing to overwrite ${out} with a run at" >&2
    echo "  task_pool_parallelism=${width:-unknown} (timings from a" >&2
    echo "  single-core host are not comparable); pass --force to override" >&2
    exit 1
  fi
  mv "${tmp}" "${out}"
  echo "wrote ${out}"
}

run bench_parallel BENCH_parallel.json
run bench_profile BENCH_profile.json
run bench_optimizer BENCH_optimizer.json
run bench_ingest BENCH_ingest.json
run bench_serving BENCH_serving.json
