#!/usr/bin/env bash
# Runs the serial-vs-parallel execution benchmark and captures its
# machine-readable output as BENCH_parallel.json in the repo root.
#
#   scripts/bench_json.sh [build-dir]
#
# The harness prints its human-readable table on stderr (passed
# through) and JSON on stdout (captured). It exits non-zero if any
# parallel operator's output or metrics diverge from its serial twin,
# which fails this script — the identity guarantee is part of the gate,
# the speedup numbers are informational (they depend on the host).

set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
bench="${build_dir}/bench/bench_parallel"

if [[ ! -x "${bench}" ]]; then
  echo "error: ${bench} not found; build the default preset first:" >&2
  echo "  cmake --preset default && cmake --build --preset default" >&2
  exit 1
fi

out="BENCH_parallel.json"
"${bench}" > "${out}"
echo "wrote ${out}"
