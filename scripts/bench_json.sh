#!/usr/bin/env bash
# Runs the machine-readable benchmark harnesses and captures their JSON
# in the repo root:
#
#   scripts/bench_json.sh [build-dir]
#
#   BENCH_parallel.json — serial vs parallel operators + end-to-end
#                         query stage split (parse/compile/exec)
#   BENCH_profile.json  — EXPLAIN ANALYZE overhead vs the <5% budget
#
# Each harness prints its human-readable table on stderr (passed
# through) and JSON on stdout (captured), and exits non-zero when its
# gate fails — identity divergence for bench_parallel, a blown overhead
# budget for bench_profile — which fails this script. The timing
# numbers themselves are informational (they depend on the host).

set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"

run() {
  local bench="${build_dir}/bench/$1" out="$2"
  if [[ ! -x "${bench}" ]]; then
    echo "error: ${bench} not found; build the default preset first:" >&2
    echo "  cmake --preset default && cmake --build --preset default" >&2
    exit 1
  fi
  "${bench}" > "${out}"
  echo "wrote ${out}"
}

run bench_parallel BENCH_parallel.json
run bench_profile BENCH_profile.json
