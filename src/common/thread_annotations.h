#ifndef S2RDF_COMMON_THREAD_ANNOTATIONS_H_
#define S2RDF_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (no-ops on other compilers).
//
// The concurrency guarantees of PR 1 (thread-safe Execute) are enforced
// at compile time: every mutex-protected member is tagged with
// S2RDF_GUARDED_BY, every helper that assumes a held lock with
// S2RDF_REQUIRES, and the `analyze` CMake preset promotes
// -Wthread-safety to an error so a forgotten lock is a build break, not
// a flaky tsan report. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// and DESIGN.md §7.
//
// Use the common::Mutex / SharedMutex / MutexLock wrappers from
// common/mutex.h — the analysis only understands annotated capability
// types, so bare std::mutex members defeat it (and are rejected by
// s2rdf_lint).

#if defined(__clang__) && (!defined(SWIG))
#define S2RDF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define S2RDF_THREAD_ANNOTATION_(x)  // no-op
#endif

// Declares that a type is a lockable capability ("mutex").
#define S2RDF_CAPABILITY(x) S2RDF_THREAD_ANNOTATION_(capability(x))

// Declares an RAII type that acquires a capability in its constructor
// and releases it in its destructor.
#define S2RDF_SCOPED_CAPABILITY S2RDF_THREAD_ANNOTATION_(scoped_lockable)

// Declares that a data member is protected by the given capability.
#define S2RDF_GUARDED_BY(x) S2RDF_THREAD_ANNOTATION_(guarded_by(x))

// Declares that the pointed-to data (not the pointer itself) is
// protected by the given capability.
#define S2RDF_PT_GUARDED_BY(x) S2RDF_THREAD_ANNOTATION_(pt_guarded_by(x))

// Declares that a function requires the capability to be held
// exclusively (resp. at least shared) on entry, and does not release it.
#define S2RDF_REQUIRES(...) \
  S2RDF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define S2RDF_REQUIRES_SHARED(...) \
  S2RDF_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Declares that a function acquires (resp. releases) the capability.
#define S2RDF_ACQUIRE(...) \
  S2RDF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define S2RDF_ACQUIRE_SHARED(...) \
  S2RDF_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define S2RDF_RELEASE(...) \
  S2RDF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define S2RDF_RELEASE_SHARED(...) \
  S2RDF_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
// Releases a capability regardless of whether it is held exclusively or
// shared (what a generic RAII destructor does).
#define S2RDF_RELEASE_GENERIC(...) \
  S2RDF_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// Declares that a function tries to acquire the capability and returns
// `success` when it did.
#define S2RDF_TRY_ACQUIRE(...) \
  S2RDF_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Declares that a function must NOT be called with the capability held
// (it acquires it itself; calling with it held would deadlock).
#define S2RDF_EXCLUDES(...) \
  S2RDF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Declares that a function returns a reference to the given capability.
#define S2RDF_RETURN_CAPABILITY(x) \
  S2RDF_THREAD_ANNOTATION_(lock_returned(x))

// Asserts at runtime that the calling thread holds the capability, and
// tells the analysis to assume so afterwards.
#define S2RDF_ASSERT_CAPABILITY(x) \
  S2RDF_THREAD_ANNOTATION_(assert_capability(x))

// Declares the global acquisition order between two mutexes: the
// annotated mutex must be acquired BEFORE (resp. AFTER) the argument.
// Clang only diagnoses these within one translation unit; the
// s2rdf_lint lock-order pass merges the declared edges into its global
// acquired-before graph, so a cross-TU nesting that contradicts a
// declaration is caught as a cycle. Arguments may be a sibling member
// (`lazy_mu_`) or qualified (`Catalog::mu_`).
#define S2RDF_ACQUIRED_BEFORE(...) \
  S2RDF_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define S2RDF_ACQUIRED_AFTER(...) \
  S2RDF_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Escape hatch: turns the analysis off for one function. Every use must
// explain why the analysis cannot see the invariant.
#define S2RDF_NO_THREAD_SAFETY_ANALYSIS \
  S2RDF_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // S2RDF_COMMON_THREAD_ANNOTATIONS_H_
