#include "common/clock.h"

#include <atomic>

namespace s2rdf {

namespace {
std::atomic<ClockFn> g_clock_override{nullptr};
}  // namespace

MonotonicTime MonotonicNow() {
  ClockFn fn = g_clock_override.load(std::memory_order_acquire);
  if (fn != nullptr) return fn();
  return std::chrono::steady_clock::now();
}

void SetClockForTest(ClockFn fn) {
  g_clock_override.store(fn, std::memory_order_release);
}

}  // namespace s2rdf
