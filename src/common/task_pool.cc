#include "common/task_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/mutex.h"

namespace s2rdf {

TaskPool::TaskPool(int num_threads) {
  threads_.reserve(static_cast<size_t>(num_threads > 0 ? num_threads : 0));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

TaskPool* TaskPool::Shared() {
  // Leaked on purpose: helper threads may still be parked in WorkerLoop
  // when static destructors run, and the pool must survive them.
  static TaskPool* pool = [] {
    // S2RDF_TASK_POOL_THREADS pins the pool's total width (helpers +
    // caller) regardless of what the container advertises — benchmarks
    // use it to exercise real multi-way morsel scheduling on hosts
    // whose affinity mask under-reports, and tests to force width 1.
    int helpers = -1;
    if (const char* env = std::getenv("S2RDF_TASK_POOL_THREADS")) {
      char* end = nullptr;
      long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v > 0) {
        helpers = static_cast<int>(v) - 1;
      }
    }
    if (helpers < 0) {
      unsigned hw = std::thread::hardware_concurrency();
      helpers = hw > 1 ? static_cast<int>(hw - 1) : 0;
    }
    return new TaskPool(helpers);
  }();
  return pool;
}

size_t TaskPool::QueueDepth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

void TaskPool::AttachMetrics(MetricsRegistry* registry) {
  registry->AddGauge(
      "s2rdf_task_pool_queue_depth",
      "Helper tasks parked in the shared morsel pool queue.",
      [this] { return static_cast<uint64_t>(QueueDepth()); });
  Histogram* hist = registry->AddHistogram(
      "s2rdf_task_pool_queue_wait_seconds",
      "Time helper tasks wait in the shared pool queue before a thread "
      "claims them.",
      LogBuckets(1e-5, 4.0, 12));
  queue_wait_hist_.store(hist, std::memory_order_release);
}

void TaskPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      while (queue_.empty() && !stopping_) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (Histogram* hist = queue_wait_hist_.load(std::memory_order_acquire)) {
      hist->Observe(SecondsSince(task.enqueued));
    }
    task.fn();
  }
}

void TaskPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Shared claim/completion state. Helpers hold it via shared_ptr, so a
  // straggler that wakes up after all indices are claimed (and the
  // caller has returned) still finds valid memory; it never touches
  // `body` in that case — a claimed index < n implies the caller is
  // still waiting on `completed`, which keeps `body` alive.
  struct ForState {
    explicit ForState(size_t total) : n(total) {}
    const size_t n;
    std::atomic<size_t> next{0};
    Mutex mu;
    CondVar cv;
    size_t completed S2RDF_GUARDED_BY(mu) = 0;
  };
  auto state = std::make_shared<ForState>(n);
  const std::function<void(size_t)>* fn = &body;
  auto run = [state, fn] {
    size_t finished = 0;
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < state->n;
         i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      (*fn)(i);
      ++finished;
    }
    if (finished > 0) {
      MutexLock lock(&state->mu);
      state->completed += finished;
      if (state->completed == state->n) state->cv.NotifyAll();
    }
  };

  // One helper task per pool thread (capped by the remaining indices);
  // each drains indices until none are left, so late-running helpers
  // cost one atomic increment and exit.
  size_t helpers = threads_.size() < n - 1 ? threads_.size() : n - 1;
  {
    const MonotonicTime enqueued = MonotonicNow();
    MutexLock lock(&mu_);
    if (!stopping_) {
      for (size_t i = 0; i < helpers; ++i) {
        queue_.push_back(QueuedTask{run, enqueued});
      }
    }
  }
  cv_.NotifyAll();

  run();  // The caller is always a worker: progress never depends on
          // helper availability.
  MutexLock lock(&state->mu);
  while (state->completed < state->n) state->cv.Wait(&state->mu);
}

}  // namespace s2rdf
