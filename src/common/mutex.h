#ifndef S2RDF_COMMON_MUTEX_H_
#define S2RDF_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

// Annotated synchronization primitives. These are the ONLY mutex types
// allowed in src/ (enforced by s2rdf_lint rule `bare-mutex`): Clang's
// thread-safety analysis works on capability-annotated types, so a bare
// std::mutex member silently opts its critical sections out of the
// compile-time checking that the `analyze` preset turns into errors.
//
// The wrappers are zero-cost forwarding shims over the std primitives —
// same storage, same codegen — plus the capability attributes.
//
// Usage:
//   class Cache {
//     mutable Mutex mu_;
//     std::map<K, V> entries_ S2RDF_GUARDED_BY(mu_);
//   };
//   ...
//   MutexLock lock(&mu_);   // scoped exclusive hold
//   entries_[k] = v;        // OK: analysis sees mu_ held

namespace s2rdf {

class CondVar;

// Exclusive mutex (wraps std::mutex).
class S2RDF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() S2RDF_ACQUIRE() { mu_.lock(); }
  void Unlock() S2RDF_RELEASE() { mu_.unlock(); }
  bool TryLock() S2RDF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis the lock is held without taking it; used in
  // *Locked helpers on non-analyzing builds. No runtime effect.
  void AssertHeld() const S2RDF_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Reader/writer mutex (wraps std::shared_mutex).
class S2RDF_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() S2RDF_ACQUIRE() { mu_.lock(); }
  void Unlock() S2RDF_RELEASE() { mu_.unlock(); }
  void LockShared() S2RDF_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() S2RDF_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// Scoped exclusive hold of a Mutex.
class S2RDF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) S2RDF_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() S2RDF_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Scoped exclusive hold of a SharedMutex (writer side).
class S2RDF_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) S2RDF_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterLock() S2RDF_RELEASE() { mu_->Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Scoped shared hold of a SharedMutex (reader side).
class S2RDF_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) S2RDF_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() S2RDF_RELEASE_GENERIC() { mu_->UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable paired with common::Mutex. Wait atomically
// releases the mutex and reacquires it before returning, so callers
// annotate the surrounding function with S2RDF_REQUIRES(mu).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // `mu` must be held by the caller.
  void Wait(Mutex* mu) S2RDF_REQUIRES(mu) {
    // The analysis cannot model "released during the call, reacquired
    // before return"; REQUIRES on the caller side is the accepted
    // approximation (same as absl::CondVar).
    std::unique_lock<std::mutex> ul(mu->mu_,
                                    std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }

  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) S2RDF_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_MUTEX_H_
