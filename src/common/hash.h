#ifndef S2RDF_COMMON_HASH_H_
#define S2RDF_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>
#include <string_view>

// Hashing helpers used by the engine's hash joins, the storage checksums
// and the partitioner of the mini MapReduce runtime.

namespace s2rdf {

// 64-bit FNV-1a over arbitrary bytes. Stable across platforms, used for
// file checksums and as a string hash.
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Mixes a 64-bit value (splitmix64 finalizer). Good avalanche for
// partitioning dictionary ids.
inline uint64_t MixHash64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines a hash with another value, boost-style.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (MixHash64(value) + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                 (seed >> 2));
}

}  // namespace s2rdf

#endif  // S2RDF_COMMON_HASH_H_
