#ifndef S2RDF_COMMON_ENV_H_
#define S2RDF_COMMON_ENV_H_

#include <string>
#include <vector>

#include "common/status.h"

// Injectable file-I/O environment — the single choke point for file
// access in the library, and the seam the fault-injection harness plugs
// into. On HDFS the paper gets replication and atomic rename for free;
// here every durable write site (table files, manifest generations, the
// CURRENT pointer, the dictionary, MapReduce spill files) goes through
// an Env so that crashes, torn writes and bit flips can be injected
// deterministically and the recovery protocol proven against them.
//
// Raw I/O primitives (fopen, ::open, std::ofstream, ...) are allowed
// ONLY in the PosixEnv implementation (common/posix_env.cc); everything
// else must take an Env. This is machine-enforced by the `raw-io` rule
// of tools/lint/s2rdf_lint — code that bypassed the Env would silently
// escape the fault-injection matrix.
//
// Durability protocol: WriteFileAtomic stages the data in "<path>.tmp",
// fsyncs it, then renames over the destination. A crash at any point
// leaves either the old file or the new file — never a torn one; the
// only debris is a stale "*.tmp" that startup recovery deletes.

namespace s2rdf {

class Env {
 public:
  virtual ~Env() = default;

  // Writes `data` to `path` in place (no atomicity). Prefer
  // WriteFileAtomic for anything that must survive a crash.
  virtual Status WriteFile(const std::string& path,
                           const std::string& data) = 0;

  // Reads the whole file. kNotFound when the file does not exist,
  // kIoError for (possibly transient) read failures.
  virtual Status ReadFile(const std::string& path, std::string* data) = 0;

  // Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  // Removes a file; OK if it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  // Flushes file contents to stable storage.
  virtual Status SyncFile(const std::string& path) = 0;

  // Flushes directory metadata (entries created/renamed within `dir`)
  // to stable storage. A rename is not durable until the parent
  // directory is synced; WriteFileAtomic calls this after its rename so
  // the manifest-flip step is itself a crash-injectable site.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual Status MakeDirs(const std::string& path) = 0;
  virtual bool PathExists(const std::string& path) = 0;
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  // The crash-safe write: temp file + fsync + rename, composed from the
  // virtual primitives so fault injection sees every step.
  Status WriteFileAtomic(const std::string& path, const std::string& data);

  // Parent directory of `path` ("." when it has no slash) — the
  // directory SyncDir must flush for a rename of `path` to be durable.
  static std::string ParentDir(const std::string& path);

  // Suffix of staging files produced by WriteFileAtomic; recovery treats
  // any file ending in it as deletable debris.
  static constexpr char kTempSuffix[] = ".tmp";

  // Process-wide POSIX environment (never deleted).
  static Env* Default();
};

// The real thing: thin POSIX wrappers plus fsync-backed durability.
// Implemented in common/posix_env.cc, the one file where raw I/O lives.
class PosixEnv : public Env {
 public:
  Status WriteFile(const std::string& path, const std::string& data) override;
  Status ReadFile(const std::string& path, std::string* data) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status MakeDirs(const std::string& path) override;
  bool PathExists(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;

  // Size in bytes of the file at `path`, or 0 if unreadable. Not part
  // of the Env interface (stats are not a fault-injection surface).
  static uint64_t FileSizeBytes(const std::string& path);
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_ENV_H_
