#ifndef S2RDF_COMMON_BITMAP_H_
#define S2RDF_COMMON_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

// Fixed-size bitset used by the bit-vector ExtVP representation (the
// paper's future-work Sec. 8: "a more compact bit vector representation"
// of the semi-join reductions). A bitmap over the rows of a VP table
// marks which rows survive a semi-join; intersecting bitmaps realizes
// the paper's proposed "unification strategy" that considers the
// intersection of all correlations of a triple pattern at once.

namespace s2rdf {

class Bitmap {
 public:
  Bitmap() = default;
  // Creates a bitmap of `size_bits` bits, all set when `initially_set`.
  explicit Bitmap(size_t size_bits, bool initially_set = false);

  size_t size_bits() const { return size_bits_; }

  void Set(size_t i) {
    S2RDF_DCHECK(i < size_bits_);
    words_[i >> 6] |= 1ull << (i & 63);
  }
  void Clear(size_t i) {
    S2RDF_DCHECK(i < size_bits_);
    words_[i >> 6] &= ~(1ull << (i & 63));
  }
  bool Test(size_t i) const {
    S2RDF_DCHECK(i < size_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // Number of set bits.
  uint64_t CountSetBits() const;

  // this &= other. Sizes must match.
  void IntersectWith(const Bitmap& other);
  // this |= other. Sizes must match.
  void UnionWith(const Bitmap& other);

  // Physical footprint of the bit words.
  uint64_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.size_bits_ == b.size_bits_ && a.words_ == b.words_;
  }

 private:
  size_t size_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_BITMAP_H_
