#ifndef S2RDF_COMMON_FILE_UTIL_H_
#define S2RDF_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

// Thin POSIX file helpers. The project avoids <filesystem> (per the style
// guide) and only needs flat directories of binary files.

namespace s2rdf {

// Writes `data` to `path`, truncating any existing file.
Status WriteFile(const std::string& path, const std::string& data);

// Reads the entire file at `path` into `*data`.
Status ReadFile(const std::string& path, std::string* data);

// Creates directory `path` (and missing parents). Succeeds if it exists.
Status MakeDirs(const std::string& path);

// Removes a single file; OK if it does not exist.
Status RemoveFile(const std::string& path);

// True if `path` exists (file or directory).
bool PathExists(const std::string& path);

// Returns the size in bytes of the file at `path`, or 0 if unreadable.
uint64_t FileSizeBytes(const std::string& path);

// Lists regular files directly inside `dir` (names only, unsorted).
StatusOr<std::vector<std::string>> ListDir(const std::string& dir);

// Creates a unique temp directory under TMPDIR (default /tmp) and removes
// it — including contained files — on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir();
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  // Empty on creation failure.
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_FILE_UTIL_H_
