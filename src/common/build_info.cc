#include "common/build_info.h"

// The definitions come from set_source_files_properties in
// common/CMakeLists.txt; fall back to placeholders so the file still
// compiles standalone (e.g. under tooling that ignores the defines).
#ifndef S2RDF_GIT_SHA
#define S2RDF_GIT_SHA "unknown"
#endif
#ifndef S2RDF_BUILD_TYPE
#define S2RDF_BUILD_TYPE "unspecified"
#endif
#ifndef S2RDF_COMPILER_ID
#define S2RDF_COMPILER_ID "unknown"
#endif

namespace s2rdf {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {S2RDF_GIT_SHA, S2RDF_BUILD_TYPE,
                                 S2RDF_COMPILER_ID};
  return info;
}

}  // namespace s2rdf
