#ifndef S2RDF_COMMON_RANDOM_H_
#define S2RDF_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"

// Deterministic pseudo-random number generation for the WatDiv-style data
// generator and the property tests. splitmix64 is fast, has a full 2^64
// period per seed and is reproducible across platforms, which matters
// because generated datasets are referenced by (scale factor, seed) in
// EXPERIMENTS.md.

namespace s2rdf {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  // Returns the next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    S2RDF_DCHECK(bound > 0);
    // Modulo bias is negligible for bound << 2^64 and irrelevant for a
    // synthetic-data generator.
    return Next() % bound;
  }

  // Returns a uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Returns true with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Returns a Zipf-distributed integer in [0, n) with exponent `s`,
  // using rejection-inversion (Hörmann & Derflinger). Used to model the
  // skewed popularity distributions WatDiv assigns to social predicates.
  uint64_t Zipf(uint64_t n, double s);

 private:
  uint64_t state_;
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_RANDOM_H_
