#ifndef S2RDF_COMMON_CHECK_H_
#define S2RDF_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Fatal assertion macros for programmer-error invariants (never for
// recoverable conditions such as malformed user input — those use Status).

// Aborts the process with a diagnostic if `cond` is false.
#define S2RDF_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "S2RDF_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #cond);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

// Like S2RDF_CHECK but compiled out in release (NDEBUG) builds.
#ifdef NDEBUG
#define S2RDF_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define S2RDF_DCHECK(cond) S2RDF_CHECK(cond)
#endif

#endif  // S2RDF_COMMON_CHECK_H_
