#ifndef S2RDF_COMMON_LOG_H_
#define S2RDF_COMMON_LOG_H_

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

// The structured event log. Every diagnostic line outside common/ must
// flow through LogEvent (enforced by the s2rdf_lint rule `raw-log`):
// one JSON object per line on a single injectable sink, so server,
// storage and core events share a machine-parseable schema, tests can
// capture lines instead of scraping stderr, and a hot failure path can
// be rate-limited instead of flooding the sink.
//
// Schema (stable keys, see DESIGN.md §14):
//   {"ts_ms":<ms since process start>,"level":"info","event":"<name>",
//    <caller fields...>}
//
// Timestamps come from the MonotonicNow() clock seam — never wall
// clock — so log output stays deterministic under the fake clocks the
// tests install.

namespace s2rdf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// "debug" / "info" / "warn" / "error".
const char* LogLevelName(LogLevel level);

// One key/value pair in a log line. Strings are JSON-escaped at render
// time; numeric fields are emitted bare so consumers get real numbers.
struct LogField {
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), numeric(false) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(v), numeric(false) {}
  LogField(std::string k, double v);
  LogField(std::string k, uint64_t v);
  LogField(std::string k, int v);
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), numeric(true) {}

  std::string key;
  std::string value;   // pre-rendered for numerics, raw for strings
  bool numeric;        // emit without quotes
};

// The destination for rendered lines. The default sink writes to
// stderr; tests install a capturing sink.
using LogSink = std::function<void(const std::string& line)>;

// Installs `sink` as the process-wide log destination (an empty
// function restores stderr). Like SetClockForTest, this is a test
// seam: the swap is mutex-guarded but global.
void SetLogSinkForTest(LogSink sink);

// Lines below `level` are dropped before rendering.
void SetMinLogLevel(LogLevel level);

// Renders one event as a JSON line and hands it to the sink.
void LogEvent(LogLevel level, const std::string& event,
              std::initializer_list<LogField> fields = {});

// Builds the JSON line LogEvent would emit, without sending it.
// Exposed so callers with their own delivery path (e.g. the endpoint's
// pluggable slow-query callback) reuse the exact schema.
std::string RenderLogLine(LogLevel level, const std::string& event,
                          std::initializer_list<LogField> fields);

// Token-bucket limiter for per-key event streams: at most one allowed
// line per key per interval. Between allowed lines the caller learns
// nothing; the next allowed line carries the count of suppressed
// events so no information is silently lost. Time comes from
// MonotonicNow(), so fake clocks step it deterministically.
class LogRateLimiter {
 public:
  // `interval_seconds` <= 0 disables limiting (everything allowed).
  explicit LogRateLimiter(double interval_seconds)
      : interval_seconds_(interval_seconds) {}

  LogRateLimiter(const LogRateLimiter&) = delete;
  LogRateLimiter& operator=(const LogRateLimiter&) = delete;

  // True when an event for `key` may be emitted now. When true,
  // `*suppressed` (if non-null) receives the number of events dropped
  // for this key since the last allowed one, and the window restarts.
  bool Allow(const std::string& key, uint64_t* suppressed = nullptr);

  // Events dropped for `key` since its last allowed event.
  uint64_t SuppressedFor(const std::string& key) const;

 private:
  struct KeyState {
    MonotonicTime last_allowed;
    uint64_t suppressed = 0;
  };

  const double interval_seconds_;
  mutable Mutex mu_;
  std::unordered_map<std::string, KeyState> keys_ S2RDF_GUARDED_BY(mu_);
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_LOG_H_
