#ifndef S2RDF_COMMON_METRICS_H_
#define S2RDF_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

// Process-observability primitives: named counters, gauges and
// log-bucketed histograms collected in a MetricsRegistry and rendered
// in the Prometheus text exposition format (version 0.0.4).
//
// Updates are designed for hot paths: a Counter::Increment or
// Histogram::Observe is a handful of relaxed atomic operations, no
// locks, no allocation. Registration (naming a metric) takes a mutex
// and is expected at setup time only; the returned pointers stay valid
// for the registry's lifetime.
//
// A registry is an instantiable object, not a global: the SPARQL
// endpoint owns one per server instance so tests and multi-endpoint
// processes never interleave counts. Code that wants process-global
// metrics can share one registry explicitly.

namespace s2rdf {

// Monotonically increasing count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  std::atomic<uint64_t> v_{0};
};

// Fixed-boundary histogram. Buckets are cumulative in the exposition
// (Prometheus `le` semantics); internally each observation increments
// exactly one bucket counter plus count and sum.
class Histogram {
 public:
  // `bounds` are ascending upper bounds; the +Inf bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  // Cumulative count per bound plus the +Inf total, Prometheus-style.
  std::vector<uint64_t> CumulativeCounts() const;

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 per-bucket counters (last = above all bounds).
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  // Bit pattern of a double, added with a CAS loop.
  std::atomic<uint64_t> sum_bits_{0};
};

// `count` log-spaced bucket bounds: start, start*factor, start*factor^2...
std::vector<double> LogBuckets(double start, double factor, int count);

// The default latency bucket ladder: 100us .. ~104s in powers of 2.
std::vector<double> LatencySecondsBuckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registers (or, for an already-registered name of the same kind,
  // returns) a metric. Returned pointers live as long as the registry.
  Counter* AddCounter(const std::string& name, const std::string& help);
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  // A gauge is sampled at render time. `fn` must stay valid for the
  // registry's lifetime and must not call back into this registry.
  void AddGauge(const std::string& name, const std::string& help,
                std::function<uint64_t()> fn);

  // An info-style metric: a constant-1 gauge whose payload rides in its
  // labels, Prometheus convention for build/version identity, e.g.
  //   s2rdf_build_info{sha="1a2b3c",build="Release"} 1
  // `labels` is the pre-rendered label body (no braces); values must be
  // already quoted/escaped by the caller. Re-adding a name replaces its
  // labels.
  void AddInfo(const std::string& name, const std::string& help,
               std::string labels);

  // Prometheus text exposition (HELP/TYPE lines plus samples), metrics
  // in registration order. Gauge callbacks are evaluated here.
  std::string RenderPrometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kInfo };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> gauge;
    std::string info_labels;
  };

  mutable Mutex mu_;
  // Entries are append-only; deque-like stability comes from the
  // unique_ptr indirection, so AddCounter results survive growth.
  std::vector<Entry> entries_ S2RDF_GUARDED_BY(mu_);
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_METRICS_H_
