#include "common/file_util.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace s2rdf {

Status WriteFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open for write: " + path + ": " +
                   std::strerror(errno));
  }
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return IoError("short write: " + path);
  }
  return Status::Ok();
}

Status ReadFile(const std::string& path, std::string* data) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return IoError("cannot open for read: " + path + ": " +
                   std::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return IoError("cannot stat: " + path);
  }
  data->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(data->data(), 1, data->size(), f);
  std::fclose(f);
  if (read != data->size()) return IoError("short read: " + path);
  return Status::Ok();
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("empty directory path");
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      partial = path.substr(0, i == path.size() ? i : i + 1);
      if (partial.empty() || partial == "/") continue;
      if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return IoError("mkdir failed: " + partial + ": " +
                       std::strerror(errno));
      }
    }
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (unlink(path.c_str()) != 0 && errno != ENOENT) {
    return IoError("unlink failed: " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

uint64_t FileSizeBytes(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return IoError("opendir failed: " + dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    std::string full = dir + "/" + name;
    if (stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  closedir(d);
  return names;
}

ScopedTempDir::ScopedTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/s2rdf_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) != nullptr) {
    path_ = buf.data();
  }
}

ScopedTempDir::~ScopedTempDir() {
  if (path_.empty()) return;
  StatusOr<std::vector<std::string>> files = ListDir(path_);
  if (files.ok()) {
    for (const std::string& name : *files) {
      unlink((path_ + "/" + name).c_str());
    }
  }
  rmdir(path_.c_str());
}

}  // namespace s2rdf
