#include "common/file_util.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>

#include "common/env.h"

namespace s2rdf {

// The free helpers are convenience shims over the process-default Env
// (kept for tests, benches and single-shot tools). Library code that a
// fault-injection test may want to interpose on must take an Env*
// instead — routing through Env::Default() here keeps this file free of
// raw I/O (lint rule `raw-io`) but is NOT a substitute for injection.

Status WriteFile(const std::string& path, const std::string& data) {
  return Env::Default()->WriteFile(path, data);
}

Status ReadFile(const std::string& path, std::string* data) {
  return Env::Default()->ReadFile(path, data);
}

Status MakeDirs(const std::string& path) {
  return Env::Default()->MakeDirs(path);
}

Status RemoveFile(const std::string& path) {
  return Env::Default()->RemoveFile(path);
}

bool PathExists(const std::string& path) {
  return Env::Default()->PathExists(path);
}

uint64_t FileSizeBytes(const std::string& path) {
  return PosixEnv::FileSizeBytes(path);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  return Env::Default()->ListDir(dir);
}

ScopedTempDir::ScopedTempDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/s2rdf_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (mkdtemp(buf.data()) != nullptr) {
    path_ = buf.data();
  }
}

ScopedTempDir::~ScopedTempDir() {
  if (path_.empty()) return;
  StatusOr<std::vector<std::string>> files = ListDir(path_);
  if (files.ok()) {
    for (const std::string& name : *files) {
      unlink((path_ + "/" + name).c_str());
    }
  }
  rmdir(path_.c_str());
}

}  // namespace s2rdf
