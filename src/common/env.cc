#include "common/env.h"

namespace s2rdf {

constexpr char Env::kTempSuffix[];

Status Env::WriteFileAtomic(const std::string& path,
                            const std::string& data) {
  // The staging file is left behind on failure by design: a crash can
  // interrupt any step, and recovery deletes "*.tmp" debris anyway.
  const std::string tmp = path + kTempSuffix;
  S2RDF_RETURN_IF_ERROR(WriteFile(tmp, data));
  S2RDF_RETURN_IF_ERROR(SyncFile(tmp));
  S2RDF_RETURN_IF_ERROR(RenameFile(tmp, path));
  // The rename only becomes durable once the parent directory's entry
  // table reaches stable storage.
  return SyncDir(ParentDir(path));
}

std::string Env::ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? "." : path.substr(0, slash);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

}  // namespace s2rdf
