#include "common/env.h"

namespace s2rdf {

constexpr char Env::kTempSuffix[];

Status Env::WriteFileAtomic(const std::string& path,
                            const std::string& data) {
  // The staging file is left behind on failure by design: a crash can
  // interrupt any step, and recovery deletes "*.tmp" debris anyway.
  const std::string tmp = path + kTempSuffix;
  S2RDF_RETURN_IF_ERROR(WriteFile(tmp, data));
  S2RDF_RETURN_IF_ERROR(SyncFile(tmp));
  return RenameFile(tmp, path);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

}  // namespace s2rdf
