#include "common/bitmap.h"

#include <bit>

namespace s2rdf {

Bitmap::Bitmap(size_t size_bits, bool initially_set)
    : size_bits_(size_bits),
      words_((size_bits + 63) / 64, initially_set ? ~0ull : 0ull) {
  if (initially_set && size_bits % 64 != 0 && !words_.empty()) {
    // Mask off the bits past size_bits so CountSetBits stays exact.
    words_.back() = (1ull << (size_bits % 64)) - 1;
  }
}

uint64_t Bitmap::CountSetBits() const {
  uint64_t count = 0;
  for (uint64_t word : words_) {
    count += static_cast<uint64_t>(std::popcount(word));
  }
  return count;
}

void Bitmap::IntersectWith(const Bitmap& other) {
  S2RDF_CHECK(size_bits_ == other.size_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void Bitmap::UnionWith(const Bitmap& other) {
  S2RDF_CHECK(size_bits_ == other.size_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

}  // namespace s2rdf
