#ifndef S2RDF_COMMON_STRINGS_H_
#define S2RDF_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

// Small string utilities shared across the library.

namespace s2rdf {

// Splits `input` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

// Returns `input` without leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Parses a decimal integer/floating literal. Returns false if `text` is
// not entirely consumed by the parse.
bool ParseInt64(std::string_view text, long long* value);
bool ParseDouble(std::string_view text, double* value);

// Replaces every occurrence of `from` in `text` with `to`.
std::string StrReplaceAll(std::string_view text, std::string_view from,
                          std::string_view to);

}  // namespace s2rdf

#endif  // S2RDF_COMMON_STRINGS_H_
