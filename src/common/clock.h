#ifndef S2RDF_COMMON_CLOCK_H_
#define S2RDF_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

// The process-wide monotonic clock seam. Every timing read outside
// common/ must flow through MonotonicNow() (enforced by the s2rdf_lint
// rule `clock`): spans, deadlines and stage timers then share one
// substitutable time source, so tests can freeze or step time instead
// of sleeping, and profiling overhead stays a single indirect load when
// no fake is installed.

namespace s2rdf {

using MonotonicTime = std::chrono::steady_clock::time_point;

// A substitute time source for tests. Returning steady_clock-compatible
// time_points keeps arithmetic with real durations valid.
using ClockFn = MonotonicTime (*)();

// The current monotonic time: std::chrono::steady_clock::now() unless a
// test clock is installed.
MonotonicTime MonotonicNow();

// Installs `fn` as the process-wide time source (nullptr restores the
// real clock). Not for production code paths — the override is global
// and unsynchronized with in-flight readers beyond the atomic swap.
void SetClockForTest(ClockFn fn);

// Milliseconds elapsed since `start` (fractional).
inline double MillisSince(MonotonicTime start) {
  return std::chrono::duration<double, std::milli>(MonotonicNow() - start)
      .count();
}

// Seconds elapsed since `start` (fractional).
inline double SecondsSince(MonotonicTime start) {
  return std::chrono::duration<double>(MonotonicNow() - start).count();
}

}  // namespace s2rdf

#endif  // S2RDF_COMMON_CLOCK_H_
