#include "common/status.h"

namespace s2rdf {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace s2rdf
