#ifndef S2RDF_COMMON_STATUS_H_
#define S2RDF_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

// Error handling primitives for the S2RDF library.
//
// The library does not use exceptions on its API surface. Fallible
// operations return `Status`, or `StatusOr<T>` when they also produce a
// value. Both types are cheap to move and carry a machine-readable code
// plus a human-readable message.

namespace s2rdf {

// Machine-readable error categories, loosely following absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  // The operation ran past its caller-supplied deadline (per-query
  // timeouts) and was abandoned mid-flight.
  kDeadlineExceeded,
  // The operation was cancelled by an external signal before finishing.
  kCancelled,
  // A bounded resource (worker queue, admission slot) is exhausted;
  // retrying later may succeed.
  kResourceExhausted,
};

// Returns a stable lowercase name for `code` (e.g. "invalid_argument").
std::string_view StatusCodeName(StatusCode code);

// The result of a fallible operation that produces no value.
//
// Example:
//   Status s = catalog.Save(path);
//   if (!s.ok()) return s;
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "code: message" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring the code enum.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status IoError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status ResourceExhaustedError(std::string message);

// The result of a fallible operation that produces a `T` on success.
//
// Example:
//   StatusOr<Table> t = LoadTable(path);
//   if (!t.ok()) return t.status();
//   Use(*t);
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Intentionally implicit so `return value;` and `return status;` both
  // work, matching absl::StatusOr ergonomics.
  StatusOr(T value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Requires `!ok()` to return a meaningful error; returns OK otherwise.
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  // Requires `ok()`.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &std::get<T>(rep_); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace s2rdf

// Propagates a non-OK Status from an expression, absl-style.
#define S2RDF_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::s2rdf::Status s2rdf_status_tmp_ = (expr);    \
    if (!s2rdf_status_tmp_.ok()) return s2rdf_status_tmp_; \
  } while (false)

// Evaluates a StatusOr expression, propagating errors and otherwise
// assigning the value to `lhs`. `lhs` may include a declaration.
#define S2RDF_ASSIGN_OR_RETURN(lhs, expr)                 \
  S2RDF_ASSIGN_OR_RETURN_IMPL_(                           \
      S2RDF_STATUS_CONCAT_(s2rdf_statusor_, __LINE__), lhs, expr)
#define S2RDF_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()
#define S2RDF_STATUS_CONCAT_(a, b) S2RDF_STATUS_CONCAT_IMPL_(a, b)
#define S2RDF_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // S2RDF_COMMON_STATUS_H_
