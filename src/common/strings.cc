#include "common/strings.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace s2rdf {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      return pieces;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::strchr(" \t\r\n\f\v", input[begin]) != nullptr) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::strchr(" \t\r\n\f\v", input[end - 1]) != nullptr) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view text, long long* value) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *value = parsed;
  return true;
}

bool ParseDouble(std::string_view text, double* value) {
  if (text.empty()) return false;
  std::string buf(text);
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *value = parsed;
  return true;
}

std::string StrReplaceAll(std::string_view text, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace s2rdf
