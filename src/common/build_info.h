#ifndef S2RDF_COMMON_BUILD_INFO_H_
#define S2RDF_COMMON_BUILD_INFO_H_

// Identity of the running binary, captured at configure time (git sha)
// and compile time (build type, compiler). Surfaced on /metrics as the
// s2rdf_build_info gauge and echoed by /health and /statusz so a
// scraped fleet can always be mapped back to the exact build.

namespace s2rdf {

struct BuildInfo {
  const char* git_sha;     // short sha, "unknown" outside a git checkout
  const char* build_type;  // CMAKE_BUILD_TYPE, "unspecified" when empty
  const char* compiler;    // "<id> <version>"
};

// The values baked into this binary. Static storage; never changes.
const BuildInfo& GetBuildInfo();

}  // namespace s2rdf

#endif  // S2RDF_COMMON_BUILD_INFO_H_
