#include "common/random.h"

#include <cmath>

namespace s2rdf {

uint64_t SplitMix64::Zipf(uint64_t n, double s) {
  S2RDF_DCHECK(n > 0);
  if (n == 1) return 0;
  // Simple inverse-CDF approximation over the harmonic-like integral.
  // H(x) = integral of x^-s: exact enough for workload skew modelling.
  if (s == 1.0) s = 1.0000001;  // Avoid the log singularity.
  const double exp1 = 1.0 - s;
  const double hmax = (std::pow(static_cast<double>(n) + 0.5, exp1) -
                       std::pow(0.5, exp1)) /
                      exp1;
  while (true) {
    const double u = UniformDouble() * hmax + std::pow(0.5, exp1) / exp1;
    const double x = std::pow(u * exp1, 1.0 / exp1);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    // Accept with probability proportional to the true mass; a single
    // acceptance test keeps the distribution close to Zipf(s).
    const double ratio = std::pow(static_cast<double>(k), -s) /
                         std::pow(x < 0.5 ? 0.5 : x, -s);
    if (UniformDouble() <= ratio) return k - 1;
  }
}

}  // namespace s2rdf
