#ifndef S2RDF_COMMON_TASK_POOL_H_
#define S2RDF_COMMON_TASK_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

// Shared morsel-execution pool — the process-wide analogue of a Spark
// cluster's executor slots. Every intra-query parallel loop (morsel
// scans, partitioned joins, partial aggregates, the ExtVP build) draws
// from this one pool instead of spawning its own threads, so N
// concurrent queries never multiply into N x partitions threads: total
// worker-thread count is fixed at construction, sized to the hardware.
//
// Deadlock-freedom: ParallelFor callers always execute loop bodies
// themselves alongside the pool's helpers, so a ParallelFor completes
// even when every helper thread is busy with other queries' morsels
// (or when the pool has zero threads). This is what makes it safe to
// call from server::WorkerPool workers: a saturated TaskPool degrades
// to serial execution on the calling thread, it never blocks it.

namespace s2rdf {

class TaskPool {
 public:
  // Spawns `num_threads` helper threads (0 is valid: every ParallelFor
  // then runs inline on the caller).
  explicit TaskPool(int num_threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // The process-wide pool, created on first use and never destroyed
  // (it must outlive static-destruction order). Sized by
  // std::thread::hardware_concurrency() minus one, because ParallelFor
  // callers participate: one ParallelFor saturates exactly the
  // hardware, caller included.
  static TaskPool* Shared();

  // Number of independent work items a caller should split a loop into
  // to saturate this pool: helpers plus the calling thread.
  size_t ParallelismWidth() const { return threads_.size() + 1; }

  // Runs body(0) .. body(n-1), each exactly once, distributing indices
  // dynamically (morsel-driven work stealing) over the helper threads
  // and the calling thread. Returns when every body call has finished.
  // Bodies must be safe to run concurrently with each other; they run
  // on helper threads, so they may read an ExecContext's interrupt
  // state (InterruptRequested) but must not record it (CheckInterrupt).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body)
      S2RDF_EXCLUDES(mu_);

  // Helper tasks currently parked in the queue (not yet claimed by a
  // thread). A sustained nonzero depth means every helper is busy and
  // new morsel fan-outs are degrading toward caller-only execution.
  size_t QueueDepth() const S2RDF_EXCLUDES(mu_);

  // Registers this pool's saturation metrics on `registry`:
  //   s2rdf_task_pool_queue_depth        gauge, sampled at render time
  //   s2rdf_task_pool_queue_wait_seconds histogram of enqueue->dequeue
  // `registry` must outlive the pool's last ParallelFor. Idempotent per
  // registry (names dedupe); the wait histogram swaps to the most
  // recently attached registry.
  void AttachMetrics(MetricsRegistry* registry) S2RDF_EXCLUDES(mu_);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    MonotonicTime enqueued;
  };

  void WorkerLoop() S2RDF_EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<QueuedTask> queue_ S2RDF_GUARDED_BY(mu_);
  bool stopping_ S2RDF_GUARDED_BY(mu_) = false;
  // Observed lock-free on the dequeue path; null until AttachMetrics.
  std::atomic<Histogram*> queue_wait_hist_{nullptr};
  // Written only during construction/destruction.
  std::vector<std::thread> threads_;
};

}  // namespace s2rdf

#endif  // S2RDF_COMMON_TASK_POOL_H_
