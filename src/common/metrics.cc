#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/check.h"
#include "common/mutex.h"

namespace s2rdf {

namespace {

// Renders a double the way Prometheus clients do: shortest form that
// round-trips reasonably ("0.001", "16384", "1.5e+09").
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  S2RDF_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t i = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  // upper_bound gives the first bound strictly greater; Prometheus `le`
  // is inclusive, so step back onto an exactly-equal bound.
  if (i > 0 && bounds_[i - 1] == value) --i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  uint64_t desired;
  do {
    desired = std::bit_cast<uint64_t>(std::bit_cast<double>(old) + value);
  } while (!sum_bits_.compare_exchange_weak(old, desired,
                                            std::memory_order_relaxed));
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1, 0);
  uint64_t running = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    running += buckets_[i].load(std::memory_order_relaxed);
    out[i] = running;
  }
  return out;
}

std::vector<double> LogBuckets(double start, double factor, int count) {
  S2RDF_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double v = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> LatencySecondsBuckets() {
  return LogBuckets(1e-4, 2.0, 21);  // 100us .. ~104.8s.
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(&mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      S2RDF_CHECK(e.kind == Kind::kCounter);
      return e.counter.get();
    }
  }
  Entry e;
  e.name = name;
  e.help = help;
  e.kind = Kind::kCounter;
  e.counter = std::make_unique<Counter>();
  Counter* out = e.counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      S2RDF_CHECK(e.kind == Kind::kHistogram);
      return e.histogram.get();
    }
  }
  Entry e;
  e.name = name;
  e.help = help;
  e.kind = Kind::kHistogram;
  e.histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e.histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

void MetricsRegistry::AddGauge(const std::string& name,
                               const std::string& help,
                               std::function<uint64_t()> fn) {
  MutexLock lock(&mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      S2RDF_CHECK(e.kind == Kind::kGauge);
      e.gauge = std::move(fn);
      return;
    }
  }
  Entry e;
  e.name = name;
  e.help = help;
  e.kind = Kind::kGauge;
  e.gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

void MetricsRegistry::AddInfo(const std::string& name,
                              const std::string& help, std::string labels) {
  MutexLock lock(&mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      S2RDF_CHECK(e.kind == Kind::kInfo);
      e.info_labels = std::move(labels);
      return;
    }
  }
  Entry e;
  e.name = name;
  e.help = help;
  e.kind = Kind::kInfo;
  e.info_labels = std::move(labels);
  entries_.push_back(std::move(e));
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const Entry& e : entries_) {
    if (!e.help.empty()) out += "# HELP " + e.name + " " + e.help + "\n";
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + e.name + " counter\n";
        out += e.name + " " + std::to_string(e.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + e.name + " gauge\n";
        out += e.name + " " + std::to_string(e.gauge ? e.gauge() : 0) + "\n";
        break;
      case Kind::kInfo:
        out += "# TYPE " + e.name + " gauge\n";
        out += e.name + "{" + e.info_labels + "} 1\n";
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + e.name + " histogram\n";
        const std::vector<double>& bounds = e.histogram->bounds();
        std::vector<uint64_t> cum = e.histogram->CumulativeCounts();
        for (size_t i = 0; i < bounds.size(); ++i) {
          out += e.name + "_bucket{le=\"" + FormatDouble(bounds[i]) + "\"} " +
                 std::to_string(cum[i]) + "\n";
        }
        out += e.name + "_bucket{le=\"+Inf\"} " +
               std::to_string(cum.back()) + "\n";
        out += e.name + "_sum " + FormatDouble(e.histogram->Sum()) + "\n";
        out += e.name + "_count " + std::to_string(e.histogram->Count()) +
               "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace s2rdf
