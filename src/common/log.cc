#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/mutex.h"

namespace s2rdf {
namespace {

// Process-start anchor for ts_ms. Captured on first log call so fake
// clocks installed before any logging define the origin.
MonotonicTime ProcessLogEpoch() {
  static const MonotonicTime epoch = MonotonicNow();
  return epoch;
}

struct SinkState {
  Mutex mu;
  LogSink sink S2RDF_GUARDED_BY(mu);
};

SinkState* GlobalSink() {
  static SinkState* state = new SinkState();  // leaked: outlives exit paths
  return state;
}

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

LogField::LogField(std::string k, double v)
    : key(std::move(k)), value(FormatDouble(v)), numeric(true) {}

LogField::LogField(std::string k, uint64_t v)
    : key(std::move(k)), value(std::to_string(v)), numeric(true) {}

LogField::LogField(std::string k, int v)
    : key(std::move(k)), value(std::to_string(v)), numeric(true) {}

void SetLogSinkForTest(LogSink sink) {
  SinkState* state = GlobalSink();
  MutexLock lock(&state->mu);
  state->sink = std::move(sink);
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::string RenderLogLine(LogLevel level, const std::string& event,
                          std::initializer_list<LogField> fields) {
  std::string line = "{\"ts_ms\":";
  line += FormatDouble(MillisSince(ProcessLogEpoch()));
  line += ",\"level\":\"";
  line += LogLevelName(level);
  line += "\",\"event\":\"";
  line += JsonEscape(event);
  line += "\"";
  for (const LogField& f : fields) {
    line += ",\"";
    line += JsonEscape(f.key);
    line += "\":";
    if (f.numeric) {
      line += f.value;
    } else {
      line += "\"";
      line += JsonEscape(f.value);
      line += "\"";
    }
  }
  line += "}";
  return line;
}

void LogEvent(LogLevel level, const std::string& event,
              std::initializer_list<LogField> fields) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = RenderLogLine(level, event, fields);
  SinkState* state = GlobalSink();
  LogSink sink;
  {
    MutexLock lock(&state->mu);
    sink = state->sink;
  }
  if (sink) {
    sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

bool LogRateLimiter::Allow(const std::string& key, uint64_t* suppressed) {
  if (interval_seconds_ <= 0) {
    if (suppressed != nullptr) *suppressed = 0;
    return true;
  }
  const MonotonicTime now = MonotonicNow();
  MutexLock lock(&mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) {
    keys_.emplace(key, KeyState{now, 0});
    if (suppressed != nullptr) *suppressed = 0;
    return true;
  }
  KeyState& state = it->second;
  const double elapsed =
      std::chrono::duration<double>(now - state.last_allowed).count();
  if (elapsed >= interval_seconds_) {
    if (suppressed != nullptr) *suppressed = state.suppressed;
    state.suppressed = 0;
    state.last_allowed = now;
    return true;
  }
  ++state.suppressed;
  return false;
}

uint64_t LogRateLimiter::SuppressedFor(const std::string& key) const {
  MutexLock lock(&mu_);
  auto it = keys_.find(key);
  return it == keys_.end() ? 0 : it->second.suppressed;
}

}  // namespace s2rdf
