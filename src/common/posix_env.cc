// PosixEnv: the one translation unit in src/ where raw file I/O is
// permitted (s2rdf_lint rule `raw-io` allowlists exactly this file plus
// env.cc). Everything else reaches the filesystem through an Env, so
// the fault-injection harness can interpose on every byte.

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/env.h"

namespace s2rdf {

Status PosixEnv::WriteFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IoError("cannot open for write: " + path + ": " +
                   std::strerror(errno));
  }
  size_t written =
      data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  int close_rc = std::fclose(f);
  if (written != data.size() || close_rc != 0) {
    return IoError("short write: " + path);
  }
  return Status::Ok();
}

Status PosixEnv::ReadFile(const std::string& path, std::string* data) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // Distinguish a missing file (store integrity problem the caller
    // may quarantine) from a transient read failure (worth retrying).
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return IoError("cannot open for read: " + path + ": " +
                   std::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return IoError("cannot stat: " + path);
  }
  data->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(data->data(), 1, data->size(), f);
  std::fclose(f);
  if (read != data->size()) return IoError("short read: " + path);
  return Status::Ok();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return IoError("rename failed: " + from + " -> " + to + ": " +
                   std::strerror(errno));
  }
  return Status::Ok();
}

Status PosixEnv::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  // Best effort; some filesystems reject directory fsync entirely.
  if (fd < 0) return Status::Ok();
  (void)::fsync(fd);
  ::close(fd);
  return Status::Ok();
}

Status PosixEnv::RemoveFile(const std::string& path) {
  if (unlink(path.c_str()) != 0 && errno != ENOENT) {
    return IoError("unlink failed: " + path + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

Status PosixEnv::SyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoError("cannot open for sync: " + path + ": " +
                   std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync failed: " + path);
  return Status::Ok();
}

Status PosixEnv::MakeDirs(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("empty directory path");
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      partial = path.substr(0, i == path.size() ? i : i + 1);
      if (partial.empty() || partial == "/") continue;
      if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return IoError("mkdir failed: " + partial + ": " +
                       std::strerror(errno));
      }
    }
  }
  return Status::Ok();
}

bool PosixEnv::PathExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

uint64_t PosixEnv::FileSizeBytes(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) return 0;
  return static_cast<uint64_t>(st.st_size);
}

StatusOr<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    return IoError("opendir failed: " + dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> names;
  while (struct dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    std::string full = dir + "/" + name;
    if (stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      names.push_back(name);
    }
  }
  closedir(d);
  return names;
}

}  // namespace s2rdf
