#include "storage/fault_injection_env.h"

#include "common/mutex.h"

namespace s2rdf::storage {

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::CrashAfterMutations(uint64_t n) {
  MutexLock lock(&mu_);
  crash_after_ = n;
  crash_armed_ = true;
  crashed_ = false;
  mutations_ = 0;
}

void FaultInjectionEnv::set_crash_style(CrashStyle style) {
  MutexLock lock(&mu_);
  style_ = style;
}

void FaultInjectionEnv::FlipBitInNextWrite() {
  MutexLock lock(&mu_);
  flip_bit_next_write_ = true;
}

void FaultInjectionEnv::FlipBitInWrite(uint64_t k) {
  MutexLock lock(&mu_);
  flip_bit_at_write_armed_ = true;
  flip_bit_at_write_ = k;
  writes_ = 0;
}

uint64_t FaultInjectionEnv::write_count() const {
  MutexLock lock(&mu_);
  return writes_;
}

void FaultInjectionEnv::FailNextReads(int k) {
  MutexLock lock(&mu_);
  transient_read_failures_ = k;
}

void FaultInjectionEnv::ClearFaults() {
  MutexLock lock(&mu_);
  crash_armed_ = false;
  crashed_ = false;
  flip_bit_next_write_ = false;
  flip_bit_at_write_armed_ = false;
  transient_read_failures_ = 0;
}

uint64_t FaultInjectionEnv::mutation_count() const {
  MutexLock lock(&mu_);
  return mutations_;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

void FaultInjectionEnv::AttachMetrics(MetricsRegistry* registry) {
  reads_total_ = registry->AddCounter(
      "s2rdf_faultenv_reads_total", "ReadFile calls through the fault env.");
  mutations_total_ = registry->AddCounter(
      "s2rdf_faultenv_mutations_total",
      "Mutating ops (write/rename/remove/sync) that succeeded.");
  faults_injected_ = registry->AddCounter(
      "s2rdf_faultenv_faults_injected_total",
      "Faults actually delivered: crash-point failures, bit flips, "
      "transient read errors.");
}

bool FaultInjectionEnv::ShouldFailMutation(bool* torn_out) {
  *torn_out = false;
  if (crashed_) return true;
  if (crash_armed_ && mutations_ >= crash_after_) {
    crashed_ = true;  // This op is the crash point.
    *torn_out = style_ == CrashStyle::kTorn;
    if (faults_injected_ != nullptr) faults_injected_->Increment();
    return true;
  }
  ++mutations_;
  if (mutations_total_ != nullptr) mutations_total_->Increment();
  return false;
}

Status FaultInjectionEnv::WriteFile(const std::string& path,
                                    const std::string& data) {
  bool flip;
  bool torn;
  bool fail;
  {
    MutexLock lock(&mu_);
    fail = ShouldFailMutation(&torn);
    flip = !fail && flip_bit_next_write_;
    if (flip) flip_bit_next_write_ = false;
    if (!fail && flip_bit_at_write_armed_ && writes_ == flip_bit_at_write_) {
      flip = true;
      flip_bit_at_write_armed_ = false;
    }
    ++writes_;
  }
  if (flip && faults_injected_ != nullptr) faults_injected_->Increment();
  if (fail) {
    if (torn && !data.empty()) {
      // The crash interrupted the write mid-stream: a prefix landed.
      (void)base_->WriteFile(path, data.substr(0, data.size() / 2));
    }
    return IoError("injected crash: write " + path);
  }
  if (flip && !data.empty()) {
    std::string corrupted = data;
    corrupted[corrupted.size() / 2] ^= 0x10;
    return base_->WriteFile(path, corrupted);
  }
  return base_->WriteFile(path, data);
}

Status FaultInjectionEnv::ReadFile(const std::string& path,
                                   std::string* data) {
  if (reads_total_ != nullptr) reads_total_->Increment();
  {
    MutexLock lock(&mu_);
    if (transient_read_failures_ > 0) {
      --transient_read_failures_;
      if (faults_injected_ != nullptr) faults_injected_->Increment();
      return IoError("injected transient read error: " + path);
    }
  }
  return base_->ReadFile(path, data);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  bool torn;
  {
    MutexLock lock(&mu_);
    if (ShouldFailMutation(&torn)) {
      return IoError("injected crash: rename " + from);
    }
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  bool torn;
  {
    MutexLock lock(&mu_);
    if (ShouldFailMutation(&torn)) {
      return IoError("injected crash: remove " + path);
    }
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::SyncFile(const std::string& path) {
  bool torn;
  {
    MutexLock lock(&mu_);
    if (ShouldFailMutation(&torn)) {
      return IoError("injected crash: sync " + path);
    }
  }
  return base_->SyncFile(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  bool torn;
  {
    MutexLock lock(&mu_);
    if (ShouldFailMutation(&torn)) {
      return IoError("injected crash: syncdir " + dir);
    }
  }
  return base_->SyncDir(dir);
}

Status FaultInjectionEnv::MakeDirs(const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (crashed_) return IoError("injected crash: mkdir " + path);
  }
  return base_->MakeDirs(path);
}

bool FaultInjectionEnv::PathExists(const std::string& path) {
  return base_->PathExists(path);
}

StatusOr<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& dir) {
  return base_->ListDir(dir);
}

}  // namespace s2rdf::storage
