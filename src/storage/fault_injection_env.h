#ifndef S2RDF_STORAGE_FAULT_INJECTION_ENV_H_
#define S2RDF_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

// Deterministic fault injection for the storage layer. Wraps a base Env
// and can
//   - crash after the N-th mutating operation (write/rename/remove/
//     file-sync/dir-sync): the triggering op and everything after it
//     fail with kIoError, simulating process death mid-protocol;
//   - tear the write at the crash point (persist only a prefix), the
//     failure mode atomic rename must mask;
//   - silently flip one bit in the next write (media corruption the
//     checksums must catch);
//   - fail the next K reads with a transient kIoError (EINTR/EIO-style),
//     which the catalog's bounded retry must absorb.
//
// The crash-point matrix test runs a fixed workload once to count its
// mutations, then replays it crashing at every 0 <= k < N and asserts
// that recovery always lands on a pre- or post-write state.
//
// Thread-safe; all state is guarded by one mutex.

namespace s2rdf::storage {

class FaultInjectionEnv : public Env {
 public:
  enum class CrashStyle {
    kClean,  // The crashing op performs nothing.
    kTorn,   // A crashing WriteFile persists only a prefix of the data.
  };

  // Wraps `base` (Env::Default() when null).
  explicit FaultInjectionEnv(Env* base = nullptr);

  // The first `n` mutating ops succeed; the (n+1)-th and all later ones
  // fail. Pass together with set_crash_style to model torn writes.
  void CrashAfterMutations(uint64_t n);
  void set_crash_style(CrashStyle style);

  // Silently flips one bit in the data of the next WriteFile (the write
  // itself reports success).
  void FlipBitInNextWrite();

  // Silently flips one bit in the data of the k-th WriteFile from now
  // (0-based) — the bit-flip leg of the crash-point matrix, which walks
  // the flip across every write site of a workload.
  void FlipBitInWrite(uint64_t k);

  // WriteFile calls attempted so far (counts faulted ones too); the
  // matrix uses this to size the FlipBitInWrite sweep.
  uint64_t write_count() const;

  // The next `k` ReadFile calls fail with kIoError, then reads recover.
  void FailNextReads(int k);

  // Clears all pending faults and the crashed state (counters persist).
  void ClearFaults();

  // Mutating ops performed successfully so far.
  uint64_t mutation_count() const;
  bool crashed() const;

  // Optional observability hookup: registers this env's counters
  // (reads, successful mutations, faults actually injected) on
  // `registry`, rendered on its /metrics alongside everything else.
  // `registry` must outlive the env; call before serving traffic.
  void AttachMetrics(MetricsRegistry* registry);

  Status WriteFile(const std::string& path, const std::string& data) override;
  Status ReadFile(const std::string& path, std::string* data) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Status MakeDirs(const std::string& path) override;
  bool PathExists(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;

 private:
  // Returns true when the current mutating op must fail; `torn_out` is
  // set when this op is the crash point of a torn-style crash.
  bool ShouldFailMutation(bool* torn_out) S2RDF_REQUIRES(mu_);

  Env* base_;
  mutable Mutex mu_;
  uint64_t mutations_ S2RDF_GUARDED_BY(mu_) = 0;
  uint64_t crash_after_ S2RDF_GUARDED_BY(mu_) = 0;
  bool crash_armed_ S2RDF_GUARDED_BY(mu_) = false;
  bool crashed_ S2RDF_GUARDED_BY(mu_) = false;
  CrashStyle style_ S2RDF_GUARDED_BY(mu_) = CrashStyle::kClean;
  bool flip_bit_next_write_ S2RDF_GUARDED_BY(mu_) = false;
  uint64_t writes_ S2RDF_GUARDED_BY(mu_) = 0;
  bool flip_bit_at_write_armed_ S2RDF_GUARDED_BY(mu_) = false;
  uint64_t flip_bit_at_write_ S2RDF_GUARDED_BY(mu_) = 0;
  int transient_read_failures_ S2RDF_GUARDED_BY(mu_) = 0;
  // Null until AttachMetrics; owned by the attached registry.
  Counter* reads_total_ = nullptr;
  Counter* mutations_total_ = nullptr;
  Counter* faults_injected_ = nullptr;
};

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_FAULT_INJECTION_ENV_H_
