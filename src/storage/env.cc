#include "storage/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/file_util.h"

namespace s2rdf::storage {

constexpr char Env::kTempSuffix[];

Status Env::WriteFileAtomic(const std::string& path,
                            const std::string& data) {
  // The staging file is left behind on failure by design: a crash can
  // interrupt any step, and recovery deletes "*.tmp" debris anyway.
  const std::string tmp = path + kTempSuffix;
  S2RDF_RETURN_IF_ERROR(WriteFile(tmp, data));
  S2RDF_RETURN_IF_ERROR(SyncFile(tmp));
  return RenameFile(tmp, path);
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

Status PosixEnv::WriteFile(const std::string& path, const std::string& data) {
  return s2rdf::WriteFile(path, data);
}

Status PosixEnv::ReadFile(const std::string& path, std::string* data) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    // Distinguish a missing file (store integrity problem the caller
    // may quarantine) from a transient read failure (worth retrying).
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return IoError("cannot open for read: " + path + ": " +
                   std::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return IoError("cannot stat: " + path);
  }
  data->resize(static_cast<size_t>(size));
  size_t read = size == 0 ? 0 : std::fread(data->data(), 1, data->size(), f);
  std::fclose(f);
  if (read != data->size()) return IoError("short read: " + path);
  return Status::Ok();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return IoError("rename failed: " + from + " -> " + to + ": " +
                   std::strerror(errno));
  }
  // fsync the parent directory so the rename itself is durable.
  size_t slash = to.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : to.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    (void)::fsync(fd);  // Best effort; some filesystems reject dir fsync.
    ::close(fd);
  }
  return Status::Ok();
}

Status PosixEnv::RemoveFile(const std::string& path) {
  return s2rdf::RemoveFile(path);
}

Status PosixEnv::SyncFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return IoError("cannot open for sync: " + path + ": " +
                   std::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return IoError("fsync failed: " + path);
  return Status::Ok();
}

Status PosixEnv::MakeDirs(const std::string& path) {
  return s2rdf::MakeDirs(path);
}

bool PosixEnv::PathExists(const std::string& path) {
  return s2rdf::PathExists(path);
}

StatusOr<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  return s2rdf::ListDir(dir);
}

}  // namespace s2rdf::storage
