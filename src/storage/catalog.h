#ifndef S2RDF_STORAGE_CATALOG_H_
#define S2RDF_STORAGE_CATALOG_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/table.h"

// Named-table catalog with persisted statistics — the analogue of the
// HDFS directory of Parquet files plus the table statistics S2RDF
// collects during ExtVP creation (Sec. 6.1). The query compiler consults
// the statistics (rows, selectivity factor) without touching table data;
// statistics exist even for tables that were *not* materialized (empty
// tables and tables pruned by the SF threshold), which is what enables
// the paper's "answer from statistics alone" shortcut.
//
// Thread safety: all public methods are safe to call concurrently. The
// in-memory cache hands out shared_ptr ownership, so evicting a table
// under memory pressure never invalidates a copy an in-flight query is
// still scanning. Stats entries are never erased (only added), so the
// pointers returned by GetStats stay valid for the catalog's lifetime.

namespace s2rdf::storage {

struct TableStats {
  std::string name;
  uint64_t rows = 0;
  // Selectivity factor SF = |table| / |base VP table| (1.0 for VP/base
  // tables themselves).
  double selectivity = 1.0;
  // On-disk footprint; 0 when not materialized.
  uint64_t bytes = 0;
  bool materialized = false;
};

class Catalog {
 public:
  // `dir` is the storage directory; empty keeps everything in memory
  // (bytes are then the serialized size, computed on registration).
  explicit Catalog(std::string dir);

  // Moves transfer the table map; neither operand may be in concurrent
  // use during the move.
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers and materializes `table` under `name`.
  Status Put(const std::string& name, engine::Table table,
             double selectivity);

  // Registers statistics for a table that is intentionally not
  // materialized (SF = 0, SF = 1, or above the SF threshold).
  void PutStatsOnly(const std::string& name, uint64_t rows,
                    double selectivity);

  bool Has(const std::string& name) const;
  const TableStats* GetStats(const std::string& name) const;

  // Returns shared ownership of the table, loading it from disk on
  // first access. The returned pointer stays valid across evictions.
  // NotFound for unknown or unmaterialized names.
  StatusOr<std::shared_ptr<const engine::Table>> GetTableShared(
      const std::string& name);

  // Raw-pointer variant for single-threaded callers (layout builders,
  // baselines, tests): valid until the table is evicted or replaced.
  StatusOr<const engine::Table*> GetTable(const std::string& name);

  // Drops a materialized table's in-memory copy (it stays on disk).
  void EvictFromMemory(const std::string& name);

  // --- Memory budget -----------------------------------------------------
  //
  // Disk-backed catalogs can bound their in-memory cache: EvictToBudget
  // drops least-recently-used tables until CachedBytes() fits the
  // budget. Queries pin the tables they scan via the shared_ptr handles
  // of GetTableShared / AsProvider, so eviction only drops the
  // catalog's own reference; the bytes are reclaimed when the last
  // in-flight query releases its pin. In-memory catalogs (empty `dir`)
  // never evict — their tables have no disk copy.

  // 0 (default) = unlimited.
  void SetMemoryBudget(uint64_t bytes);
  uint64_t memory_budget() const;

  // Approximate bytes of cached (in-memory) tables.
  uint64_t CachedBytes() const;

  // Evicts LRU disk-backed tables until within budget; returns the
  // number of tables dropped.
  size_t EvictToBudget();

  // Aggregate statistics over materialized tables.
  uint64_t TotalTuples() const;
  uint64_t TotalBytes() const;
  size_t NumMaterializedTables() const;
  size_t NumStatsEntries() const;

  // All stats entries, name-ordered.
  std::vector<const TableStats*> AllStats() const;

  // Persists / restores the stats manifest ("<dir>/manifest.tsv").
  Status SaveManifest() const;
  Status LoadManifest();

  // Adapter for engine::ExecutePlan. The provider loads lazily, returns
  // nullptr for unknown tables, and *pins* every table it resolves for
  // its own lifetime — callers keep the provider alive for the duration
  // of one query, making concurrent eviction safe.
  engine::TableProvider AsProvider();

  const std::string& dir() const { return dir_; }

 private:
  std::string TablePath(const std::string& name) const;
  // The *Locked helpers assume mu_ is held.
  void CacheInsertLocked(const std::string& name,
                         std::shared_ptr<const engine::Table> table);
  void EvictFromMemoryLocked(const std::string& name);
  void TouchLruLocked(const std::string& name);

  std::string dir_;
  // Guards stats_, cache_, lru_, cached_bytes_, memory_budget_.
  mutable std::mutex mu_;
  std::map<std::string, TableStats> stats_;
  std::map<std::string, std::shared_ptr<const engine::Table>> cache_;
  uint64_t memory_budget_ = 0;
  uint64_t cached_bytes_ = 0;
  // Least-recently-used at front; names mirror cache_ keys.
  std::list<std::string> lru_;
};

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_CATALOG_H_
