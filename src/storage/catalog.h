#ifndef S2RDF_STORAGE_CATALOG_H_
#define S2RDF_STORAGE_CATALOG_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/plan.h"
#include "engine/table.h"

// Named-table catalog with persisted statistics — the analogue of the
// HDFS directory of Parquet files plus the table statistics S2RDF
// collects during ExtVP creation (Sec. 6.1). The query compiler consults
// the statistics (rows, selectivity factor) without touching table data;
// statistics exist even for tables that were *not* materialized (empty
// tables and tables pruned by the SF threshold), which is what enables
// the paper's "answer from statistics alone" shortcut.

namespace s2rdf::storage {

struct TableStats {
  std::string name;
  uint64_t rows = 0;
  // Selectivity factor SF = |table| / |base VP table| (1.0 for VP/base
  // tables themselves).
  double selectivity = 1.0;
  // On-disk footprint; 0 when not materialized.
  uint64_t bytes = 0;
  bool materialized = false;
};

class Catalog {
 public:
  // `dir` is the storage directory; empty keeps everything in memory
  // (bytes are then the serialized size, computed on registration).
  explicit Catalog(std::string dir);

  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers and materializes `table` under `name`.
  Status Put(const std::string& name, engine::Table table,
             double selectivity);

  // Registers statistics for a table that is intentionally not
  // materialized (SF = 0, SF = 1, or above the SF threshold).
  void PutStatsOnly(const std::string& name, uint64_t rows,
                    double selectivity);

  bool Has(const std::string& name) const;
  const TableStats* GetStats(const std::string& name) const;

  // Returns the table, loading it from disk on first access. NotFound
  // for unknown or unmaterialized names.
  StatusOr<const engine::Table*> GetTable(const std::string& name);

  // Drops a materialized table's in-memory copy (it stays on disk).
  void EvictFromMemory(const std::string& name);

  // --- Memory budget -----------------------------------------------------
  //
  // Disk-backed catalogs can bound their in-memory cache: EvictToBudget
  // drops least-recently-used tables until CachedBytes() fits the
  // budget. Eviction is explicit (never inside GetTable) so pointers
  // returned by GetTable stay valid for the duration of one query; the
  // S2Rdf facade evicts between queries. In-memory catalogs (empty
  // `dir`) never evict — their tables have no disk copy.

  // 0 (default) = unlimited.
  void SetMemoryBudget(uint64_t bytes) { memory_budget_ = bytes; }
  uint64_t memory_budget() const { return memory_budget_; }

  // Approximate bytes of cached (in-memory) tables.
  uint64_t CachedBytes() const { return cached_bytes_; }

  // Evicts LRU disk-backed tables until within budget; returns the
  // number of tables dropped.
  size_t EvictToBudget();

  // Aggregate statistics over materialized tables.
  uint64_t TotalTuples() const;
  uint64_t TotalBytes() const;
  size_t NumMaterializedTables() const;
  size_t NumStatsEntries() const { return stats_.size(); }

  // All stats entries, name-ordered.
  std::vector<const TableStats*> AllStats() const;

  // Persists / restores the stats manifest ("<dir>/manifest.tsv").
  Status SaveManifest() const;
  Status LoadManifest();

  // Adapter for engine::ExecutePlan. The provider loads lazily and
  // returns nullptr for unknown tables.
  engine::TableProvider AsProvider();

  const std::string& dir() const { return dir_; }

 private:
  std::string TablePath(const std::string& name) const;
  void CacheInsert(const std::string& name,
                   std::unique_ptr<engine::Table> table);
  void TouchLru(const std::string& name);

  std::string dir_;
  std::map<std::string, TableStats> stats_;
  std::map<std::string, std::unique_ptr<engine::Table>> cache_;
  uint64_t memory_budget_ = 0;
  uint64_t cached_bytes_ = 0;
  // Least-recently-used at front; names mirror cache_ keys.
  std::list<std::string> lru_;
};

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_CATALOG_H_
