#ifndef S2RDF_STORAGE_CATALOG_H_
#define S2RDF_STORAGE_CATALOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/plan.h"
#include "engine/table.h"
#include "storage/env.h"

// Named-table catalog with persisted statistics — the analogue of the
// HDFS directory of Parquet files plus the table statistics S2RDF
// collects during ExtVP creation (Sec. 6.1). The query compiler consults
// the statistics (rows, selectivity factor) without touching table data;
// statistics exist even for tables that were *not* materialized (empty
// tables and tables pruned by the SF threshold), which is what enables
// the paper's "answer from statistics alone" shortcut.
//
// Durability (what HDFS gave the paper for free): every table file and
// manifest generation is written via temp-file + fsync + rename through
// an injectable Env, so a crash leaves either the old or the new state,
// never a torn file. The manifest is a generation chain — immutable
// "manifest-<g>.tsv" files (self-checksummed, carrying their generation)
// plus a CURRENT pointer updated atomically; if the current generation
// is damaged, loading falls back to the newest generation that still
// verifies. Recover() additionally verifies every materialized table's
// checksums, quarantines unreadable/corrupt tables (queries then degrade
// to the base VP table instead of failing — see core/table_selection),
// and deletes orphaned "*.tmp" staging files.
//
// Thread safety: all public methods are safe to call concurrently. The
// in-memory cache hands out shared_ptr ownership, so evicting a table
// under memory pressure never invalidates a copy an in-flight query is
// still scanning. Stats entries are never erased (only added), so the
// pointers returned by GetStats stay valid for the catalog's lifetime.

namespace s2rdf::storage {

struct TableStats {
  std::string name;
  uint64_t rows = 0;
  // Selectivity factor SF = |table| / |base VP table| (1.0 for VP/base
  // tables themselves).
  double selectivity = 1.0;
  // On-disk footprint; 0 when not materialized.
  uint64_t bytes = 0;
  bool materialized = false;
  // Manifest generation whose CommitBatch last rewrote the table file:
  // 0 = the base "<name>.s2tb" path (initial build / Put), g > 0 = the
  // generation-suffixed "<name>@<g>.s2tb" path. Old and new files
  // coexist until the manifest flip, which is what makes a multi-table
  // ingest batch atomic.
  uint64_t file_gen = 0;
};

// What startup recovery found and repaired.
struct RecoveryReport {
  // Manifest generation the store recovered to.
  uint64_t generation = 0;
  // Materialized tables whose checksums verified.
  size_t tables_verified = 0;
  // Tables quarantined (unreadable or corrupt).
  size_t tables_quarantined = 0;
  // Orphaned "*.tmp" staging files deleted.
  size_t temp_files_removed = 0;
  // Superseded manifest generations pruned.
  size_t old_manifests_removed = 0;
  // Table files no manifest generation references — debris of a torn
  // ingest batch, rolled back by deletion.
  size_t orphan_tables_removed = 0;
};

// One table's new state within an atomic CommitBatch: a materialized
// replacement (`table` set) or a statistics-only entry (`table` empty —
// SF = 0/1 or pruned by the SF threshold; any previously materialized
// file is superseded).
struct TableUpdate {
  std::string name;
  std::optional<engine::Table> table;
  uint64_t rows = 0;          // Used when `table` is empty.
  double selectivity = 1.0;
  // When set (and `table` is empty), the existing materialized file is
  // kept and only rows/selectivity change — the SF-denominator update
  // for reductions whose row set is untouched by a batch. Ignored when
  // the table was not materialized.
  bool retain_table = false;
};

// Staleness bookkeeping attached to a CommitBatch (see MarkStaleSource).
struct CommitOptions {
  // Base VP tables whose dependent ExtVP reductions/SF stats were NOT
  // delta-maintained by this batch (deferred mode).
  std::vector<std::string> mark_stale;
  // Sources whose dependents this batch brought back up to date.
  std::vector<std::string> clear_stale;
};

class Catalog {
 public:
  // `dir` is the storage directory; empty keeps everything in memory
  // (bytes are then the serialized size, computed on registration).
  // `env` is the file-I/O environment (Env::Default() when null); it
  // must outlive the catalog.
  explicit Catalog(std::string dir, Env* env = nullptr);

  // Moves transfer the table map; neither operand may be in concurrent
  // use during the move.
  Catalog(Catalog&& other) noexcept;
  Catalog& operator=(Catalog&& other) noexcept;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Registers and materializes `table` under `name`.
  Status Put(const std::string& name, engine::Table table,
             double selectivity);

  // Registers statistics for a table that is intentionally not
  // materialized (SF = 0, SF = 1, or above the SF threshold).
  void PutStatsOnly(const std::string& name, uint64_t rows,
                    double selectivity);

  // Atomically applies a multi-table batch (the ingest commit path).
  // Protocol: every replacement table file lands first under a
  // generation-suffixed name ("<name>@<g>.s2tb", temp+fsync+rename),
  // then one manifest generation referencing the new files is written
  // and CURRENT flips to it, then the in-memory state (stats, cache,
  // quarantine/stale sets) swaps under a single lock hold. A crash
  // before the CURRENT flip leaves the previous generation fully intact
  // — Recover() deletes the unreferenced "@<g>" files — and readers
  // that pinned tables via GetTableShared keep their generation until
  // they release the pins. Superseded table files are removed best
  // effort after the flip.
  Status CommitBatch(std::vector<TableUpdate> updates,
                     const CommitOptions& options = {});

  bool Has(const std::string& name) const;
  const TableStats* GetStats(const std::string& name) const;

  // Returns shared ownership of the table, loading it from disk on
  // first access. The returned pointer stays valid across evictions.
  // NotFound for unknown or unmaterialized names; FailedPrecondition for
  // quarantined ones. Transient (kIoError) read failures are retried
  // with backoff; corruption quarantines the table.
  StatusOr<std::shared_ptr<const engine::Table>> GetTableShared(
      const std::string& name);

  // Raw-pointer variant for single-threaded callers (layout builders,
  // baselines, tests): valid until the table is evicted or replaced.
  StatusOr<const engine::Table*> GetTable(const std::string& name);

  // Drops a materialized table's in-memory copy (it stays on disk).
  void EvictFromMemory(const std::string& name);

  // --- Memory budget -----------------------------------------------------
  //
  // Disk-backed catalogs can bound their in-memory cache: EvictToBudget
  // drops least-recently-used tables until CachedBytes() fits the
  // budget. Queries pin the tables they scan via the shared_ptr handles
  // of GetTableShared / AsProvider, so eviction only drops the
  // catalog's own reference; the bytes are reclaimed when the last
  // in-flight query releases its pin. In-memory catalogs (empty `dir`)
  // never evict — their tables have no disk copy.

  // 0 (default) = unlimited.
  void SetMemoryBudget(uint64_t bytes);
  uint64_t memory_budget() const;

  // Approximate bytes of cached (in-memory) tables.
  uint64_t CachedBytes() const;

  // Evicts LRU disk-backed tables until within budget; returns the
  // number of tables dropped.
  size_t EvictToBudget();

  // Aggregate statistics over materialized tables.
  uint64_t TotalTuples() const;
  uint64_t TotalBytes() const;
  size_t NumMaterializedTables() const;
  size_t NumStatsEntries() const;

  // All stats entries, name-ordered.
  std::vector<const TableStats*> AllStats() const;

  // Persists the stats as a new manifest generation ("<dir>/
  // manifest-<g>.tsv" + atomic CURRENT update), then prunes generations
  // older than the previous one.
  Status SaveManifest() const;

  // Restores the stats from the manifest chain: CURRENT's generation if
  // it verifies, else the newest generation that does, else a legacy
  // un-checksummed "manifest.tsv".
  Status LoadManifest();

  // Startup recovery: LoadManifest, then verify every materialized
  // table's checksums (quarantining failures) and delete orphaned
  // staging files and superseded manifests.
  StatusOr<RecoveryReport> Recover();

  // --- Corruption handling ----------------------------------------------

  // True when `name` was quarantined (failed verification at recovery or
  // a load-time checksum). Quarantined tables refuse to load; table
  // selection degrades to the base VP table / triples table instead.
  bool IsQuarantined(const std::string& name) const;

  // Installs the name-level fallback used by AsProvider when a table
  // fails its load-time checksum mid-query: maps a table name to the
  // name of a superset table that answers the same scans (ExtVP -> base
  // VP); return "" for "no fallback". Installed by core::S2Rdf.
  void SetDegradedFallback(
      std::function<std::string(const std::string&)> fallback);

  // Incremented by the query compiler when table selection had to
  // substitute a worse table for a quarantined one. const because the
  // compiler only holds a const catalog reference.
  void NoteDegradedQuery() const;

  // --- Staleness (deferred ExtVP/SF maintenance) --------------------------
  //
  // A deferred ingest batch appends to a VP table without delta-
  // maintaining its dependent ExtVP reductions; until a refresh catches
  // up, those reductions MISS the new triples (they are no longer
  // supersets of a fresh semi-join), so table selection must not scan
  // them and the optimizer falls back to conservative estimates. The
  // stale set is keyed by the *source* VP table name and persisted in
  // the manifest, so staleness survives restarts.

  // Marks dependents of `vp_name` stale (persisted at the next manifest
  // write; CommitBatch does both in one atomic flip).
  void MarkStaleSource(const std::string& vp_name);
  bool IsStaleSource(const std::string& vp_name) const;
  std::vector<std::string> StaleSources() const;
  size_t stale_source_count() const;

  // Incremented by the cardinality estimator when a statistic was
  // ignored because its source is stale (conservative fallback).
  void NoteStaleSfFallback() const;
  uint64_t stale_sf_fallbacks() const;

  // Monitoring counters (exposed via the endpoint's /metrics).
  uint64_t corruptions_detected() const;
  uint64_t queries_degraded() const;
  uint64_t quarantined_tables() const;

  // Transient-read retry attempts performed (s2rdf_read_retries_total).
  uint64_t read_retries() const;

  // Reads `path` through the catalog's Env with bounded retry and
  // jittered exponential backoff on transient kIoError, counted in
  // read_retries(). For sibling artifacts on the ingest path (e.g. the
  // dictionary read-back verification) that need the same transient-
  // fault tolerance as table loads.
  Status ReadFileRetrying(const std::string& path, std::string* data) const;

  // Test seam for the jittered retry backoff: replaces the real
  // sleep-for with `fn` (nullptr restores sleeping). Process-wide.
  static void SetRetrySleepFnForTest(
      void (*fn)(std::chrono::milliseconds delay));

  // Generation of the manifest currently loaded / last saved.
  uint64_t generation() const;

  // Adapter for engine::ExecutePlan. The provider loads lazily, returns
  // nullptr for unknown tables, and *pins* every table it resolves for
  // its own lifetime — callers keep the provider alive for the duration
  // of one query, making concurrent eviction safe. When a table fails
  // its load-time checksum the provider degrades to the installed
  // fallback table (recording the substitution) instead of failing the
  // query.
  engine::TableProvider AsProvider();

  const std::string& dir() const { return dir_; }

  // On-disk file name of a table at file generation `file_gen`:
  // "<name>.s2tb" for 0, "<name>@<g>.s2tb" otherwise.
  static std::string TableFileName(const std::string& name,
                                   uint64_t file_gen);

 private:
  std::string TablePath(const std::string& name, uint64_t file_gen) const;
  // Path for the table's current file generation per stats_ (0 when
  // unknown).
  std::string CurrentTablePath(const std::string& name) const
      S2RDF_EXCLUDES(mu_);
  StatusOr<engine::Table> LoadTableRetrying(const std::string& path) const;
  // Renders the checksummed manifest content for generation `gen` from
  // the given stats + stale snapshot.
  static std::string RenderManifest(
      uint64_t gen, const std::map<std::string, TableStats>& stats,
      const std::set<std::string>& stale_sources);
  // Writes "manifest-<gen>.tsv" and flips CURRENT to it (both atomic).
  Status WriteManifestGeneration(uint64_t gen, const std::string& content)
      const;
  // Best-effort prune of manifest generations older than `gen` - 1.
  void PruneOldManifests(uint64_t gen) const;
  // Parses + verifies one manifest blob and swaps it in. mu_ NOT held.
  Status AdoptManifest(const std::string& content, bool require_checksum)
      S2RDF_EXCLUDES(mu_);
  // The *Locked helpers require mu_ to be held (compiler-checked under
  // the analyze preset).
  void QuarantineLocked(const std::string& name) S2RDF_REQUIRES(mu_);
  void CacheInsertLocked(const std::string& name,
                         std::shared_ptr<const engine::Table> table)
      S2RDF_REQUIRES(mu_);
  void EvictFromMemoryLocked(const std::string& name) S2RDF_REQUIRES(mu_);
  void TouchLruLocked(const std::string& name) S2RDF_REQUIRES(mu_);

  std::string dir_;
  Env* env_;
  mutable Mutex mu_;
  std::map<std::string, TableStats> stats_ S2RDF_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<const engine::Table>> cache_
      S2RDF_GUARDED_BY(mu_);
  uint64_t memory_budget_ S2RDF_GUARDED_BY(mu_) = 0;
  uint64_t cached_bytes_ S2RDF_GUARDED_BY(mu_) = 0;
  // Least-recently-used at front; names mirror cache_ keys.
  std::list<std::string> lru_ S2RDF_GUARDED_BY(mu_);
  // Tables that failed verification; never loaded again this run.
  std::set<std::string> quarantined_ S2RDF_GUARDED_BY(mu_);
  // Base VP tables whose ExtVP dependents are pending a deferred
  // refresh (see MarkStaleSource).
  std::set<std::string> stale_sources_ S2RDF_GUARDED_BY(mu_);
  std::function<std::string(const std::string&)> degraded_fallback_
      S2RDF_GUARDED_BY(mu_);
  // SaveManifest is logically const (it persists, not mutates, the
  // stats), so the generation cursor it advances is mutable.
  mutable uint64_t generation_ S2RDF_GUARDED_BY(mu_) = 0;
  mutable std::atomic<uint64_t> corruptions_detected_{0};
  mutable std::atomic<uint64_t> queries_degraded_{0};
  mutable std::atomic<uint64_t> quarantined_count_{0};
  mutable std::atomic<uint64_t> read_retries_{0};
  mutable std::atomic<uint64_t> stale_sf_fallbacks_{0};
};

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_CATALOG_H_
