#ifndef S2RDF_STORAGE_ENV_H_
#define S2RDF_STORAGE_ENV_H_

// The Env seam moved down to common/env.h so layers below storage (rdf
// loaders, mapreduce spill I/O) can route file access through it too —
// every byte the library touches is now fault-injectable. This header
// keeps the storage-qualified names alive for existing code; new code
// may use either spelling (they are the same types).

#include "common/env.h"

namespace s2rdf::storage {

using ::s2rdf::Env;
using ::s2rdf::PosixEnv;

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_ENV_H_
