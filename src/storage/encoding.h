#ifndef S2RDF_STORAGE_ENCODING_H_
#define S2RDF_STORAGE_ENCODING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

// Lightweight columnar encodings standing in for the Parquet +
// snappy/dictionary/RLE representation the paper persists to HDFS. A
// column of 32-bit term ids is encoded with whichever of three codecs is
// smallest for that column:
//   kPlainVarint — LEB128 varints,
//   kRle         — (value, run-length) varint pairs,
//   kDeltaVarint — zigzag deltas (wins on sorted id columns).
// The codec tag is the first byte of the block.

namespace s2rdf::storage {

// Appends `value` to `out` as a LEB128 varint.
void PutVarint64(std::string* out, uint64_t value);

// Reads a varint at `*pos`; advances `*pos`. Returns false on truncation.
bool GetVarint64(std::string_view data, size_t* pos, uint64_t* value);

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

enum class ColumnCodec : uint8_t {
  kPlainVarint = 0,
  kRle = 1,
  kDeltaVarint = 2,
};

// Encodes `column`, choosing the smallest codec. The block is
// self-describing (codec tag + row count + payload).
std::string EncodeColumn(const std::vector<uint32_t>& column);

// Decodes a block produced by EncodeColumn.
Status DecodeColumn(std::string_view block, std::vector<uint32_t>* column);

// --- Checksummed chunks (S2TB v2) ---------------------------------------
//
// A checksummed chunk is an EncodeColumn block followed by the FNV-1a64
// of the block bytes (8 bytes, little-endian). Per-chunk checksums let a
// reader localize corruption to one column of one table instead of only
// knowing "the file is bad".

// Encodes `column` and appends the chunk checksum.
std::string EncodeColumnChecksummed(const std::vector<uint32_t>& column);

// Verifies and decodes a checksummed chunk. A checksum mismatch returns
// kInvalidArgument mentioning "chunk checksum".
Status DecodeColumnChecksummed(std::string_view chunk,
                               std::vector<uint32_t>* column);

// Checksum-only validation (no decode) — cheap integrity scans.
Status VerifyColumnChecksum(std::string_view chunk);

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_ENCODING_H_
