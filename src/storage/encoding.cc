#include "storage/encoding.h"

#include <cstring>

#include "common/hash.h"

namespace s2rdf::storage {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint64(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

namespace {

std::string EncodePlain(const std::vector<uint32_t>& column) {
  std::string out;
  out.reserve(column.size() * 2);
  for (uint32_t v : column) PutVarint64(&out, v);
  return out;
}

std::string EncodeRle(const std::vector<uint32_t>& column) {
  std::string out;
  size_t i = 0;
  while (i < column.size()) {
    size_t run = 1;
    while (i + run < column.size() && column[i + run] == column[i]) ++run;
    PutVarint64(&out, column[i]);
    PutVarint64(&out, run);
    i += run;
  }
  return out;
}

std::string EncodeDelta(const std::vector<uint32_t>& column) {
  std::string out;
  out.reserve(column.size());
  int64_t prev = 0;
  for (uint32_t v : column) {
    PutVarint64(&out, ZigZagEncode(static_cast<int64_t>(v) - prev));
    prev = static_cast<int64_t>(v);
  }
  return out;
}

}  // namespace

std::string EncodeColumn(const std::vector<uint32_t>& column) {
  std::string plain = EncodePlain(column);
  std::string rle = EncodeRle(column);
  std::string delta = EncodeDelta(column);

  ColumnCodec codec = ColumnCodec::kPlainVarint;
  const std::string* payload = &plain;
  if (rle.size() < payload->size()) {
    codec = ColumnCodec::kRle;
    payload = &rle;
  }
  if (delta.size() < payload->size()) {
    codec = ColumnCodec::kDeltaVarint;
    payload = &delta;
  }

  std::string block;
  block.push_back(static_cast<char>(codec));
  PutVarint64(&block, column.size());
  block += *payload;
  return block;
}

Status DecodeColumn(std::string_view block, std::vector<uint32_t>* column) {
  column->clear();
  if (block.empty()) return InvalidArgumentError("empty column block");
  auto codec = static_cast<ColumnCodec>(block[0]);
  size_t pos = 1;
  uint64_t count = 0;
  if (!GetVarint64(block, &pos, &count)) {
    return InvalidArgumentError("column block truncated (count)");
  }
  column->reserve(count);
  switch (codec) {
    case ColumnCodec::kPlainVarint: {
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t v = 0;
        if (!GetVarint64(block, &pos, &v)) {
          return InvalidArgumentError("column block truncated (plain)");
        }
        column->push_back(static_cast<uint32_t>(v));
      }
      return Status::Ok();
    }
    case ColumnCodec::kRle: {
      while (column->size() < count) {
        uint64_t value = 0;
        uint64_t run = 0;
        if (!GetVarint64(block, &pos, &value) ||
            !GetVarint64(block, &pos, &run)) {
          return InvalidArgumentError("column block truncated (rle)");
        }
        for (uint64_t i = 0; i < run; ++i) {
          column->push_back(static_cast<uint32_t>(value));
        }
      }
      if (column->size() != count) {
        return InvalidArgumentError("rle run overshoots row count");
      }
      return Status::Ok();
    }
    case ColumnCodec::kDeltaVarint: {
      int64_t prev = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t zz = 0;
        if (!GetVarint64(block, &pos, &zz)) {
          return InvalidArgumentError("column block truncated (delta)");
        }
        prev += ZigZagDecode(zz);
        column->push_back(static_cast<uint32_t>(prev));
      }
      return Status::Ok();
    }
  }
  return InvalidArgumentError("unknown column codec");
}

namespace {
constexpr size_t kChunkChecksumBytes = 8;
}  // namespace

std::string EncodeColumnChecksummed(const std::vector<uint32_t>& column) {
  std::string chunk = EncodeColumn(column);
  uint64_t checksum = Fnv1a64(chunk);
  char trailer[kChunkChecksumBytes];
  std::memcpy(trailer, &checksum, kChunkChecksumBytes);
  chunk.append(trailer, kChunkChecksumBytes);
  return chunk;
}

Status VerifyColumnChecksum(std::string_view chunk) {
  if (chunk.size() < kChunkChecksumBytes + 1) {
    return InvalidArgumentError("column chunk too short for its checksum");
  }
  uint64_t stored = 0;
  std::memcpy(&stored, chunk.data() + chunk.size() - kChunkChecksumBytes,
              kChunkChecksumBytes);
  if (Fnv1a64(chunk.substr(0, chunk.size() - kChunkChecksumBytes)) != stored) {
    return InvalidArgumentError("column chunk checksum mismatch");
  }
  return Status::Ok();
}

Status DecodeColumnChecksummed(std::string_view chunk,
                               std::vector<uint32_t>* column) {
  S2RDF_RETURN_IF_ERROR(VerifyColumnChecksum(chunk));
  return DecodeColumn(chunk.substr(0, chunk.size() - kChunkChecksumBytes),
                      column);
}

}  // namespace s2rdf::storage
