#include "storage/catalog.h"

#include <cstdio>

#include "common/file_util.h"
#include "common/strings.h"
#include "storage/table_file.h"

namespace s2rdf::storage {

Catalog::Catalog(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    // Best-effort; Put reports real errors.
    (void)MakeDirs(dir_);
  }
}

std::string Catalog::TablePath(const std::string& name) const {
  return dir_ + "/" + name + ".s2tb";
}

Status Catalog::Put(const std::string& name, engine::Table table,
                    double selectivity) {
  TableStats stats;
  stats.name = name;
  stats.rows = table.NumRows();
  stats.selectivity = selectivity;
  stats.materialized = true;
  if (dir_.empty()) {
    stats.bytes = SerializeTable(table).size();
  } else {
    S2RDF_ASSIGN_OR_RETURN(stats.bytes, SaveTable(table, TablePath(name)));
  }
  stats_[name] = stats;
  CacheInsert(name, std::make_unique<engine::Table>(std::move(table)));
  return Status::Ok();
}

void Catalog::PutStatsOnly(const std::string& name, uint64_t rows,
                           double selectivity) {
  TableStats stats;
  stats.name = name;
  stats.rows = rows;
  stats.selectivity = selectivity;
  stats.materialized = false;
  stats_[name] = stats;
}

bool Catalog::Has(const std::string& name) const {
  return stats_.contains(name);
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

StatusOr<const engine::Table*> Catalog::GetTable(const std::string& name) {
  auto cached = cache_.find(name);
  if (cached != cache_.end()) {
    TouchLru(name);
    return cached->second.get();
  }
  const TableStats* stats = GetStats(name);
  if (stats == nullptr || !stats->materialized) {
    return NotFoundError("table not materialized: " + name);
  }
  S2RDF_ASSIGN_OR_RETURN(engine::Table table, LoadTable(TablePath(name)));
  auto owned = std::make_unique<engine::Table>(std::move(table));
  const engine::Table* ptr = owned.get();
  CacheInsert(name, std::move(owned));
  return ptr;
}

void Catalog::CacheInsert(const std::string& name,
                          std::unique_ptr<engine::Table> table) {
  EvictFromMemory(name);  // Replace any stale copy.
  cached_bytes_ += table->ApproxBytes();
  cache_[name] = std::move(table);
  lru_.push_back(name);
}

void Catalog::TouchLru(const std::string& name) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (*it == name) {
      lru_.erase(it);
      break;
    }
  }
  lru_.push_back(name);
}

void Catalog::EvictFromMemory(const std::string& name) {
  auto it = cache_.find(name);
  if (it == cache_.end()) return;
  cached_bytes_ -= it->second->ApproxBytes();
  cache_.erase(it);
  for (auto lru_it = lru_.begin(); lru_it != lru_.end(); ++lru_it) {
    if (*lru_it == name) {
      lru_.erase(lru_it);
      break;
    }
  }
}

size_t Catalog::EvictToBudget() {
  if (memory_budget_ == 0 || dir_.empty()) return 0;
  size_t evicted = 0;
  while (cached_bytes_ > memory_budget_ && !lru_.empty()) {
    std::string victim = lru_.front();
    EvictFromMemory(victim);
    ++evicted;
  }
  return evicted;
}

uint64_t Catalog::TotalTuples() const {
  uint64_t total = 0;
  for (const auto& [name, stats] : stats_) {
    if (stats.materialized) total += stats.rows;
  }
  return total;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [name, stats] : stats_) total += stats.bytes;
  return total;
}

size_t Catalog::NumMaterializedTables() const {
  size_t count = 0;
  for (const auto& [name, stats] : stats_) {
    if (stats.materialized) ++count;
  }
  return count;
}

std::vector<const TableStats*> Catalog::AllStats() const {
  std::vector<const TableStats*> out;
  out.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) out.push_back(&stats);
  return out;
}

Status Catalog::SaveManifest() const {
  if (dir_.empty()) {
    return FailedPreconditionError("in-memory catalog has no manifest");
  }
  std::string out = "# name\trows\tselectivity\tbytes\tmaterialized\n";
  for (const auto& [name, stats] : stats_) {
    char line[512];
    std::snprintf(line, sizeof(line), "%s\t%llu\t%.17g\t%llu\t%d\n",
                  name.c_str(),
                  static_cast<unsigned long long>(stats.rows),
                  stats.selectivity,
                  static_cast<unsigned long long>(stats.bytes),
                  stats.materialized ? 1 : 0);
    out += line;
  }
  return WriteFile(dir_ + "/manifest.tsv", out);
}

Status Catalog::LoadManifest() {
  if (dir_.empty()) {
    return FailedPreconditionError("in-memory catalog has no manifest");
  }
  std::string content;
  S2RDF_RETURN_IF_ERROR(ReadFile(dir_ + "/manifest.tsv", &content));
  stats_.clear();
  cache_.clear();
  lru_.clear();
  cached_bytes_ = 0;
  for (const std::string& line : StrSplit(content, '\n')) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = StrSplit(trimmed, '\t');
    if (fields.size() != 5) {
      return InvalidArgumentError("malformed manifest line: " + line);
    }
    TableStats stats;
    stats.name = fields[0];
    long long rows = 0;
    long long bytes = 0;
    double sel = 0.0;
    if (!ParseInt64(fields[1], &rows) || !ParseDouble(fields[2], &sel) ||
        !ParseInt64(fields[3], &bytes)) {
      return InvalidArgumentError("malformed manifest numbers: " + line);
    }
    stats.rows = static_cast<uint64_t>(rows);
    stats.selectivity = sel;
    stats.bytes = static_cast<uint64_t>(bytes);
    stats.materialized = fields[4] == "1";
    stats_[stats.name] = stats;
  }
  return Status::Ok();
}

engine::TableProvider Catalog::AsProvider() {
  return [this](const std::string& name) -> const engine::Table* {
    StatusOr<const engine::Table*> table = GetTable(name);
    return table.ok() ? *table : nullptr;
  };
}

}  // namespace s2rdf::storage
