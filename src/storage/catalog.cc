#include "storage/catalog.h"

#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/file_util.h"
#include "common/strings.h"
#include "storage/table_file.h"

namespace s2rdf::storage {

Catalog::Catalog(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    // Best-effort; Put reports real errors.
    (void)MakeDirs(dir_);
  }
}

Catalog::Catalog(Catalog&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  dir_ = std::move(other.dir_);
  stats_ = std::move(other.stats_);
  cache_ = std::move(other.cache_);
  memory_budget_ = other.memory_budget_;
  cached_bytes_ = other.cached_bytes_;
  lru_ = std::move(other.lru_);
}

Catalog& Catalog::operator=(Catalog&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    dir_ = std::move(other.dir_);
    stats_ = std::move(other.stats_);
    cache_ = std::move(other.cache_);
    memory_budget_ = other.memory_budget_;
    cached_bytes_ = other.cached_bytes_;
    lru_ = std::move(other.lru_);
  }
  return *this;
}

std::string Catalog::TablePath(const std::string& name) const {
  return dir_ + "/" + name + ".s2tb";
}

Status Catalog::Put(const std::string& name, engine::Table table,
                    double selectivity) {
  TableStats stats;
  stats.name = name;
  stats.rows = table.NumRows();
  stats.selectivity = selectivity;
  stats.materialized = true;
  // Serialize/save outside the lock: disk writes must not stall readers.
  if (dir_.empty()) {
    stats.bytes = SerializeTable(table).size();
  } else {
    S2RDF_ASSIGN_OR_RETURN(stats.bytes, SaveTable(table, TablePath(name)));
  }
  auto owned = std::make_shared<const engine::Table>(std::move(table));
  std::lock_guard<std::mutex> lock(mu_);
  stats_[name] = stats;
  CacheInsertLocked(name, std::move(owned));
  return Status::Ok();
}

void Catalog::PutStatsOnly(const std::string& name, uint64_t rows,
                           double selectivity) {
  TableStats stats;
  stats.name = name;
  stats.rows = rows;
  stats.selectivity = selectivity;
  stats.materialized = false;
  std::lock_guard<std::mutex> lock(mu_);
  stats_[name] = stats;
}

bool Catalog::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.contains(name);
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  // Safe to return after unlock: map nodes are stable and stats entries
  // are never erased.
  return it == stats_.end() ? nullptr : &it->second;
}

StatusOr<std::shared_ptr<const engine::Table>> Catalog::GetTableShared(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto cached = cache_.find(name);
    if (cached != cache_.end()) {
      TouchLruLocked(name);
      return cached->second;
    }
    auto it = stats_.find(name);
    if (it == stats_.end() || !it->second.materialized) {
      return NotFoundError("table not materialized: " + name);
    }
  }
  // Load from disk outside the lock so distinct tables page in
  // concurrently. Two threads may race to load the same table; the
  // loser's copy simply replaces the winner's in the cache (both stay
  // valid through their shared_ptrs).
  S2RDF_ASSIGN_OR_RETURN(engine::Table table, LoadTable(TablePath(name)));
  auto owned = std::make_shared<const engine::Table>(std::move(table));
  std::lock_guard<std::mutex> lock(mu_);
  CacheInsertLocked(name, owned);
  return owned;
}

StatusOr<const engine::Table*> Catalog::GetTable(const std::string& name) {
  S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> table,
                         GetTableShared(name));
  // The cache keeps a reference; the raw pointer is valid until the
  // table is evicted or replaced.
  return table.get();
}

void Catalog::CacheInsertLocked(const std::string& name,
                                std::shared_ptr<const engine::Table> table) {
  EvictFromMemoryLocked(name);  // Replace any stale copy.
  cached_bytes_ += table->ApproxBytes();
  cache_[name] = std::move(table);
  lru_.push_back(name);
}

void Catalog::TouchLruLocked(const std::string& name) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (*it == name) {
      lru_.erase(it);
      break;
    }
  }
  lru_.push_back(name);
}

void Catalog::EvictFromMemoryLocked(const std::string& name) {
  auto it = cache_.find(name);
  if (it == cache_.end()) return;
  cached_bytes_ -= it->second->ApproxBytes();
  cache_.erase(it);
  for (auto lru_it = lru_.begin(); lru_it != lru_.end(); ++lru_it) {
    if (*lru_it == name) {
      lru_.erase(lru_it);
      break;
    }
  }
}

void Catalog::EvictFromMemory(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  EvictFromMemoryLocked(name);
}

void Catalog::SetMemoryBudget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  memory_budget_ = bytes;
}

uint64_t Catalog::memory_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_budget_;
}

uint64_t Catalog::CachedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_bytes_;
}

size_t Catalog::EvictToBudget() {
  std::lock_guard<std::mutex> lock(mu_);
  if (memory_budget_ == 0 || dir_.empty()) return 0;
  size_t evicted = 0;
  while (cached_bytes_ > memory_budget_ && !lru_.empty()) {
    std::string victim = lru_.front();
    EvictFromMemoryLocked(victim);
    ++evicted;
  }
  return evicted;
}

uint64_t Catalog::TotalTuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, stats] : stats_) {
    if (stats.materialized) total += stats.rows;
  }
  return total;
}

uint64_t Catalog::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, stats] : stats_) total += stats.bytes;
  return total;
}

size_t Catalog::NumMaterializedTables() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& [name, stats] : stats_) {
    if (stats.materialized) ++count;
  }
  return count;
}

size_t Catalog::NumStatsEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.size();
}

std::vector<const TableStats*> Catalog::AllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const TableStats*> out;
  out.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) out.push_back(&stats);
  return out;
}

Status Catalog::SaveManifest() const {
  if (dir_.empty()) {
    return FailedPreconditionError("in-memory catalog has no manifest");
  }
  std::string out = "# name\trows\tselectivity\tbytes\tmaterialized\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, stats] : stats_) {
      char line[512];
      std::snprintf(line, sizeof(line), "%s\t%llu\t%.17g\t%llu\t%d\n",
                    name.c_str(),
                    static_cast<unsigned long long>(stats.rows),
                    stats.selectivity,
                    static_cast<unsigned long long>(stats.bytes),
                    stats.materialized ? 1 : 0);
      out += line;
    }
  }
  return WriteFile(dir_ + "/manifest.tsv", out);
}

Status Catalog::LoadManifest() {
  if (dir_.empty()) {
    return FailedPreconditionError("in-memory catalog has no manifest");
  }
  std::string content;
  S2RDF_RETURN_IF_ERROR(ReadFile(dir_ + "/manifest.tsv", &content));
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
  cache_.clear();
  lru_.clear();
  cached_bytes_ = 0;
  for (const std::string& line : StrSplit(content, '\n')) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = StrSplit(trimmed, '\t');
    if (fields.size() != 5) {
      return InvalidArgumentError("malformed manifest line: " + line);
    }
    TableStats stats;
    stats.name = fields[0];
    long long rows = 0;
    long long bytes = 0;
    double sel = 0.0;
    if (!ParseInt64(fields[1], &rows) || !ParseDouble(fields[2], &sel) ||
        !ParseInt64(fields[3], &bytes)) {
      return InvalidArgumentError("malformed manifest numbers: " + line);
    }
    stats.rows = static_cast<uint64_t>(rows);
    stats.selectivity = sel;
    stats.bytes = static_cast<uint64_t>(bytes);
    stats.materialized = fields[4] == "1";
    stats_[stats.name] = stats;
  }
  return Status::Ok();
}

engine::TableProvider Catalog::AsProvider() {
  // The pin map keeps every resolved table alive (and memoizes the
  // lookup) for as long as the provider itself lives — one query.
  auto pins = std::make_shared<
      std::unordered_map<std::string, std::shared_ptr<const engine::Table>>>();
  return [this, pins](const std::string& name) -> const engine::Table* {
    auto pinned = pins->find(name);
    if (pinned != pins->end()) return pinned->second.get();
    StatusOr<std::shared_ptr<const engine::Table>> table =
        GetTableShared(name);
    if (!table.ok()) return nullptr;
    const engine::Table* ptr = table->get();
    pins->emplace(name, std::move(*table));
    return ptr;
  };
}

}  // namespace s2rdf::storage
