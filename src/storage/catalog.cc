#include "storage/catalog.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/clock.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/strings.h"
#include "storage/table_file.h"

namespace s2rdf::storage {

namespace {

// Transient-read retry policy: kTransientRetries retries after the first
// attempt, exponential backoff from kRetryBackoffMs.
constexpr int kTransientRetries = 3;
constexpr int kRetryBackoffMs = 1;

constexpr char kCurrentFile[] = "CURRENT";
constexpr char kLegacyManifestFile[] = "manifest.tsv";
constexpr char kManifestPrefix[] = "manifest-";
constexpr char kManifestSuffix[] = ".tsv";
constexpr char kChecksumPrefix[] = "# checksum=";
constexpr char kGenerationHeader[] = "# s2rdf-manifest generation=";
constexpr char kStaleHeader[] = "# s2rdf-stale ";
constexpr char kTableSuffix[] = ".s2tb";

std::string ManifestFileName(uint64_t generation) {
  return kManifestPrefix + std::to_string(generation) + kManifestSuffix;
}

// "manifest-<digits>.tsv" -> generation; false for anything else.
bool ParseManifestGeneration(const std::string& filename, uint64_t* gen) {
  const std::string prefix = kManifestPrefix;
  const std::string suffix = kManifestSuffix;
  if (filename.size() <= prefix.size() + suffix.size() ||
      filename.compare(0, prefix.size(), prefix) != 0 ||
      filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return false;
  }
  std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *gen = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

// Test-installable replacement for the backoff sleep (satisfies the
// lock-free read on the hot path: one relaxed load when unset).
std::atomic<void (*)(std::chrono::milliseconds)> g_retry_sleep_fn{nullptr};

// Full-jitter exponential backoff: uniform in [base, 2*base] with
// base = kRetryBackoffMs << attempt. The jitter seed derives from the
// injectable clock (common/clock.h), so SetClockForTest makes delays
// reproducible while real processes retrying the same file decorrelate.
void Backoff(int attempt) {
  uint64_t base = static_cast<uint64_t>(kRetryBackoffMs) << attempt;
  SplitMix64 rng(static_cast<uint64_t>(
      MonotonicNow().time_since_epoch().count()));
  auto delay = std::chrono::milliseconds(base + rng.Uniform(base + 1));
  void (*fn)(std::chrono::milliseconds) =
      g_retry_sleep_fn.load(std::memory_order_relaxed);
  if (fn != nullptr) {
    fn(delay);
  } else {
    std::this_thread::sleep_for(delay);
  }
}

// Splits a table file name "<name>[@<gen>].s2tb" into its parts; false
// when `file` is not a table file at all.
bool ParseTableFileName(const std::string& file, std::string* name,
                        uint64_t* file_gen) {
  if (!EndsWith(file, kTableSuffix)) return false;
  std::string base =
      file.substr(0, file.size() - std::string_view(kTableSuffix).size());
  *file_gen = 0;
  size_t at = base.rfind('@');
  if (at != std::string::npos && at + 1 < base.size()) {
    bool digits = true;
    for (size_t i = at + 1; i < base.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(base[i]))) digits = false;
    }
    if (digits) {
      *file_gen = std::strtoull(base.c_str() + at + 1, nullptr, 10);
      base = base.substr(0, at);
    }
  }
  *name = base;
  return true;
}

}  // namespace

void Catalog::SetRetrySleepFnForTest(void (*fn)(std::chrono::milliseconds)) {
  g_retry_sleep_fn.store(fn, std::memory_order_relaxed);
}

Catalog::Catalog(std::string dir, Env* env)
    : dir_(std::move(dir)), env_(env != nullptr ? env : Env::Default()) {
  if (!dir_.empty()) {
    // Best-effort; Put reports real errors.
    (void)env_->MakeDirs(dir_);
  }
}

// Moves require external exclusion (header contract), so the lock
// analysis — which cannot pair two objects' capabilities — is off here.
Catalog::Catalog(Catalog&& other) noexcept S2RDF_NO_THREAD_SAFETY_ANALYSIS {
  MutexLock lock(&other.mu_);
  dir_ = std::move(other.dir_);
  env_ = other.env_;
  stats_ = std::move(other.stats_);
  cache_ = std::move(other.cache_);
  memory_budget_ = other.memory_budget_;
  cached_bytes_ = other.cached_bytes_;
  lru_ = std::move(other.lru_);
  quarantined_ = std::move(other.quarantined_);
  stale_sources_ = std::move(other.stale_sources_);
  degraded_fallback_ = std::move(other.degraded_fallback_);
  generation_ = other.generation_;
  corruptions_detected_.store(other.corruptions_detected_.load());
  queries_degraded_.store(other.queries_degraded_.load());
  quarantined_count_.store(other.quarantined_count_.load());
  read_retries_.store(other.read_retries_.load());
  stale_sf_fallbacks_.store(other.stale_sf_fallbacks_.load());
}

Catalog& Catalog::operator=(Catalog&& other) noexcept
    S2RDF_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    // Lock order self-then-other is safe: moves forbid concurrent use
    // of either operand, so no cycle can form.
    MutexLock self_lock(&mu_);
    MutexLock other_lock(&other.mu_);
    dir_ = std::move(other.dir_);
    env_ = other.env_;
    stats_ = std::move(other.stats_);
    cache_ = std::move(other.cache_);
    memory_budget_ = other.memory_budget_;
    cached_bytes_ = other.cached_bytes_;
    lru_ = std::move(other.lru_);
    quarantined_ = std::move(other.quarantined_);
    stale_sources_ = std::move(other.stale_sources_);
    degraded_fallback_ = std::move(other.degraded_fallback_);
    generation_ = other.generation_;
    corruptions_detected_.store(other.corruptions_detected_.load());
    queries_degraded_.store(other.queries_degraded_.load());
    quarantined_count_.store(other.quarantined_count_.load());
    read_retries_.store(other.read_retries_.load());
    stale_sf_fallbacks_.store(other.stale_sf_fallbacks_.load());
  }
  return *this;
}

std::string Catalog::TableFileName(const std::string& name,
                                   uint64_t file_gen) {
  if (file_gen == 0) return name + kTableSuffix;
  return name + "@" + std::to_string(file_gen) + kTableSuffix;
}

std::string Catalog::TablePath(const std::string& name,
                               uint64_t file_gen) const {
  return dir_ + "/" + TableFileName(name, file_gen);
}

std::string Catalog::CurrentTablePath(const std::string& name) const {
  uint64_t file_gen = 0;
  {
    MutexLock lock(&mu_);
    auto it = stats_.find(name);
    if (it != stats_.end()) file_gen = it->second.file_gen;
  }
  return TablePath(name, file_gen);
}

Status Catalog::ReadFileRetrying(const std::string& path,
                                 std::string* data) const {
  Status status;
  for (int attempt = 0; attempt <= kTransientRetries; ++attempt) {
    if (attempt > 0) {
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      Backoff(attempt - 1);
    }
    status = env_->ReadFile(path, data);
    if (status.ok() || !IsTransient(status)) return status;
  }
  return status;
}

StatusOr<engine::Table> Catalog::LoadTableRetrying(
    const std::string& path) const {
  // Only transient (kIoError) failures are retried; corruption
  // (kInvalidArgument) and missing files (kNotFound) are final.
  for (int attempt = 0;; ++attempt) {
    StatusOr<engine::Table> table = LoadTable(path, env_);
    if (table.ok() || !IsTransient(table.status()) ||
        attempt >= kTransientRetries) {
      return table;
    }
    read_retries_.fetch_add(1, std::memory_order_relaxed);
    Backoff(attempt);
  }
}

Status Catalog::Put(const std::string& name, engine::Table table,
                    double selectivity) {
  TableStats stats;
  stats.name = name;
  stats.rows = table.NumRows();
  stats.selectivity = selectivity;
  stats.materialized = true;
  stats.file_gen = 0;
  // Serialize/save outside the lock: disk writes must not stall readers.
  if (dir_.empty()) {
    stats.bytes = SerializeTable(table).size();
  } else {
    S2RDF_ASSIGN_OR_RETURN(stats.bytes,
                           SaveTable(table, TablePath(name, 0), env_));
  }
  auto owned = std::make_shared<const engine::Table>(std::move(table));
  uint64_t superseded_file_gen = 0;
  {
    MutexLock lock(&mu_);
    auto it = stats_.find(name);
    if (it != stats_.end() && it->second.materialized) {
      superseded_file_gen = it->second.file_gen;
    }
    stats_[name] = stats;
    quarantined_.erase(name);  // A fresh write supersedes old corruption.
    CacheInsertLocked(name, std::move(owned));
  }
  if (!dir_.empty() && superseded_file_gen != 0) {
    // The write above replaced a generation-suffixed file with the base
    // path; drop the superseded file (best effort — Recover sweeps it).
    (void)env_->RemoveFile(TablePath(name, superseded_file_gen));
  }
  return Status::Ok();
}

void Catalog::PutStatsOnly(const std::string& name, uint64_t rows,
                           double selectivity) {
  TableStats stats;
  stats.name = name;
  stats.rows = rows;
  stats.selectivity = selectivity;
  stats.materialized = false;
  MutexLock lock(&mu_);
  stats_[name] = stats;
}

bool Catalog::Has(const std::string& name) const {
  MutexLock lock(&mu_);
  return stats_.contains(name);
}

const TableStats* Catalog::GetStats(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = stats_.find(name);
  // Safe to return after unlock: map nodes are stable and stats entries
  // are never erased.
  return it == stats_.end() ? nullptr : &it->second;
}

bool Catalog::IsQuarantined(const std::string& name) const {
  MutexLock lock(&mu_);
  return quarantined_.contains(name);
}

void Catalog::SetDegradedFallback(
    std::function<std::string(const std::string&)> fallback) {
  MutexLock lock(&mu_);
  degraded_fallback_ = std::move(fallback);
}

void Catalog::NoteDegradedQuery() const {
  queries_degraded_.fetch_add(1, std::memory_order_relaxed);
}

void Catalog::MarkStaleSource(const std::string& vp_name) {
  MutexLock lock(&mu_);
  stale_sources_.insert(vp_name);
}

bool Catalog::IsStaleSource(const std::string& vp_name) const {
  MutexLock lock(&mu_);
  return stale_sources_.contains(vp_name);
}

std::vector<std::string> Catalog::StaleSources() const {
  MutexLock lock(&mu_);
  return std::vector<std::string>(stale_sources_.begin(),
                                  stale_sources_.end());
}

size_t Catalog::stale_source_count() const {
  MutexLock lock(&mu_);
  return stale_sources_.size();
}

void Catalog::NoteStaleSfFallback() const {
  stale_sf_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Catalog::stale_sf_fallbacks() const {
  return stale_sf_fallbacks_.load(std::memory_order_relaxed);
}

uint64_t Catalog::read_retries() const {
  return read_retries_.load(std::memory_order_relaxed);
}

uint64_t Catalog::corruptions_detected() const {
  return corruptions_detected_.load(std::memory_order_relaxed);
}

uint64_t Catalog::queries_degraded() const {
  return queries_degraded_.load(std::memory_order_relaxed);
}

uint64_t Catalog::quarantined_tables() const {
  return quarantined_count_.load(std::memory_order_relaxed);
}

uint64_t Catalog::generation() const {
  MutexLock lock(&mu_);
  return generation_;
}

void Catalog::QuarantineLocked(const std::string& name) {
  if (!quarantined_.insert(name).second) return;
  quarantined_count_.fetch_add(1, std::memory_order_relaxed);
  corruptions_detected_.fetch_add(1, std::memory_order_relaxed);
  EvictFromMemoryLocked(name);
  // Corruption is rare and operator-facing: worth a line even though we
  // hold mu_ (the sink must not call back into the catalog).
  LogEvent(LogLevel::kError, "table_quarantined", {{"table", name}});
}

StatusOr<std::shared_ptr<const engine::Table>> Catalog::GetTableShared(
    const std::string& name) {
  uint64_t file_gen = 0;
  {
    MutexLock lock(&mu_);
    auto cached = cache_.find(name);
    if (cached != cache_.end()) {
      TouchLruLocked(name);
      return cached->second;
    }
    auto it = stats_.find(name);
    if (it == stats_.end() || !it->second.materialized) {
      return NotFoundError("table not materialized: " + name);
    }
    if (quarantined_.contains(name)) {
      return FailedPreconditionError("table quarantined: " + name);
    }
    file_gen = it->second.file_gen;
  }
  // Load from disk outside the lock so distinct tables page in
  // concurrently. Two threads may race to load the same table; the
  // loser's copy simply replaces the winner's in the cache (both stay
  // valid through their shared_ptrs).
  StatusOr<engine::Table> table = LoadTableRetrying(TablePath(name, file_gen));
  if (!table.ok()) {
    if (!IsTransient(table.status())) {
      // Corrupt or missing on disk: quarantine so future queries degrade
      // at selection time instead of re-reading a broken file.
      MutexLock lock(&mu_);
      QuarantineLocked(name);
    }
    return table.status();
  }
  auto owned = std::make_shared<const engine::Table>(std::move(*table));
  MutexLock lock(&mu_);
  CacheInsertLocked(name, owned);
  return owned;
}

StatusOr<const engine::Table*> Catalog::GetTable(const std::string& name) {
  S2RDF_ASSIGN_OR_RETURN(std::shared_ptr<const engine::Table> table,
                         GetTableShared(name));
  // The cache keeps a reference; the raw pointer is valid until the
  // table is evicted or replaced.
  return table.get();
}

void Catalog::CacheInsertLocked(const std::string& name,
                                std::shared_ptr<const engine::Table> table) {
  EvictFromMemoryLocked(name);  // Replace any stale copy.
  cached_bytes_ += table->ApproxBytes();
  cache_[name] = std::move(table);
  lru_.push_back(name);
}

void Catalog::TouchLruLocked(const std::string& name) {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (*it == name) {
      lru_.erase(it);
      break;
    }
  }
  lru_.push_back(name);
}

void Catalog::EvictFromMemoryLocked(const std::string& name) {
  auto it = cache_.find(name);
  if (it == cache_.end()) return;
  cached_bytes_ -= it->second->ApproxBytes();
  cache_.erase(it);
  for (auto lru_it = lru_.begin(); lru_it != lru_.end(); ++lru_it) {
    if (*lru_it == name) {
      lru_.erase(lru_it);
      break;
    }
  }
}

void Catalog::EvictFromMemory(const std::string& name) {
  MutexLock lock(&mu_);
  EvictFromMemoryLocked(name);
}

void Catalog::SetMemoryBudget(uint64_t bytes) {
  MutexLock lock(&mu_);
  memory_budget_ = bytes;
}

uint64_t Catalog::memory_budget() const {
  MutexLock lock(&mu_);
  return memory_budget_;
}

uint64_t Catalog::CachedBytes() const {
  MutexLock lock(&mu_);
  return cached_bytes_;
}

size_t Catalog::EvictToBudget() {
  MutexLock lock(&mu_);
  if (memory_budget_ == 0 || dir_.empty()) return 0;
  size_t evicted = 0;
  while (cached_bytes_ > memory_budget_ && !lru_.empty()) {
    std::string victim = lru_.front();
    EvictFromMemoryLocked(victim);
    ++evicted;
  }
  return evicted;
}

uint64_t Catalog::TotalTuples() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, stats] : stats_) {
    if (stats.materialized) total += stats.rows;
  }
  return total;
}

uint64_t Catalog::TotalBytes() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& [name, stats] : stats_) total += stats.bytes;
  return total;
}

size_t Catalog::NumMaterializedTables() const {
  MutexLock lock(&mu_);
  size_t count = 0;
  for (const auto& [name, stats] : stats_) {
    if (stats.materialized) ++count;
  }
  return count;
}

size_t Catalog::NumStatsEntries() const {
  MutexLock lock(&mu_);
  return stats_.size();
}

std::vector<const TableStats*> Catalog::AllStats() const {
  MutexLock lock(&mu_);
  std::vector<const TableStats*> out;
  out.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) out.push_back(&stats);
  return out;
}

std::string Catalog::RenderManifest(
    uint64_t gen, const std::map<std::string, TableStats>& stats,
    const std::set<std::string>& stale_sources) {
  std::string out = kGenerationHeader + std::to_string(gen) + "\n";
  out += "# name\trows\tselectivity\tbytes\tmaterialized\tfile_gen\n";
  // Stale markers are part of the checksummed content: deferred-refresh
  // state must survive restarts or a reopened store would trust ExtVP
  // reductions that miss triples.
  for (const std::string& source : stale_sources) {
    out += kStaleHeader + source + "\n";
  }
  for (const auto& [name, entry] : stats) {
    char line[512];
    std::snprintf(line, sizeof(line), "%s\t%llu\t%.17g\t%llu\t%d\t%llu\n",
                  name.c_str(), static_cast<unsigned long long>(entry.rows),
                  entry.selectivity,
                  static_cast<unsigned long long>(entry.bytes),
                  entry.materialized ? 1 : 0,
                  static_cast<unsigned long long>(entry.file_gen));
    out += line;
  }
  char checksum[32];
  std::snprintf(checksum, sizeof(checksum), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(out)));
  out += kChecksumPrefix + std::string(checksum) + "\n";
  return out;
}

Status Catalog::WriteManifestGeneration(uint64_t gen,
                                        const std::string& content) const {
  // Commit protocol: the generation file lands first (atomically), then
  // CURRENT flips to it (atomically). A crash anywhere leaves CURRENT on
  // the previous generation.
  S2RDF_RETURN_IF_ERROR(
      env_->WriteFileAtomic(dir_ + "/" + ManifestFileName(gen), content));
  return env_->WriteFileAtomic(dir_ + "/" + kCurrentFile,
                               ManifestFileName(gen) + "\n");
}

void Catalog::PruneOldManifests(uint64_t gen) const {
  // Prune generations older than the previous one (kept as the fallback
  // link of the chain). Best effort: failure leaves harmless files.
  StatusOr<std::vector<std::string>> files = env_->ListDir(dir_);
  if (!files.ok()) return;
  for (const std::string& file : *files) {
    uint64_t g = 0;
    if (ParseManifestGeneration(file, &g) && g + 1 < gen) {
      (void)env_->RemoveFile(dir_ + "/" + file);
    }
  }
}

Status Catalog::SaveManifest() const {
  if (dir_.empty()) {
    return FailedPreconditionError("in-memory catalog has no manifest");
  }
  // Concurrent saves are not supported (generations would collide);
  // callers serialize manifest writes (Create / ingest / checkpoints).
  uint64_t gen;
  std::string out;
  {
    MutexLock lock(&mu_);
    gen = generation_ + 1;
    out = RenderManifest(gen, stats_, stale_sources_);
  }
  S2RDF_RETURN_IF_ERROR(WriteManifestGeneration(gen, out));
  {
    MutexLock lock(&mu_);
    generation_ = gen;
  }
  PruneOldManifests(gen);
  return Status::Ok();
}

Status Catalog::CommitBatch(std::vector<TableUpdate> updates,
                            const CommitOptions& options) {
  // Phase 1 — land every replacement file under its generation-suffixed
  // name. Nothing references these files yet, so a crash here only
  // leaves orphans for Recover() to sweep.
  uint64_t next_gen;
  {
    MutexLock lock(&mu_);
    next_gen = generation_ + 1;
  }
  std::vector<TableStats> new_stats(updates.size());
  for (size_t i = 0; i < updates.size(); ++i) {
    TableStats entry;
    entry.name = updates[i].name;
    entry.selectivity = updates[i].selectivity;
    if (updates[i].table.has_value()) {
      entry.rows = updates[i].table->NumRows();
      entry.materialized = true;
      if (dir_.empty()) {
        entry.bytes = SerializeTable(*updates[i].table).size();
      } else {
        entry.file_gen = next_gen;
        S2RDF_ASSIGN_OR_RETURN(
            entry.bytes, SaveTable(*updates[i].table,
                                   TablePath(entry.name, next_gen), env_));
      }
    } else if (updates[i].retain_table) {
      // Stats-only amendment of a table whose file is unchanged: carry
      // the existing materialization (bytes, file_gen) forward.
      MutexLock lock(&mu_);
      auto it = stats_.find(entry.name);
      if (it != stats_.end() && it->second.materialized) {
        entry.bytes = it->second.bytes;
        entry.materialized = true;
        entry.file_gen = it->second.file_gen;
      }
      entry.rows = updates[i].rows;
    } else {
      entry.rows = updates[i].rows;
    }
    new_stats[i] = entry;
  }
  // Phase 2 — flip the manifest to a generation referencing the new
  // files. This single atomic write is the batch's commit point.
  if (!dir_.empty()) {
    std::string content;
    {
      MutexLock lock(&mu_);
      std::map<std::string, TableStats> merged = stats_;
      std::set<std::string> stale = stale_sources_;
      for (const TableStats& entry : new_stats) merged[entry.name] = entry;
      for (const std::string& s : options.mark_stale) stale.insert(s);
      for (const std::string& s : options.clear_stale) stale.erase(s);
      content = RenderManifest(next_gen, merged, stale);
    }
    S2RDF_RETURN_IF_ERROR(WriteManifestGeneration(next_gen, content));
  }
  // Phase 3 — swap the in-memory state under one lock hold, so a
  // concurrent query observes either the whole batch or none of it
  // (tables it already pinned stay alive via their shared_ptrs).
  std::vector<std::pair<std::string, uint64_t>> superseded;
  {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < updates.size(); ++i) {
      auto it = stats_.find(new_stats[i].name);
      if (it != stats_.end() && it->second.materialized &&
          (!new_stats[i].materialized ||
           it->second.file_gen != new_stats[i].file_gen)) {
        superseded.emplace_back(it->first, it->second.file_gen);
      }
      stats_[new_stats[i].name] = new_stats[i];
      quarantined_.erase(new_stats[i].name);
      if (updates[i].table.has_value()) {
        CacheInsertLocked(new_stats[i].name,
                          std::make_shared<const engine::Table>(
                              std::move(*updates[i].table)));
      } else if (!new_stats[i].materialized) {
        // Retained-file amendments keep any cached copy; true stats-only
        // demotions drop it.
        EvictFromMemoryLocked(new_stats[i].name);
      }
    }
    for (const std::string& s : options.mark_stale) {
      stale_sources_.insert(s);
    }
    for (const std::string& s : options.clear_stale) {
      stale_sources_.erase(s);
    }
    generation_ = next_gen;
  }
  // Phase 4 — best-effort cleanup of files the new generation no longer
  // references; failures leave debris Recover() removes.
  if (!dir_.empty()) {
    for (const auto& [name, file_gen] : superseded) {
      (void)env_->RemoveFile(TablePath(name, file_gen));
    }
    PruneOldManifests(next_gen);
  }
  return Status::Ok();
}

Status Catalog::AdoptManifest(const std::string& content,
                              bool require_checksum) {
  // Verify the self-checksum (everything up to the trailing checksum
  // line) before trusting any field.
  uint64_t generation = 0;
  size_t checksum_pos = content.rfind(kChecksumPrefix);
  if (checksum_pos == std::string::npos) {
    if (require_checksum) {
      return InvalidArgumentError("manifest missing checksum line");
    }
  } else {
    if (checksum_pos != 0 && content[checksum_pos - 1] != '\n') {
      return InvalidArgumentError("manifest checksum line misplaced");
    }
    std::string hex = content.substr(checksum_pos + sizeof(kChecksumPrefix) -
                                     1);
    uint64_t stored =
        std::strtoull(std::string(StripWhitespace(hex)).c_str(), nullptr, 16);
    if (Fnv1a64(std::string_view(content).substr(0, checksum_pos)) !=
        stored) {
      return InvalidArgumentError("manifest checksum mismatch");
    }
  }
  std::map<std::string, TableStats> parsed;
  std::set<std::string> stale;
  for (const std::string& line : StrSplit(content, '\n')) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      std::string_view header(kGenerationHeader);
      if (trimmed.size() > header.size() &&
          trimmed.substr(0, header.size()) == header) {
        generation = std::strtoull(
            std::string(trimmed.substr(header.size())).c_str(), nullptr, 10);
      }
      std::string_view stale_header(kStaleHeader);
      if (trimmed.size() > stale_header.size() &&
          trimmed.substr(0, stale_header.size()) == stale_header) {
        stale.insert(std::string(trimmed.substr(stale_header.size())));
      }
      continue;
    }
    std::vector<std::string> fields = StrSplit(trimmed, '\t');
    // 5 fields: pre-ingest manifests (no file_gen column).
    if (fields.size() != 5 && fields.size() != 6) {
      return InvalidArgumentError("malformed manifest line: " + line);
    }
    TableStats stats;
    stats.name = fields[0];
    long long rows = 0;
    long long bytes = 0;
    double sel = 0.0;
    if (!ParseInt64(fields[1], &rows) || !ParseDouble(fields[2], &sel) ||
        !ParseInt64(fields[3], &bytes)) {
      return InvalidArgumentError("malformed manifest numbers: " + line);
    }
    stats.rows = static_cast<uint64_t>(rows);
    stats.selectivity = sel;
    stats.bytes = static_cast<uint64_t>(bytes);
    stats.materialized = fields[4] == "1";
    if (fields.size() == 6) {
      long long file_gen = 0;
      if (!ParseInt64(fields[5], &file_gen)) {
        return InvalidArgumentError("malformed manifest file_gen: " + line);
      }
      stats.file_gen = static_cast<uint64_t>(file_gen);
    }
    parsed[stats.name] = stats;
  }
  MutexLock lock(&mu_);
  stats_ = std::move(parsed);
  cache_.clear();
  lru_.clear();
  cached_bytes_ = 0;
  quarantined_.clear();
  stale_sources_ = std::move(stale);
  generation_ = generation;
  return Status::Ok();
}

Status Catalog::LoadManifest() {
  if (dir_.empty()) {
    return FailedPreconditionError("in-memory catalog has no manifest");
  }
  // 1. The generation CURRENT points at.
  std::string current;
  Status current_status =
      ReadFileRetrying(dir_ + "/" + kCurrentFile, &current);
  if (current_status.ok()) {
    std::string name(StripWhitespace(current));
    std::string content;
    Status status = ReadFileRetrying(dir_ + "/" + name, &content);
    if (status.ok()) status = AdoptManifest(content, /*require_checksum=*/true);
    if (status.ok()) return status;
    if (IsTransient(status)) return status;  // Retryable, not corruption.
    corruptions_detected_.fetch_add(1, std::memory_order_relaxed);
    // Fall through to the chain scan.
  } else if (IsTransient(current_status)) {
    return current_status;
  } else {
    // 2. No CURRENT: a legacy (pre-generation) store, perhaps.
    std::string content;
    Status legacy =
        ReadFileRetrying(dir_ + "/" + kLegacyManifestFile, &content);
    if (legacy.ok()) return AdoptManifest(content, /*require_checksum=*/false);
    if (IsTransient(legacy)) return legacy;
  }
  // 3. Chain fallback: newest-first, adopt the first generation that
  // still verifies.
  StatusOr<std::vector<std::string>> files = env_->ListDir(dir_);
  if (files.ok()) {
    std::vector<std::pair<uint64_t, std::string>> candidates;
    for (const std::string& file : *files) {
      uint64_t gen = 0;
      if (ParseManifestGeneration(file, &gen)) {
        candidates.emplace_back(gen, file);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (const auto& [gen, file] : candidates) {
      std::string content;
      if (!ReadFileRetrying(dir_ + "/" + file, &content).ok()) continue;
      if (AdoptManifest(content, /*require_checksum=*/true).ok()) {
        return Status::Ok();
      }
    }
  }
  return NotFoundError("no readable manifest in " + dir_);
}

StatusOr<RecoveryReport> Catalog::Recover() {
  S2RDF_RETURN_IF_ERROR(LoadManifest());
  RecoveryReport report;
  std::vector<std::pair<std::string, uint64_t>> materialized;
  {
    MutexLock lock(&mu_);
    report.generation = generation_;
    for (const auto& [name, stats] : stats_) {
      if (stats.materialized) materialized.emplace_back(name, stats.file_gen);
    }
  }
  // Verify every materialized table's checksums; quarantine failures so
  // queries degrade (ExtVP -> VP -> TT) instead of erroring.
  for (const auto& [name, file_gen] : materialized) {
    std::string blob;
    Status status = ReadFileRetrying(TablePath(name, file_gen), &blob);
    if (status.ok()) status = VerifyTableBlob(blob);
    if (status.ok()) {
      ++report.tables_verified;
    } else {
      MutexLock lock(&mu_);
      QuarantineLocked(name);
      ++report.tables_quarantined;
    }
  }
  // Delete orphaned staging files (crash debris), manifests older than
  // the previous generation, and table files no longer referenced by
  // the adopted manifest — the latter roll back a torn ingest batch
  // (files landed, manifest flip did not) to the durable generation.
  StatusOr<std::vector<std::string>> files = env_->ListDir(dir_);
  if (files.ok()) {
    const std::string temp_suffix = Env::kTempSuffix;
    for (const std::string& file : *files) {
      if (file.size() > temp_suffix.size() &&
          file.compare(file.size() - temp_suffix.size(), temp_suffix.size(),
                       temp_suffix) == 0) {
        if (env_->RemoveFile(dir_ + "/" + file).ok()) {
          ++report.temp_files_removed;
        }
        continue;
      }
      uint64_t gen = 0;
      if (ParseManifestGeneration(file, &gen) && gen + 1 < report.generation) {
        if (env_->RemoveFile(dir_ + "/" + file).ok()) {
          ++report.old_manifests_removed;
        }
        continue;
      }
      std::string table_name;
      uint64_t file_gen = 0;
      if (ParseTableFileName(file, &table_name, &file_gen)) {
        bool referenced;
        {
          MutexLock lock(&mu_);
          auto it = stats_.find(table_name);
          referenced = it != stats_.end() && it->second.materialized &&
                       it->second.file_gen == file_gen;
        }
        if (!referenced && env_->RemoveFile(dir_ + "/" + file).ok()) {
          ++report.orphan_tables_removed;
        }
      }
    }
  }
  LogEvent(LogLevel::kInfo, "catalog_recovered",
           {{"generation", report.generation},
            {"tables_verified", report.tables_verified},
            {"tables_quarantined", report.tables_quarantined},
            {"temp_files_removed", report.temp_files_removed},
            {"old_manifests_removed", report.old_manifests_removed},
            {"orphan_tables_removed", report.orphan_tables_removed}});
  return report;
}

engine::TableProvider Catalog::AsProvider() {
  // The pin map keeps every resolved table alive (and memoizes the
  // lookup) for as long as the provider itself lives — one query.
  auto pins = std::make_shared<
      std::unordered_map<std::string, std::shared_ptr<const engine::Table>>>();
  // One degradation event per query, however many scans substitute.
  auto degraded = std::make_shared<std::atomic<bool>>(false);
  return [this, pins, degraded](const std::string& name)
             -> const engine::Table* {
    auto pinned = pins->find(name);
    if (pinned != pins->end()) return pinned->second.get();
    StatusOr<std::shared_ptr<const engine::Table>> table =
        GetTableShared(name);
    if (!table.ok()) {
      // Load-time failure (checksum, missing file, quarantine): degrade
      // to the installed superset fallback (ExtVP -> base VP) so the
      // query still answers — correctness rests on VP ⊇ ExtVP.
      std::function<std::string(const std::string&)> fallback;
      {
        MutexLock lock(&mu_);
        fallback = degraded_fallback_;
      }
      if (fallback != nullptr) {
        std::string substitute = fallback(name);
        if (!substitute.empty() && substitute != name) {
          StatusOr<std::shared_ptr<const engine::Table>> fb =
              GetTableShared(substitute);
          if (fb.ok()) {
            if (!degraded->exchange(true)) NoteDegradedQuery();
            const engine::Table* ptr = fb->get();
            pins->emplace(name, std::move(*fb));
            return ptr;
          }
        }
      }
      return nullptr;
    }
    const engine::Table* ptr = table->get();
    pins->emplace(name, std::move(*table));
    return ptr;
  };
}

}  // namespace s2rdf::storage
