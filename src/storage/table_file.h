#ifndef S2RDF_STORAGE_TABLE_FILE_H_
#define S2RDF_STORAGE_TABLE_FILE_H_

#include <string>

#include "common/status.h"
#include "engine/table.h"

// Single-table binary file format ("S2TB"): the project's Parquet
// analogue. Layout:
//   magic "S2TB" | version u32 | ncols varint | nrows varint
//   per column: name (varint length + bytes) | block (varint length +
//   EncodeColumn bytes)
//   trailer: FNV-1a64 checksum of everything before it.

namespace s2rdf::storage {

// Serializes `table` into the S2TB byte format.
std::string SerializeTable(const engine::Table& table);

// Parses an S2TB blob (verifies checksum).
StatusOr<engine::Table> DeserializeTable(std::string_view blob);

// Writes `table` to `path`; returns the file size in bytes.
StatusOr<uint64_t> SaveTable(const engine::Table& table,
                             const std::string& path);

// Reads a table written by SaveTable.
StatusOr<engine::Table> LoadTable(const std::string& path);

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_TABLE_FILE_H_
