#ifndef S2RDF_STORAGE_TABLE_FILE_H_
#define S2RDF_STORAGE_TABLE_FILE_H_

#include <string>

#include "common/status.h"
#include "engine/table.h"
#include "storage/env.h"

// Single-table binary file format ("S2TB"): the project's Parquet
// analogue. Version 2 layout:
//   magic "S2TB" | version u32 | ncols varint | nrows varint
//   per column: name (varint length + bytes) | chunk (varint length +
//   EncodeColumnChecksummed bytes — block + its own FNV-1a64)
//   trailer: FNV-1a64 checksum of everything before it.
// Version 1 files (no per-column checksums) remain readable. The
// per-chunk checksums localize corruption to one column; the trailer
// checksum still guards the whole file.

namespace s2rdf::storage {

// Serializes `table` into the S2TB byte format (current version).
std::string SerializeTable(const engine::Table& table);

// Parses an S2TB blob (verifies the file checksum and, for v2, the
// per-column chunk checksums; errors name the corrupt column).
StatusOr<engine::Table> DeserializeTable(std::string_view blob);

// Integrity check without materializing the table: header, trailer
// checksum and (v2) every chunk checksum. kInvalidArgument describes
// where the corruption sits.
Status VerifyTableBlob(std::string_view blob);

// Writes `table` to `path` crash-safely (temp file + fsync + rename via
// `env`, Env::Default() when null); returns the file size in bytes.
StatusOr<uint64_t> SaveTable(const engine::Table& table,
                             const std::string& path, Env* env = nullptr);

// Reads a table written by SaveTable.
StatusOr<engine::Table> LoadTable(const std::string& path,
                                  Env* env = nullptr);

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_TABLE_FILE_H_
