#include "storage/table_file.h"

#include <cstring>

#include "common/hash.h"
#include "storage/encoding.h"

namespace s2rdf::storage {

namespace {

constexpr char kMagic[4] = {'S', '2', 'T', 'B'};
// Version 2 adds a per-column chunk checksum; version 1 files stay
// readable.
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderBytes = 8;   // magic + version
constexpr size_t kTrailerBytes = 8;  // FNV-1a64 of the rest
// Smallest well-formed file: header, one-byte ncols/nrows varints,
// trailer.
constexpr size_t kMinFileBytes = kHeaderBytes + 2 + kTrailerBytes;

// Size, magic and version checks shared by deserialization and
// verification. Rejects blobs shorter than header + trailer outright so
// no downstream substr/memcpy ever reads out of bounds.
Status CheckHeader(std::string_view blob, uint32_t* version) {
  if (blob.size() < kMinFileBytes) {
    return InvalidArgumentError(
        "table file too short (" + std::to_string(blob.size()) +
        " bytes; minimum is " + std::to_string(kMinFileBytes) + ")");
  }
  if (std::memcmp(blob.data(), kMagic, 4) != 0) {
    return InvalidArgumentError("not an S2TB table file");
  }
  std::memcpy(version, blob.data() + 4, 4);
  if (*version != 1 && *version != kVersion) {
    return InvalidArgumentError("unsupported table file version " +
                                std::to_string(*version));
  }
  return Status::Ok();
}

bool FileChecksumOk(std::string_view blob) {
  uint64_t stored = 0;
  std::memcpy(&stored, blob.data() + blob.size() - kTrailerBytes,
              kTrailerBytes);
  return Fnv1a64(blob.substr(0, blob.size() - kTrailerBytes)) == stored;
}

// Walks a v2 payload verifying each column's chunk checksum without
// decoding, to pin file-level corruption onto one column. The walk is
// fully bounds-checked: the payload itself may be damaged.
Status LocalizeCorruption(std::string_view payload) {
  size_t pos = kHeaderBytes;
  uint64_t ncols = 0;
  uint64_t nrows = 0;
  if (!GetVarint64(payload, &pos, &ncols) ||
      !GetVarint64(payload, &pos, &nrows)) {
    return InvalidArgumentError("table file corrupt (header truncated)");
  }
  for (uint64_t c = 0; c < ncols; ++c) {
    uint64_t name_len = 0;
    if (!GetVarint64(payload, &pos, &name_len) ||
        name_len > payload.size() - pos) {
      return InvalidArgumentError("table file corrupt (column " +
                                  std::to_string(c) + " name truncated)");
    }
    std::string name(payload.substr(pos, name_len));
    pos += name_len;
    uint64_t chunk_len = 0;
    if (!GetVarint64(payload, &pos, &chunk_len) ||
        chunk_len > payload.size() - pos) {
      return InvalidArgumentError("table file corrupt (column '" + name +
                                  "' chunk truncated)");
    }
    if (!VerifyColumnChecksum(payload.substr(pos, chunk_len)).ok()) {
      return InvalidArgumentError("table file corrupt in column '" + name +
                                  "' (chunk checksum mismatch)");
    }
    pos += chunk_len;
  }
  return InvalidArgumentError(
      "table file checksum mismatch outside column chunks (header or "
      "trailer corruption)");
}

}  // namespace

std::string SerializeTable(const engine::Table& table) {
  std::string out;
  out.append(kMagic, 4);
  char version[4];
  std::memcpy(version, &kVersion, 4);
  out.append(version, 4);
  PutVarint64(&out, table.NumColumns());
  PutVarint64(&out, table.NumRows());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const std::string& name = table.column_names()[c];
    PutVarint64(&out, name.size());
    out += name;
    std::string chunk = EncodeColumnChecksummed(table.Column(c));
    PutVarint64(&out, chunk.size());
    out += chunk;
  }
  uint64_t checksum = Fnv1a64(out);
  char trailer[kTrailerBytes];
  std::memcpy(trailer, &checksum, kTrailerBytes);
  out.append(trailer, kTrailerBytes);
  return out;
}

Status VerifyTableBlob(std::string_view blob) {
  uint32_t version = 0;
  S2RDF_RETURN_IF_ERROR(CheckHeader(blob, &version));
  if (FileChecksumOk(blob)) return Status::Ok();
  if (version == kVersion) {
    return LocalizeCorruption(blob.substr(0, blob.size() - kTrailerBytes));
  }
  return InvalidArgumentError("table file checksum mismatch");
}

StatusOr<engine::Table> DeserializeTable(std::string_view blob) {
  uint32_t version = 0;
  S2RDF_RETURN_IF_ERROR(CheckHeader(blob, &version));
  if (!FileChecksumOk(blob)) {
    if (version == kVersion) {
      return LocalizeCorruption(blob.substr(0, blob.size() - kTrailerBytes));
    }
    return InvalidArgumentError("table file checksum mismatch");
  }
  // All parsing below is bounded by the payload (trailer excluded), so a
  // damaged length field can never read checksum bytes as data.
  std::string_view payload = blob.substr(0, blob.size() - kTrailerBytes);
  size_t pos = kHeaderBytes;
  uint64_t ncols = 0;
  uint64_t nrows = 0;
  if (!GetVarint64(payload, &pos, &ncols) ||
      !GetVarint64(payload, &pos, &nrows)) {
    return InvalidArgumentError("table file truncated (header)");
  }
  std::vector<std::string> names;
  std::vector<std::vector<uint32_t>> columns;
  for (uint64_t c = 0; c < ncols; ++c) {
    uint64_t name_len = 0;
    if (!GetVarint64(payload, &pos, &name_len) ||
        name_len > payload.size() - pos) {
      return InvalidArgumentError("table file truncated (column name)");
    }
    names.emplace_back(payload.substr(pos, name_len));
    pos += name_len;
    uint64_t chunk_len = 0;
    if (!GetVarint64(payload, &pos, &chunk_len) ||
        chunk_len > payload.size() - pos) {
      return InvalidArgumentError("table file truncated (column block)");
    }
    std::vector<uint32_t> column;
    std::string_view chunk = payload.substr(pos, chunk_len);
    Status decoded = version == kVersion
                         ? DecodeColumnChecksummed(chunk, &column)
                         : DecodeColumn(chunk, &column);
    if (!decoded.ok()) {
      return InvalidArgumentError("column '" + names.back() +
                                  "': " + decoded.message());
    }
    if (column.size() != nrows) {
      return InvalidArgumentError("column row count mismatch");
    }
    columns.push_back(std::move(column));
    pos += chunk_len;
  }
  engine::Table table(std::move(names));
  if (nrows > 0) {
    table.Reserve(nrows);
    for (uint64_t r = 0; r < nrows; ++r) {
      std::vector<uint32_t> row;
      row.reserve(ncols);
      for (uint64_t c = 0; c < ncols; ++c) row.push_back(columns[c][r]);
      table.AppendRow(row);
    }
  }
  return table;
}

StatusOr<uint64_t> SaveTable(const engine::Table& table,
                             const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string blob = SerializeTable(table);
  S2RDF_RETURN_IF_ERROR(env->WriteFileAtomic(path, blob));
  return static_cast<uint64_t>(blob.size());
}

StatusOr<engine::Table> LoadTable(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string blob;
  S2RDF_RETURN_IF_ERROR(env->ReadFile(path, &blob));
  return DeserializeTable(blob);
}

}  // namespace s2rdf::storage
