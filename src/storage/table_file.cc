#include "storage/table_file.h"

#include <cstring>

#include "common/file_util.h"
#include "common/hash.h"
#include "storage/encoding.h"

namespace s2rdf::storage {

namespace {
constexpr char kMagic[4] = {'S', '2', 'T', 'B'};
constexpr uint32_t kVersion = 1;
}  // namespace

std::string SerializeTable(const engine::Table& table) {
  std::string out;
  out.append(kMagic, 4);
  char version[4];
  std::memcpy(version, &kVersion, 4);
  out.append(version, 4);
  PutVarint64(&out, table.NumColumns());
  PutVarint64(&out, table.NumRows());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const std::string& name = table.column_names()[c];
    PutVarint64(&out, name.size());
    out += name;
    std::string block = EncodeColumn(table.Column(c));
    PutVarint64(&out, block.size());
    out += block;
  }
  uint64_t checksum = Fnv1a64(out);
  char trailer[8];
  std::memcpy(trailer, &checksum, 8);
  out.append(trailer, 8);
  return out;
}

StatusOr<engine::Table> DeserializeTable(std::string_view blob) {
  if (blob.size() < 16 || std::memcmp(blob.data(), kMagic, 4) != 0) {
    return InvalidArgumentError("not an S2TB table file");
  }
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, blob.data() + blob.size() - 8, 8);
  if (Fnv1a64(blob.substr(0, blob.size() - 8)) != stored_checksum) {
    return InvalidArgumentError("table file checksum mismatch");
  }
  uint32_t version = 0;
  std::memcpy(&version, blob.data() + 4, 4);
  if (version != kVersion) {
    return InvalidArgumentError("unsupported table file version");
  }
  size_t pos = 8;
  uint64_t ncols = 0;
  uint64_t nrows = 0;
  if (!GetVarint64(blob, &pos, &ncols) || !GetVarint64(blob, &pos, &nrows)) {
    return InvalidArgumentError("table file truncated (header)");
  }
  std::vector<std::string> names;
  std::vector<std::vector<uint32_t>> columns;
  for (uint64_t c = 0; c < ncols; ++c) {
    uint64_t name_len = 0;
    if (!GetVarint64(blob, &pos, &name_len) ||
        pos + name_len > blob.size()) {
      return InvalidArgumentError("table file truncated (column name)");
    }
    names.emplace_back(blob.substr(pos, name_len));
    pos += name_len;
    uint64_t block_len = 0;
    if (!GetVarint64(blob, &pos, &block_len) ||
        pos + block_len > blob.size()) {
      return InvalidArgumentError("table file truncated (column block)");
    }
    std::vector<uint32_t> column;
    S2RDF_RETURN_IF_ERROR(
        DecodeColumn(blob.substr(pos, block_len), &column));
    if (column.size() != nrows) {
      return InvalidArgumentError("column row count mismatch");
    }
    columns.push_back(std::move(column));
    pos += block_len;
  }
  engine::Table table(std::move(names));
  if (nrows > 0) {
    table.Reserve(nrows);
    for (uint64_t r = 0; r < nrows; ++r) {
      std::vector<uint32_t> row;
      row.reserve(ncols);
      for (uint64_t c = 0; c < ncols; ++c) row.push_back(columns[c][r]);
      table.AppendRow(row);
    }
  }
  return table;
}

StatusOr<uint64_t> SaveTable(const engine::Table& table,
                             const std::string& path) {
  std::string blob = SerializeTable(table);
  S2RDF_RETURN_IF_ERROR(WriteFile(path, blob));
  return static_cast<uint64_t>(blob.size());
}

StatusOr<engine::Table> LoadTable(const std::string& path) {
  std::string blob;
  S2RDF_RETURN_IF_ERROR(ReadFile(path, &blob));
  return DeserializeTable(blob);
}

}  // namespace s2rdf::storage
