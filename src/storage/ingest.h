#ifndef S2RDF_STORAGE_INGEST_H_
#define S2RDF_STORAGE_INGEST_H_

#include <cstdint>
#include <string>
#include <vector>

// Batched incremental ingest — the unit of the crash-safe append path.
// A batch carries canonical-term triples; core::ApplyIngestBatch encodes
// them, appends to the triples table and the per-predicate VP tables,
// delta-maintains the dependent ExtVP reductions and their SF statistics
// (or defers that work, marking the sources stale), and commits
// everything through one atomic Catalog::CommitBatch. The batch either
// becomes fully visible at the manifest flip or — after a crash at any
// point — is rolled back by Catalog::Recover's orphan sweep.

namespace s2rdf::storage {

// One triple in canonical N-Triples term syntax ("<iri>", "_:bnode",
// "\"literal\"...").
struct IngestTriple {
  std::string subject;
  std::string predicate;
  std::string object;
};

struct IngestBatch {
  std::vector<IngestTriple> triples;
  // When set, ExtVP/SF delta maintenance is skipped: the batch commits
  // only the triples-table and VP appends and marks the touched VP
  // tables as stale sources. Queries stay correct (stale reductions are
  // never scanned; the optimizer ignores their statistics) but slower
  // until RefreshStaleExtVp catches up. The fast path for latency-
  // sensitive writers.
  bool defer_extvp_maintenance = false;
};

struct IngestResult {
  // Triples in the submitted batch, before deduplication.
  uint64_t triples_in_batch = 0;
  // Triples actually new (not already in the store, not duplicated
  // within the batch). 0 means the batch was a no-op: no generation was
  // committed.
  uint64_t triples_added = 0;
  // Manifest generation the batch committed as (unchanged on no-op).
  uint64_t generation = 0;
  // VP tables appended to (including newly created predicates).
  uint64_t vp_tables_updated = 0;
  // ExtVP stats entries delta-maintained (materialized, amended or
  // demoted) by this batch.
  uint64_t extvp_tables_updated = 0;
  // Source VP tables marked stale by a deferred batch.
  uint64_t stale_sources_marked = 0;
  // Wall-clock time of the whole apply+commit, milliseconds.
  double millis = 0.0;
};

}  // namespace s2rdf::storage

#endif  // S2RDF_STORAGE_INGEST_H_
