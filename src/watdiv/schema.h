#ifndef S2RDF_WATDIV_SCHEMA_H_
#define S2RDF_WATDIV_SCHEMA_H_

#include <cstdint>
#include <string>

// WatDiv-compatible schema: namespaces, entity classes and their
// per-scale-factor population counts. The generator (generator.h) and
// the query-template instantiation (queries.h) share these definitions,
// exactly like WatDiv's model file drives both its generator and its
// query templates.
//
// Scale: one scale-factor unit produces roughly 75 K triples (the real
// WatDiv produces ~105 K); the *proportions* the paper's evaluation
// relies on are preserved: |VP_friendOf| ~ 0.44|G|, |VP_follows| ~
// 0.32|G|, |VP_likes| ~ 0.013|G|, users without sorg:language, etc.

namespace s2rdf::watdiv {

// Namespace IRI prefixes (WatDiv originals).
inline constexpr char kWsdbm[] = "http://db.uwaterloo.ca/~galuc/wsdbm/";
inline constexpr char kSorg[] = "http://schema.org/";
inline constexpr char kGr[] = "http://purl.org/goodrelations/";
inline constexpr char kRev[] = "http://purl.org/stuff/rev#";
inline constexpr char kMo[] = "http://purl.org/ontology/mo/";
inline constexpr char kGn[] = "http://www.geonames.org/ontology#";
inline constexpr char kDc[] = "http://purl.org/dc/terms/";
inline constexpr char kFoaf[] = "http://xmlns.com/foaf/";
inline constexpr char kOg[] = "http://ogp.me/ns#";
inline constexpr char kRdf[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr char kXsd[] = "http://www.w3.org/2001/XMLSchema#";

enum class EntityClass {
  kUser,
  kProduct,
  kRetailer,
  kWebsite,
  kCity,
  kCountry,
  kTopic,
  kSubGenre,
  kLanguage,
  kAgeGroup,
  kRole,
  kProductCategory,
  kPurchase,
  kReview,
  kOffer,
};

// WatDiv entity-class name as used in IRIs ("User", "Product", ...).
const char* EntityClassName(EntityClass cls);

// The IRI of entity `index` of `cls`, e.g. wsdbm:User42 (canonical
// N-Triples form with angle brackets).
std::string EntityIri(EntityClass cls, uint64_t index);

// Population of `cls` at `scale_factor` (kCountry etc. are fixed pools).
uint64_t EntityCount(EntityClass cls, double scale_factor);

// Canonical typed-literal helpers matching the SPARQL parser's
// canonicalization (so query constants hit the dictionary).
std::string IntegerLiteral(long long value);
std::string StringLiteral(const std::string& value);

}  // namespace s2rdf::watdiv

#endif  // S2RDF_WATDIV_SCHEMA_H_
