#ifndef S2RDF_WATDIV_GENERATOR_H_
#define S2RDF_WATDIV_GENERATOR_H_

#include <cstdint>

#include "rdf/graph.h"
#include "watdiv/schema.h"

// WatDiv-style synthetic RDF generator. Reproduces the *structural*
// properties the paper's evaluation exercises:
//
//   - the two giant social predicates (wsdbm:friendOf ~ 0.44|G|,
//     wsdbm:follows ~ 0.32|G|) with skewed object popularity;
//   - attribute participation probabilities chosen so the ExtVP
//     selectivities of the paper's ST workload land near the published
//     values (e.g. OS friendOf|email ~ 0.9, OS friendOf|jobTitle ~ 0.05,
//     OS friendOf|language = 0 — users never carry sorg:language);
//   - the e-commerce half (retailers, offers, products, purchases,
//     reviews) that feeds the Basic Testing and IL workloads, with every
//     path predicate of the IL chains populated.
//
// Deterministic: (scale_factor, seed) fully determines the dataset.

namespace s2rdf::watdiv {

struct GeneratorOptions {
  double scale_factor = 1.0;
  uint64_t seed = 42;
};

// Generates the dataset. One scale-factor unit is ~75 K triples.
rdf::Graph Generate(const GeneratorOptions& options);

}  // namespace s2rdf::watdiv

#endif  // S2RDF_WATDIV_GENERATOR_H_
