#include "watdiv/generator.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "common/random.h"

namespace s2rdf::watdiv {

namespace {

class GeneratorImpl {
 public:
  explicit GeneratorImpl(const GeneratorOptions& options)
      : options_(options), rng_(options.seed) {}

  rdf::Graph Run() {
    GenerateUsers();
    GenerateSocialEdges();
    GenerateProducts();
    GenerateWebsites();
    GenerateGeography();
    GenerateGenres();
    GenerateOffers();
    GenerateReviews();
    GeneratePurchases();
    return std::move(graph_);
  }

 private:
  uint64_t Count(EntityClass cls) const {
    return EntityCount(cls, options_.scale_factor);
  }

  static std::string Pred(const char* ns, const char* name) {
    return std::string("<") + ns + name + ">";
  }

  void Add(const std::string& subject, const std::string& predicate,
           const std::string& object) {
    graph_.AddCanonical(subject, predicate, object);
  }

  // Deterministic per-entity coin flip: independent of generation order.
  bool Flag(EntityClass cls, uint64_t index, const char* attribute,
            double probability) {
    uint64_t h = Fnv1a64(attribute);
    h = HashCombine(h, static_cast<uint64_t>(cls) + 0x51);
    h = HashCombine(h, index);
    h = HashCombine(h, options_.seed);
    SplitMix64 coin(h);
    return coin.Bernoulli(probability);
  }

  uint64_t Uniform(EntityClass cls) { return rng_.Uniform(Count(cls)); }
  uint64_t Zipf(EntityClass cls, double s = 1.2) {
    return rng_.Zipf(Count(cls), s);
  }

  // Zipf-popular user whose *index* is decorrelated from popularity by a
  // fixed multiplicative permutation. Without this, "popular" would mean
  // "low index", which would correlate object popularity with the
  // index-range subject pools below and distort the OS selectivities.
  uint64_t ZipfUser() {
    const uint64_t users = Count(EntityClass::kUser);
    uint64_t rank = rng_.Zipf(users, 1.2);
    return (rank * 2654435761ULL + 17) % users;
  }

  // --- Users ---------------------------------------------------------

  void GenerateUsers() {
    const uint64_t users = Count(EntityClass::kUser);
    static const char* kJobTitles[] = {"Engineer", "Doctor", "Teacher",
                                       "Artist", "Trader"};
    for (uint64_t u = 0; u < users; ++u) {
      std::string iri = EntityIri(EntityClass::kUser, u);
      Add(iri, Pred(kRdf, "type"),
          EntityIri(EntityClass::kRole, u % Count(EntityClass::kRole)));
      if (Flag(EntityClass::kUser, u, "email", 0.9)) {
        Add(iri, Pred(kSorg, "email"),
            StringLiteral("user" + std::to_string(u) + "@example.org"));
      }
      if (Flag(EntityClass::kUser, u, "age", 0.5)) {
        Add(iri, Pred(kFoaf, "age"),
            EntityIri(EntityClass::kAgeGroup,
                      u % Count(EntityClass::kAgeGroup)));
      }
      if (Flag(EntityClass::kUser, u, "jobTitle", 0.05)) {
        Add(iri, Pred(kSorg, "jobTitle"),
            StringLiteral(kJobTitles[u % 5]));
      }
      if (Flag(EntityClass::kUser, u, "gender", 0.6)) {
        Add(iri, Pred(kWsdbm, "gender"),
            StringLiteral(u % 2 == 0 ? "male" : "female"));
      }
      if (Flag(EntityClass::kUser, u, "givenName", 0.7)) {
        Add(iri, Pred(kFoaf, "givenName"),
            StringLiteral("Given" + std::to_string(u % 97)));
      }
      if (Flag(EntityClass::kUser, u, "familyName", 0.5)) {
        Add(iri, Pred(kFoaf, "familyName"),
            StringLiteral("Family" + std::to_string(u % 131)));
      }
      if (Flag(EntityClass::kUser, u, "nationality", 0.8)) {
        Add(iri, Pred(kSorg, "nationality"),
            EntityIri(EntityClass::kCountry,
                      Uniform(EntityClass::kCountry)));
      }
      if (Flag(EntityClass::kUser, u, "location", 0.4)) {
        Add(iri, Pred(kDc, "Location"),
            EntityIri(EntityClass::kCity, Uniform(EntityClass::kCity)));
      }
      if (Flag(EntityClass::kUser, u, "faxNumber", 0.005)) {
        Add(iri, Pred(kSorg, "faxNumber"),
            StringLiteral("+1-555-" + std::to_string(1000 + u % 9000)));
      }
      if (Flag(EntityClass::kUser, u, "telephone", 0.3)) {
        Add(iri, Pred(kSorg, "telephone"),
            StringLiteral("+1-333-" + std::to_string(1000 + u % 9000)));
      }
      if (Flag(EntityClass::kUser, u, "homepage", 0.15)) {
        Add(iri, Pred(kFoaf, "homepage"),
            EntityIri(EntityClass::kWebsite,
                      Uniform(EntityClass::kWebsite)));
      }
      if (Flag(EntityClass::kUser, u, "subscribes", 0.3)) {
        uint64_t n = 1 + rng_.Uniform(3);
        for (uint64_t i = 0; i < n; ++i) {
          Add(iri, Pred(kWsdbm, "subscribes"),
              EntityIri(EntityClass::kWebsite,
                        Uniform(EntityClass::kWebsite)));
        }
      }
    }
  }

  // --- Social edges ----------------------------------------------------
  //
  // Subject pools are index ranges so the SS-correlation overlaps land
  // near the paper's values: friendOf subjects = users [0.5U, 0.9U),
  // follows subjects = users [0.1U, 0.81U)  =>  SS(friendOf|follows) ~
  // 0.775 (paper: 0.77) and SS(follows|friendOf) ~ 0.44 (paper: 0.40);
  // objects are permutation-decorrelated Zipf draws over all users, so
  // OS(follows|friendOf) ~ pool fraction 0.4 (paper: 0.40).

  void GenerateSocialEdges() {
    const uint64_t users = Count(EntityClass::kUser);
    const double sf = options_.scale_factor;

    auto add_edges = [&](const char* predicate, uint64_t edges,
                         uint64_t subj_lo, uint64_t subj_hi) {
      std::unordered_set<uint64_t> seen;
      std::string pred = Pred(kWsdbm, predicate);
      uint64_t attempts = 0;
      while (seen.size() < edges && attempts < edges * 4) {
        ++attempts;
        uint64_t subj = subj_lo + rng_.Uniform(subj_hi - subj_lo);
        uint64_t obj = ZipfUser();
        if (obj == subj) continue;
        uint64_t key = (subj << 32) | obj;
        if (!seen.insert(key).second) continue;
        Add(EntityIri(EntityClass::kUser, subj), pred,
            EntityIri(EntityClass::kUser, obj));
      }
    };

    add_edges("friendOf", static_cast<uint64_t>(33000 * sf), users / 2,
              std::max<uint64_t>(users / 2 + 1, users * 9 / 10));
    add_edges("follows", static_cast<uint64_t>(24000 * sf), users / 10,
              std::max<uint64_t>(users / 10 + 1, users * 81 / 100));

    // likes: User -> Product, ~24% of users participate.
    std::vector<uint64_t> likers;
    for (uint64_t u = 0; u < users; ++u) {
      if (Flag(EntityClass::kUser, u, "likes", 0.24)) likers.push_back(u);
    }
    if (likers.empty()) likers.push_back(0);
    std::unordered_set<uint64_t> seen;
    const uint64_t like_edges = static_cast<uint64_t>(1000 * sf);
    std::string pred = Pred(kWsdbm, "likes");
    uint64_t attempts = 0;
    while (seen.size() < like_edges && attempts < like_edges * 4) {
      ++attempts;
      uint64_t subj = likers[rng_.Uniform(likers.size())];
      uint64_t obj = Zipf(EntityClass::kProduct, 1.05);
      uint64_t key = (subj << 32) | obj;
      if (!seen.insert(key).second) continue;
      Add(EntityIri(EntityClass::kUser, subj), pred,
          EntityIri(EntityClass::kProduct, obj));
    }
  }

  // --- Products --------------------------------------------------------

  void GenerateProducts() {
    const uint64_t products = Count(EntityClass::kProduct);
    static const char* kRatings[] = {"G", "PG", "PG-13", "R"};
    for (uint64_t p = 0; p < products; ++p) {
      std::string iri = EntityIri(EntityClass::kProduct, p);
      Add(iri, Pred(kRdf, "type"),
          EntityIri(EntityClass::kProductCategory,
                    p % Count(EntityClass::kProductCategory)));
      auto user_ref = [&](const char* ns, const char* name, double prob) {
        if (Flag(EntityClass::kProduct, p, name, prob)) {
          Add(iri, Pred(ns, name),
              EntityIri(EntityClass::kUser, Uniform(EntityClass::kUser)));
        }
      };
      if (Flag(EntityClass::kProduct, p, "caption", 0.8)) {
        Add(iri, Pred(kSorg, "caption"),
            StringLiteral("caption of product " + std::to_string(p)));
      }
      if (Flag(EntityClass::kProduct, p, "description", 0.6)) {
        Add(iri, Pred(kSorg, "description"),
            StringLiteral("description " + std::to_string(p)));
      }
      if (Flag(EntityClass::kProduct, p, "keywords", 0.5)) {
        Add(iri, Pred(kSorg, "keywords"),
            StringLiteral("keyword" + std::to_string(p % 40)));
      }
      if (Flag(EntityClass::kProduct, p, "ogtitle", 0.7)) {
        Add(iri, Pred(kOg, "title"),
            StringLiteral("Product Title " + std::to_string(p)));
      }
      if (Flag(EntityClass::kProduct, p, "ogtag", 0.4)) {
        uint64_t n = 1 + rng_.Uniform(2);
        for (uint64_t i = 0; i < n; ++i) {
          Add(iri, Pred(kOg, "tag"),
              EntityIri(EntityClass::kTopic, Uniform(EntityClass::kTopic)));
        }
      }
      if (Flag(EntityClass::kProduct, p, "text", 0.5)) {
        Add(iri, Pred(kSorg, "text"),
            StringLiteral("text body " + std::to_string(p)));
      }
      if (Flag(EntityClass::kProduct, p, "contentRating", 0.3)) {
        Add(iri, Pred(kSorg, "contentRating"),
            StringLiteral(kRatings[p % 4]));
      }
      if (Flag(EntityClass::kProduct, p, "contentSize", 0.35)) {
        Add(iri, Pred(kSorg, "contentSize"),
            IntegerLiteral(static_cast<long long>(100 + p % 4000)));
      }
      if (Flag(EntityClass::kProduct, p, "language", 0.25)) {
        Add(iri, Pred(kSorg, "language"),
            EntityIri(EntityClass::kLanguage,
                      Uniform(EntityClass::kLanguage)));
      }
      if (Flag(EntityClass::kProduct, p, "trailer", 0.05)) {
        Add(iri, Pred(kSorg, "trailer"),
            StringLiteral("trailer-" + std::to_string(p) + ".mp4"));
      }
      if (Flag(EntityClass::kProduct, p, "homepage", 0.3)) {
        Add(iri, Pred(kFoaf, "homepage"),
            EntityIri(EntityClass::kWebsite,
                      Uniform(EntityClass::kWebsite)));
      }
      // hasGenre: one mandatory, a second with p = 0.2.
      Add(iri, Pred(kWsdbm, "hasGenre"),
          EntityIri(EntityClass::kSubGenre,
                    Uniform(EntityClass::kSubGenre)));
      if (Flag(EntityClass::kProduct, p, "genre2", 0.2)) {
        Add(iri, Pred(kWsdbm, "hasGenre"),
            EntityIri(EntityClass::kSubGenre,
                      Uniform(EntityClass::kSubGenre)));
      }
      user_ref(kSorg, "publisher", 0.3);
      user_ref(kSorg, "author", 0.15);
      user_ref(kSorg, "editor", 0.1);
      user_ref(kSorg, "director", 0.15);
      user_ref(kMo, "artist", 0.15);
      user_ref(kMo, "conductor", 0.04);
      if (Flag(EntityClass::kProduct, p, "actor", 0.3)) {
        uint64_t n = 1 + rng_.Uniform(2);
        for (uint64_t i = 0; i < n; ++i) {
          Add(iri, Pred(kSorg, "actor"),
              EntityIri(EntityClass::kUser, Uniform(EntityClass::kUser)));
        }
      }
    }
  }

  // --- Websites, geography, genres ------------------------------------

  void GenerateWebsites() {
    for (uint64_t w = 0; w < Count(EntityClass::kWebsite); ++w) {
      std::string iri = EntityIri(EntityClass::kWebsite, w);
      Add(iri, Pred(kSorg, "url"),
          StringLiteral("http://site" + std::to_string(w) + ".example.org"));
      Add(iri, Pred(kWsdbm, "hits"),
          IntegerLiteral(static_cast<long long>(
              rng_.Zipf(1000000, 1.1) + 1)));
      if (Flag(EntityClass::kWebsite, w, "language", 0.4)) {
        Add(iri, Pred(kSorg, "language"),
            EntityIri(EntityClass::kLanguage,
                      Uniform(EntityClass::kLanguage)));
      }
    }
  }

  void GenerateGeography() {
    for (uint64_t c = 0; c < Count(EntityClass::kCity); ++c) {
      Add(EntityIri(EntityClass::kCity, c), Pred(kGn, "parentCountry"),
          EntityIri(EntityClass::kCountry, Uniform(EntityClass::kCountry)));
    }
  }

  void GenerateGenres() {
    for (uint64_t g = 0; g < Count(EntityClass::kSubGenre); ++g) {
      std::string iri = EntityIri(EntityClass::kSubGenre, g);
      Add(iri, Pred(kRdf, "type"), std::string("<") + kWsdbm + "Genre>");
      uint64_t n = 1 + rng_.Uniform(2);
      for (uint64_t i = 0; i < n; ++i) {
        Add(iri, Pred(kOg, "tag"),
            EntityIri(EntityClass::kTopic, Uniform(EntityClass::kTopic)));
      }
    }
  }

  // --- E-commerce -------------------------------------------------------

  void GenerateOffers() {
    for (uint64_t r = 0; r < Count(EntityClass::kRetailer); ++r) {
      std::string iri = EntityIri(EntityClass::kRetailer, r);
      Add(iri, Pred(kSorg, "legalName"),
          StringLiteral("Retailer Inc. " + std::to_string(r)));
      if (Flag(EntityClass::kRetailer, r, "faxNumber", 0.5)) {
        Add(iri, Pred(kSorg, "faxNumber"),
            StringLiteral("+1-444-" + std::to_string(1000 + r)));
      }
    }
    for (uint64_t o = 0; o < Count(EntityClass::kOffer); ++o) {
      std::string iri = EntityIri(EntityClass::kOffer, o);
      Add(EntityIri(EntityClass::kRetailer, Uniform(EntityClass::kRetailer)),
          Pred(kGr, "offers"), iri);
      Add(iri, Pred(kGr, "includes"),
          EntityIri(EntityClass::kProduct,
                    Zipf(EntityClass::kProduct, 1.05)));
      Add(iri, Pred(kGr, "price"),
          "\"" + std::to_string(5 + rng_.Uniform(995)) + "." +
              std::to_string(rng_.Uniform(100)) + "\"^^<" +
              std::string(kXsd) + "double>");
      Add(iri, Pred(kGr, "serialNumber"),
          StringLiteral("SN-" + std::to_string(100000 + o)));
      if (Flag(EntityClass::kOffer, o, "validFrom", 0.9)) {
        Add(iri, Pred(kGr, "validFrom"), DateLiteral(o));
      }
      if (Flag(EntityClass::kOffer, o, "validThrough", 0.6)) {
        Add(iri, Pred(kGr, "validThrough"), DateLiteral(o + 180));
      }
      if (Flag(EntityClass::kOffer, o, "eligibleQuantity", 0.8)) {
        Add(iri, Pred(kSorg, "eligibleQuantity"),
            IntegerLiteral(static_cast<long long>(1 + rng_.Uniform(50))));
      }
      if (Flag(EntityClass::kOffer, o, "eligibleRegion", 0.7)) {
        Add(iri, Pred(kSorg, "eligibleRegion"),
            EntityIri(EntityClass::kCountry,
                      Uniform(EntityClass::kCountry)));
      }
      if (Flag(EntityClass::kOffer, o, "priceValidUntil", 0.4)) {
        Add(iri, Pred(kSorg, "priceValidUntil"), DateLiteral(o + 365));
      }
    }
  }

  void GenerateReviews() {
    for (uint64_t v = 0; v < Count(EntityClass::kReview); ++v) {
      std::string iri = EntityIri(EntityClass::kReview, v);
      Add(EntityIri(EntityClass::kProduct, Zipf(EntityClass::kProduct, 1.05)),
          Pred(kRev, "hasReview"), iri);
      Add(iri, Pred(kRev, "reviewer"),
          EntityIri(EntityClass::kUser, Uniform(EntityClass::kUser)));
      if (Flag(EntityClass::kReview, v, "title", 0.9)) {
        Add(iri, Pred(kRev, "title"),
            StringLiteral("review title " + std::to_string(v)));
      }
      if (Flag(EntityClass::kReview, v, "text", 0.5)) {
        Add(iri, Pred(kRev, "text"),
            StringLiteral("review text " + std::to_string(v)));
      }
      if (Flag(EntityClass::kReview, v, "rating", 0.7)) {
        Add(iri, Pred(kRev, "rating"),
            IntegerLiteral(static_cast<long long>(1 + rng_.Uniform(10))));
      }
      if (Flag(EntityClass::kReview, v, "totalVotes", 0.8)) {
        Add(iri, Pred(kRev, "totalVotes"),
            IntegerLiteral(static_cast<long long>(rng_.Uniform(500))));
      }
    }
  }

  void GeneratePurchases() {
    const uint64_t purchases = Count(EntityClass::kPurchase);
    const uint64_t users = Count(EntityClass::kUser);
    for (uint64_t q = 0; q < purchases; ++q) {
      std::string iri = EntityIri(EntityClass::kPurchase, q);
      // Buyers skew towards active users.
      uint64_t buyer = rng_.Uniform(users);
      Add(EntityIri(EntityClass::kUser, buyer),
          Pred(kWsdbm, "makesPurchase"), iri);
      Add(iri, Pred(kWsdbm, "purchaseFor"),
          EntityIri(EntityClass::kProduct,
                    Zipf(EntityClass::kProduct, 1.05)));
      Add(iri, Pred(kWsdbm, "purchaseDate"), DateLiteral(q));
    }
  }

  std::string DateLiteral(uint64_t day_seed) {
    uint64_t month = 1 + day_seed % 12;
    uint64_t day = 1 + day_seed % 28;
    return StringLiteral(
        "2024-" + std::string(month < 10 ? "0" : "") +
        std::to_string(month) + "-" + std::string(day < 10 ? "0" : "") +
        std::to_string(day));
  }

  GeneratorOptions options_;
  rdf::Graph graph_;
  SplitMix64 rng_;
};

}  // namespace

rdf::Graph Generate(const GeneratorOptions& options) {
  GeneratorImpl generator(options);
  return generator.Run();
}

}  // namespace s2rdf::watdiv
