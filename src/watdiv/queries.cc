#include "watdiv/queries.h"

#include "common/strings.h"

namespace s2rdf::watdiv {

namespace {

using Mapping = std::pair<std::string, EntityClass>;

std::vector<QueryTemplate> MakeBasicTesting() {
  std::vector<QueryTemplate> queries;

  // --- Linear (Appendix A.1) -------------------------------------------
  queries.push_back(
      {"L1", "L",
       "SELECT ?v0 ?v2 ?v3 WHERE {\n"
       "  ?v0 wsdbm:subscribes %v1% .\n"
       "  ?v2 sorg:caption ?v3 .\n"
       "  ?v0 wsdbm:likes ?v2 .\n"
       "}",
       {{"%v1%", EntityClass::kWebsite}}});
  queries.push_back(
      {"L2", "L",
       "SELECT ?v1 ?v2 WHERE {\n"
       "  %v0% gn:parentCountry ?v1 .\n"
       "  ?v2 wsdbm:likes wsdbm:Product0 .\n"
       "  ?v2 sorg:nationality ?v1 .\n"
       "}",
       {{"%v0%", EntityClass::kCity}}});
  queries.push_back(
      {"L3", "L",
       "SELECT ?v0 ?v1 WHERE {\n"
       "  ?v0 wsdbm:likes ?v1 .\n"
       "  ?v0 wsdbm:subscribes %v2% .\n"
       "}",
       {{"%v2%", EntityClass::kWebsite}}});
  queries.push_back(
      {"L4", "L",
       "SELECT ?v0 ?v2 WHERE {\n"
       "  ?v0 og:tag %v1% .\n"
       "  ?v0 sorg:caption ?v2 .\n"
       "}",
       {{"%v1%", EntityClass::kTopic}}});
  queries.push_back(
      {"L5", "L",
       "SELECT ?v0 ?v1 ?v3 WHERE {\n"
       "  ?v0 sorg:jobTitle ?v1 .\n"
       "  %v2% gn:parentCountry ?v3 .\n"
       "  ?v0 sorg:nationality ?v3 .\n"
       "}",
       {{"%v2%", EntityClass::kCity}}});

  // --- Star (Appendix A.2) ---------------------------------------------
  queries.push_back(
      {"S1", "S",
       "SELECT ?v0 ?v1 ?v3 ?v4 ?v5 ?v6 ?v7 ?v8 ?v9 WHERE {\n"
       "  ?v0 gr:includes ?v1 .\n"
       "  %v2% gr:offers ?v0 .\n"
       "  ?v0 gr:price ?v3 .\n"
       "  ?v0 gr:serialNumber ?v4 .\n"
       "  ?v0 gr:validFrom ?v5 .\n"
       "  ?v0 gr:validThrough ?v6 .\n"
       "  ?v0 sorg:eligibleQuantity ?v7 .\n"
       "  ?v0 sorg:eligibleRegion ?v8 .\n"
       "  ?v0 sorg:priceValidUntil ?v9 .\n"
       "}",
       {{"%v2%", EntityClass::kRetailer}}});
  queries.push_back(
      {"S2", "S",
       "SELECT ?v0 ?v1 ?v3 WHERE {\n"
       "  ?v0 dc:Location ?v1 .\n"
       "  ?v0 sorg:nationality %v2% .\n"
       "  ?v0 wsdbm:gender ?v3 .\n"
       "  ?v0 rdf:type wsdbm:Role2 .\n"
       "}",
       {{"%v2%", EntityClass::kCountry}}});
  queries.push_back(
      {"S3", "S",
       "SELECT ?v0 ?v2 ?v3 ?v4 WHERE {\n"
       "  ?v0 rdf:type %v1% .\n"
       "  ?v0 sorg:caption ?v2 .\n"
       "  ?v0 wsdbm:hasGenre ?v3 .\n"
       "  ?v0 sorg:publisher ?v4 .\n"
       "}",
       {{"%v1%", EntityClass::kProductCategory}}});
  queries.push_back(
      {"S4", "S",
       "SELECT ?v0 ?v2 ?v3 WHERE {\n"
       "  ?v0 foaf:age %v1% .\n"
       "  ?v0 foaf:familyName ?v2 .\n"
       "  ?v3 mo:artist ?v0 .\n"
       "  ?v0 sorg:nationality wsdbm:Country1 .\n"
       "}",
       {{"%v1%", EntityClass::kAgeGroup}}});
  queries.push_back(
      {"S5", "S",
       "SELECT ?v0 ?v2 ?v3 WHERE {\n"
       "  ?v0 rdf:type %v1% .\n"
       "  ?v0 sorg:description ?v2 .\n"
       "  ?v0 sorg:keywords ?v3 .\n"
       "  ?v0 sorg:language wsdbm:Language0 .\n"
       "}",
       {{"%v1%", EntityClass::kProductCategory}}});
  queries.push_back(
      {"S6", "S",
       "SELECT ?v0 ?v1 ?v2 WHERE {\n"
       "  ?v0 mo:conductor ?v1 .\n"
       "  ?v0 rdf:type ?v2 .\n"
       "  ?v0 wsdbm:hasGenre %v3% .\n"
       "}",
       {{"%v3%", EntityClass::kSubGenre}}});
  queries.push_back(
      {"S7", "S",
       "SELECT ?v0 ?v1 ?v2 WHERE {\n"
       "  ?v0 rdf:type ?v1 .\n"
       "  ?v0 sorg:text ?v2 .\n"
       "  %v3% wsdbm:likes ?v0 .\n"
       "}",
       {{"%v3%", EntityClass::kUser}}});

  // --- Snowflake (Appendix A.3) ------------------------------------------
  queries.push_back(
      {"F1", "F",
       "SELECT ?v0 ?v2 ?v3 ?v4 ?v5 WHERE {\n"
       "  ?v0 og:tag %v1% .\n"
       "  ?v0 rdf:type ?v2 .\n"
       "  ?v3 sorg:trailer ?v4 .\n"
       "  ?v3 sorg:keywords ?v5 .\n"
       "  ?v3 wsdbm:hasGenre ?v0 .\n"
       "  ?v3 rdf:type wsdbm:ProductCategory2 .\n"
       "}",
       {{"%v1%", EntityClass::kTopic}}});
  queries.push_back(
      {"F2", "F",
       "SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 ?v7 WHERE {\n"
       "  ?v0 foaf:homepage ?v1 .\n"
       "  ?v0 og:title ?v2 .\n"
       "  ?v0 rdf:type ?v3 .\n"
       "  ?v0 sorg:caption ?v4 .\n"
       "  ?v0 sorg:description ?v5 .\n"
       "  ?v1 sorg:url ?v6 .\n"
       "  ?v1 wsdbm:hits ?v7 .\n"
       "  ?v0 wsdbm:hasGenre %v8% .\n"
       "}",
       {{"%v8%", EntityClass::kSubGenre}}});
  queries.push_back(
      {"F3", "F",
       "SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 WHERE {\n"
       "  ?v0 sorg:contentRating ?v1 .\n"
       "  ?v0 sorg:contentSize ?v2 .\n"
       "  ?v0 wsdbm:hasGenre %v3% .\n"
       "  ?v4 wsdbm:makesPurchase ?v5 .\n"
       "  ?v5 wsdbm:purchaseDate ?v6 .\n"
       "  ?v5 wsdbm:purchaseFor ?v0 .\n"
       "}",
       {{"%v3%", EntityClass::kSubGenre}}});
  queries.push_back(
      {"F4", "F",
       "SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 ?v7 ?v8 WHERE {\n"
       "  ?v0 foaf:homepage ?v1 .\n"
       "  ?v2 gr:includes ?v0 .\n"
       "  ?v0 og:tag %v3% .\n"
       "  ?v0 sorg:description ?v4 .\n"
       "  ?v0 sorg:contentSize ?v8 .\n"
       "  ?v1 sorg:url ?v5 .\n"
       "  ?v1 wsdbm:hits ?v6 .\n"
       "  ?v1 sorg:language wsdbm:Language0 .\n"
       "  ?v7 wsdbm:likes ?v0 .\n"
       "}",
       {{"%v3%", EntityClass::kTopic}}});
  queries.push_back(
      {"F5", "F",
       "SELECT ?v0 ?v1 ?v3 ?v4 ?v5 ?v6 WHERE {\n"
       "  ?v0 gr:includes ?v1 .\n"
       "  %v2% gr:offers ?v0 .\n"
       "  ?v0 gr:price ?v3 .\n"
       "  ?v0 gr:validThrough ?v4 .\n"
       "  ?v1 og:title ?v5 .\n"
       "  ?v1 rdf:type ?v6 .\n"
       "}",
       {{"%v2%", EntityClass::kRetailer}}});

  // --- Complex (Appendix A.4) --------------------------------------------
  queries.push_back(
      {"C1", "C",
       "SELECT ?v0 ?v4 ?v6 ?v7 WHERE {\n"
       "  ?v0 sorg:caption ?v1 .\n"
       "  ?v0 sorg:text ?v2 .\n"
       "  ?v0 sorg:contentRating ?v3 .\n"
       "  ?v0 rev:hasReview ?v4 .\n"
       "  ?v4 rev:title ?v5 .\n"
       "  ?v4 rev:reviewer ?v6 .\n"
       "  ?v7 sorg:actor ?v6 .\n"
       "  ?v7 sorg:language ?v8 .\n"
       "}",
       {}});
  queries.push_back(
      {"C2", "C",
       "SELECT ?v0 ?v3 ?v4 ?v8 WHERE {\n"
       "  ?v0 sorg:legalName ?v1 .\n"
       "  ?v0 gr:offers ?v2 .\n"
       "  ?v2 sorg:eligibleRegion wsdbm:Country5 .\n"
       "  ?v2 gr:includes ?v3 .\n"
       "  ?v4 sorg:jobTitle ?v5 .\n"
       "  ?v4 foaf:homepage ?v6 .\n"
       "  ?v4 wsdbm:makesPurchase ?v7 .\n"
       "  ?v7 wsdbm:purchaseFor ?v3 .\n"
       "  ?v3 rev:hasReview ?v8 .\n"
       "  ?v8 rev:totalVotes ?v9 .\n"
       "}",
       {}});
  queries.push_back(
      {"C3", "C",
       "SELECT ?v0 WHERE {\n"
       "  ?v0 wsdbm:likes ?v1 .\n"
       "  ?v0 wsdbm:friendOf ?v2 .\n"
       "  ?v0 dc:Location ?v3 .\n"
       "  ?v0 foaf:age ?v4 .\n"
       "  ?v0 wsdbm:gender ?v5 .\n"
       "  ?v0 foaf:givenName ?v6 .\n"
       "}",
       {}});
  return queries;
}

std::vector<QueryTemplate> MakeSelectivityTesting() {
  std::vector<QueryTemplate> queries;
  auto two_hop = [](const std::string& name, const std::string& p1,
                    const std::string& p2) {
    return QueryTemplate{name, "ST",
                         "SELECT ?v0 ?v1 ?v2 WHERE {\n"
                         "  ?v0 " + p1 + " ?v1 .\n"
                         "  ?v1 " + p2 + " ?v2 .\n"
                         "}",
                         {}};
  };
  auto star2 = [](const std::string& name, const std::string& p1,
                  const std::string& p2) {
    return QueryTemplate{name, "ST",
                         "SELECT ?v0 ?v1 ?v2 WHERE {\n"
                         "  ?v0 " + p1 + " ?v1 .\n"
                         "  ?v0 " + p2 + " ?v2 .\n"
                         "}",
                         {}};
  };
  auto three_hop = [](const std::string& name, const std::string& p1,
                      const std::string& p2, const std::string& p3) {
    return QueryTemplate{name, "ST",
                         "SELECT ?v0 ?v1 ?v2 ?v3 WHERE {\n"
                         "  ?v0 " + p1 + " ?v1 .\n"
                         "  ?v1 " + p2 + " ?v2 .\n"
                         "  ?v2 " + p3 + " ?v3 .\n"
                         "}",
                         {}};
  };

  // B.1: varying OS selectivity.
  queries.push_back(two_hop("ST-1-1", "wsdbm:friendOf", "sorg:email"));
  queries.push_back(two_hop("ST-1-2", "wsdbm:friendOf", "foaf:age"));
  queries.push_back(two_hop("ST-1-3", "wsdbm:friendOf", "sorg:jobTitle"));
  queries.push_back(two_hop("ST-2-1", "rev:reviewer", "sorg:email"));
  queries.push_back(two_hop("ST-2-2", "rev:reviewer", "foaf:age"));
  queries.push_back(two_hop("ST-2-3", "rev:reviewer", "sorg:jobTitle"));
  // B.2: varying SO selectivity.
  queries.push_back(two_hop("ST-3-1", "wsdbm:follows", "wsdbm:friendOf"));
  queries.push_back(two_hop("ST-3-2", "rev:reviewer", "wsdbm:friendOf"));
  queries.push_back(two_hop("ST-3-3", "sorg:author", "wsdbm:friendOf"));
  queries.push_back(two_hop("ST-4-1", "wsdbm:follows", "wsdbm:likes"));
  queries.push_back(two_hop("ST-4-2", "rev:reviewer", "wsdbm:likes"));
  queries.push_back(two_hop("ST-4-3", "sorg:author", "wsdbm:likes"));
  // B.3: varying SS selectivity.
  queries.push_back(star2("ST-5-1", "wsdbm:friendOf", "sorg:email"));
  queries.push_back(star2("ST-5-2", "wsdbm:friendOf", "wsdbm:follows"));
  // B.4: high-selectivity queries.
  queries.push_back(two_hop("ST-6-1", "wsdbm:likes", "sorg:trailer"));
  queries.push_back(star2("ST-6-2", "sorg:email", "sorg:faxNumber"));
  // B.5: OS vs SO selectivity.
  queries.push_back(three_hop("ST-7-1", "wsdbm:friendOf", "wsdbm:follows",
                              "foaf:homepage"));
  queries.push_back(three_hop("ST-7-2", "mo:artist", "wsdbm:friendOf",
                              "wsdbm:follows"));
  // B.6: empty-result queries (users carry no sorg:language).
  queries.push_back(two_hop("ST-8-1", "wsdbm:friendOf", "sorg:language"));
  queries.push_back(three_hop("ST-8-2", "wsdbm:friendOf", "wsdbm:follows",
                              "sorg:language"));
  return queries;
}

std::vector<QueryTemplate> MakeIncrementalLinear() {
  // The predicate chains of Appendix C; IL-x-k uses the first k steps.
  struct ChainSpec {
    const char* family;
    // %v0% class for bound chains; nullptr for IL-3 (unbound).
    const EntityClass* start;
    std::vector<const char*> predicates;
  };
  static const EntityClass kUserClass = EntityClass::kUser;
  static const EntityClass kRetailerClass = EntityClass::kRetailer;
  const ChainSpec chains[3] = {
      {"IL-1", &kUserClass,
       {"wsdbm:follows", "wsdbm:likes", "rev:hasReview", "rev:reviewer",
        "wsdbm:friendOf", "wsdbm:makesPurchase", "wsdbm:purchaseFor",
        "sorg:author", "dc:Location", "gn:parentCountry"}},
      {"IL-2", &kRetailerClass,
       {"gr:offers", "gr:includes", "sorg:director", "wsdbm:friendOf",
        "wsdbm:friendOf", "wsdbm:likes", "sorg:editor",
        "wsdbm:makesPurchase", "wsdbm:purchaseFor", "sorg:caption"}},
      {"IL-3", nullptr,
       {"gr:offers", "gr:includes", "rev:hasReview", "rev:reviewer",
        "wsdbm:friendOf", "wsdbm:likes", "sorg:author", "wsdbm:follows",
        "foaf:homepage", "sorg:language"}},
  };

  std::vector<QueryTemplate> queries;
  for (const ChainSpec& chain : chains) {
    for (int length = 5; length <= 10; ++length) {
      QueryTemplate q;
      q.name = std::string(chain.family) + "-" + std::to_string(length);
      q.category = chain.family;
      std::string select = "SELECT";
      std::string body;
      std::string subject;
      int first_var = 0;
      if (chain.start != nullptr) {
        subject = "%v0%";
        q.mappings.emplace_back("%v0%", *chain.start);
        first_var = 1;
      } else {
        subject = "?v0";
        select += " ?v0";
        first_var = 1;
      }
      for (int i = 0; i < length; ++i) {
        std::string object = "?v" + std::to_string(first_var + i);
        select += " " + object;
        body += "  " + subject + " " + chain.predicates[i] + " " + object +
                " .\n";
        subject = object;
      }
      q.text = select + " WHERE {\n" + body + "}";
      queries.push_back(std::move(q));
    }
  }
  return queries;
}

}  // namespace

const std::string& PrefixHeader() {
  static const std::string* header = new std::string(
      "PREFIX wsdbm: <http://db.uwaterloo.ca/~galuc/wsdbm/>\n"
      "PREFIX sorg: <http://schema.org/>\n"
      "PREFIX gr: <http://purl.org/goodrelations/>\n"
      "PREFIX rev: <http://purl.org/stuff/rev#>\n"
      "PREFIX mo: <http://purl.org/ontology/mo/>\n"
      "PREFIX gn: <http://www.geonames.org/ontology#>\n"
      "PREFIX dc: <http://purl.org/dc/terms/>\n"
      "PREFIX foaf: <http://xmlns.com/foaf/>\n"
      "PREFIX og: <http://ogp.me/ns#>\n"
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n");
  return *header;
}

const std::vector<QueryTemplate>& BasicTestingQueries() {
  static const std::vector<QueryTemplate>* queries =
      new std::vector<QueryTemplate>(MakeBasicTesting());
  return *queries;
}

const std::vector<QueryTemplate>& SelectivityTestingQueries() {
  static const std::vector<QueryTemplate>* queries =
      new std::vector<QueryTemplate>(MakeSelectivityTesting());
  return *queries;
}

const std::vector<QueryTemplate>& IncrementalLinearQueries() {
  static const std::vector<QueryTemplate>* queries =
      new std::vector<QueryTemplate>(MakeIncrementalLinear());
  return *queries;
}

const QueryTemplate* FindQuery(const std::string& name) {
  for (const auto* workload :
       {&BasicTestingQueries(), &SelectivityTestingQueries(),
        &IncrementalLinearQueries()}) {
    for (const QueryTemplate& q : *workload) {
      if (q.name == name) return &q;
    }
  }
  return nullptr;
}

std::string InstantiateQuery(const QueryTemplate& tmpl, double scale_factor,
                             SplitMix64* rng) {
  std::string text = tmpl.text;
  for (const auto& [placeholder, cls] : tmpl.mappings) {
    uint64_t index = rng->Uniform(EntityCount(cls, scale_factor));
    text = StrReplaceAll(text, placeholder, EntityIri(cls, index));
  }
  return PrefixHeader() + text;
}

}  // namespace s2rdf::watdiv
