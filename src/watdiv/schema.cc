#include "watdiv/schema.h"

#include <algorithm>
#include <cmath>

#include "rdf/term.h"

namespace s2rdf::watdiv {

const char* EntityClassName(EntityClass cls) {
  switch (cls) {
    case EntityClass::kUser:
      return "User";
    case EntityClass::kProduct:
      return "Product";
    case EntityClass::kRetailer:
      return "Retailer";
    case EntityClass::kWebsite:
      return "Website";
    case EntityClass::kCity:
      return "City";
    case EntityClass::kCountry:
      return "Country";
    case EntityClass::kTopic:
      return "Topic";
    case EntityClass::kSubGenre:
      return "SubGenre";
    case EntityClass::kLanguage:
      return "Language";
    case EntityClass::kAgeGroup:
      return "AgeGroup";
    case EntityClass::kRole:
      return "Role";
    case EntityClass::kProductCategory:
      return "ProductCategory";
    case EntityClass::kPurchase:
      return "Purchase";
    case EntityClass::kReview:
      return "Review";
    case EntityClass::kOffer:
      return "Offer";
  }
  return "Entity";
}

std::string EntityIri(EntityClass cls, uint64_t index) {
  return std::string("<") + kWsdbm + EntityClassName(cls) +
         std::to_string(index) + ">";
}

uint64_t EntityCount(EntityClass cls, double scale_factor) {
  auto scaled = [&](double base) {
    return std::max<uint64_t>(
        1, static_cast<uint64_t>(std::llround(base * scale_factor)));
  };
  switch (cls) {
    case EntityClass::kUser:
      return scaled(1000);
    case EntityClass::kProduct:
      return scaled(250);
    case EntityClass::kRetailer:
      return scaled(12);
    case EntityClass::kWebsite:
      return scaled(50);
    case EntityClass::kCity:
      return scaled(50);
    case EntityClass::kPurchase:
      return scaled(400);
    case EntityClass::kReview:
      return scaled(500);
    case EntityClass::kOffer:
      return scaled(400);
    // Fixed vocabulary pools (do not scale, as in WatDiv).
    case EntityClass::kCountry:
      return 25;
    case EntityClass::kTopic:
      return 50;
    case EntityClass::kSubGenre:
      return 30;
    case EntityClass::kLanguage:
      return 10;
    case EntityClass::kAgeGroup:
      return 9;
    case EntityClass::kRole:
      return 3;
    case EntityClass::kProductCategory:
      return 15;
  }
  return 1;
}

std::string IntegerLiteral(long long value) {
  return "\"" + std::to_string(value) + "\"^^<" + std::string(kXsd) +
         "integer>";
}

std::string StringLiteral(const std::string& value) {
  return "\"" + rdf::EscapeLiteral(value) + "\"";
}

}  // namespace s2rdf::watdiv
