#ifndef S2RDF_WATDIV_QUERIES_H_
#define S2RDF_WATDIV_QUERIES_H_

#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "watdiv/schema.h"

// The three WatDiv workloads of the paper's evaluation:
//   Appendix A — Basic Testing (L1–L5, S1–S7, F1–F5, C1–C3),
//   Appendix B — Selectivity Testing (ST-1-1 … ST-8-2),
//   Appendix C — Incremental Linear (IL-1/2/3 × diameter 5–10).
//
// Templates carry `%vN%` placeholders with the entity class they draw
// from (the `#mapping vN <class> uniform` lines of WatDiv); Instantiate
// substitutes uniform entities, like the WatDiv query generator.

namespace s2rdf::watdiv {

struct QueryTemplate {
  std::string name;      // "L1", "ST-1-1", "IL-2-7", ...
  std::string category;  // "L", "S", "F", "C", "ST", "IL-1", ...
  // Query body without the PREFIX prologue.
  std::string text;
  // placeholder -> entity class, e.g. {"%v1%", kWebsite}.
  std::vector<std::pair<std::string, EntityClass>> mappings;
};

// The shared PREFIX prologue.
const std::string& PrefixHeader();

const std::vector<QueryTemplate>& BasicTestingQueries();
const std::vector<QueryTemplate>& SelectivityTestingQueries();
const std::vector<QueryTemplate>& IncrementalLinearQueries();

// Finds a template by name across all three workloads; nullptr if
// unknown.
const QueryTemplate* FindQuery(const std::string& name);

// Substitutes uniform entities (valid for `scale_factor`) for the
// placeholders and prepends the PREFIX prologue.
std::string InstantiateQuery(const QueryTemplate& tmpl, double scale_factor,
                             SplitMix64* rng);

}  // namespace s2rdf::watdiv

#endif  // S2RDF_WATDIV_QUERIES_H_
