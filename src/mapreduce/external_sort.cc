#include "mapreduce/external_sort.h"

#include <algorithm>
#include <queue>

#include "common/env.h"

namespace s2rdf::mapreduce {

StatusOr<SortStats> SortRecordFile(const std::string& input_path,
                                   const std::string& output_path,
                                   const std::string& work_dir,
                                   uint64_t max_records_in_memory,
                                   Env* env) {
  if (env == nullptr) env = Env::Default();
  if (max_records_in_memory == 0) {
    return InvalidArgumentError("max_records_in_memory must be positive");
  }
  SortStats stats;
  S2RDF_ASSIGN_OR_RETURN(std::vector<Record> all,
                         ReadRecordFile(input_path, env));
  stats.records = all.size();

  if (all.size() <= max_records_in_memory) {
    std::sort(all.begin(), all.end());
    stats.runs = 1;
    S2RDF_RETURN_IF_ERROR(WriteRecordFile(output_path, all, env));
    return stats;
  }

  // Spill sorted runs.
  std::vector<std::string> run_paths;
  for (size_t begin = 0; begin < all.size();
       begin += max_records_in_memory) {
    size_t end = std::min(all.size(), begin + max_records_in_memory);
    std::vector<Record> run(all.begin() + begin, all.begin() + end);
    std::sort(run.begin(), run.end());
    std::string path = work_dir + "/sort_run_" +
                       std::to_string(run_paths.size()) + ".rec";
    std::string blob = SerializeRecords(run);
    stats.spilled_bytes += blob.size();
    S2RDF_RETURN_IF_ERROR(env->WriteFile(path, blob));
    run_paths.push_back(path);
  }
  all.clear();
  all.shrink_to_fit();
  stats.runs = run_paths.size();

  // K-way merge over the runs.
  std::vector<std::vector<Record>> runs;
  runs.reserve(run_paths.size());
  for (const std::string& path : run_paths) {
    S2RDF_ASSIGN_OR_RETURN(std::vector<Record> run,
                           ReadRecordFile(path, env));
    runs.push_back(std::move(run));
    S2RDF_RETURN_IF_ERROR(env->RemoveFile(path));
  }
  struct HeapEntry {
    size_t run;
    size_t index;
  };
  auto greater = [&](const HeapEntry& a, const HeapEntry& b) {
    return runs[b.run][b.index] < runs[a.run][a.index];
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(greater)>
      heap(greater);
  for (size_t i = 0; i < runs.size(); ++i) {
    if (!runs[i].empty()) heap.push({i, 0});
  }
  std::vector<Record> merged;
  merged.reserve(stats.records);
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    merged.push_back(runs[top.run][top.index]);
    if (top.index + 1 < runs[top.run].size()) {
      heap.push({top.run, top.index + 1});
    }
  }
  S2RDF_RETURN_IF_ERROR(WriteRecordFile(output_path, merged, env));
  return stats;
}

}  // namespace s2rdf::mapreduce
