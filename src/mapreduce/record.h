#ifndef S2RDF_MAPREDUCE_RECORD_H_
#define S2RDF_MAPREDUCE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"

// Key/value records for the mini MapReduce runtime. A record is a pair
// of small uint32 tuples (dictionary-encoded term ids); keys sort
// lexicographically. Record files are the on-disk interchange format
// between map, shuffle and reduce stages — the stand-in for HDFS
// sequence files in the MapReduce competitor baselines.

namespace s2rdf::mapreduce {

struct Record {
  std::vector<uint32_t> key;
  std::vector<uint32_t> value;

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
  // Lexicographic key order (value breaks ties for determinism).
  friend bool operator<(const Record& a, const Record& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.value < b.value;
  }
};

// Appends the serialized form of `record` to `out`.
void AppendRecord(const Record& record, std::string* out);

// Serializes a whole batch.
std::string SerializeRecords(const std::vector<Record>& records);

// Parses a record stream produced by AppendRecord.
Status ParseRecords(std::string_view data, std::vector<Record>* records);

// Writes `records` to `path` (truncating). `env` is the file-I/O
// environment (Env::Default() when null), so fault-injection tests can
// interpose on spill/shuffle traffic.
Status WriteRecordFile(const std::string& path,
                       const std::vector<Record>& records,
                       Env* env = nullptr);

// Reads a record file written by WriteRecordFile.
StatusOr<std::vector<Record>> ReadRecordFile(const std::string& path,
                                             Env* env = nullptr);

}  // namespace s2rdf::mapreduce

#endif  // S2RDF_MAPREDUCE_RECORD_H_
