#include "mapreduce/job.h"

#include "common/env.h"
#include "common/hash.h"
#include "mapreduce/external_sort.h"

namespace s2rdf::mapreduce {

namespace {

uint64_t KeyHash(const std::vector<uint32_t>& key) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (uint32_t v : key) h = HashCombine(h, v);
  return h;
}

}  // namespace

StatusOr<JobMetrics> RunJob(const JobConfig& config,
                            const std::vector<std::string>& input_paths,
                            const Mapper& mapper, const Reducer& reducer,
                            const std::string& output_path) {
  if (config.num_reducers <= 0) {
    return InvalidArgumentError("num_reducers must be positive");
  }
  JobMetrics metrics;
  const int r = config.num_reducers;
  Env* env = config.env != nullptr ? config.env : Env::Default();

  // --- Map + partition: stream inputs, buffer per-reducer partitions,
  // write each partition file (the "shuffle write").
  std::vector<std::vector<Record>> partitions(static_cast<size_t>(r));
  std::vector<Record> emitted;
  for (const std::string& path : input_paths) {
    S2RDF_ASSIGN_OR_RETURN(std::vector<Record> inputs,
                           ReadRecordFile(path, env));
    metrics.map_input_records += inputs.size();
    for (const Record& input : inputs) {
      emitted.clear();
      mapper(input, &emitted);
      metrics.map_output_records += emitted.size();
      for (Record& out : emitted) {
        size_t p = static_cast<size_t>(KeyHash(out.key) %
                                       static_cast<uint64_t>(r));
        partitions[p].push_back(std::move(out));
      }
    }
  }

  std::vector<std::string> partition_paths;
  for (int p = 0; p < r; ++p) {
    std::string path =
        config.work_dir + "/shuffle_" + std::to_string(p) + ".rec";
    std::string blob = SerializeRecords(partitions[static_cast<size_t>(p)]);
    metrics.shuffle_bytes += blob.size();
    S2RDF_RETURN_IF_ERROR(env->WriteFile(path, blob));
    partitions[static_cast<size_t>(p)].clear();
    partition_paths.push_back(path);
  }
  partitions.clear();

  // --- Sort + reduce per partition, streaming key groups.
  std::vector<Record> output;
  std::vector<Record> reduce_out;
  for (int p = 0; p < r; ++p) {
    const std::string& in = partition_paths[static_cast<size_t>(p)];
    std::string sorted = in + ".sorted";
    S2RDF_ASSIGN_OR_RETURN(
        SortStats sort_stats,
        SortRecordFile(in, sorted, config.work_dir,
                       config.max_records_in_memory, env));
    metrics.spill_bytes += sort_stats.spilled_bytes;
    S2RDF_ASSIGN_OR_RETURN(std::vector<Record> records,
                           ReadRecordFile(sorted, env));
    metrics.reduce_input_records += records.size();
    S2RDF_RETURN_IF_ERROR(env->RemoveFile(in));
    S2RDF_RETURN_IF_ERROR(env->RemoveFile(sorted));

    size_t begin = 0;
    while (begin < records.size()) {
      size_t end = begin + 1;
      while (end < records.size() &&
             records[end].key == records[begin].key) {
        ++end;
      }
      std::vector<Record> group(records.begin() + begin,
                                records.begin() + end);
      reduce_out.clear();
      reducer(records[begin].key, group, &reduce_out);
      metrics.reduce_output_records += reduce_out.size();
      for (Record& out : reduce_out) output.push_back(std::move(out));
      begin = end;
    }
  }

  S2RDF_RETURN_IF_ERROR(WriteRecordFile(output_path, output, env));
  return metrics;
}

}  // namespace s2rdf::mapreduce
