#include "mapreduce/record.h"

#include "common/env.h"
#include "storage/encoding.h"

namespace s2rdf::mapreduce {

void AppendRecord(const Record& record, std::string* out) {
  storage::PutVarint64(out, record.key.size());
  for (uint32_t v : record.key) storage::PutVarint64(out, v);
  storage::PutVarint64(out, record.value.size());
  for (uint32_t v : record.value) storage::PutVarint64(out, v);
}

std::string SerializeRecords(const std::vector<Record>& records) {
  std::string out;
  for (const Record& r : records) AppendRecord(r, &out);
  return out;
}

Status ParseRecords(std::string_view data, std::vector<Record>* records) {
  size_t pos = 0;
  while (pos < data.size()) {
    Record record;
    uint64_t key_len = 0;
    if (!storage::GetVarint64(data, &pos, &key_len)) {
      return InvalidArgumentError("record stream truncated (key length)");
    }
    record.key.reserve(key_len);
    for (uint64_t i = 0; i < key_len; ++i) {
      uint64_t v = 0;
      if (!storage::GetVarint64(data, &pos, &v)) {
        return InvalidArgumentError("record stream truncated (key)");
      }
      record.key.push_back(static_cast<uint32_t>(v));
    }
    uint64_t value_len = 0;
    if (!storage::GetVarint64(data, &pos, &value_len)) {
      return InvalidArgumentError("record stream truncated (value length)");
    }
    record.value.reserve(value_len);
    for (uint64_t i = 0; i < value_len; ++i) {
      uint64_t v = 0;
      if (!storage::GetVarint64(data, &pos, &v)) {
        return InvalidArgumentError("record stream truncated (value)");
      }
      record.value.push_back(static_cast<uint32_t>(v));
    }
    records->push_back(std::move(record));
  }
  return Status::Ok();
}

Status WriteRecordFile(const std::string& path,
                       const std::vector<Record>& records, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->WriteFile(path, SerializeRecords(records));
}

StatusOr<std::vector<Record>> ReadRecordFile(const std::string& path,
                                             Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string data;
  S2RDF_RETURN_IF_ERROR(env->ReadFile(path, &data));
  std::vector<Record> records;
  S2RDF_RETURN_IF_ERROR(ParseRecords(data, &records));
  return records;
}

}  // namespace s2rdf::mapreduce
