#ifndef S2RDF_MAPREDUCE_EXTERNAL_SORT_H_
#define S2RDF_MAPREDUCE_EXTERNAL_SORT_H_

#include <cstdint>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "mapreduce/record.h"

// Disk-backed merge sort for record files: the shuffle-sort stage of the
// mini MapReduce runtime. Records are sorted by key (value as
// tie-breaker). When the input exceeds `max_records_in_memory` it is
// split into sorted runs on disk and k-way merged, like Hadoop's
// spill-and-merge.

namespace s2rdf::mapreduce {

struct SortStats {
  uint64_t records = 0;
  uint64_t runs = 0;           // 1 when the input fit in memory.
  uint64_t spilled_bytes = 0;  // Run files written during the sort.
};

// Sorts the record file at `input_path` into `output_path`. `work_dir`
// hosts temporary run files. `env` is the file-I/O environment
// (Env::Default() when null).
StatusOr<SortStats> SortRecordFile(const std::string& input_path,
                                   const std::string& output_path,
                                   const std::string& work_dir,
                                   uint64_t max_records_in_memory,
                                   Env* env = nullptr);

}  // namespace s2rdf::mapreduce

#endif  // S2RDF_MAPREDUCE_EXTERNAL_SORT_H_
