#ifndef S2RDF_MAPREDUCE_JOB_H_
#define S2RDF_MAPREDUCE_JOB_H_

#include <functional>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "mapreduce/record.h"

// A miniature MapReduce runtime: map -> partition -> sort -> reduce with
// every stage boundary materialized on disk. This reproduces — for real,
// through actual file I/O and external sorting — the execution model
// whose per-job latency the paper blames for SHARD's and PigSPARQL's
// non-interactive runtimes. Job startup/teardown latency (YARN container
// scheduling etc.) obviously has no local equivalent; it is modeled as a
// configurable constant that harnesses add per executed job.

namespace s2rdf::mapreduce {

struct JobConfig {
  // Directory for spill/shuffle files; must exist.
  std::string work_dir;
  // Number of reduce partitions ("cluster width").
  int num_reducers = 4;
  // Spill threshold of the shuffle sort.
  uint64_t max_records_in_memory = 1u << 20;
  // File-I/O environment for all stage-boundary reads and writes
  // (Env::Default() when null); fault-injection tests substitute their
  // own so crashes mid-shuffle are covered like storage writes.
  Env* env = nullptr;
};

struct JobMetrics {
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t shuffle_bytes = 0;  // Bytes written to shuffle partitions.
  uint64_t spill_bytes = 0;    // Extra run files during external sort.
  uint64_t reduce_input_records = 0;
  uint64_t reduce_output_records = 0;

  JobMetrics& operator+=(const JobMetrics& other) {
    map_input_records += other.map_input_records;
    map_output_records += other.map_output_records;
    shuffle_bytes += other.shuffle_bytes;
    spill_bytes += other.spill_bytes;
    reduce_input_records += other.reduce_input_records;
    reduce_output_records += other.reduce_output_records;
    return *this;
  }
};

// Emits zero or more intermediate records for one input record.
using Mapper = std::function<void(const Record& input,
                                  std::vector<Record>* out)>;

// Receives one key group (all records sharing `key`, sorted) and emits
// output records.
using Reducer = std::function<void(const std::vector<uint32_t>& key,
                                   const std::vector<Record>& group,
                                   std::vector<Record>* out)>;

// Runs one MapReduce job over `input_paths` (record files), writing the
// reduce output to `output_path`. Each stage boundary goes through disk:
// map outputs are hash-partitioned into per-reducer shuffle files, each
// partition is externally sorted, and sorted groups stream through the
// reducer.
StatusOr<JobMetrics> RunJob(const JobConfig& config,
                            const std::vector<std::string>& input_paths,
                            const Mapper& mapper, const Reducer& reducer,
                            const std::string& output_path);

}  // namespace s2rdf::mapreduce

#endif  // S2RDF_MAPREDUCE_JOB_H_
