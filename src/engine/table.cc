#include "engine/table.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace s2rdf::engine {

Table::Table(std::vector<std::string> column_names)
    : column_names_(std::move(column_names)),
      columns_(column_names_.size()) {}

int Table::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Table::AdoptColumns(std::vector<std::vector<TermId>> columns) {
  S2RDF_DCHECK(columns.size() == column_names_.size());
  num_rows_ = columns.empty() ? 0 : columns[0].size();
  for ([[maybe_unused]] const auto& col : columns) {
    S2RDF_DCHECK(col.size() == num_rows_);
  }
  columns_ = std::move(columns);
}

void Table::AppendRow(const std::vector<TermId>& values) {
  S2RDF_DCHECK(values.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].push_back(values[i]);
  }
  ++num_rows_;
}

void Table::AppendRow(std::initializer_list<TermId> values) {
  S2RDF_DCHECK(values.size() == columns_.size());
  size_t i = 0;
  for (TermId v : values) columns_[i++].push_back(v);
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& source, size_t row) {
  S2RDF_DCHECK(source.NumColumns() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].push_back(source.columns_[i][row]);
  }
  ++num_rows_;
}

void Table::AppendGather(const Table& source, const uint32_t* rows,
                         size_t count) {
  S2RDF_DCHECK(source.NumColumns() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const TermId* src = source.columns_[c].data();
    auto& dst = columns_[c];
    size_t base = dst.size();
    dst.resize(base + count);
    TermId* out = dst.data() + base;
    for (size_t i = 0; i < count; ++i) out[i] = src[rows[i]];
  }
  num_rows_ += count;
}

void Table::AppendGather(const Table& source,
                         const std::vector<int>& source_cols,
                         const uint32_t* rows, size_t count) {
  S2RDF_DCHECK(source_cols.size() == columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const TermId* src = source.columns_[source_cols[c]].data();
    auto& dst = columns_[c];
    size_t base = dst.size();
    dst.resize(base + count);
    TermId* out = dst.data() + base;
    for (size_t i = 0; i < count; ++i) out[i] = src[rows[i]];
  }
  num_rows_ += count;
}

void Table::AppendRange(const Table& source, size_t begin, size_t end) {
  S2RDF_DCHECK(source.NumColumns() == columns_.size());
  S2RDF_DCHECK(begin <= end && end <= source.NumRows());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const auto& src = source.columns_[c];
    columns_[c].insert(columns_[c].end(), src.begin() + begin,
                       src.begin() + end);
  }
  num_rows_ += end - begin;
}

void Table::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

void Table::SetColumnName(size_t i, std::string name) {
  S2RDF_DCHECK(i < column_names_.size());
  column_names_[i] = std::move(name);
}

Table Table::WithColumnNames(std::vector<std::string> names) const {
  S2RDF_CHECK(names.size() == column_names_.size());
  Table out = *this;
  out.column_names_ = std::move(names);
  return out;
}

void Table::SortRowsCanonical() {
  std::vector<size_t> order(num_rows_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    for (const auto& col : columns_) {
      if (col[a] != col[b]) return col[a] < col[b];
    }
    return false;
  });
  for (auto& col : columns_) {
    std::vector<TermId> sorted(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) sorted[i] = col[order[i]];
    col = std::move(sorted);
  }
}

bool Table::SameBag(const Table& a, const Table& b) {
  if (a.column_names_ != b.column_names_) return false;
  if (a.num_rows_ != b.num_rows_) return false;
  Table sa = a;
  Table sb = b;
  sa.SortRowsCanonical();
  sb.SortRowsCanonical();
  return sa.columns_ == sb.columns_;
}

std::string Table::DebugString(const rdf::Dictionary* dict,
                               size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i > 0) out += " | ";
    out += column_names_[i];
  }
  out += "\n";
  size_t shown = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      TermId id = columns_[c][r];
      if (id == kNullTermId) {
        out += "NULL";
      } else if (dict != nullptr) {
        out += dict->Decode(id);
      } else {
        out += std::to_string(id);
      }
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace s2rdf::engine
