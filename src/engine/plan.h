#ifndef S2RDF_ENGINE_PLAN_H_
#define S2RDF_ENGINE_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/aggregate.h"
#include "engine/operators.h"
#include "engine/table.h"

// Physical query plans. The SPARQL compiler in src/core lowers algebra
// trees to this IR; ExecutePlan interprets it over a table provider
// (usually a storage Catalog or an in-memory layout map). The IR also
// renders itself as the SQL S2RDF would have sent to Spark (ToSql), which
// is how the paper's Figs. 6/7/11/12 are reproduced in examples/.

namespace s2rdf::engine {

struct PlanNode;
using PlanPtr = std::unique_ptr<PlanNode>;

struct PlanNode {
  enum class Kind {
    kScan,      // Base-table scan with selections + projections.
    kJoin,      // Natural inner join of left/right.
    kLeftJoin,  // Natural left outer join (OPTIONAL), optional filter.
    kUnion,     // Bag union of left/right.
    kFilter,    // FILTER over left.
    kProject,   // Column projection of left.
    kDistinct,  // Duplicate elimination of left.
    kOrderBy,   // Sort of left.
    kSlice,     // OFFSET/LIMIT of left.
    kAggregate, // GROUP BY + aggregates of left (SPARQL 1.1).
    kInlineData,// VALUES block: literal solution rows.
    kEmpty,     // Statically-empty result (SF = 0 shortcut).
    kSemiJoin,  // Left semi join: left rows with a match in right.
  };

  // Physical algorithm for a kJoin node; the optimizer picks per join.
  enum class JoinAlgo {
    kHash,       // Build on right, probe with left (the default).
    kSortMerge,  // Sort both sides on the shared columns, merge.
  };

  Kind kind;

  // kScan.
  std::string table_name;
  // (base column name, canonical constant term) equality selections.
  std::vector<std::pair<std::string, std::string>> selections;
  // (base column name, base column name) equal-value selections.
  std::vector<std::pair<std::string, std::string>> equal_selections;
  // Optional row-filter bitmap over the scanned table (bit-vector ExtVP
  // execution); `row_filter_label` names it in renderings.
  std::shared_ptr<const Bitmap> row_filter;
  std::string row_filter_label;
  // (base column name, output variable) projections.
  std::vector<std::pair<std::string, std::string>> projections;
  // Provenance of the table choice (Algorithm 1), carried for EXPLAIN
  // ANALYZE: layout family ("ExtVP", "VP", "TT", "ExtVP-bitmap"), the
  // catalog selectivity factor, and whether quarantine degraded the
  // choice to a superset table. Purely observational — execution
  // ignores these.
  std::string scan_layout;
  double scan_sf = 1.0;
  bool scan_degraded = false;

  // kJoin: physical algorithm.
  JoinAlgo join_algo = JoinAlgo::kHash;

  // Optimizer estimates, carried for EXPLAIN; < 0 means "not set".
  // Purely observational — execution ignores these.
  double estimated_rows = -1.0;
  double estimated_cost = -1.0;

  // kFilter / kLeftJoin condition.
  ExprPtr filter;

  // kProject.
  std::vector<std::string> columns;

  // kOrderBy.
  std::vector<SortKey> sort_keys;

  // kSlice.
  uint64_t offset = 0;
  uint64_t limit = kNoLimit;

  // kAggregate.
  std::vector<std::string> group_keys;
  std::vector<AggregateSpec> aggregates;

  // kInlineData: rows of canonical terms aligned to `columns`.
  std::vector<std::vector<std::string>> inline_rows;

  // kEmpty: schema of the (empty) result.
  std::vector<std::string> empty_columns;

  PlanPtr left;
  PlanPtr right;

  static PlanPtr Scan(
      std::string table_name,
      std::vector<std::pair<std::string, std::string>> sels,
      std::vector<std::pair<std::string, std::string>> projs,
      std::vector<std::pair<std::string, std::string>> equal_sels = {});
  static PlanPtr Join(PlanPtr left, PlanPtr right);
  static PlanPtr SemiJoinNode(PlanPtr left, PlanPtr right);
  static PlanPtr LeftJoin(PlanPtr left, PlanPtr right, ExprPtr condition);
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr FilterNode(PlanPtr input, ExprPtr condition);
  static PlanPtr ProjectNode(PlanPtr input, std::vector<std::string> columns);
  static PlanPtr DistinctNode(PlanPtr input);
  static PlanPtr OrderByNode(PlanPtr input, std::vector<SortKey> keys);
  static PlanPtr SliceNode(PlanPtr input, uint64_t offset, uint64_t limit);
  static PlanPtr AggregateNode(PlanPtr input,
                               std::vector<std::string> group_keys,
                               std::vector<AggregateSpec> aggregates);
  static PlanPtr InlineDataNode(std::vector<std::string> columns,
                                std::vector<std::vector<std::string>> rows);
  static PlanPtr Empty(std::vector<std::string> columns);

  // Human-readable operator tree.
  std::string ToString(int indent = 0) const;

  // The equivalent Spark-SQL-style statement (SELECT ... FROM ... JOIN).
  std::string ToSql() const;
};

// Resolves catalog table names to tables. Returns nullptr for unknown
// names (ExecutePlan turns that into a NotFound error).
using TableProvider =
    std::function<const Table*(const std::string& table_name)>;

// Interprets `plan` bottom-up. The dictionary is mutable because
// aggregates mint new literals (counts, sums).
StatusOr<Table> ExecutePlan(const PlanNode& plan, const TableProvider& tables,
                            rdf::Dictionary* dict, ExecContext* ctx);

// FNV-1a hash of the rendered plan tree — a stable fingerprint for
// telling plans apart in /debug/queries and traces.
uint64_t PlanFingerprint(const PlanNode& plan);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PLAN_H_
