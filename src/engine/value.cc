#include "engine/value.h"

#include "common/strings.h"
#include "rdf/term.h"

namespace s2rdf::engine {

namespace {

bool IsNumericXsd(std::string_view datatype) {
  return EndsWith(datatype, "#integer") || EndsWith(datatype, "#int") ||
         EndsWith(datatype, "#long") || EndsWith(datatype, "#short") ||
         EndsWith(datatype, "#byte") || EndsWith(datatype, "#decimal") ||
         EndsWith(datatype, "#double") || EndsWith(datatype, "#float") ||
         EndsWith(datatype, "#nonNegativeInteger") ||
         EndsWith(datatype, "#positiveInteger") ||
         EndsWith(datatype, "#unsignedInt") ||
         EndsWith(datatype, "#unsignedLong");
}

int KindRank(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kBlank:
      return 1;
    case ValueKind::kIri:
      return 2;
    case ValueKind::kString:
      return 3;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 4;
    case ValueKind::kBool:
      return 5;
  }
  return 6;
}

}  // namespace

Value ValueFromCanonicalTerm(std::string_view canonical) {
  Value v;
  if (canonical.empty()) return v;
  StatusOr<rdf::Term> term = rdf::Term::Parse(canonical);
  if (!term.ok()) {
    v.kind = ValueKind::kString;
    v.text = std::string(canonical);
    return v;
  }
  switch (term->kind()) {
    case rdf::TermKind::kIri:
      v.kind = ValueKind::kIri;
      v.text = term->value();
      return v;
    case rdf::TermKind::kBlankNode:
      v.kind = ValueKind::kBlank;
      v.text = term->value();
      return v;
    case rdf::TermKind::kLiteral:
      break;
  }
  const std::string& lexical = term->value();
  const std::string& datatype = term->datatype();
  v.text = lexical;
  if (datatype.empty() || !term->language().empty()) {
    // Plain or language-tagged literal: SPARQL treats untyped numerics as
    // strings; WatDiv generates typed numerics where ordering matters.
    v.kind = ValueKind::kString;
    return v;
  }
  if (EndsWith(datatype, "#boolean")) {
    v.kind = ValueKind::kBool;
    v.bool_value = (lexical == "true" || lexical == "1");
    return v;
  }
  if (IsNumericXsd(datatype)) {
    long long i = 0;
    if (ParseInt64(lexical, &i)) {
      v.kind = ValueKind::kInt;
      v.int_value = i;
      return v;
    }
    double d = 0.0;
    if (ParseDouble(lexical, &d)) {
      v.kind = ValueKind::kDouble;
      v.double_value = d;
      return v;
    }
  }
  v.kind = ValueKind::kString;
  return v;
}

int CompareValues(const Value& a, const Value& b, bool* comparable) {
  *comparable = true;
  if (a.is_numeric() && b.is_numeric()) {
    double da = a.AsDouble();
    double db = b.AsDouble();
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  if (a.kind != b.kind) {
    // Cross-kind comparison is a SPARQL type error except for equality
    // testing, which callers handle via the returned ordering.
    *comparable = false;
    int ra = KindRank(a.kind);
    int rb = KindRank(b.kind);
    return ra < rb ? -1 : (ra > rb ? 1 : 0);
  }
  switch (a.kind) {
    case ValueKind::kBool:
      return (a.bool_value ? 1 : 0) - (b.bool_value ? 1 : 0);
    case ValueKind::kIri:
    case ValueKind::kBlank:
      // Orderable only for ORDER BY; FILTER < on IRIs is a type error.
      *comparable = false;
      return a.text.compare(b.text) < 0   ? -1
             : a.text.compare(b.text) > 0 ? 1
                                          : 0;
    default: {
      int c = a.text.compare(b.text);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

}  // namespace s2rdf::engine
