#ifndef S2RDF_ENGINE_PARALLEL_H_
#define S2RDF_ENGINE_PARALLEL_H_

#include <vector>

#include "engine/exec_context.h"
#include "engine/expression.h"
#include "engine/operators.h"
#include "engine/table.h"
#include "rdf/dictionary.h"

// Morsel-driven parallel counterparts of the serial operators — the
// in-process analogue of a Spark stage's parallel tasks. Each helper
// splits its input into row-range morsels executed on the shared
// TaskPool (common/task_pool.h) with the caller participating, and is a
// drop-in replacement for its serial twin:
//
//   - the output table is byte-identical to the serial operator's
//     (morsels are gathered back in input order, dedup keeps first
//     occurrences, the sort merge is stable), and
//   - ExecMetrics accounting is byte-identical: all metrics are written
//     by the calling thread using the same formulas as the serial path;
//     workers never touch the context's metrics.
//
// The serial operators are the row-at-a-time *reference*; the morsel
// bodies here run the vectorized kernels (selection vectors over
// columnar chunks, batched column gathers — see ScanSelectProjectChunk
// in operators.h), so the parallel path wins even before thread count
// multiplies it.
//
// Interrupt discipline: workers poll ctx->InterruptRequested() (read
// only) every kInterruptCheckRows rows and bail; the calling thread
// records the reason via CheckInterrupt() after the ParallelFor
// returns, so abort latency is bounded by one morsel. An interrupted
// helper skips the gather and returns an empty table — ExecutePlan
// discards partial results anyway.
//
// Small inputs fall through to the serial operator: below the parallel
// threshold the task hand-off costs more than it saves.

namespace s2rdf::engine {

// Morsel-size auto-tune bounds. A morsel targets kMorselTargetBytes of
// ids (≈ the private L2 slice a worker can keep hot), clamped so tiny
// rows never make morsels outnumber the interrupt cadence usefully and
// wide rows never degenerate to per-row tasks.
inline constexpr size_t kMinMorselRows = 1024;
inline constexpr size_t kMaxMorselRows = 65536;
inline constexpr size_t kMorselTargetBytes = 256 * 1024;

// Default rows below which operators run serially.
inline constexpr size_t kParallelRowThreshold = 4096;

// Rows per morsel for an input of `rows` x `columns` ids. Honors the
// per-query override (ctx->morsel_rows, from QueryOptions::morsel_rows)
// when positive; otherwise tunes to the byte target above and caps at
// rows / (4 x pool width) so dynamic load balancing always has several
// morsels per worker.
size_t MorselRowsFor(size_t rows, size_t columns, const ExecContext* ctx);

// Serial-fallback row threshold: ctx->parallel_threshold_rows when
// positive, else kParallelRowThreshold.
size_t ParallelThreshold(const ExecContext* ctx);

// ScanSelectProject over row-range morsels running the vectorized
// chunk kernel.
Table ParallelScanSelectProject(const Table& base, const ScanSpec& spec,
                                ExecContext* ctx);

// FILTER over row-range morsels: each morsel evaluates the expression
// into a selection vector, the gather batch-appends survivors in input
// order — byte-identical to the serial Filter.
Table ParallelFilter(const Table& t, const Expr& expr,
                     const rdf::Dictionary& dict, ExecContext* ctx);

// Distinct via parallel row hashing (column-at-a-time), hash-partitioned
// per-worker dedup, and an input-order merge of the surviving row
// indices.
Table ParallelDistinct(const Table& t, ExecContext* ctx);

// OrderBy via parallel decode-cache warmup, parallel chunk sorts, and a
// stable k-way merge (ties resolve to the earlier chunk, reproducing
// the serial stable_sort exactly).
Table ParallelOrderBy(const Table& t, const std::vector<SortKey>& keys,
                      const rdf::Dictionary& dict, ExecContext* ctx);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PARALLEL_H_
