#ifndef S2RDF_ENGINE_PARALLEL_H_
#define S2RDF_ENGINE_PARALLEL_H_

#include <vector>

#include "engine/exec_context.h"
#include "engine/operators.h"
#include "engine/table.h"
#include "rdf/dictionary.h"

// Morsel-driven parallel counterparts of the serial operators — the
// in-process analogue of a Spark stage's parallel tasks. Each helper
// splits its input into row-range morsels executed on the shared
// TaskPool (common/task_pool.h) with the caller participating, and is a
// drop-in replacement for its serial twin:
//
//   - the output table is byte-identical to the serial operator's
//     (morsels are gathered back in input order, dedup keeps first
//     occurrences, the sort merge is stable), and
//   - ExecMetrics accounting is byte-identical: all metrics are written
//     by the calling thread using the same formulas as the serial path;
//     workers never touch the context's metrics.
//
// Interrupt discipline: workers poll ctx->InterruptRequested() (read
// only) every kInterruptCheckRows rows and bail; the calling thread
// records the reason via CheckInterrupt() after the ParallelFor
// returns, so abort latency is bounded by one morsel. An interrupted
// helper skips the gather and returns an empty table — ExecutePlan
// discards partial results anyway.
//
// Small inputs fall through to the serial operator: below
// kParallelRowThreshold rows the task hand-off costs more than it
// saves.

namespace s2rdf::engine {

// Rows per morsel. Large enough that a morsel amortizes the queue
// hand-off, small enough that a deadline aborts promptly and morsel
// counts exceed worker counts (dynamic load balancing).
inline constexpr size_t kMorselRows = 16384;

// Inputs below this row count run serially.
inline constexpr size_t kParallelRowThreshold = 4096;

// ScanSelectProject over row-range morsels.
Table ParallelScanSelectProject(const Table& base, const ScanSpec& spec,
                                ExecContext* ctx);

// Distinct via parallel row hashing, hash-partitioned per-worker dedup,
// and an input-order merge of the surviving row indices.
Table ParallelDistinct(const Table& t, ExecContext* ctx);

// OrderBy via parallel decode-cache warmup, parallel chunk sorts, and a
// stable k-way merge (ties resolve to the earlier chunk, reproducing
// the serial stable_sort exactly).
Table ParallelOrderBy(const Table& t, const std::vector<SortKey>& keys,
                      const rdf::Dictionary& dict, ExecContext* ctx);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PARALLEL_H_
