#include "engine/profile.h"

#include <cstdio>

namespace s2rdf::engine {

namespace {

std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One complete ("ph":"X") trace event. ts/dur are microseconds.
void AppendEvent(std::string* out, const std::string& name, double ts_us,
                 double dur_us, int tid, const std::string& args_json) {
  if (!out->empty() && out->back() == '}') *out += ",\n";
  *out += "{\"name\":\"" + JsonEscape(name) +
          "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
          ",\"ts\":" + Fmt("%.3f", ts_us) + ",\"dur\":" + Fmt("%.3f", dur_us) +
          ",\"args\":{" + args_json + "}}";
}

std::string MetricsArgs(const ExecMetrics& m) {
  std::string out;
  auto add = [&out](const char* key, uint64_t v) {
    if (v == 0) return;
    if (!out.empty()) out += ",";
    out += "\"" + std::string(key) + "\":" + std::to_string(v);
  };
  add("input_tuples", m.input_tuples);
  add("intermediate_tuples", m.intermediate_tuples);
  add("join_comparisons", m.join_comparisons);
  add("shuffled_tuples", m.shuffled_tuples);
  add("output_tuples", m.output_tuples);
  add("peak_table_bytes", m.peak_table_bytes);
  return out;
}

}  // namespace

std::string RenderProfileText(const QueryProfile& profile) {
  std::string out;
  if (!profile.trace_id.empty()) {
    out += "trace: " + profile.trace_id + "\n";
  }
  out += "stages: parse=" + Fmt("%.3f", profile.parse_ms) +
         " ms  compile=" + Fmt("%.3f", profile.compile_ms) +
         " ms  exec=" + Fmt("%.3f", profile.exec_ms) +
         " ms  total=" + Fmt("%.3f", profile.total_ms) + " ms\n";
  char line[512];
  for (const OperatorProfile& op : profile.operators) {
    std::snprintf(line, sizeof(line), "%*s%s  rows=%llu  %.3f ms",
                  op.depth * 2, "", op.label.c_str(),
                  static_cast<unsigned long long>(op.output_rows), op.millis);
    out += line;
    if (op.estimated_rows >= 0.0) {
      // q-error = max(est/actual, actual/est) with both clamped to >= 1;
      // the standard symmetric estimation-quality measure.
      const double est = op.estimated_rows < 1.0 ? 1.0 : op.estimated_rows;
      const double act =
          op.output_rows < 1 ? 1.0 : static_cast<double>(op.output_rows);
      const double q = est > act ? est / act : act / est;
      out += "  est=" + Fmt("%.4g", op.estimated_rows) +
             " q=" + Fmt("%.3g", q);
    }
    if (!op.table.empty()) {
      out += "  [layout=" + (op.layout.empty() ? "?" : op.layout) +
             " sf=" + Fmt("%.4g", op.sf);
      if (op.degraded) out += " degraded";
      out += "]";
    }
    const ExecMetrics& d = op.delta;
    if (d.input_tuples != 0) out += "  in=" + std::to_string(d.input_tuples);
    if (d.join_comparisons != 0) {
      out += "  cmp=" + std::to_string(d.join_comparisons);
    }
    if (d.shuffled_tuples != 0) {
      out += "  shuffled=" + std::to_string(d.shuffled_tuples);
    }
    out += "\n";
  }
  if (!profile.tasks.empty()) {
    out += "parallel tasks: " + std::to_string(profile.tasks.size()) + "\n";
  }
  out += "totals: " + profile.totals.ToString() + "\n";
  return out;
}

std::string RenderTraceJson(const QueryProfile& profile,
                            const std::string& name) {
  std::string events;
  // Stage lanes first. Offsets are cumulative: the three stages run
  // back-to-back on the query thread.
  double ts = 0.0;
  std::string parse_args = "\"query\":\"" + JsonEscape(name) + "\"";
  if (!profile.trace_id.empty()) {
    parse_args += ",\"trace_id\":\"" + JsonEscape(profile.trace_id) + "\"";
  }
  AppendEvent(&events, "parse", ts, profile.parse_ms * 1000.0, 0, parse_args);
  ts += profile.parse_ms * 1000.0;
  AppendEvent(&events, "compile", ts, profile.compile_ms * 1000.0, 0, "");
  for (const OperatorProfile& op : profile.operators) {
    std::string args = "\"rows\":" + std::to_string(op.output_rows) +
                       ",\"depth\":" + std::to_string(op.depth);
    if (op.estimated_rows >= 0.0) {
      args += ",\"est_rows\":" + Fmt("%.6g", op.estimated_rows);
    }
    if (!op.table.empty()) {
      args += ",\"table\":\"" + JsonEscape(op.table) + "\",\"layout\":\"" +
              JsonEscape(op.layout) + "\",\"sf\":" + Fmt("%.6g", op.sf);
      if (op.degraded) args += ",\"degraded\":true";
    }
    std::string metrics = MetricsArgs(op.delta);
    if (!metrics.empty()) args += "," + metrics;
    AppendEvent(&events, op.label, op.start_ms * 1000.0, op.millis * 1000.0,
                0, args);
  }
  // Parallel tasks on per-partition lanes (tid = partition index + 1):
  // the lane shows the plan's partition of work, not pool scheduling.
  for (const TaskSpan& task : profile.tasks) {
    AppendEvent(&events, task.label, task.start_ms * 1000.0,
                task.millis * 1000.0, static_cast<int>(task.index) + 1,
                "\"index\":" + std::to_string(task.index));
  }
  return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" + events + "\n]}\n";
}

}  // namespace s2rdf::engine
