#include "engine/plan.h"

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "common/hash.h"
#include "common/task_pool.h"
#include "engine/parallel.h"
#include "engine/parallel_join.h"

namespace s2rdf::engine {

PlanPtr PlanNode::Scan(
    std::string table_name,
    std::vector<std::pair<std::string, std::string>> sels,
    std::vector<std::pair<std::string, std::string>> projs,
    std::vector<std::pair<std::string, std::string>> equal_sels) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kScan;
  n->table_name = std::move(table_name);
  n->selections = std::move(sels);
  n->projections = std::move(projs);
  n->equal_selections = std::move(equal_sels);
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

PlanPtr PlanNode::SemiJoinNode(PlanPtr left, PlanPtr right) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kSemiJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

PlanPtr PlanNode::LeftJoin(PlanPtr left, PlanPtr right, ExprPtr condition) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kLeftJoin;
  n->left = std::move(left);
  n->right = std::move(right);
  n->filter = std::move(condition);
  return n;
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kUnion;
  n->left = std::move(left);
  n->right = std::move(right);
  return n;
}

PlanPtr PlanNode::FilterNode(PlanPtr input, ExprPtr condition) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kFilter;
  n->left = std::move(input);
  n->filter = std::move(condition);
  return n;
}

PlanPtr PlanNode::ProjectNode(PlanPtr input, std::vector<std::string> columns) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kProject;
  n->left = std::move(input);
  n->columns = std::move(columns);
  return n;
}

PlanPtr PlanNode::DistinctNode(PlanPtr input) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kDistinct;
  n->left = std::move(input);
  return n;
}

PlanPtr PlanNode::OrderByNode(PlanPtr input, std::vector<SortKey> keys) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kOrderBy;
  n->left = std::move(input);
  n->sort_keys = std::move(keys);
  return n;
}

PlanPtr PlanNode::SliceNode(PlanPtr input, uint64_t offset, uint64_t limit) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kSlice;
  n->left = std::move(input);
  n->offset = offset;
  n->limit = limit;
  return n;
}

PlanPtr PlanNode::AggregateNode(PlanPtr input,
                                std::vector<std::string> group_keys,
                                std::vector<AggregateSpec> aggregates) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kAggregate;
  n->left = std::move(input);
  n->group_keys = std::move(group_keys);
  n->aggregates = std::move(aggregates);
  return n;
}

PlanPtr PlanNode::InlineDataNode(
    std::vector<std::string> columns,
    std::vector<std::vector<std::string>> rows) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kInlineData;
  n->columns = std::move(columns);
  n->inline_rows = std::move(rows);
  return n;
}

PlanPtr PlanNode::Empty(std::vector<std::string> columns) {
  auto n = std::make_unique<PlanNode>();
  n->kind = Kind::kEmpty;
  n->empty_columns = std::move(columns);
  return n;
}

namespace {
std::string Indent(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

// Renders the optimizer's row estimate compactly; "" when unset.
std::string EstSuffix(double estimated_rows) {
  if (estimated_rows < 0.0) return "";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "  est=%.6g", estimated_rows);
  return buf;
}
}  // namespace

std::string PlanNode::ToString(int indent) const {
  std::string out = Indent(indent);
  switch (kind) {
    case Kind::kScan: {
      out += "Scan(" + table_name;
      for (const auto& [col, val] : selections) {
        out += ", " + col + "=" + val;
      }
      if (row_filter != nullptr) out += ", bitmap=" + row_filter_label;
      out += ") -> [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i].first + " AS " + projections[i].second;
      }
      out += "]" + EstSuffix(estimated_rows) + "\n";
      return out;
    }
    case Kind::kJoin:
      out += (join_algo == JoinAlgo::kSortMerge ? "MergeJoin" : "Join") +
             EstSuffix(estimated_rows) + "\n";
      break;
    case Kind::kSemiJoin:
      out += "SemiJoinReduce" + EstSuffix(estimated_rows) + "\n";
      break;
    case Kind::kLeftJoin:
      out += "LeftJoin";
      if (filter != nullptr) out += " ON " + filter->ToString();
      out += "\n";
      break;
    case Kind::kUnion:
      out += "Union\n";
      break;
    case Kind::kFilter:
      out += "Filter " + filter->ToString() + "\n";
      break;
    case Kind::kProject: {
      out += "Project [";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += columns[i];
      }
      out += "]\n";
      break;
    }
    case Kind::kDistinct:
      out += "Distinct\n";
      break;
    case Kind::kOrderBy: {
      out += "OrderBy [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += sort_keys[i].column + (sort_keys[i].ascending ? " ASC" : " DESC");
      }
      out += "]\n";
      break;
    }
    case Kind::kSlice:
      out += "Slice offset=" + std::to_string(offset) +
             (limit == kNoLimit ? "" : " limit=" + std::to_string(limit)) +
             "\n";
      break;
    case Kind::kAggregate: {
      out += "Aggregate [";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_keys[i];
      }
      out += "] -> [";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        out += aggregates[i].output_name;
      }
      out += "]\n";
      break;
    }
    case Kind::kInlineData:
      out += "InlineData [" + std::to_string(inline_rows.size()) +
             " rows]\n";
      return out;
    case Kind::kEmpty:
      out += "Empty\n";
      return out;
  }
  if (left != nullptr) out += left->ToString(indent + 1);
  if (right != nullptr) out += right->ToString(indent + 1);
  return out;
}

std::string PlanNode::ToSql() const {
  switch (kind) {
    case Kind::kScan: {
      std::string sql = "SELECT ";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += projections[i].first + " AS " + projections[i].second;
      }
      sql += " FROM " + table_name;
      bool have_where = false;
      if (!selections.empty()) {
        sql += " WHERE ";
        have_where = true;
        for (size_t i = 0; i < selections.size(); ++i) {
          if (i > 0) sql += " AND ";
          sql += selections[i].first + " = '" + selections[i].second + "'";
        }
      }
      if (row_filter != nullptr) {
        sql += have_where ? " AND " : " WHERE ";
        sql += "rowid IN BITMAP(" + row_filter_label + ")";
      }
      return sql;
    }
    case Kind::kJoin:
      return "(" + left->ToSql() + ")\n  NATURAL JOIN\n(" + right->ToSql() +
             ")";
    case Kind::kSemiJoin:
      return "(" + left->ToSql() + ")\n  LEFT SEMI JOIN\n(" +
             right->ToSql() + ")";
    case Kind::kLeftJoin:
      return "(" + left->ToSql() + ")\n  NATURAL LEFT OUTER JOIN\n(" +
             right->ToSql() + ")" +
             (filter != nullptr ? " ON " + filter->ToString() : "");
    case Kind::kUnion:
      return "(" + left->ToSql() + ")\nUNION ALL\n(" + right->ToSql() + ")";
    case Kind::kFilter:
      return "SELECT * FROM (" + left->ToSql() + ") WHERE " +
             filter->ToString();
    case Kind::kProject: {
      std::string sql = "SELECT ";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += columns[i];
      }
      return sql + " FROM (" + left->ToSql() + ")";
    }
    case Kind::kDistinct:
      return "SELECT DISTINCT * FROM (" + left->ToSql() + ")";
    case Kind::kOrderBy: {
      std::string sql = left->ToSql() + "\nORDER BY ";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += sort_keys[i].column + (sort_keys[i].ascending ? "" : " DESC");
      }
      return sql;
    }
    case Kind::kSlice: {
      std::string sql = left->ToSql();
      if (limit != kNoLimit) sql += "\nLIMIT " + std::to_string(limit);
      if (offset > 0) sql += "\nOFFSET " + std::to_string(offset);
      return sql;
    }
    case Kind::kAggregate: {
      auto fn_name = [](AggregateSpec::Fn fn) {
        switch (fn) {
          case AggregateSpec::Fn::kCountStar:
            return "COUNT(*)";
          case AggregateSpec::Fn::kCount:
            return "COUNT";
          case AggregateSpec::Fn::kSum:
            return "SUM";
          case AggregateSpec::Fn::kAvg:
            return "AVG";
          case AggregateSpec::Fn::kMin:
            return "MIN";
          case AggregateSpec::Fn::kMax:
            return "MAX";
          case AggregateSpec::Fn::kSample:
            return "SAMPLE";
        }
        return "?";
      };
      std::string sql = "SELECT ";
      for (size_t i = 0; i < group_keys.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += group_keys[i];
      }
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0 || !group_keys.empty()) sql += ", ";
        const AggregateSpec& agg = aggregates[i];
        if (agg.fn == AggregateSpec::Fn::kCountStar) {
          sql += "COUNT(*)";
        } else {
          sql += std::string(fn_name(agg.fn)) + "(" +
                 (agg.distinct ? "DISTINCT " : "") + agg.input_var + ")";
        }
        sql += " AS " + agg.output_name;
      }
      sql += " FROM (" + left->ToSql() + ")";
      if (!group_keys.empty()) {
        sql += "\nGROUP BY ";
        for (size_t i = 0; i < group_keys.size(); ++i) {
          if (i > 0) sql += ", ";
          sql += group_keys[i];
        }
      }
      return sql;
    }
    case Kind::kInlineData: {
      std::string sql = "VALUES (";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i > 0) sql += ", ";
        sql += columns[i];
      }
      sql += ") -- " + std::to_string(inline_rows.size()) + " rows";
      return sql;
    }
    case Kind::kEmpty:
      return "SELECT * FROM empty  -- statically empty (SF = 0)";
  }
  return "";
}

namespace {

// Short label of a node for EXPLAIN ANALYZE output.
std::string NodeLabel(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanNode::Kind::kScan:
      return "Scan(" + plan.table_name +
             (plan.row_filter != nullptr
                  ? ", bitmap=" + plan.row_filter_label
                  : "") +
             ")";
    case PlanNode::Kind::kJoin:
      return plan.join_algo == PlanNode::JoinAlgo::kSortMerge ? "MergeJoin"
                                                              : "Join";
    case PlanNode::Kind::kSemiJoin:
      return "SemiJoinReduce";
    case PlanNode::Kind::kLeftJoin:
      return "LeftJoin";
    case PlanNode::Kind::kUnion:
      return "Union";
    case PlanNode::Kind::kFilter:
      return "Filter " + (plan.filter != nullptr ? plan.filter->ToString()
                                                 : std::string());
    case PlanNode::Kind::kProject:
      return "Project";
    case PlanNode::Kind::kDistinct:
      return "Distinct";
    case PlanNode::Kind::kOrderBy:
      return "OrderBy";
    case PlanNode::Kind::kSlice:
      return "Slice";
    case PlanNode::Kind::kAggregate:
      return "Aggregate";
    case PlanNode::Kind::kInlineData:
      return "InlineData";
    case PlanNode::Kind::kEmpty:
      return "Empty";
  }
  return "?";
}

StatusOr<Table> ExecutePlanImpl(const PlanNode& plan,
                                const TableProvider& tables,
                                rdf::Dictionary* dict, ExecContext* ctx,
                                int depth);

// Speedup over serial measured at pool width 4 (bench_parallel, PR 9
// baseline), per operator kind. Scan/filter/join cleared the 1.5x
// floor; the partition passes of distinct/order-by/aggregate pay more
// in merge cost than width-4 parallelism returns, so their fan-out only
// wins on wider pools.
// Measured width-4 speedup of the merge-heavy operators' parallel
// twins (BENCH_parallel.json, PR 9): distinct LOSES at width 4, order
// by and group by roughly break even — their merge step is a serial
// tail that Amdahl charges against the fan-out. Scan/filter/join have
// no comparable tail and keep the seed gating (threshold + estimate
// veto only), so returns 0 here, meaning "not speedup-gated".
double WidthFourSpeedup(PlanNode::Kind kind) {
  switch (kind) {
    case PlanNode::Kind::kDistinct:
      return 0.65;
    case PlanNode::Kind::kOrderBy:
      return 1.0;
    case PlanNode::Kind::kAggregate:
      return 0.9;
    default:
      return 0.0;
  }
}

// Serial-vs-parallel choice for one operator. The exact runtime input
// size gates first (below the threshold the task hand-off costs more
// than it saves); on top of that, the optimizer's row estimate (PR 6
// cost pipeline, carried on the plan node) vetoes the narrow band where
// the input barely clears the threshold but the estimated output is
// tiny — there the partition + gather overhead has nothing to amortize
// against. Finally, for the merge-heavy kinds (distinct, order by,
// group by) a cost gate projects the kind's measured width-4 speedup
// linearly to the actual pool width and refuses the fan-out unless the
// projection clears a 1.1x margin — this is what keeps those operators
// serial on few-core hosts where they measurably lose. The choice never affects
// results: parallel operators are byte-identical to their serial twins.
bool UseParallel(const PlanNode& plan, const ExecContext* ctx,
                 size_t input_rows) {
  if (ctx == nullptr || !ctx->parallel_execution) return false;
  const size_t threshold = ParallelThreshold(ctx);
  if (input_rows < threshold) return false;
  if (plan.estimated_rows >= 0.0 &&
      plan.estimated_rows < static_cast<double>(threshold) &&
      input_rows < 2 * threshold) {
    return false;
  }
  const double speedup_at_four = WidthFourSpeedup(plan.kind);
  if (speedup_at_four > 0.0) {
    const double width =
        static_cast<double>(TaskPool::Shared()->ParallelismWidth());
    const double projected = speedup_at_four * width / 4.0;
    if (projected <= 1.1) return false;
  }
  return true;
}

// Wraps one child execution with profiling bookkeeping.
StatusOr<Table> ExecuteChild(const PlanNode& plan, const TableProvider& tables,
                             rdf::Dictionary* dict, ExecContext* ctx,
                             int depth) {
  return ExecutePlanImpl(plan, tables, dict, ctx, depth);
}

StatusOr<Table> ExecutePlanImpl(const PlanNode& plan,
                                const TableProvider& tables,
                                rdf::Dictionary* dict, ExecContext* ctx,
                                int depth) {
  // Operator-boundary deadline/cancellation check: every node entry
  // (and therefore every child hand-off) observes the interrupt state.
  if (ctx != nullptr && ctx->CheckInterrupt()) return ctx->interrupt_status;
  const bool profiling = ctx != nullptr && ctx->collect_profile;
  MonotonicTime start{};
  size_t profile_slot = 0;
  ExecMetrics before;
  if (profiling) {
    // Reserve the slot now so entries render in pre-order.
    profile_slot = ctx->profile.size();
    OperatorProfile op;
    op.label = NodeLabel(plan);
    op.depth = depth;
    op.estimated_rows = plan.estimated_rows;
    if (plan.kind == PlanNode::Kind::kScan) {
      op.table = plan.table_name;
      op.layout = plan.scan_layout;
      op.sf = plan.scan_sf;
      op.degraded = plan.scan_degraded;
    }
    before = ctx->metrics;
    start = MonotonicNow();
    op.start_ms = std::chrono::duration<double, std::milli>(
                      start - ctx->profile_origin)
                      .count();
    ctx->profile.push_back(std::move(op));
  }
  // Materialized input bytes still live while this operator produces its
  // output; each case sets it after executing children. Together with
  // the result's own bytes it feeds the peak_table_bytes high-water
  // mark. Base (stored) tables are store-resident, not query
  // allocations, so scans account only their output.
  uint64_t live_input_bytes = 0;
  StatusOr<Table> result = [&]() -> StatusOr<Table> {
  switch (plan.kind) {
    case PlanNode::Kind::kEmpty:
      return Table(plan.empty_columns);
    case PlanNode::Kind::kScan: {
      const Table* base = tables(plan.table_name);
      if (base == nullptr) {
        return NotFoundError("table not found: " + plan.table_name);
      }
      ScanSpec spec;
      for (const auto& [col, val] : plan.selections) {
        int idx = base->ColumnIndex(col);
        if (idx < 0) {
          return InvalidArgumentError("scan selection on unknown column: " +
                                      col);
        }
        std::optional<TermId> id = dict->Find(val);
        if (!id.has_value()) {
          // Constant not in the dataset: no row can match.
          spec.conditions.emplace_back(idx, kNullTermId);
        } else {
          spec.conditions.emplace_back(idx, *id);
        }
      }
      for (const auto& [col_a, col_b] : plan.equal_selections) {
        int ia = base->ColumnIndex(col_a);
        int ib = base->ColumnIndex(col_b);
        if (ia < 0 || ib < 0) {
          return InvalidArgumentError("equal-selection on unknown column");
        }
        spec.equal_columns.emplace_back(ia, ib);
      }
      for (const auto& [col, name] : plan.projections) {
        int idx = base->ColumnIndex(col);
        if (idx < 0) {
          return InvalidArgumentError("scan projection on unknown column: " +
                                      col);
        }
        spec.projections.emplace_back(idx, name);
      }
      if (plan.row_filter != nullptr) {
        if (plan.row_filter->size_bits() != base->NumRows()) {
          return FailedPreconditionError(
              "row-filter bitmap size does not match table " +
              plan.table_name);
        }
        spec.row_filter = plan.row_filter.get();
      }
      if (UseParallel(plan, ctx, base->NumRows())) {
        return ParallelScanSelectProject(*base, spec, ctx);
      }
      return ScanSelectProject(*base, spec, ctx);
    }
    case PlanNode::Kind::kJoin: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      S2RDF_ASSIGN_OR_RETURN(Table r,
                             ExecuteChild(*plan.right, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes() + r.ApproxBytes();
      if (plan.join_algo == PlanNode::JoinAlgo::kSortMerge) {
        // Sort-merge keeps the serial implementation either way; its
        // output is the same bag as HashJoin in a different order.
        return SortMergeJoin(l, r, ctx);
      }
      if (UseParallel(plan, ctx, l.NumRows() + r.NumRows())) {
        return ParallelHashJoin(l, r, ctx);
      }
      return HashJoin(l, r, ctx);
    }
    case PlanNode::Kind::kSemiJoin: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      S2RDF_ASSIGN_OR_RETURN(Table r,
                             ExecuteChild(*plan.right, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes() + r.ApproxBytes();
      std::vector<int> left_keys;
      std::vector<int> right_keys;
      std::vector<int> right_only;
      JoinSharedColumns(l, r, &left_keys, &right_keys, &right_only);
      if (left_keys.size() != 1) {
        return InternalError(
            "semi-join reducer requires exactly one shared column, got " +
            std::to_string(left_keys.size()));
      }
      // Preserves left row order, so wrapping a scan in a reducer never
      // changes the downstream hash-join output sequence.
      return SemiJoin(l, left_keys[0], r, right_keys[0], ctx);
    }
    case PlanNode::Kind::kLeftJoin: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      S2RDF_ASSIGN_OR_RETURN(Table r,
                             ExecuteChild(*plan.right, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes() + r.ApproxBytes();
      return LeftOuterJoin(l, r, plan.filter.get(), *dict, ctx);
    }
    case PlanNode::Kind::kUnion: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      S2RDF_ASSIGN_OR_RETURN(Table r,
                             ExecuteChild(*plan.right, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes() + r.ApproxBytes();
      return UnionAll(l, r, ctx);
    }
    case PlanNode::Kind::kFilter: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes();
      if (UseParallel(plan, ctx, l.NumRows())) {
        return ParallelFilter(l, *plan.filter, *dict, ctx);
      }
      return Filter(l, *plan.filter, *dict, ctx);
    }
    case PlanNode::Kind::kProject: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes();
      return Project(l, plan.columns);
    }
    case PlanNode::Kind::kDistinct: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes();
      if (UseParallel(plan, ctx, l.NumRows())) {
        return ParallelDistinct(l, ctx);
      }
      return Distinct(l, ctx);
    }
    case PlanNode::Kind::kOrderBy: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes();
      if (UseParallel(plan, ctx, l.NumRows())) {
        return ParallelOrderBy(l, plan.sort_keys, *dict, ctx);
      }
      return OrderBy(l, plan.sort_keys, *dict, ctx);
    }
    case PlanNode::Kind::kSlice: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes();
      return Slice(l, plan.offset, plan.limit);
    }
    case PlanNode::Kind::kAggregate: {
      S2RDF_ASSIGN_OR_RETURN(Table l,
                             ExecuteChild(*plan.left, tables, dict, ctx, depth + 1));
      live_input_bytes = l.ApproxBytes();
      if (UseParallel(plan, ctx, l.NumRows())) {
        return ParallelGroupByAggregate(l, plan.group_keys, plan.aggregates,
                                        dict, ctx);
      }
      return GroupByAggregate(l, plan.group_keys, plan.aggregates, dict,
                              ctx);
    }
    case PlanNode::Kind::kInlineData: {
      Table table(plan.columns);
      // Bounded by the VALUES clause in the query text, not by data
      // size, so the interrupt seam is not needed here.
      // s2rdf-lint: allow(interrupt-coverage)
      for (const auto& row : plan.inline_rows) {
        std::vector<TermId> encoded;
        encoded.reserve(row.size());
        // Encode (not Find): a VALUES constant absent from the data is
        // still a valid binding of the inline block.
        for (const std::string& term : row) {
          encoded.push_back(dict->Encode(term));
        }
        table.AppendRow(encoded);
      }
      if (ctx != nullptr) ctx->metrics.intermediate_tuples += table.NumRows();
      return table;
    }
  }
  return InternalError("unreachable plan kind");
  }();
  if (result.ok() && ctx != nullptr) {
    ctx->AccountTableBytes(live_input_bytes + result->ApproxBytes());
  }
  if (profiling) {
    OperatorProfile& op = ctx->profile[profile_slot];
    op.millis = MillisSince(start);
    op.delta = ctx->metrics.DeltaSince(before);
    if (result.ok()) op.output_rows = result->NumRows();
  }
  return result;
}

}  // namespace

StatusOr<Table> ExecutePlan(const PlanNode& plan, const TableProvider& tables,
                            rdf::Dictionary* dict, ExecContext* ctx) {
  if (ctx != nullptr && ctx->collect_profile &&
      ctx->profile_origin == MonotonicTime{}) {
    // Callers that drive ExecutePlan directly (tests, benchmarks) get a
    // usable zero point; core::S2Rdf sets the origin at request start so
    // operator offsets include parse/compile.
    ctx->profile_origin = MonotonicNow();
  }
  StatusOr<Table> result = ExecutePlanImpl(plan, tables, dict, ctx, 0);
  // An operator may have bailed out mid-loop with a partial table;
  // never let that escape as a successful result.
  if (result.ok() && ctx != nullptr && !ctx->interrupt_status.ok()) {
    return ctx->interrupt_status;
  }
  return result;
}

uint64_t PlanFingerprint(const PlanNode& plan) {
  return Fnv1a64(plan.ToString());
}

}  // namespace s2rdf::engine
