#ifndef S2RDF_ENGINE_PARALLEL_JOIN_H_
#define S2RDF_ENGINE_PARALLEL_JOIN_H_

#include "engine/exec_context.h"
#include "engine/table.h"

// Partitioned parallel hash join: the executable counterpart of the
// ExecContext shuffle model. Both inputs are hash-partitioned on the
// shared join columns into `ctx->num_partitions` buckets (the
// "repartitioning" whose volume AccountShuffle meters), and the buckets
// are joined concurrently on a thread per partition — the same dataflow
// Spark SQL runs across executors.
//
// Produces exactly the same bag as engine::HashJoin; row order differs.

namespace s2rdf::engine {

// Natural parallel join on all shared column names. Falls back to the
// serial HashJoin when either input is small (partitioning overhead
// would dominate) or when no columns are shared (cross product).
Table ParallelHashJoin(const Table& left, const Table& right,
                       ExecContext* ctx);

// Rows below which the serial join is used.
inline constexpr size_t kParallelJoinThreshold = 4096;

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PARALLEL_JOIN_H_
