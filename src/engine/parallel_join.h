#ifndef S2RDF_ENGINE_PARALLEL_JOIN_H_
#define S2RDF_ENGINE_PARALLEL_JOIN_H_

#include "engine/exec_context.h"
#include "engine/table.h"

// Radix-partitioned parallel hash join: the executable counterpart of
// the ExecContext shuffle model. The shuffle-write phase is itself
// parallel — each morsel hashes its rows column-at-a-time and scatters
// them into per-morsel (striped) partition buffers, which merge into
// per-partition row lists by ordered concatenation, without locks.
// Partitions then build-and-probe concurrently on the shared TaskPool,
// building on the smaller input, with a flat open-addressing chain
// table instead of unordered_map. Matches travel as packed
// (left_row << 32 | right_row) pairs; the gather k-way-merges the
// partitions back into HashJoin's canonical order and materializes the
// output column-wise.
//
// Output and ExecMetrics are byte-identical to engine::HashJoin: left
// rows in input order, each left row's matches in ascending right-row
// order; |L|x|R| comparisons and repartition shuffle charged exactly as
// the serial operator charges them. On an interrupt every path records
// the reason (CheckInterrupt on the owning thread) and returns an empty
// table with the same intermediate-tuple accounting as the serial
// operator's bail-out — ExecutePlan then surfaces the cancelled/expired
// Status exactly as it does for serial operators.

namespace s2rdf::engine {

// Natural parallel join on all shared column names. Falls back to the
// serial HashJoin when both inputs are small (partitioning overhead
// would dominate; see ParallelThreshold in parallel.h), when no columns
// are shared (cross product), or when the context models a single
// partition.
Table ParallelHashJoin(const Table& left, const Table& right,
                       ExecContext* ctx);

// Default rows below which the serial join is used (overridable via
// ExecContext::parallel_threshold_rows).
inline constexpr size_t kParallelJoinThreshold = 4096;

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PARALLEL_JOIN_H_
