#ifndef S2RDF_ENGINE_PARALLEL_JOIN_H_
#define S2RDF_ENGINE_PARALLEL_JOIN_H_

#include "engine/exec_context.h"
#include "engine/table.h"

// Partitioned parallel hash join: the executable counterpart of the
// ExecContext shuffle model. Both inputs are hash-partitioned on the
// shared join columns into `ctx->num_partitions` buckets (the
// "repartitioning" whose volume AccountShuffle meters), and the buckets
// are joined concurrently as tasks on the shared TaskPool — the same
// dataflow Spark SQL runs across executors, but with total thread count
// fixed process-wide instead of num_partitions threads per join.
//
// Output is byte-identical to engine::HashJoin: each partition joins
// its left rows in input order with matches in ascending right-row
// order, and the gather k-way-merges the partitions back by original
// left-row index. On an interrupt the gather is skipped entirely (an
// empty table returns; ExecutePlan discards partial results anyway).

namespace s2rdf::engine {

// Natural parallel join on all shared column names. Falls back to the
// serial HashJoin when either input is small (partitioning overhead
// would dominate) or when no columns are shared (cross product).
Table ParallelHashJoin(const Table& left, const Table& right,
                       ExecContext* ctx);

// Rows below which the serial join is used.
inline constexpr size_t kParallelJoinThreshold = 4096;

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_PARALLEL_JOIN_H_
