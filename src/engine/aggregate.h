#ifndef S2RDF_ENGINE_AGGREGATE_H_
#define S2RDF_ENGINE_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/exec_context.h"
#include "engine/table.h"
#include "rdf/dictionary.h"

// GROUP BY / aggregation operator — the SPARQL 1.1 feature the paper's
// Sec. 6.1 defers to future work. Aggregates follow the W3C semantics:
//
//   - grouping keys are term ids (exact term equality);
//   - COUNT(*) counts rows, COUNT(?v) counts bound bindings,
//     COUNT(DISTINCT ?v) distinct bound terms;
//   - SUM/AVG operate on numeric literals (non-numeric bindings make
//     the aggregate unbound, SPARQL's error semantics); SUM of an empty
//     group is 0, AVG is unbound;
//   - MIN/MAX use the value ordering of value.h and return the original
//     term (no new literal is minted);
//   - SAMPLE returns an arbitrary binding;
//   - with no GROUP BY keys the whole input forms one group, and an
//     empty input still yields one row (COUNT = 0).
//
// COUNT/SUM/AVG mint new literals, so the operator takes a mutable
// dictionary.

namespace s2rdf::engine {

struct AggregateSpec {
  enum class Fn { kCountStar, kCount, kSum, kAvg, kMin, kMax, kSample };

  Fn fn = Fn::kCountStar;
  // Input variable (unused for kCountStar).
  std::string input_var;
  // Output column name (the AS variable).
  std::string output_name;
  bool distinct = false;
};

// Groups `input` by `keys` and evaluates `specs` per group. The output
// schema is keys followed by the aggregate output names.
StatusOr<Table> GroupByAggregate(const Table& input,
                                 const std::vector<std::string>& keys,
                                 const std::vector<AggregateSpec>& specs,
                                 rdf::Dictionary* dict, ExecContext* ctx);

// Parallel twin of GroupByAggregate on the shared TaskPool: rows are
// hash-partitioned by group key so every group is accumulated wholly by
// one worker (no partial-state merging — DISTINCT aggregates and
// floating-point sums stay exact), then the disjoint per-worker group
// maps are merged and emitted serially. Output table, minted literals,
// and ExecMetrics are byte-identical to the serial operator. Falls back
// to the serial path for small inputs and for the single implicit group
// (no GROUP BY keys).
StatusOr<Table> ParallelGroupByAggregate(const Table& input,
                                         const std::vector<std::string>& keys,
                                         const std::vector<AggregateSpec>& specs,
                                         rdf::Dictionary* dict,
                                         ExecContext* ctx);

}  // namespace s2rdf::engine

#endif  // S2RDF_ENGINE_AGGREGATE_H_
